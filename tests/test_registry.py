"""Unified metrics registry: groups, derived metrics, hierarchy, snapshots."""

import json

import pytest

from repro.core.base import ControllerStats
from repro.dram.stats import ChannelStats
from repro.metrics.registry import MetricGroup, MetricRegistry, derived


class SampleStats(MetricGroup):
    COUNTERS = ("hits", "misses", "latency_sum_ps")

    @derived
    def accesses(self) -> int:
        return self.hits + self.misses

    @derived
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class TestMetricGroup:
    def test_counters_start_at_zero(self):
        s = SampleStats()
        assert s.hits == 0 and s.misses == 0 and s.latency_sum_ps == 0

    def test_kwargs_constructor(self):
        s = SampleStats(hits=3, misses=1)
        assert s.hits == 3 and s.misses == 1

    def test_unknown_counter_rejected(self):
        with pytest.raises(TypeError):
            SampleStats(bogus=1)

    def test_hot_path_increment(self):
        s = SampleStats()
        s.hits += 5
        assert s.hits == 5

    def test_derived_computed_from_counters(self):
        s = SampleStats(hits=6, misses=2)
        assert s.accesses == 8
        assert s.hit_rate == 0.75

    def test_reset_zeroes_counters(self):
        s = SampleStats(hits=4, latency_sum_ps=100)
        s.reset()
        assert s.hits == 0 and s.latency_sum_ps == 0
        assert s.accesses == 0

    def test_merge_sums_without_mutating(self):
        a, b = SampleStats(hits=1, misses=2), SampleStats(hits=10)
        m = a.merge(b)
        assert (m.hits, m.misses) == (11, 2)
        assert a.hits == 1 and b.misses == 0

    def test_merge_type_mismatch_rejected(self):
        with pytest.raises(TypeError):
            SampleStats().merge(ChannelStats())

    def test_sum_many_and_empty(self):
        parts = [SampleStats(hits=i) for i in range(5)]
        assert SampleStats.sum(parts).hits == 10
        assert SampleStats.sum([]).hits == 0

    def test_equality_by_counters(self):
        assert SampleStats(hits=2) == SampleStats(hits=2)
        assert SampleStats(hits=2) != SampleStats(hits=3)


class TestSnapshotRoundTrip:
    def test_snapshot_has_counters_then_derived(self):
        snap = SampleStats(hits=3, misses=1).snapshot()
        assert list(snap) == ["hits", "misses", "latency_sum_ps",
                              "accesses", "hit_rate"]
        assert snap["hits"] == 3 and snap["accesses"] == 4

    def test_snapshot_counters_only(self):
        snap = SampleStats(hits=3).snapshot(include_derived=False)
        assert list(snap) == ["hits", "misses", "latency_sum_ps"]

    def test_from_snapshot_round_trip(self):
        s = SampleStats(hits=7, misses=3, latency_sum_ps=42)
        assert SampleStats.from_snapshot(s.snapshot()) == s

    def test_from_snapshot_ignores_derived_keys(self):
        s = SampleStats.from_snapshot(
            {"hits": 1, "misses": 0, "latency_sum_ps": 0,
             "accesses": 999, "hit_rate": 0.5})
        assert s.hits == 1 and s.accesses == 1

    def test_from_snapshot_rejects_unknown_fields(self):
        with pytest.raises(TypeError):
            SampleStats.from_snapshot({"hits": 1, "from_the_future": 2})

    def test_snapshot_json_round_trip(self):
        s = SampleStats(hits=2, misses=5)
        restored = SampleStats.from_snapshot(
            json.loads(json.dumps(s.snapshot())))
        assert restored == s


class TestFacades:
    """The per-layer stat classes are thin MetricGroup subclasses."""

    def test_channel_stats_derived(self):
        s = ChannelStats(read_accesses=30, write_accesses=10, turnarounds=4)
        assert s.accesses_per_turnaround == 10.0
        assert s.snapshot()["accesses_per_turnaround"] == 10.0

    def test_controller_stats_mean_latency(self):
        s = ControllerStats(reads_done=4, read_latency_sum_ps=400)
        assert s.mean_read_latency_ps == 100.0
        assert ControllerStats().mean_read_latency_ps == 0.0

    def test_controller_hit_rate(self):
        s = ControllerStats(read_hits=3, read_misses=1)
        assert s.dram_read_hit_rate == 0.75


class TestMetricRegistry:
    def make(self):
        reg = MetricRegistry()
        ctrl = reg.register("controller", SampleStats(hits=1))
        ch0 = reg.register("dram.ch0", ChannelStats(read_accesses=2))
        ch1 = reg.register("dram.ch1", ChannelStats(write_accesses=3))
        return reg, ctrl, ch0, ch1

    def test_nested_snapshot_shape(self):
        reg, *_ = self.make()
        snap = reg.snapshot()
        assert set(snap) == {"controller", "dram"}
        assert snap["dram"]["ch0"]["read_accesses"] == 2
        assert snap["dram"]["ch1"]["write_accesses"] == 3

    def test_registration_stores_live_object(self):
        reg, ctrl, *_ = self.make()
        ctrl.hits += 10
        assert reg.snapshot()["controller"]["hits"] == 11

    def test_duplicate_name_rejected(self):
        reg, *_ = self.make()
        with pytest.raises(ValueError):
            reg.register("controller", SampleStats())

    def test_cannot_nest_under_leaf(self):
        reg, *_ = self.make()
        with pytest.raises(ValueError):
            reg.register("controller.sub", SampleStats())

    def test_group_lookup_and_contains(self):
        reg, ctrl, ch0, _ = self.make()
        assert reg.group("controller") is ctrl
        assert reg.group("dram.ch0") is ch0
        assert "dram.ch1" in reg and "dram.ch9" not in reg

    def test_walk_yields_dotted_paths(self):
        reg, *_ = self.make()
        assert [p for p, _g in reg.walk()] == ["controller", "dram.ch0",
                                               "dram.ch1"]

    def test_reset_cascades(self):
        reg, ctrl, ch0, _ = self.make()
        reg.reset()
        assert ctrl.hits == 0 and ch0.read_accesses == 0

    def test_merge_structural(self):
        a, *_ = self.make()
        b, *_ = self.make()
        merged = a.merge(b)
        assert merged.snapshot()["dram"]["ch0"]["read_accesses"] == 4

    def test_merge_shape_mismatch_rejected(self):
        a, *_ = self.make()
        b = MetricRegistry()
        b.register("controller", SampleStats())
        with pytest.raises(ValueError):
            a.merge(b)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            MetricRegistry().register("", SampleStats())

    def test_rollup_sums_matching_leaves(self):
        reg, *_ = self.make()
        total = reg.rollup("dram.ch*")
        assert isinstance(total, ChannelStats)
        assert total.read_accesses == 2 and total.write_accesses == 3

    def test_rollup_match_all_rejects_mixed_types(self):
        reg, *_ = self.make()
        with pytest.raises(ValueError):
            reg.rollup("*")

    def test_rollup_no_match_raises(self):
        reg, *_ = self.make()
        with pytest.raises(KeyError):
            reg.rollup("hbm.ch*")

    def test_rollup_per_rank_pattern(self):
        """The cross-channel per-rank pattern the device rollup uses."""
        from repro.dram.stats import RankStats
        reg = MetricRegistry()
        reg.register("ch0", ChannelStats())
        reg.register("ch0_rank0", RankStats(acts=1))
        reg.register("ch0_rank1", RankStats(acts=2))
        reg.register("ch1", ChannelStats())
        reg.register("ch1_rank0", RankStats(acts=4))
        reg.register("ch1_rank1", RankStats(acts=8))
        assert reg.rollup("*_rank0").acts == 5
        assert reg.rollup("*_rank1").acts == 10


class TestSystemWiring:
    """The controller/system publish their counters through registries."""

    def test_controller_registry_tree(self, tiny_cfg):
        from repro.core import make_controller
        from repro.sim.engine import Simulator
        ctl = make_controller("CD", Simulator(), tiny_cfg)
        snap = ctl.metrics.snapshot()
        assert "controller" in snap
        assert set(snap["substrate"]) == {
            f"ch{i}" for i in range(tiny_cfg.org.channels)}

    def test_system_snapshot_covers_all_layers(self):
        from repro.config import scaled_config
        from repro.sim.system import System
        from repro.workloads.profiles import profile
        s = System(scaled_config(8), "DCA", [profile("gcc")],
                   footprint_scale=1 / 64, seed=1)
        snap = s.metrics.snapshot()
        assert {"controller", "substrate", "l2", "mainmem", "mapi"} <= set(snap)

    def test_system_and_controller_share_one_tree(self):
        """Single source of truth: a group registered at either level is
        visible from both, so the two views cannot diverge."""
        from repro.config import scaled_config
        from repro.sim.system import System
        from repro.workloads.profiles import profile
        s = System(scaled_config(8), "CD", [profile("gcc")],
                   footprint_scale=1 / 64, seed=1)
        assert s.metrics is s.controller.metrics
        extra = s.controller.metrics.register("tagcache", SampleStats(hits=9))
        assert s.metrics.snapshot()["tagcache"]["hits"] == 9
        assert extra is s.metrics.group("tagcache")


class TestRestoreEdgeCases:
    """Metric edge cases the snapshot/restore layer leans on.

    A restored run merges, resets and re-snapshots groups in states a
    straight-through run never produces (fresh-but-adopted registries,
    repeated warm-up boundaries), so those paths are pinned here.
    """

    def test_merge_into_empty_group(self):
        """Merging into a freshly-constructed group is the identity."""
        populated = SampleStats(hits=7, misses=3, latency_sum_ps=1200)
        merged = SampleStats().merge(populated)
        assert merged == populated
        assert merged.snapshot() == populated.snapshot()
        # ...and in both directions.
        assert populated.merge(SampleStats()) == populated

    def test_merge_into_empty_registry_tree(self):
        full = MetricRegistry()
        full.register("a", SampleStats(hits=2))
        full.register("sub.b", SampleStats(misses=5))
        empty = MetricRegistry()
        empty.register("a", SampleStats())
        empty.register("sub.b", SampleStats())
        merged = empty.merge(full)
        assert merged.snapshot() == full.snapshot()

    def test_double_reset_is_idempotent(self):
        s = SampleStats(hits=4, misses=4)
        s.reset()
        first = s.snapshot()
        s.reset()
        assert s.snapshot() == first
        assert s.hits == 0 and s.hit_rate == 0.0
        reg = MetricRegistry()
        reg.register("x", s)
        reg.reset()
        reg.reset()
        assert reg.snapshot() == {"x": first}

    def test_snapshot_restore_round_trip_after_reset(self):
        s = SampleStats(hits=9)
        s.reset()
        restored = SampleStats.from_snapshot(s.snapshot())
        assert restored == s

    def test_occupancy_integral_survives_snapshot_restore(self):
        """The time-weighted occupancy accounting is part of queue state:
        a deep-copied (snapshot-restored) queue must report the same mean
        occupancy trajectory as the original, including across a
        reset_accounting() warm-up boundary."""
        import copy
        from repro.core.access import Access, AccessRole, CacheRequest, RequestType
        from repro.core.queues import AccessQueue

        def mk():
            req = CacheRequest(RequestType.READ, 0x40, 0)
            return Access(AccessRole.TAG_READ, req, 0, 0, 0, 1, 0, 0, 0)

        q = AccessQueue(4)
        a, b = mk(), mk()
        q.push(a, now=0)
        q.push(b, now=50)              # integral: 1*50
        q.remove(a, now=100)           # + 2*50
        q.reset_accounting(now=100)    # warm-up boundary
        q.push(mk(), now=150)          # measured: 1*50 so far

        clone = copy.deepcopy(q)
        assert clone.mean_occupancy(200) == q.mean_occupancy(200)
        # Diverge after the copy: each keeps its own integral.
        q.remove(b, now=250)
        assert clone.mean_occupancy(300) != q.mean_occupancy(300)
        # The clone's trajectory matches what the original would have
        # reported had it stayed untouched.
        assert clone.mean_occupancy(300) == pytest.approx(
            (1 * 50 + 2 * 150) / 200)
