"""Pluggable interleaved address mapping and the XOR permutation remapping."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import INTERLEAVE_POLICIES, DRAMOrganization
from repro.dram.address import (AddressMapper, DecodedAddress, INTERLEAVES,
                                interleave_policy)


@pytest.fixture
def mapper():
    return AddressMapper(DRAMOrganization())


@pytest.fixture
def xor_mapper():
    return AddressMapper(DRAMOrganization(), xor_remap=True)


class TestLayout:
    def test_block_offset_ignored(self, mapper):
        assert mapper.decode(0) == mapper.decode(63)

    def test_consecutive_blocks_same_row(self, mapper):
        """Columns are the lowest field: blocks walk within one row."""
        d0 = mapper.decode(0)
        d1 = mapper.decode(64)
        assert d1.col == d0.col + 1
        assert (d1.channel, d1.bank, d1.row) == (d0.channel, d0.bank, d0.row)

    def test_consecutive_rows_rotate_channels(self, mapper):
        """After the column field comes the channel field."""
        row_bytes = 4096
        d0 = mapper.decode(0)
        d1 = mapper.decode(row_bytes)
        assert d1.channel == d0.channel + 1
        assert d1.bank == d0.bank

    def test_banks_after_channels(self, mapper):
        row_bytes, channels = 4096, 4
        d = mapper.decode(row_bytes * channels)
        assert d.channel == 0
        assert d.bank == 1

    def test_row_after_banks(self, mapper):
        row_bytes, channels, banks = 4096, 4, 16
        d = mapper.decode(row_bytes * channels * banks)
        assert (d.channel, d.bank) == (0, 0)
        assert d.row == 1

    def test_row_of_matches_decode(self, mapper):
        for addr in (0, 4096, 123456789, 2**30 + 4242):
            assert mapper.row_of(addr) == mapper.decode(addr).row

    def test_negative_address_rejected(self, mapper):
        with pytest.raises(ValueError):
            mapper.decode(-1)


class TestGlobalBank:
    def test_range(self, mapper):
        org = DRAMOrganization()
        seen = set()
        for addr in range(0, 4096 * 64 * 4, 4096):
            d = mapper.decode(addr)
            gb = mapper.global_bank(d)
            assert 0 <= gb < org.total_banks
            seen.add(gb)
        assert len(seen) == org.total_banks  # all banks reachable

    def test_distinct_per_channel_bank(self, mapper):
        d1 = DecodedAddress(0, 0, 3, 0, 0)
        d2 = DecodedAddress(1, 0, 3, 0, 0)
        assert mapper.global_bank(d1) != mapper.global_bank(d2)


class TestValidation:
    def test_non_power_of_two_channels(self):
        with pytest.raises(ValueError):
            AddressMapper(DRAMOrganization(channels=3))

    def test_non_power_of_two_banks(self):
        with pytest.raises(ValueError):
            AddressMapper(DRAMOrganization(banks_per_rank=10))


class TestInterleavePolicies:
    """The pluggable bit-slicing layer over the same decode/encode core."""

    def test_registry_matches_config_names(self):
        assert tuple(p.name for p in INTERLEAVES) == INTERLEAVE_POLICIES

    def test_lookup_is_case_insensitive(self):
        assert interleave_policy("RoBaRaChCo").name == "robarachco"

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            interleave_policy("corachbaro")

    def test_default_policy_is_robarachco(self, mapper):
        assert mapper.policy.name == "robarachco"

    def test_robarachco_rank_between_channel_and_bank(self):
        """LSB->MSB: col, ch, ra, ba, row (the paper's stacked layout)."""
        org = DRAMOrganization(ranks_per_channel=2)
        m = AddressMapper(org)
        row_bytes, channels, ranks = 4096, 4, 2
        d = m.decode(row_bytes * channels)
        assert (d.channel, d.rank, d.bank) == (0, 1, 0)
        d = m.decode(row_bytes * channels * ranks)
        assert (d.channel, d.rank, d.bank) == (0, 0, 1)

    def test_rorabachco_bank_between_channel_and_rank(self):
        """LSB->MSB: col, ch, ba, ra, row."""
        org = DRAMOrganization(ranks_per_channel=2,
                               interleave="rorabachco")
        m = AddressMapper(org)
        row_bytes, channels, banks = 4096, 4, 16
        d = m.decode(row_bytes)
        assert (d.channel, d.rank, d.bank) == (1, 0, 0)
        d = m.decode(row_bytes * channels)
        assert (d.channel, d.rank, d.bank) == (0, 0, 1)
        d = m.decode(row_bytes * channels * banks)
        assert (d.channel, d.rank, d.bank) == (0, 1, 0)

    def test_policies_agree_when_rank_field_is_empty(self):
        """With 1 rank/channel the two plain orders are the same layout."""
        a = AddressMapper(DRAMOrganization())
        b = AddressMapper(DRAMOrganization(interleave="rorabachco"))
        for addr in (0, 4096, 123456789, 2**30 + 4242):
            assert a.decode(addr) == b.decode(addr)

    def test_chxor_scatters_same_channel_rows(self):
        """Rows that pile onto one channel spread across all channels."""
        plain = AddressMapper(DRAMOrganization())
        xor = AddressMapper(DRAMOrganization(interleave="chxor"))
        row_stride = 4096 * 4 * 16   # same channel/bank, next row
        ch_plain = {plain.decode(i * row_stride).channel for i in range(4)}
        ch_xor = {xor.decode(i * row_stride).channel for i in range(4)}
        assert len(ch_plain) == 1
        assert len(ch_xor) == 4

    def test_chxor_keeps_row_bank_col(self):
        plain = AddressMapper(DRAMOrganization())
        xor = AddressMapper(DRAMOrganization(interleave="chxor"))
        for addr in (0, 8192, 12345600, 2**28):
            p, x = plain.decode(addr), xor.decode(addr)
            assert (p.row, p.rank, p.bank, p.col) == (x.row, x.rank,
                                                      x.bank, x.col)

    def test_row_of_is_policy_independent(self):
        """Rows sit above every sliced field, so row_of never depends on
        the policy — the Lee writeback index relies on this."""
        mappers = [AddressMapper(DRAMOrganization(ranks_per_channel=2,
                                                  interleave=name))
                   for name in INTERLEAVE_POLICIES]
        for addr in (0, 4096, 987654321, 2**31 + 64):
            rows = {m.row_of(addr) for m in mappers}
            assert len(rows) == 1

    @given(st.integers(min_value=0, max_value=2**40),
           st.sampled_from(INTERLEAVE_POLICIES),
           st.sampled_from([1, 2, 4]), st.booleans())
    @settings(max_examples=300, deadline=None)
    def test_bijective_across_policies_and_ranks(self, addr, policy,
                                                 ranks, remap):
        """encode(decode(x)) == x for every policy x rank-count x remap."""
        org = DRAMOrganization(ranks_per_channel=ranks, interleave=policy)
        m = AddressMapper(org, xor_remap=remap)
        addr &= ~63
        assert m.encode(m.decode(addr)) == addr

    @given(st.integers(min_value=0, max_value=2**40),
           st.sampled_from(INTERLEAVE_POLICIES))
    @settings(max_examples=200, deadline=None)
    def test_decode_fields_in_range_all_policies(self, addr, policy):
        org = DRAMOrganization(ranks_per_channel=2, interleave=policy)
        d = AddressMapper(org).decode(addr)
        assert 0 <= d.channel < org.channels
        assert 0 <= d.rank < org.ranks_per_channel
        assert 0 <= d.bank < org.banks_per_rank
        assert 0 <= d.col < org.blocks_per_row


class TestXORRemap:
    def test_same_row_same_bank(self, xor_mapper):
        """Remap must keep blocks of one row together."""
        d0 = xor_mapper.decode(0)
        d1 = xor_mapper.decode(64)
        assert (d1.channel, d1.bank, d1.row) == (d0.channel, d0.bank, d0.row)

    def test_scatters_same_bank_rows(self):
        """Two rows that collide on a bank without remapping spread out."""
        plain = AddressMapper(DRAMOrganization())
        xor = AddressMapper(DRAMOrganization(), xor_remap=True)
        row_stride = 4096 * 4 * 16  # same channel, same bank, next row
        banks_plain = {plain.decode(i * row_stride).bank for i in range(16)}
        banks_xor = {xor.decode(i * row_stride).bank for i in range(16)}
        assert len(banks_plain) == 1
        assert len(banks_xor) == 16  # permutation spreads across all banks

    def test_row_channel_unchanged(self, mapper, xor_mapper):
        for addr in (0, 8192, 12345600, 2**28):
            p, x = mapper.decode(addr), xor_mapper.decode(addr)
            assert p.row == x.row
            assert p.channel == x.channel
            assert p.col == x.col

    @given(st.integers(min_value=0, max_value=2**40))
    @settings(max_examples=200, deadline=None)
    def test_bijective_within_row_space(self, addr):
        """encode(decode(x)) recovers the block address (both mappers)."""
        addr &= ~63
        for remap in (False, True):
            m = AddressMapper(DRAMOrganization(), xor_remap=remap)
            assert m.encode(m.decode(addr)) == addr


@given(st.integers(min_value=0, max_value=2**40), st.booleans())
@settings(max_examples=200, deadline=None)
def test_decode_fields_in_range(addr, remap):
    org = DRAMOrganization()
    m = AddressMapper(org, xor_remap=remap)
    d = m.decode(addr)
    assert 0 <= d.channel < org.channels
    assert 0 <= d.rank < org.ranks_per_channel
    assert 0 <= d.bank < org.banks_per_rank
    assert 0 <= d.col < org.blocks_per_row
    assert d.row >= 0


@given(st.integers(min_value=0, max_value=2**34))
@settings(max_examples=100, deadline=None)
def test_remap_is_permutation_of_banks(addr):
    """For any address set sharing (channel,row), remap is a bijection."""
    org = DRAMOrganization()
    m = AddressMapper(org, xor_remap=True)
    # Bank field sits at bits 14..17 (6 block + 6 col + 2 channel bits).
    base = addr & ~(0xF << 14)
    banks = set()
    for bank_sel in range(org.banks_per_rank):
        a = base | (bank_sel << 14)
        banks.add(m.decode(a).bank)
    assert len(banks) == org.banks_per_rank


class TestEncodeDecodeRoundTrip:
    """Property round-trips in *both* directions (snapshot layer relies on
    the mapping being a pure bijection: restored runs re-derive access
    coordinates and must land on the identical banks/rows)."""

    coords = st.tuples(
        st.integers(min_value=0, max_value=3),      # channel
        st.integers(min_value=0, max_value=0),      # rank (1 per channel)
        st.integers(min_value=0, max_value=15),     # bank
        st.integers(min_value=0, max_value=2**22),  # row
        st.integers(min_value=0, max_value=63),     # col
    )

    @given(coords, st.booleans())
    @settings(max_examples=200, deadline=None)
    def test_decode_of_encode_recovers_coordinates(self, coord, remap):
        org = DRAMOrganization()
        m = AddressMapper(org, xor_remap=remap)
        d = DecodedAddress(*coord)
        assert m.decode(m.encode(d)) == d

    multirank_coords = st.tuples(
        st.integers(min_value=0, max_value=3),      # channel
        st.integers(min_value=0, max_value=1),      # rank (2 per channel)
        st.integers(min_value=0, max_value=15),     # bank
        st.integers(min_value=0, max_value=2**22),  # row
        st.integers(min_value=0, max_value=63),     # col
    )

    @given(multirank_coords, st.sampled_from(INTERLEAVE_POLICIES))
    @settings(max_examples=200, deadline=None)
    def test_decode_of_encode_multirank_all_policies(self, coord, policy):
        org = DRAMOrganization(ranks_per_channel=2, interleave=policy)
        m = AddressMapper(org)
        d = DecodedAddress(*coord)
        assert m.decode(m.encode(d)) == d

    @given(coords)
    @settings(max_examples=100, deadline=None)
    def test_global_bank_flattening_is_injective(self, coord):
        org = DRAMOrganization()
        m = AddressMapper(org)
        d = DecodedAddress(*coord)
        gb = m.global_bank(d)
        per_ch = org.ranks_per_channel * org.banks_per_rank
        assert 0 <= gb < org.total_banks
        # channel-local bank index recovery used by the schedulers'
        # bucket fast path (global_bank % banks-per-channel)
        assert gb % per_ch == d.rank * org.banks_per_rank + d.bank
        assert gb // per_ch == d.channel

    @given(st.integers(min_value=0, max_value=2**40), st.booleans())
    @settings(max_examples=100, deadline=None)
    def test_row_of_is_stable_under_round_trip(self, addr, remap):
        m = AddressMapper(DRAMOrganization(), xor_remap=remap)
        addr &= ~63
        assert m.row_of(m.encode(m.decode(addr))) == m.row_of(addr)
