"""Core model in isolation: ROB/MLP blocking, trace consumption, IPC."""

import itertools

import pytest

from repro.config import CPUConfig
from repro.sim.cpu import Core, L2_HIT, MISS, MSHR_FULL
from repro.sim.engine import Simulator


class StubSystem:
    """Scriptable memory side: returns queued outcomes, records calls."""

    def __init__(self, sim, outcomes):
        self.sim = sim
        self.outcomes = outcomes      # iterator of (outcome, stall)
        self.accesses = []
        self.registered = []          # (core, token)
        self.mshr_waiters = []
        self.retry_flags = []         # retrying flag of each access

    def mem_access(self, core, addr, is_write, pc, retrying=False):
        self.accesses.append((addr, is_write, pc))
        self.retry_flags.append(retrying)
        return next(self.outcomes)

    def register_load(self, core, token):
        self.registered.append((core, token))

    def wait_for_mshr(self, core):
        self.mshr_waiters.append(core)

    def core_warmed(self, core):
        pass

    def core_finished(self, core):
        pass


def make_core(sim, system, trace, cfg=None):
    cfg = cfg or CPUConfig(max_outstanding_misses=2, rob_entries=64)
    core = Core(sim, 0, cfg, iter(trace), system)
    return core


def op(gap=10, addr=0x1000, w=False, pc=0):
    return (gap, addr, w, pc)


class TestTraceConsumption:
    def test_l2_hits_consume_trace(self):
        sim = Simulator()
        system = StubSystem(sim, itertools.repeat((L2_HIT, 0)))
        trace = itertools.repeat(op())
        core = make_core(sim, system, trace)
        core.start(warmup_insts=0, measure_insts=100)
        sim.run(until=1_000_000)
        assert len(system.accesses) > 5
        assert core.finish_time is not None

    def test_instruction_accounting(self):
        sim = Simulator()
        system = StubSystem(sim, itertools.repeat((L2_HIT, 0)))
        core = make_core(sim, system, itertools.repeat(op(gap=9)))
        core.start(0, 95)
        sim.run(until=1_000_000)
        # each op retires gap+1 = 10 instructions
        assert core.icount % 10 == 0
        assert core.icount >= 95

    def test_gap_sets_pacing(self):
        sim = Simulator()
        system = StubSystem(sim, itertools.repeat((L2_HIT, 0)))
        cfg = CPUConfig()  # 8-wide, 250 ps/cycle
        core = make_core(sim, system, itertools.repeat(op(gap=80)), cfg)
        core.start(0, 10_000_000)
        sim.run(until=100_000)
        # 80 instructions at 8-wide = 10 cycles = 2500 ps per op
        assert 100_000 // 2500 - 2 <= len(system.accesses) <= 100_000 // 2500 + 2


class TestBlocking:
    def test_blocks_at_mlp_limit(self):
        sim = Simulator()
        system = StubSystem(sim, itertools.repeat((MISS, 0)))
        core = make_core(sim, system, itertools.repeat(op()))
        core.start(0, 10_000)
        sim.run(until=1_000_000)
        assert core.blocked
        assert len(core.outstanding) == 2      # max_outstanding_misses
        assert len(system.accesses) == 2

    def test_load_done_unblocks(self):
        sim = Simulator()
        system = StubSystem(sim, itertools.repeat((MISS, 0)))
        core = make_core(sim, system, itertools.repeat(op()))
        core.start(0, 10_000)
        sim.run(until=100_000)
        token = next(iter(core.outstanding))
        sim.run(until=200_000)
        core.load_done(token)
        sim.run(until=300_000)
        assert len(system.accesses) == 3       # one more op issued

    def test_stores_do_not_block(self):
        sim = Simulator()
        system = StubSystem(sim, itertools.repeat((MISS, 0)))
        core = make_core(sim, system, itertools.repeat(op(w=True)))
        core.start(0, 10_000)
        sim.run(until=300_000)
        assert not core.blocked
        assert core.outstanding == {}
        assert len(system.accesses) > 10

    def test_rob_limit_binds(self):
        """With huge MLP, the ROB bounds run-ahead past the oldest miss."""
        sim = Simulator()
        outcomes = itertools.chain([(MISS, 0)],
                                   itertools.repeat((L2_HIT, 0)))
        system = StubSystem(sim, outcomes)
        cfg = CPUConfig(max_outstanding_misses=1000, rob_entries=64)
        core = make_core(sim, system, itertools.repeat(op(gap=9)), cfg)
        core.start(0, 1_000_000)
        sim.run(until=10_000_000)
        assert core.blocked
        # it ran ahead ~ROB instructions past the miss then stalled
        assert core.icount <= 10 + 64 + 10

    def test_mshr_full_retries_same_op(self):
        sim = Simulator()
        outcomes = itertools.chain([(MSHR_FULL, 0), (MISS, 0)],
                                   itertools.repeat((L2_HIT, 0)))
        system = StubSystem(sim, outcomes)
        core = make_core(sim, system, itertools.repeat(op(addr=0x7700)))
        core.start(0, 10_000)
        sim.run(until=100_000)
        assert core.blocked
        assert system.mshr_waiters == [core]
        core.mshr_freed()
        sim.run(until=200_000)
        # the same address was retried (two identical records)
        assert system.accesses[0][0] == system.accesses[1][0] == 0x7700

    def test_retry_flag_reaches_system(self):
        """Only the re-issue of a held op carries retrying=True."""
        sim = Simulator()
        outcomes = itertools.chain([(MSHR_FULL, 0), (MISS, 0)],
                                   itertools.repeat((L2_HIT, 0)))
        system = StubSystem(sim, outcomes)
        core = make_core(sim, system, itertools.repeat(op(addr=0x7700)))
        core.start(0, 10_000)
        sim.run(until=100_000)
        core.mshr_freed()
        sim.run(until=200_000)
        assert system.retry_flags[0] is False   # first attempt
        assert system.retry_flags[1] is True    # the retry of the held op
        assert all(f is False for f in system.retry_flags[2:])

    def test_retry_does_not_recount_instructions(self):
        """A held op retires its gap once, not once per attempt."""
        sim = Simulator()
        outcomes = itertools.chain([(MSHR_FULL, 0)],
                                   itertools.repeat((L2_HIT, 0)))
        system = StubSystem(sim, outcomes)
        core = make_core(sim, system, itertools.repeat(op(gap=9)))
        core.start(0, 10_000)
        sim.run(until=1_000)
        icount_held = core.icount
        core.mshr_freed()
        sim.run(until=2_000)
        # The retry re-issued the access without re-retiring the gap.
        assert system.accesses[0] == system.accesses[1]
        assert core.icount >= icount_held
        assert core.icount % 10 == 0

    def test_rob_blocked_core_still_waits_for_mshr(self):
        """load_done on a core holding a retry op must not unblock it."""
        sim = Simulator()
        outcomes = itertools.chain([(MISS, 0), (MSHR_FULL, 0), (MISS, 0)],
                                   itertools.repeat((L2_HIT, 0)))
        system = StubSystem(sim, outcomes)
        core = make_core(sim, system, itertools.repeat(op()))
        core.start(0, 10_000)
        sim.run(until=100_000)
        assert core.blocked
        assert system.mshr_waiters == [core]
        token = next(iter(core.outstanding))
        core.load_done(token)          # data back, but still no MSHR slot
        sim.run(until=150_000)
        assert core.blocked            # parked on the MSHR, not the ROB
        n_before = len(system.accesses)
        core.mshr_freed()
        sim.run(until=300_000)
        assert len(system.accesses) > n_before
        assert system.retry_flags[:3] == [False, False, True]

    def test_blocked_time_accounted(self):
        sim = Simulator()
        system = StubSystem(sim, itertools.repeat((MISS, 0)))
        core = make_core(sim, system, itertools.repeat(op()))
        core.start(0, 10_000)
        sim.run(until=50_000)
        token = next(iter(core.outstanding))
        sim.run(until=150_000)
        core.load_done(token)
        assert core.stall_blocked_ps > 0


class TestIPC:
    def test_measured_ipc_requires_finish(self):
        sim = Simulator()
        system = StubSystem(sim, itertools.repeat((L2_HIT, 0)))
        core = make_core(sim, system, itertools.repeat(op()))
        core.start(0, 10_000_000)
        sim.run(until=1000)
        with pytest.raises(RuntimeError):
            core.measured_ipc()

    def test_ipc_positive_and_bounded(self):
        sim = Simulator()
        system = StubSystem(sim, itertools.repeat((L2_HIT, 0)))
        cfg = CPUConfig()
        core = make_core(sim, system, itertools.repeat(op(gap=15)), cfg)
        core.start(warmup_insts=100, measure_insts=2_000)
        sim.run(until=100_000_000)
        ipc = core.measured_ipc()
        assert 0 < ipc <= cfg.width
