"""Geometry of the two tags-in-DRAM layouts (Loh-Hill / Alloy)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.organizations import (
    DirectMappedGeometry,
    SetAssociativeGeometry,
)
from repro.config import DRAMCacheGeometry

GEOM = DRAMCacheGeometry(size_bytes=16 * 2**20)
SA = SetAssociativeGeometry(GEOM)
DM = DirectMappedGeometry(GEOM)


class TestSetAssociative:
    def test_sets_per_row(self):
        # 4 KB row / (16 blocks per set unit) = 4 sets per row
        assert SA.sets_per_row == 4

    def test_capacity(self):
        assert SA.num_sets * SA.ways * 64 == GEOM.data_capacity

    def test_tag_data_same_row(self):
        """Loh-Hill: a set's tag block and data ways share a DRAM row."""
        for s in (0, 1, 3, 4, 1000):
            tag_row = SA.tag_array_addr(s) // GEOM.row_bytes
            for w in (0, 7, 14):
                assert SA.data_array_addr(s, w) // GEOM.row_bytes == tag_row

    def test_tag_block_precedes_data(self):
        assert SA.data_array_addr(0, 0) == SA.tag_array_addr(0) + 64

    def test_distinct_locations_within_row(self):
        addrs = {SA.tag_array_addr(0)}
        addrs.update(SA.data_array_addr(0, w) for w in range(15))
        addrs.add(SA.tag_array_addr(1))
        addrs.update(SA.data_array_addr(1, w) for w in range(15))
        assert len(addrs) == 32  # 2 full set units, no overlap

    def test_way_out_of_range(self):
        with pytest.raises(ValueError):
            SA.data_array_addr(0, 15)
        with pytest.raises(ValueError):
            SA.data_array_addr(0, -1)

    @given(st.integers(min_value=0, max_value=2**30))
    @settings(max_examples=100, deadline=None)
    def test_block_addr_roundtrip(self, block):
        s, t = SA.set_index(block), SA.tag_value(block)
        assert SA.block_addr(s, t) == block

    def test_consecutive_blocks_consecutive_sets(self):
        assert SA.set_index(1) == SA.set_index(0) + 1


class TestDirectMapped:
    def test_entries_per_row(self):
        # 15/16 of 64 blocks hold TADs
        assert DM.entries_per_row == 60

    def test_capacity(self):
        assert DM.num_entries * 64 == GEOM.data_capacity

    def test_tad_within_row(self):
        for e in (0, 59, 60, 61, 12345):
            addr = DM.tad_array_addr(e)
            row_off = addr % GEOM.row_bytes
            assert row_off < 60 * 64  # inside the TAD area

    def test_row_advances_every_60(self):
        r0 = DM.tad_array_addr(0) // GEOM.row_bytes
        r59 = DM.tad_array_addr(59) // GEOM.row_bytes
        r60 = DM.tad_array_addr(60) // GEOM.row_bytes
        assert r0 == r59
        assert r60 == r0 + 1

    @given(st.integers(min_value=0, max_value=2**30))
    @settings(max_examples=100, deadline=None)
    def test_block_addr_roundtrip(self, block):
        e, t = DM.entry_index(block), DM.tag_value(block)
        assert DM.block_addr(e, t) == block


class TestParity:
    def test_same_data_capacity(self):
        """Both organizations cache the same number of bytes (paper)."""
        assert SA.num_sets * SA.ways == DM.num_entries
