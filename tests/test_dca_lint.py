"""dca-lint rule/CLI coverage against the fixtures in tests/lint_fixtures/.

The fixture convention: every line expected to produce a finding carries
a trailing ``# expect: R<n>`` marker (``# expect: R1,R3`` for several).
Each fixture test lints the file with the *full* rule set and asserts
the produced ``(line, rule)`` pairs equal the marked ones exactly — so
the suite pins both that rules fire where they should and that they stay
silent everywhere else (including against each other's fixtures).
"""

from __future__ import annotations

import io
import json
import re
import textwrap
from pathlib import Path

import pytest

from repro.analysis.cli import main
from repro.analysis.core import LintRun, SourceModule, all_rules
from repro.analysis.rules.snapshot import ALLOWLIST

FIXTURES = Path(__file__).parent / "lint_fixtures"
REPO_ROOT = Path(__file__).parent.parent

_EXPECT_RE = re.compile(r"#\s*expect:\s*([A-Z0-9, ]+)")


def expected_findings(path: Path) -> set[tuple[int, str]]:
    out: set[tuple[int, str]] = set()
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        m = _EXPECT_RE.search(line)
        if m:
            for rule in m.group(1).split(","):
                out.add((lineno, rule.strip()))
    return out


def lint_file(path: Path, project_root: Path | None = None) -> set[tuple[int, str]]:
    run = LintRun(
        modules=[SourceModule.from_path(path)],
        rules=all_rules(),
        project_root=project_root,
    )
    return {(f.line, f.rule) for f in run.execute()}


# --- one test per fixture: exact line/rule agreement ----------------------

FIXTURE_FILES = sorted(FIXTURES.rglob("*.py"))


@pytest.mark.parametrize("path", FIXTURE_FILES,
                         ids=[str(p.relative_to(FIXTURES)) for p in FIXTURE_FILES])
def test_fixture_findings_match_markers(path):
    assert lint_file(path) == expected_findings(path)


def test_fixture_suite_is_meaningful():
    """At least one positive fixture per per-module rule R1..R5, R7."""
    fired = set()
    for path in FIXTURE_FILES:
        fired |= {rule for _, rule in expected_findings(path)}
    assert {"R1", "R2", "R3", "R4", "R5", "R7"} <= fired


# --- package scoping ------------------------------------------------------

def test_package_classification():
    mod = SourceModule(FIXTURES / "repro/sim/r1_ok.py", "x = 1\n")
    assert mod.package_path == "repro/sim/r1_ok.py"
    assert mod.in_package("sim")
    assert not mod.in_package("dram")
    assert mod.dotted_name == "repro.sim.r1_ok"

    outside = SourceModule(FIXTURES / "clean/outside_scope.py", "x = 1\n")
    assert outside.package_path == "outside_scope.py"
    assert not outside.in_package("sim", "dram", "cache", "mem")


def test_engine_file_scope():
    src = "class Hot:\n    def __init__(self):\n        self.x = 0\n"
    engine = SourceModule(Path("src/repro/sim/engine.py"), src)
    assert engine.is_file("sim/engine.py")
    run = LintRun(modules=[engine], rules=all_rules(), project_root=None)
    assert {(f.rule) for f in run.execute()} == {"R3"}

    elsewhere = SourceModule(Path("src/repro/sim/other.py"), src)
    run = LintRun(modules=[elsewhere], rules=all_rules(), project_root=None)
    assert run.execute() == []


# --- suppressions ---------------------------------------------------------

def test_line_suppression_is_rule_specific():
    src = textwrap.dedent("""\
        import time

        def probe():
            return time.time()  # dca-lint: disable=R2
    """)
    mod = SourceModule(Path("repro/sim/x.py"), src)
    run = LintRun(modules=[mod], rules=all_rules(), project_root=None)
    assert {f.rule for f in run.execute()} == {"R1"}  # R2 pragma is no shield


def test_file_and_all_suppressions():
    path = FIXTURES / "repro/sim/suppress_file.py"
    assert lint_file(path) == set()


def test_suppression_requires_finding_line():
    src = textwrap.dedent("""\
        import time
        # dca-lint: disable=R1

        def probe():
            return time.time()
    """)
    mod = SourceModule(Path("repro/sim/x.py"), src)
    run = LintRun(modules=[mod], rules=all_rules(), project_root=None)
    assert {f.rule for f in run.execute()} == {"R1"}  # wrong line: no effect


# --- R2 allowlist ---------------------------------------------------------

def test_allowlist_entries_all_carry_reasons():
    for dotted, reason in ALLOWLIST.items():
        assert dotted.startswith("repro."), dotted
        assert len(reason) > 10, f"allowlist entry {dotted} needs a reason"


def test_allowlist_entries_are_not_stale():
    """Every allowlisted class still exists at its recorded location."""
    import importlib

    for dotted in ALLOWLIST:
        module_name, _, cls_name = dotted.rpartition(".")
        assert hasattr(importlib.import_module(module_name), cls_name), (
            f"allowlist entry {dotted} no longer exists; remove it"
        )


def test_allowlisted_class_is_exempt():
    src = textwrap.dedent("""\
        class HeapSimulator:
            def __init__(self):
                self._heap = []
    """)
    mod = SourceModule(Path("src/repro/sim/engine.py"), src)
    run = LintRun(modules=[mod], rules=all_rules(), project_root=None)
    assert "R2" not in {f.rule for f in run.execute()}


# --- R6: schema discipline (repo-level) -----------------------------------

def _schema_project(tmp_path, version, design_rows):
    root = tmp_path / "proj"
    sysfile = root / "src" / "repro" / "sim" / "system.py"
    sysfile.parent.mkdir(parents=True)
    sysfile.write_text(f"RESULT_SCHEMA_VERSION = {version}\n")
    if design_rows is not None:
        table = "\n".join(f"| {v} | change notes |" for v in design_rows)
        (root / "DESIGN.md").write_text(
            "# DESIGN\n\nVersion history:\n\n"
            "| version | change |\n|---------|--------|\n" + table + "\n"
        )
    return root, sysfile


def _run_r6(root, sysfile):
    run = LintRun(
        modules=[SourceModule.from_path(sysfile)],
        rules=all_rules(),
        project_root=root,
    )
    return [f for f in run.execute() if f.rule == "R6"]


def test_r6_documented_bump_passes(tmp_path):
    root, sysfile = _schema_project(tmp_path, 6, design_rows=[6, 5, 4])
    assert _run_r6(root, sysfile) == []


def test_r6_undocumented_bump_fails(tmp_path):
    root, sysfile = _schema_project(tmp_path, 7, design_rows=[5, 4])
    findings = _run_r6(root, sysfile)
    assert len(findings) == 1
    assert "no matching row" in findings[0].message
    assert findings[0].path.endswith("system.py")


def test_r6_missing_design_md_fails(tmp_path):
    root, sysfile = _schema_project(tmp_path, 5, design_rows=None)
    findings = _run_r6(root, sysfile)
    assert len(findings) == 1
    assert "no DESIGN.md" in findings[0].message


def test_r6_live_repo_is_consistent():
    """The real tree: RESULT_SCHEMA_VERSION is documented in DESIGN.md."""
    sysfile = REPO_ROOT / "src" / "repro" / "sim" / "system.py"
    assert _run_r6(REPO_ROOT, sysfile) == []


# --- CLI ------------------------------------------------------------------

def test_cli_clean_tree_exits_zero():
    out = io.StringIO()
    rc = main([str(REPO_ROOT / "src"), "--root", str(REPO_ROOT)], stdout=out)
    assert rc == 0, out.getvalue()
    assert "clean" in out.getvalue()


def test_cli_findings_exit_one_and_json_schema():
    bad = FIXTURES / "repro" / "sim" / "r1_bad.py"
    out = io.StringIO()
    rc = main([str(bad), "--format", "json", "--root", str(REPO_ROOT)],
              stdout=out)
    assert rc == 1
    payload = json.loads(out.getvalue())
    assert payload["schema_version"] == 1
    assert payload["count"] == len(payload["findings"]) > 0
    first = payload["findings"][0]
    assert set(first) == {"path", "line", "col", "rule", "message"}


def test_cli_select_and_ignore():
    bad = FIXTURES / "repro" / "cache" / "r2_bad.py"
    out = io.StringIO()
    rc = main([str(bad), "--select", "R1", "--root", str(REPO_ROOT)],
              stdout=out)
    assert rc == 0  # only R2 findings exist there

    out = io.StringIO()
    rc = main([str(bad), "--ignore", "R2", "--root", str(REPO_ROOT)],
              stdout=out)
    assert rc == 0

    out = io.StringIO()
    rc = main([str(bad), "--select", "r2", "--root", str(REPO_ROOT)],
              stdout=out)
    assert rc == 1  # case-insensitive select


def test_cli_list_rules():
    out = io.StringIO()
    rc = main(["--list-rules"], stdout=out)
    assert rc == 0
    text = out.getvalue()
    for rid in ("R1", "R2", "R3", "R4", "R5", "R6", "R7"):
        assert rid in text


def test_cli_parse_error_reported_not_fatal(tmp_path):
    broken = tmp_path / "broken.py"
    broken.write_text("def oops(:\n")
    fine = tmp_path / "fine.py"
    fine.write_text("x = 1\n")
    out = io.StringIO()
    rc = main([str(tmp_path), "--root", str(tmp_path)], stdout=out)
    assert rc == 1
    assert "PARSE" in out.getvalue()


def test_cli_usage_errors_exit_two():
    with pytest.raises(SystemExit) as exc:
        main([])
    assert exc.value.code == 2
    with pytest.raises(SystemExit) as exc:
        main(["/no/such/path.py"])
    assert exc.value.code == 2
