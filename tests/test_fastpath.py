"""Indexed scheduling fast path: bit-identity with the naive scan path,
and DCA ScheduleAll hysteresis boundary pinning.

The fast path (``AccessQueue`` bank buckets + ``pick_banked`` +
``DCAController._ofs_buckets``) must select exactly the access the naive
reference selectors (``pick`` over flat candidate lists,
``_ofs_candidates``) would.  ``Access.seq`` is globally unique and the
final tiebreak of every policy, so the argmin is unique — these tests
pin that equivalence over randomized queue states, bank states,
blacklists and RRPC states.
"""

from __future__ import annotations

import random

import pytest

from repro.config import BLISSConfig, DRAMOrganization, DRAMTimings
from repro.core import make_controller
from repro.core.access import Access, AccessRole, CacheRequest, Priority, RequestType
from repro.core.bliss import BLISSScheduler
from repro.core.frfcfs import FRFCFSScheduler
from repro.core.queues import AccessQueue
from repro.dram.channel import Channel
from repro.sim.engine import Simulator

NUM_CORES = 8


def random_state(rng, n_accesses, read_fraction=0.6, writes=False):
    """A random queue + channel with some open rows."""
    org = DRAMOrganization()
    channel = Channel(DRAMTimings.stacked(), org)
    nbanks = org.ranks_per_channel * org.banks_per_rank
    t = 0
    for b in range(nbanks):
        if rng.random() < 0.5:     # open a row in about half the banks
            rank, bank = divmod(b, org.banks_per_rank)
            _s, t = channel.issue(rank, bank, rng.randrange(8), False, t)
    q = AccessQueue(max(n_accesses, 1))
    for _ in range(n_accesses):
        gb = rng.randrange(nbanks)
        rank, bank = divmod(gb, org.banks_per_rank)
        if writes:
            role, rtype = AccessRole.DATA_WRITE, RequestType.WRITEBACK
        else:
            role = AccessRole.TAG_READ
            rtype = (RequestType.READ if rng.random() < read_fraction
                     else RequestType.WRITEBACK)
        req = CacheRequest(rtype, rng.randrange(1 << 20),
                           rng.randrange(NUM_CORES))
        q.push(Access(role, req, 0, rank, bank, rng.randrange(8), 0, gb, 0))
    return q, channel


class TestPickEquivalence:
    """pick_banked(buckets) is the access pick(flat list) returns."""

    @pytest.mark.parametrize("seed", range(10))
    def test_bliss_full_queue(self, seed):
        rng = random.Random(seed)
        q, channel = random_state(rng, rng.randrange(0, 65))
        s = BLISSScheduler(BLISSConfig(), NUM_CORES)
        for c in range(NUM_CORES):
            s.blacklist[c] = rng.random() < 0.3
        assert (s.pick(list(q.entries), channel, 0)
                is s.pick_banked(q.bank_buckets(), channel, 0))

    @pytest.mark.parametrize("seed", range(10))
    def test_bliss_pr_partition(self, seed):
        rng = random.Random(100 + seed)
        q, channel = random_state(rng, rng.randrange(0, 65))
        s = BLISSScheduler(BLISSConfig(), NUM_CORES)
        naive = [a for a in q.entries if a.priority == Priority.PR]
        assert (s.pick(naive, channel, 0)
                is s.pick_banked(q.pr_bank_buckets(), channel, 0))

    @pytest.mark.parametrize("seed", range(10))
    def test_frfcfs_full_queue(self, seed):
        rng = random.Random(200 + seed)
        q, channel = random_state(rng, rng.randrange(0, 65), writes=True)
        s = FRFCFSScheduler()
        assert (s.pick(list(q.entries), channel, 0)
                is s.pick_banked(q.bank_buckets(), channel, 0))

    @pytest.mark.parametrize("seed", range(5))
    def test_drain_order_identical(self, seed):
        """Pick+remove until empty: the full issue order matches, which
        also exercises swap-pop / bucket maintenance between picks."""
        rng = random.Random(300 + seed)
        q, channel = random_state(rng, 40)
        naive_pool = list(q.entries)
        s = BLISSScheduler(BLISSConfig(), NUM_CORES)
        s.blacklist[2] = True
        order_naive, order_indexed = [], []
        while naive_pool:
            a = s.pick(naive_pool, channel, 0)
            naive_pool.remove(a)
            order_naive.append(a)
        while q.entries:
            a = s.pick_banked(q.bank_buckets(), channel, 0)
            q.remove(a)
            order_indexed.append(a)
        assert order_naive == order_indexed


class TestOFSEquivalence:
    """DCA's bucketed OFS candidates == the naive §IV-C filter."""

    def build_dca(self, tiny_cfg):
        return make_controller("DCA", Simulator(), tiny_cfg, use_mapi=False)

    @pytest.mark.parametrize("seed", range(8))
    def test_candidate_sets_match(self, tiny_cfg, seed):
        rng = random.Random(seed)
        ctrl = self.build_dca(tiny_cfg)
        channel = ctrl.device.channels[0]
        nbanks = len(channel.banks)
        t = 0
        for b in range(nbanks):
            if rng.random() < 0.5:
                rank, bank = divmod(b, ctrl.cfg.org.banks_per_rank)
                _s, t = channel.issue(rank, bank, rng.randrange(8), False, t)
        for _ in range(rng.randrange(nbanks * 2)):
            ctrl.rrpc.on_priority_read(rng.randrange(nbanks))
        rq = ctrl.read_q[0]
        for _ in range(rng.randrange(1, 48)):
            gb = rng.randrange(nbanks)
            rank, bank = divmod(gb, ctrl.cfg.org.banks_per_rank)
            rtype = (RequestType.READ if rng.random() < 0.3
                     else RequestType.WRITEBACK)
            req = CacheRequest(rtype, 0, rng.randrange(4))
            rq.push(Access(AccessRole.TAG_READ, req, 0, rank, bank,
                           rng.randrange(8), 0, gb, 0))
        naive = ctrl._ofs_candidates(0)
        buckets = ctrl._ofs_buckets(0)
        flat = [a for bucket in buckets.values() for a in bucket]
        assert set(flat) == set(naive)
        assert len(flat) == len(naive)
        for gb, bucket in buckets.items():
            assert all(a.global_bank == gb for a in bucket)
        # ... and the resulting pick is the same access.
        sched = ctrl.sched[0]
        assert (sched.pick(naive, channel, 0)
                is sched.pick_banked(buckets, channel, 0))


class TestScheduleAllHysteresis:
    """Paper §IV: ScheduleAll turns on when occupancy *exceeds* 85 % and
    off when it *falls below* 75 % — both comparisons are strict, so
    landing exactly on a threshold changes nothing."""

    def build(self, tiny_cfg, capacity=20):
        ctrl = make_controller("DCA", Simulator(), tiny_cfg, use_mapi=False)
        # Replace channel 0's read queue with one whose capacity puts the
        # 0.85 / 0.75 thresholds on representable occupancies:
        # 17/20 == 0.85 exactly, 15/20 == 0.75 exactly.
        ctrl.read_q[0] = AccessQueue(capacity)
        assert ctrl.cfg.queues.lr_drain_high == pytest.approx(0.85)
        assert ctrl.cfg.queues.lr_drain_low == pytest.approx(0.75)
        return ctrl

    def fill(self, ctrl, n):
        rq = ctrl.read_q[0]
        while len(rq) > n:
            rq.remove(rq.entries[-1])
        while len(rq) < n:
            req = CacheRequest(RequestType.WRITEBACK, 0, 0)
            rq.push(Access(AccessRole.TAG_READ, req, 0, 0, 0, 0, 0, 0, 0))

    def test_exactly_at_high_watermark_stays_off(self, tiny_cfg):
        ctrl = self.build(tiny_cfg)
        self.fill(ctrl, 17)               # occupancy == lr_drain_high
        ctrl._update_schedule_all(0)
        assert not ctrl.schedule_all[0]

    def test_above_high_watermark_turns_on(self, tiny_cfg):
        ctrl = self.build(tiny_cfg)
        self.fill(ctrl, 18)               # 0.90 > 0.85
        ctrl._update_schedule_all(0)
        assert ctrl.schedule_all[0]

    def test_exactly_at_low_watermark_stays_on(self, tiny_cfg):
        ctrl = self.build(tiny_cfg)
        ctrl.schedule_all[0] = True
        self.fill(ctrl, 15)               # occupancy == lr_drain_low
        ctrl._update_schedule_all(0)
        assert ctrl.schedule_all[0]

    def test_below_low_watermark_turns_off(self, tiny_cfg):
        ctrl = self.build(tiny_cfg)
        ctrl.schedule_all[0] = True
        self.fill(ctrl, 14)               # 0.70 < 0.75
        ctrl._update_schedule_all(0)
        assert not ctrl.schedule_all[0]

    def test_hysteresis_band_is_sticky_both_ways(self, tiny_cfg):
        ctrl = self.build(tiny_cfg)
        self.fill(ctrl, 16)               # 0.80: inside the band
        ctrl._update_schedule_all(0)
        assert not ctrl.schedule_all[0]   # off stays off
        ctrl.schedule_all[0] = True
        ctrl._update_schedule_all(0)
        assert ctrl.schedule_all[0]       # on stays on

    def test_draining_forces_on(self, tiny_cfg):
        ctrl = self.build(tiny_cfg)
        ctrl.draining = True
        self.fill(ctrl, 0)
        ctrl._update_schedule_all(0)
        assert ctrl.schedule_all[0]
