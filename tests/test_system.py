"""End-to-end system runs: cores + L2 + controller + memory."""

import pytest

from repro.config import scaled_config
from repro.sim.system import System
from repro.workloads.profiles import profile
from repro.workloads.table1 import mix_profiles

RUN = dict(warmup_insts=3_000, measure_insts=8_000, replay_accesses=20_000)


def small_system(design="CD", benchmarks=None, **kw):
    benchmarks = benchmarks or [profile("gcc"), profile("astar")]
    return System(scaled_config(8), design, benchmarks,
                  footprint_scale=1 / 64, seed=3, **kw)


class TestBasicRun:
    def test_completes_and_reports(self):
        r = small_system().run(**RUN)
        assert len(r.ipcs) == 2
        assert all(i > 0 for i in r.ipcs)
        assert r.elapsed_ps > 0
        assert r.reads_done > 0

    def test_deterministic(self):
        r1 = small_system("DCA").run(**RUN)
        r2 = small_system("DCA").run(**RUN)
        assert r1.ipcs == r2.ipcs
        assert r1.elapsed_ps == r2.elapsed_ps
        assert r1.dram_accesses == r2.dram_accesses

    def test_seed_changes_outcome(self):
        r1 = small_system().run(**RUN)
        r2 = System(scaled_config(8), "CD",
                    [profile("gcc"), profile("astar")],
                    footprint_scale=1 / 64, seed=4).run(**RUN)
        assert r1.ipcs != r2.ipcs

    def test_benchmark_names_recorded(self):
        r = small_system().run(**RUN)
        assert r.benchmarks == ["gcc", "astar"]

    def test_single_core(self):
        r = System(scaled_config(8), "CD", [profile("milc")],
                   footprint_scale=1 / 64, seed=1).run(**RUN)
        assert len(r.ipcs) == 1

    def test_four_core_mix(self):
        r = System(scaled_config(8), "DCA", mix_profiles(1),
                   footprint_scale=1 / 64, seed=1).run(**RUN)
        assert len(r.ipcs) == 4

    def test_empty_benchmarks_rejected(self):
        with pytest.raises(ValueError):
            System(scaled_config(8), "CD", [])


class TestWarmup:
    def test_functional_warmup_fills_cache(self):
        s = small_system()
        s.functional_warmup(replay_accesses=500)
        assert len(s.controller.array._sa_sets) > 0

    def test_writebacks_need_l2_pressure(self):
        """A warmed L2 (full sets) is what produces dirty evictions."""
        s = System(scaled_config(8), "CD", [profile("lbm")] * 2,
                   footprint_scale=1 / 64, seed=2)
        s.functional_warmup(replay_accesses=20_000)
        filled = sum(len(v) for v in s.l2._sets.values())
        assert filled >= s.l2.num_sets  # comfortably populated

    def test_warmup_resets_counters(self):
        s = small_system()
        s.functional_warmup(replay_accesses=500)
        assert s.controller.array.lookups == 0
        assert s.l2.stats.accesses == 0

    def test_skipping_warmup_lowers_hit_rate(self):
        warm = small_system().run(**RUN)
        cold = small_system().run(functional_warmup=False, **RUN)
        assert warm.dram_read_hit_rate >= cold.dram_read_hit_rate


class TestTrafficShape:
    def test_writebacks_flow(self):
        # lbm is write-heavy: dirty evictions must reach the controller.
        r = System(scaled_config(8), "CD", [profile("lbm")] * 2,
                   footprint_scale=1 / 64, seed=2).run(**RUN)
        assert r.writebacks > 0

    def test_misses_refill(self):
        r = small_system().run(**RUN)
        assert r.refills > 0 or r.dram_read_hit_rate > 0.99

    def test_substrate_stats_flow(self):
        r = small_system().run(**RUN)
        assert r.dram_accesses > 0
        assert 0.0 <= r.read_row_hit_rate <= 1.0

    def test_lee_writeback_counts(self):
        r = System(scaled_config(8), "CD", [profile("lbm")] * 2,
                   footprint_scale=1 / 64, seed=2,
                   lee_writeback=True).run(**RUN)
        assert r.lee_eager_writebacks >= 0   # mechanism wired in

    def test_model_l1_runs(self):
        r = small_system(model_l1=True).run(**RUN)
        assert all(i > 0 for i in r.ipcs)


class TestDesignsEndToEnd:
    @pytest.mark.parametrize("design", ["CD", "ROD", "DCA"])
    @pytest.mark.parametrize("orgn", ["sa", "dm"])
    def test_all_variants_run(self, design, orgn):
        r = System(scaled_config(8), design, [profile("soplex"),
                                              profile("lbm")],
                   organization=orgn, footprint_scale=1 / 64,
                   seed=5).run(**RUN)
        assert all(i > 0 for i in r.ipcs)

    def test_xor_remap_runs(self):
        r = small_system(xor_remap=True).run(**RUN)
        assert all(i > 0 for i in r.ipcs)

    def test_frfcfs_scheduler_runs(self):
        r = small_system(scheduler="frfcfs").run(**RUN)
        assert all(i > 0 for i in r.ipcs)

    def test_dca_no_inversions_outside_drain(self):
        """DCA only issues LR-before-PR during hysteresis drains."""
        s = System(scaled_config(8), "DCA", mix_profiles(4),
                   footprint_scale=1 / 64, seed=1)
        r = s.run(**RUN)
        if s.controller.stats.lr_drain_issues == 0:
            assert r.read_priority_inversions == 0
