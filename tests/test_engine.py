"""Discrete-event engine: ordering, cancellation, determinism."""

import pytest

from repro.sim.engine import Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        log = []
        sim.at(300, log.append, "c")
        sim.at(100, log.append, "a")
        sim.at(200, log.append, "b")
        sim.run()
        assert log == ["a", "b", "c"]

    def test_ties_broken_by_insertion_order(self):
        sim = Simulator()
        log = []
        for tag in "abcde":
            sim.at(500, log.append, tag)
        sim.run()
        assert log == list("abcde")

    def test_after_relative(self):
        sim = Simulator()
        sim.at(100, lambda _: sim.after(50, lambda _: None))
        sim.run()
        assert sim.now == 150

    def test_past_scheduling_rejected(self):
        sim = Simulator()
        sim.at(100, lambda _: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.at(50, lambda _: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().after(-1, lambda _: None)

    def test_arg_passed(self):
        sim = Simulator()
        got = []
        sim.at(10, got.append, 42)
        sim.run()
        assert got == [42]


class TestCancellation:
    def test_cancelled_event_skipped(self):
        sim = Simulator()
        log = []
        ev = sim.at(100, log.append, "dead")
        sim.at(200, log.append, "alive")
        ev.cancel()
        sim.run()
        assert log == ["alive"]

    def test_pending_counts_live_only(self):
        sim = Simulator()
        ev = sim.at(100, lambda _: None)
        sim.at(200, lambda _: None)
        ev.cancel()
        assert sim.pending() == 1

    def test_double_cancel_counts_once(self):
        sim = Simulator()
        ev = sim.at(100, lambda _: None)
        sim.at(200, lambda _: None)
        ev.cancel()
        ev.cancel()
        assert sim.pending() == 1

    def test_cancel_after_run_is_a_noop(self):
        sim = Simulator()
        ev = sim.at(100, lambda _: None)
        sim.run()
        ev.cancel()                     # event already executed
        assert sim.pending() == 0       # counters unharmed
        assert sim._cancelled == 0
        sim.at(200, lambda _: None)
        assert sim.pending() == 1

    def test_pending_is_a_counter_not_a_scan(self):
        sim = Simulator()
        events = [sim.at(t, lambda _: None) for t in range(1, 50)]
        events[0].cancel()
        assert sim.pending() == 48
        assert sim._live == 48

    def test_heap_compacts_when_mostly_cancelled(self):
        sim = Simulator()
        events = [sim.at(t, lambda _: None) for t in range(1, 201)]
        for ev in events[:150]:
            ev.cancel()
        # Compaction bounds the dead fraction: once cancelled events
        # exceed half the heap they are dropped, so the heap can never
        # hold more than ~2x the live events.
        assert len(sim._heap) <= 2 * sim.pending()
        assert sim.pending() == 50

    def test_compaction_preserves_order_and_results(self):
        sim = Simulator()
        log = []
        events = [sim.at(t, log.append, t) for t in range(1, 201)]
        for ev in events[::2]:   # cancel every even-index event
            ev.cancel()
        for ev in events[1::4]:  # and some more, crossing the 50% line
            ev.cancel()
        sim.run()
        survivors = [t for t in range(1, 201)
                     if (t - 1) % 2 and (t - 2) % 4]
        assert log == survivors

    def test_cancel_during_run_is_safe(self):
        """A callback cancelling enough events to trigger compaction must
        not desynchronise the loop's local heap alias."""
        sim = Simulator()
        log = []
        later = [sim.at(1000 + t, log.append, t) for t in range(100)]

        def axe(_):
            for ev in later[:80]:
                ev.cancel()

        sim.at(1, axe)
        sim.at(2, log.append, "early")
        sim.run()
        assert log == ["early"] + list(range(80, 100))
        assert sim.pending() == 0
        assert not sim._heap


class TestRunControl:
    def test_until_stops_clock(self):
        sim = Simulator()
        log = []
        sim.at(100, log.append, 1)
        sim.at(900, log.append, 2)
        sim.run(until=500)
        assert log == [1]
        assert sim.now == 500

    def test_until_resumable(self):
        sim = Simulator()
        log = []
        sim.at(900, log.append, 2)
        sim.run(until=500)
        sim.run()
        assert log == [2]
        assert sim.now == 900

    def test_until_with_empty_heap_advances_clock(self):
        sim = Simulator()
        sim.run(until=777)
        assert sim.now == 777

    def test_max_events(self):
        sim = Simulator()
        log = []
        for t in (1, 2, 3, 4):
            sim.at(t, log.append, t)
        sim.run(max_events=2)
        assert log == [1, 2]

    def test_max_events_zero_runs_nothing(self):
        """Regression: ``max_events=0`` used to mean unlimited (the
        ``budget > 0`` guard never fired); it must execute zero events."""
        sim = Simulator()
        log = []
        sim.at(100, log.append, 1)
        sim.run(max_events=0)
        assert log == []
        assert sim.now == 0
        assert sim.pending() == 1

    def test_max_events_zero_is_resumable(self):
        sim = Simulator()
        log = []
        sim.at(100, log.append, 1)
        sim.run(max_events=0)
        sim.run()
        assert log == [1]
        assert sim.now == 100

    def test_events_run_counter(self):
        sim = Simulator()
        for t in (1, 2, 3):
            sim.at(t, lambda _: None)
        sim.run()
        assert sim.events_run == 3

    def test_drain_stop_condition(self):
        sim = Simulator()
        count = [0]

        def tick(_):
            count[0] += 1
            if count[0] < 100:
                sim.after(10, tick)

        sim.at(0, tick)
        sim.drain(lambda: count[0] >= 5, check_every=1)
        assert count[0] == 5


class TestDeterminism:
    def test_identical_runs(self):
        def run_once():
            sim = Simulator()
            log = []

            def spawn(depth):
                log.append((sim.now, depth))
                if depth < 5:
                    sim.after(7, spawn, depth + 1)
                    sim.after(3, spawn, depth + 1)

            sim.at(0, spawn, 0)
            sim.run()
            return log

        assert run_once() == run_once()
