"""Discrete-event engine: ordering, cancellation, determinism, boundaries.

Nearly every test runs against **both** engines — the calendar queue
(``Simulator``) and the binary-heap reference (``HeapSimulator``) — via
the ``make_sim`` fixture: the two must be behaviourally indistinguishable
through the public API.  ``TestRunStopBoundaries`` pins the exact
``run(until=...)`` / ``max_events`` / ``stop()`` interaction semantics
(including the historical quirk where an exhausted budget still advances
the clock to ``until``) so the batched calendar dispatch cannot silently
change stop behaviour.  Calendar-only mechanics (overflow migration,
bucket wrap, the event freelist) get their own classes.
"""

import pytest

from repro.sim.engine import (
    HeapSimulator,
    Simulator,
    make_simulator,
)


@pytest.fixture(params=["calendar", "heap"])
def make_sim(request):
    """Factory for one engine kind; calendar kwargs ignored by heap."""
    kind = request.param

    def factory(**kwargs):
        return make_simulator(kind, **kwargs)

    factory.kind = kind
    return factory


def held(sim) -> int:
    """Events physically held by the engine (live + cancelled corpses)."""
    if isinstance(sim, HeapSimulator):
        return len(sim._heap)
    return sim._size


class TestScheduling:
    def test_events_run_in_time_order(self, make_sim):
        sim = make_sim()
        log = []
        sim.at(300, log.append, "c")
        sim.at(100, log.append, "a")
        sim.at(200, log.append, "b")
        sim.run()
        assert log == ["a", "b", "c"]

    def test_ties_broken_by_insertion_order(self, make_sim):
        sim = make_sim()
        log = []
        for tag in "abcde":
            sim.at(500, log.append, tag)
        sim.run()
        assert log == list("abcde")

    def test_after_relative(self, make_sim):
        sim = make_sim()
        sim.at(100, lambda _: sim.after(50, lambda _: None))
        sim.run()
        assert sim.now == 150

    def test_past_scheduling_rejected(self, make_sim):
        sim = make_sim()
        sim.at(100, lambda _: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.at(50, lambda _: None)

    def test_negative_delay_rejected(self, make_sim):
        with pytest.raises(ValueError):
            make_sim().after(-1, lambda _: None)

    def test_arg_passed(self, make_sim):
        sim = make_sim()
        got = []
        sim.at(10, got.append, 42)
        sim.run()
        assert got == [42]

    def test_same_time_event_scheduled_mid_batch_joins_it(self, make_sim):
        """A callback scheduling at ``sim.now`` runs within the same
        timestamp, after every event already scheduled there."""
        sim = make_sim()
        log = []
        sim.at(100, lambda _: (log.append("a"),
                               sim.at(100, log.append, "d")))
        sim.at(100, log.append, "b")
        sim.at(100, log.append, "c")
        sim.at(200, log.append, "late")
        sim.run()
        assert log == ["a", "b", "c", "d", "late"]


class TestCancellation:
    def test_cancelled_event_skipped(self, make_sim):
        sim = make_sim()
        log = []
        ev = sim.at(100, log.append, "dead")
        sim.at(200, log.append, "alive")
        ev.cancel()
        sim.run()
        assert log == ["alive"]

    def test_pending_counts_live_only(self, make_sim):
        sim = make_sim()
        ev = sim.at(100, lambda _: None)
        sim.at(200, lambda _: None)
        ev.cancel()
        assert sim.pending() == 1

    def test_double_cancel_counts_once(self, make_sim):
        sim = make_sim()
        ev = sim.at(100, lambda _: None)
        sim.at(200, lambda _: None)
        ev.cancel()
        ev.cancel()
        assert sim.pending() == 1

    def test_cancel_after_run_is_a_noop(self, make_sim):
        sim = make_sim()
        ev = sim.at(100, lambda _: None)
        sim.run()
        ev.cancel()                     # event already executed
        assert sim.pending() == 0       # counters unharmed
        assert sim._cancelled == 0
        sim.at(200, lambda _: None)
        assert sim.pending() == 1

    def test_cancel_mid_batch(self, make_sim):
        """Cancelling a later same-timestamp event from an earlier one
        must suppress it even though both were staged together."""
        sim = make_sim()
        log = []
        victims = []
        sim.at(100, lambda _: victims[0].cancel())
        victims.append(sim.at(100, log.append, "dead"))
        sim.at(100, log.append, "alive")
        sim.run()
        assert log == ["alive"]
        assert sim.pending() == 0

    def test_pending_is_a_counter_not_a_scan(self, make_sim):
        sim = make_sim()
        events = [sim.at(t, lambda _: None) for t in range(1, 50)]
        events[0].cancel()
        assert sim.pending() == 48
        assert sim._live == 48

    def test_compacts_when_mostly_cancelled(self, make_sim):
        sim = make_sim()
        events = [sim.at(t, lambda _: None) for t in range(1, 201)]
        for ev in events[:150]:
            ev.cancel()
        # Compaction bounds the dead fraction: once cancelled events
        # exceed half the queue they are dropped, so the engine never
        # holds more than ~2x the live events.
        assert held(sim) <= 2 * sim.pending()
        assert sim.pending() == 50

    def test_compaction_preserves_order_and_results(self, make_sim):
        sim = make_sim()
        log = []
        events = [sim.at(t, log.append, t) for t in range(1, 201)]
        for ev in events[::2]:   # cancel every even-index event
            ev.cancel()
        for ev in events[1::4]:  # and some more, crossing the 50% line
            ev.cancel()
        sim.run()
        survivors = [t for t in range(1, 201)
                     if (t - 1) % 2 and (t - 2) % 4]
        assert log == survivors

    def test_cancel_during_run_is_safe(self, make_sim):
        """A callback cancelling enough events to trigger compaction must
        not desynchronise the loop's view of the queue."""
        sim = make_sim()
        log = []
        later = [sim.at(1000 + t, log.append, t) for t in range(100)]

        def axe(_):
            for ev in later[:80]:
                ev.cancel()

        sim.at(1, axe)
        sim.at(2, log.append, "early")
        sim.run()
        assert log == ["early"] + list(range(80, 100))
        assert sim.pending() == 0
        assert held(sim) == 0


class TestRunControl:
    def test_until_stops_clock(self, make_sim):
        sim = make_sim()
        log = []
        sim.at(100, log.append, 1)
        sim.at(900, log.append, 2)
        sim.run(until=500)
        assert log == [1]
        assert sim.now == 500

    def test_until_resumable(self, make_sim):
        sim = make_sim()
        log = []
        sim.at(900, log.append, 2)
        sim.run(until=500)
        sim.run()
        assert log == [2]
        assert sim.now == 900

    def test_until_with_empty_queue_advances_clock(self, make_sim):
        sim = make_sim()
        sim.run(until=777)
        assert sim.now == 777

    def test_max_events(self, make_sim):
        sim = make_sim()
        log = []
        for t in (1, 2, 3, 4):
            sim.at(t, log.append, t)
        sim.run(max_events=2)
        assert log == [1, 2]

    def test_max_events_zero_runs_nothing(self, make_sim):
        """Regression: ``max_events=0`` used to mean unlimited (the
        ``budget > 0`` guard never fired); it must execute zero events."""
        sim = make_sim()
        log = []
        sim.at(100, log.append, 1)
        sim.run(max_events=0)
        assert log == []
        assert sim.now == 0
        assert sim.pending() == 1

    def test_max_events_zero_is_resumable(self, make_sim):
        sim = make_sim()
        log = []
        sim.at(100, log.append, 1)
        sim.run(max_events=0)
        sim.run()
        assert log == [1]
        assert sim.now == 100

    def test_events_run_counter(self, make_sim):
        sim = make_sim()
        for t in (1, 2, 3):
            sim.at(t, lambda _: None)
        sim.run()
        assert sim.events_run == 3

    def test_drain_stop_condition(self, make_sim):
        sim = make_sim()
        count = [0]

        def tick(_):
            count[0] += 1
            if count[0] < 100:
                sim.after(10, tick)

        sim.at(0, tick)
        sim.drain(lambda: count[0] >= 5, check_every=1)
        assert count[0] == 5


class TestRunStopBoundaries:
    """Pin the exact ``until`` x ``max_events`` x ``stop()`` semantics.

    These behaviours predate the calendar engine; the suite pins them on
    the heap reference and requires the calendar port to match, so the
    batched dispatch cannot change any stop condition.  Where a combined
    behaviour is quirky (an exhausted budget advancing the clock to
    ``until`` past undispatched events), the quirk itself is pinned —
    both engines must agree, and callers rely on pinned semantics.
    """

    def test_until_exactly_at_event_time_runs_the_event(self, make_sim):
        sim = make_sim()
        log = []
        sim.at(500, log.append, "on-the-line")
        sim.at(501, log.append, "past")
        sim.run(until=500)
        assert log == ["on-the-line"]
        assert sim.now == 500
        sim.run()
        assert log == ["on-the-line", "past"]

    def test_until_exactly_at_tied_events_runs_the_whole_batch(self, make_sim):
        sim = make_sim()
        log = []
        for tag in "abc":
            sim.at(500, log.append, tag)
        sim.run(until=500)
        assert log == ["a", "b", "c"]
        assert sim.now == 500

    def test_until_between_cancelled_events(self, make_sim):
        """Cancelled corpses on either side of ``until`` never run; the
        clock still lands exactly on ``until``."""
        sim = make_sim()
        log = []
        before = sim.at(100, log.append, "cancelled-before")
        sim.at(200, log.append, "live-before")
        after = sim.at(900, log.append, "cancelled-after")
        sim.at(950, log.append, "live-after")
        before.cancel()
        after.cancel()
        sim.run(until=500)
        assert log == ["live-before"]
        assert sim.now == 500
        assert sim.pending() == 1
        sim.run()
        assert log == ["live-before", "live-after"]

    def test_until_with_only_cancelled_events(self, make_sim):
        sim = make_sim()
        evs = [sim.at(t, lambda _: None) for t in (100, 200, 300)]
        for ev in evs:
            ev.cancel()
        sim.run(until=250)
        assert sim.now == 250
        assert sim.pending() == 0
        assert sim.events_run == 0

    def test_max_events_hits_mid_batch(self, make_sim):
        """A budget expiring between same-timestamp events splits the
        batch; the remainder runs, in order, on resume."""
        sim = make_sim()
        log = []
        for tag in "abcde":
            sim.at(100, log.append, tag)
        sim.run(max_events=2)
        assert log == ["a", "b"]
        assert sim.now == 100
        assert sim.pending() == 3
        sim.run(max_events=1)
        assert log == ["a", "b", "c"]
        sim.run()
        assert log == list("abcde")

    def test_budget_exhaustion_still_advances_clock_to_until(self, make_sim):
        """Pinned quirk: when ``max_events`` stops the loop first, the
        clock still jumps to ``until`` — even past undispatched events —
        and a later run() dispatches them at their own (now past) times.
        """
        sim = make_sim()
        log = []
        sim.at(100, lambda _: log.append(("a", sim.now)))
        sim.at(200, lambda _: log.append(("b", sim.now)))
        sim.run(until=500, max_events=1)
        assert log == [("a", 100)]
        assert sim.now == 500            # jumped past the pending event
        assert sim.pending() == 1
        sim.run()
        # The leftover dispatches at its own timestamp: the clock moves
        # backwards across run() calls in this (test-only) regime.
        assert log == [("a", 100), ("b", 200)]
        assert sim.now == 200

    def test_budget_exhaustion_mid_batch_with_until(self, make_sim):
        sim = make_sim()
        log = []
        for tag in "abc":
            sim.at(100, log.append, tag)
        sim.run(until=400, max_events=2)
        assert log == ["a", "b"]
        assert sim.now == 400
        sim.run()
        assert log == ["a", "b", "c"]
        assert sim.now == 100

    def test_stop_during_run_with_until_leaves_clock_at_event(self, make_sim):
        """stop() consumed by run(until=...) returns at the stopping
        event's time — it does NOT advance the clock to ``until``."""
        sim = make_sim()
        sim.at(100, lambda _: sim.stop())
        sim.at(900, lambda _: None)
        assert sim.run(until=500) == 100
        assert sim.now == 100
        assert sim.pending() == 1

    def test_stop_mid_batch_preserves_the_rest(self, make_sim):
        sim = make_sim()
        log = []
        sim.at(100, log.append, "a")
        sim.at(100, lambda _: sim.stop())
        sim.at(100, log.append, "b")
        sim.run()
        assert log == ["a"]
        assert sim.pending() == 1
        sim.run()
        assert log == ["a", "b"]

    def test_stop_is_one_shot(self, make_sim):
        sim = make_sim()
        log = []
        sim.at(100, lambda _: sim.stop())
        sim.at(200, log.append, "next-run")
        sim.run()
        assert log == []
        sim.run()                        # the request was consumed
        assert log == ["next-run"]

    def test_stop_requested_before_drain_runs_nothing(self, make_sim):
        sim = make_sim()
        log = []
        sim.at(100, log.append, "x")
        sim.stop()
        sim.drain(lambda: False, check_every=1)
        assert log == []
        assert sim.pending() == 1
        sim.drain(lambda: True, check_every=1)   # predicate True after 1 event
        assert log == ["x"]

    def test_stop_requested_before_run_is_consumed_after_one_event(self, make_sim):
        """run() (unlike drain) checks stop only after each callback, so
        a pre-set request lets exactly one event through."""
        sim = make_sim()
        log = []
        sim.at(100, log.append, "one")
        sim.at(200, log.append, "two")
        sim.stop()
        sim.run()
        assert log == ["one"]
        sim.run()
        assert log == ["one", "two"]

    def test_callback_exception_leaves_queue_consistent(self, make_sim):
        sim = make_sim()
        log = []

        def boom(_):
            raise RuntimeError("boom")

        sim.at(100, log.append, "a")
        sim.at(100, boom)
        sim.at(100, log.append, "b")
        sim.at(200, log.append, "c")
        with pytest.raises(RuntimeError):
            sim.run()
        assert log == ["a"]
        assert sim.pending() == 2        # the faulting event is gone
        sim.run()
        assert log == ["a", "b", "c"]
        assert sim.now == 200


class TestDeterminism:
    def test_identical_runs(self, make_sim):
        def run_once():
            sim = make_sim()
            log = []

            def spawn(depth):
                log.append((sim.now, depth))
                if depth < 5:
                    sim.after(7, spawn, depth + 1)
                    sim.after(3, spawn, depth + 1)

            sim.at(0, spawn, 0)
            sim.run()
            return log

        assert run_once() == run_once()


class TestCalendarMechanics:
    """Calendar-only coverage: overflow migration, wrap, tiny windows."""

    def test_far_future_events_take_the_overflow_path(self):
        sim = Simulator(bucket_ps=16, nbuckets=4)   # 64 ps horizon
        log = []
        sim.at(1_000_000, log.append, "far")
        assert sim._overflow and not sim._ring_count
        sim.at(10, log.append, "near")
        assert sim._ring_count == 1
        sim.run()
        assert log == ["near", "far"]
        assert sim.now == 1_000_000

    def test_overflow_migrates_in_time_order(self):
        sim = Simulator(bucket_ps=16, nbuckets=4)
        log = []
        # Spread across many windows, scheduled out of order.
        times = [5, 700, 70, 1400, 130, 60, 1350, 2000, 65]
        for t in times:
            sim.at(t, log.append, t)
        sim.run()
        assert log == sorted(times)

    def test_same_bucket_joiner_vs_overflow_resident(self):
        """A callback scheduling into the currently-served *overflow*
        bucket must not overtake later events of that bucket still in
        the overflow heap (regression for the bucket-granular staging
        of the overflow front)."""
        sim = Simulator(bucket_ps=16, nbuckets=4)
        log = []

        def first(_):
            log.append(("first", sim.now))
            # Same 16 ps bucket as the overflow resident at 1010, later
            # in time than it.
            sim.at(1015, lambda _: log.append(("joiner", sim.now)))

        sim.at(1005, first)          # bucket 62 (overflow: horizon is 64 ps)
        sim.at(1010, lambda _: log.append(("resident", sim.now)))
        sim.run()
        assert log == [("first", 1005), ("resident", 1010),
                       ("joiner", 1015)]

    def test_ring_wrap_across_many_laps(self):
        sim = Simulator(bucket_ps=4, nbuckets=4)    # 16 ps horizon
        log = []

        def hop(i):
            log.append(sim.now)
            if i < 200:
                sim.after(3 + (i % 11), hop, i + 1)

        sim.at(0, hop, 0)
        sim.run()
        assert log == sorted(log)
        assert len(log) == 201

    def test_schedule_behind_cursor_after_until_jump(self):
        """until jumps the clock; a later schedule earlier than the
        cursor's bucket must still dispatch first (cursor re-clamp)."""
        sim = Simulator(bucket_ps=16, nbuckets=4)
        log = []
        sim.at(5000, log.append, "far")
        sim.run(until=3000)
        assert sim.now == 3000
        sim.at(3001, log.append, "near")    # far behind the 5000 bucket
        sim.run()
        assert log == ["near", "far"]

    def test_until_quirk_then_lapped_ring_recovers(self):
        """After the budget+until clock jump, ring events left behind
        can share a slot with newly scheduled lapped events; the scan
        must recover the true order (recompute-cursor fallback)."""
        sim = Simulator(bucket_ps=4, nbuckets=4)    # tiny: laps are easy
        log = []
        sim.at(10, log.append, 10)
        sim.at(20, log.append, 20)
        sim.run(until=1000, max_events=1)           # ran 10; clock at 1000
        assert log == [10]
        assert sim.now == 1000
        # Same slot as the stranded event at 20 (both (t>>2) % 4): 20>>2=5,
        # 1044>>2=261; 5 % 4 == 1 == 261 % 4.
        sim.at(1044, log.append, 1044)
        sim.run()
        assert log == [10, 20, 1044]

    def test_bucket_sizing_rounds_to_powers_of_two(self):
        sim = Simulator(bucket_ps=833, nbuckets=5)
        assert sim._shift == 10          # 833 -> 1024 ps buckets
        assert sim._nbuckets == 8
        with pytest.raises(ValueError):
            Simulator(bucket_ps=0)
        with pytest.raises(ValueError):
            Simulator(nbuckets=1)


class TestEventPool:
    def test_events_are_recycled(self):
        sim = Simulator()
        sim.at(10, lambda _: None)       # handle NOT kept
        sim.run()
        assert len(sim._pool) == 1
        pooled = sim._pool[0]
        ev = sim.at(20, lambda _: None)
        assert ev is pooled              # reused, not reallocated
        assert not sim._pool

    def test_held_handles_are_never_recycled(self):
        sim = Simulator()
        ev = sim.at(10, lambda _: None)
        sim.run()
        assert not sim._pool             # we still hold `ev`
        ev.cancel()                      # and the late cancel stays a no-op
        assert sim.pending() == 0
        assert sim._cancelled == 0

    def test_stale_handle_cannot_cancel_a_recycled_slot(self):
        """Even when a handle *is* kept, dropping it returns the object
        to circulation only via the GC, never the freelist — so a stale
        cancel can't kill an unrelated future event."""
        sim = Simulator()
        log = []
        ev = sim.at(10, lambda _: None)
        sim.run()
        ev.cancel()
        del ev
        fresh = sim.at(20, log.append, "alive")
        assert not fresh.cancelled
        sim.run()
        assert log == ["alive"]

    def test_cancelled_events_are_recycled_too(self):
        sim = Simulator()
        sim.at(10, lambda _: None).cancel()
        sim.at(20, lambda _: None)
        sim.run()
        assert len(sim._pool) == 2

    def test_pool_is_bounded(self):
        from repro.sim.engine import _POOL_MAX
        sim = Simulator()
        for t in range(1, _POOL_MAX + 200):
            sim.at(t, lambda _: None)
        sim.run()
        assert len(sim._pool) <= _POOL_MAX

    def test_recycled_event_fields_are_reset(self):
        sim = Simulator()
        box = []
        sim.at(10, box.append, "first")
        sim.run()
        ev = sim.at(25, box.append, "second")
        assert (ev.time, ev.arg, ev.cancelled) == (25, "second", False)
        sim.run()
        assert box == ["first", "second"]


class TestCrossEngineEquivalence:
    """Smoke-level lockstep (the full property suite lives in
    tests/test_engine_calendar.py)."""

    def test_spawning_workload_matches(self):
        def run(sim):
            log = []

            def spawn(depth):
                log.append((sim.now, depth))
                if depth < 7:
                    sim.after(7919, spawn, depth + 1)    # overflow-scale
                    sim.after(3, spawn, depth + 1)
                    if depth % 3 == 0:
                        ev = sim.at(sim.now + 11, log.append, "cx")
                        ev.cancel()
            sim.at(0, spawn, 0)
            sim.run()
            return log, sim.now, sim.events_run, sim.pending()

        assert run(make_simulator("heap")) == run(make_simulator("calendar"))

    def test_signatures_align_across_engines(self):
        def build(sim):
            sim.at(100, lambda _: None)
            for t in (250, 250, 9000):
                sim.at(t, str, t)
            sim.at(400, str, "x").cancel()
            sim.run(until=150)
            return sim

        a = build(make_simulator("heap")).signature()
        b = build(make_simulator("calendar", bucket_ps=64,
                                 nbuckets=8)).signature()
        assert a == b
