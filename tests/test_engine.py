"""Discrete-event engine: ordering, cancellation, determinism."""

import pytest

from repro.sim.engine import Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        log = []
        sim.at(300, log.append, "c")
        sim.at(100, log.append, "a")
        sim.at(200, log.append, "b")
        sim.run()
        assert log == ["a", "b", "c"]

    def test_ties_broken_by_insertion_order(self):
        sim = Simulator()
        log = []
        for tag in "abcde":
            sim.at(500, log.append, tag)
        sim.run()
        assert log == list("abcde")

    def test_after_relative(self):
        sim = Simulator()
        sim.at(100, lambda _: sim.after(50, lambda _: None))
        sim.run()
        assert sim.now == 150

    def test_past_scheduling_rejected(self):
        sim = Simulator()
        sim.at(100, lambda _: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.at(50, lambda _: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().after(-1, lambda _: None)

    def test_arg_passed(self):
        sim = Simulator()
        got = []
        sim.at(10, got.append, 42)
        sim.run()
        assert got == [42]


class TestCancellation:
    def test_cancelled_event_skipped(self):
        sim = Simulator()
        log = []
        ev = sim.at(100, log.append, "dead")
        sim.at(200, log.append, "alive")
        ev.cancel()
        sim.run()
        assert log == ["alive"]

    def test_pending_counts_live_only(self):
        sim = Simulator()
        ev = sim.at(100, lambda _: None)
        sim.at(200, lambda _: None)
        ev.cancel()
        assert sim.pending() == 1


class TestRunControl:
    def test_until_stops_clock(self):
        sim = Simulator()
        log = []
        sim.at(100, log.append, 1)
        sim.at(900, log.append, 2)
        sim.run(until=500)
        assert log == [1]
        assert sim.now == 500

    def test_until_resumable(self):
        sim = Simulator()
        log = []
        sim.at(900, log.append, 2)
        sim.run(until=500)
        sim.run()
        assert log == [2]
        assert sim.now == 900

    def test_until_with_empty_heap_advances_clock(self):
        sim = Simulator()
        sim.run(until=777)
        assert sim.now == 777

    def test_max_events(self):
        sim = Simulator()
        log = []
        for t in (1, 2, 3, 4):
            sim.at(t, log.append, t)
        sim.run(max_events=2)
        assert log == [1, 2]

    def test_events_run_counter(self):
        sim = Simulator()
        for t in (1, 2, 3):
            sim.at(t, lambda _: None)
        sim.run()
        assert sim.events_run == 3

    def test_drain_stop_condition(self):
        sim = Simulator()
        count = [0]

        def tick(_):
            count[0] += 1
            if count[0] < 100:
                sim.after(10, tick)

        sim.at(0, tick)
        sim.drain(lambda: count[0] >= 5, check_every=1)
        assert count[0] == 5


class TestDeterminism:
    def test_identical_runs(self):
        def run_once():
            sim = Simulator()
            log = []

            def spawn(depth):
                log.append((sim.now, depth))
                if depth < 5:
                    sim.after(7, spawn, depth + 1)
                    sim.after(3, spawn, depth + 1)

            sim.at(0, spawn, 0)
            sim.run()
            return log

        assert run_once() == run_once()
