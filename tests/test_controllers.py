"""Controller integration: routing, priorities, flushing, request flow.

These tests drive controllers directly (no cores/L2): submit requests,
run the engine, and inspect queue routing, access classes, completion
callbacks and design-specific scheduling behavior.
"""

import pytest

from repro.core import CDController, DCAController, RODController, make_controller
from repro.core.access import CacheRequest, RequestType
from repro.sim.engine import Simulator


def build(design, tiny_cfg, **kw):
    sim = Simulator()
    ctrl = make_controller(design, sim, tiny_cfg, organization=kw.pop("organization", "sa"), **kw)
    return sim, ctrl


def submit_and_run(sim, ctrl, reqs, until=None):
    done = []
    for r in reqs:
        r.on_done = lambda req: done.append(req)
        ctrl.submit(r)
    sim.run(until=until)
    # The passive write policy parks residual writes below the low
    # watermark; drain them so tests can assert on full completion.
    ctrl.flush_all()
    sim.run(until=until)
    return done


class TestFactory:
    def test_designs(self, tiny_cfg):
        sim = Simulator()
        assert isinstance(make_controller("cd", sim, tiny_cfg), CDController)
        assert isinstance(make_controller("ROD", sim, tiny_cfg), RODController)
        assert isinstance(make_controller("DcA", sim, tiny_cfg), DCAController)

    def test_unknown_design(self, tiny_cfg):
        with pytest.raises(ValueError):
            make_controller("FRFCFS++", Simulator(), tiny_cfg)

    def test_rod_queue_sizes_applied(self, tiny_cfg):
        _, ctrl = build("ROD", tiny_cfg)
        assert ctrl.read_q[0].capacity == 32
        assert ctrl.write_q[0].capacity == 96

    def test_cd_queue_sizes(self, tiny_cfg):
        _, ctrl = build("CD", tiny_cfg)
        assert ctrl.read_q[0].capacity == 64
        assert ctrl.write_q[0].capacity == 64


class TestReadRequestFlow:
    def test_read_miss_completes_via_memory(self, tiny_cfg):
        sim, ctrl = build("CD", tiny_cfg, use_mapi=False)
        req = CacheRequest(RequestType.READ, 0x4000, 0)
        done = submit_and_run(sim, ctrl, [req])
        assert done == [req]
        assert req.hit is False
        assert ctrl.stats.read_misses == 1
        assert ctrl.mainmem.stats.reads == 1

    def test_read_miss_spawns_refill(self, tiny_cfg):
        sim, ctrl = build("CD", tiny_cfg, use_mapi=False)
        req = CacheRequest(RequestType.READ, 0x4000, 0)
        submit_and_run(sim, ctrl, [req])
        assert ctrl.stats.refills_submitted == 1
        assert ctrl.array.probe(0x4000).hit   # refill landed

    def test_read_hit_after_refill(self, tiny_cfg):
        sim, ctrl = build("CD", tiny_cfg, use_mapi=False)
        r1 = CacheRequest(RequestType.READ, 0x4000, 0)
        submit_and_run(sim, ctrl, [r1])
        r2 = CacheRequest(RequestType.READ, 0x4000, 0)
        done = submit_and_run(sim, ctrl, [r2])
        assert done == [r2]
        assert r2.hit is True
        assert ctrl.stats.read_hits == 1

    def test_latency_accounting(self, tiny_cfg):
        sim, ctrl = build("CD", tiny_cfg, use_mapi=False)
        req = CacheRequest(RequestType.READ, 0x4000, 0)
        submit_and_run(sim, ctrl, [req])
        assert ctrl.stats.reads_done == 1
        assert ctrl.stats.mean_read_latency_ps > 0
        assert req.done_time >= req.arrival

    def test_mapi_predicted_miss_probes_memory_early(self, tiny_cfg):
        sim, ctrl = build("CD", tiny_cfg, use_mapi=True)
        req = CacheRequest(RequestType.READ, 0x4000, 0, pc=0x100)
        submit_and_run(sim, ctrl, [req])
        # Cold MAP-I predicts miss: memory fetch launched at submit.
        assert req.meta.get("pred_miss") is True
        assert ctrl.stats.memory_fetches >= 1

    def test_dm_read_hit_single_access(self, tiny_cfg):
        sim, ctrl = build("CD", tiny_cfg, organization="dm", use_mapi=False)
        ctrl.array.fill(0x4000, dirty=False)
        req = CacheRequest(RequestType.READ, 0x4000, 0)
        submit_and_run(sim, ctrl, [req])
        total = ctrl.device.total_stats().total_accesses
        assert total == 1      # one TAD read, nothing else
        assert req.hit is True


class TestWritebackFlow:
    def test_writeback_completes(self, tiny_cfg):
        sim, ctrl = build("CD", tiny_cfg, use_mapi=False)
        wb = CacheRequest(RequestType.WRITEBACK, 0x8000, 0)
        done = submit_and_run(sim, ctrl, [wb])
        assert done == [wb]
        assert ctrl.array.probe(0x8000).dirty

    def test_writeback_access_count_sa(self, tiny_cfg):
        """SA writeback miss (clean victim): RT + WD + WT = 3 accesses."""
        sim, ctrl = build("CD", tiny_cfg, use_mapi=False)
        wb = CacheRequest(RequestType.WRITEBACK, 0x8000, 0)
        submit_and_run(sim, ctrl, [wb])
        assert ctrl.device.total_stats().total_accesses == 3

    def test_writeback_access_count_dm(self, tiny_cfg):
        """DM writeback: TAD read + TAD write = 2 accesses."""
        sim, ctrl = build("CD", tiny_cfg, organization="dm", use_mapi=False)
        wb = CacheRequest(RequestType.WRITEBACK, 0x8000, 0)
        submit_and_run(sim, ctrl, [wb])
        assert ctrl.device.total_stats().total_accesses == 2

    def test_dirty_victim_written_to_memory(self, tiny_cfg):
        sim, ctrl = build("CD", tiny_cfg, use_mapi=False)
        arr = ctrl.array
        set_idx = arr.sa.set_index(0x8000 // 64)
        for t in range(15):
            arr.fill(arr.sa.block_addr(set_idx, t) * 64, dirty=True)
        wb = CacheRequest(
            RequestType.WRITEBACK, arr.sa.block_addr(set_idx, 30) * 64, 0)
        submit_and_run(sim, ctrl, [wb])
        assert ctrl.stats.victim_mem_writes == 1
        assert ctrl.mainmem.stats.writes == 1


class TestForwarding:
    def test_read_forwarded_from_pending_writeback(self, tiny_cfg):
        sim, ctrl = build("CD", tiny_cfg, use_mapi=False)
        wb = CacheRequest(RequestType.WRITEBACK, 0x8000, 0)
        rd = CacheRequest(RequestType.READ, 0x8000, 0)
        got = []
        rd.on_done = lambda r: got.append(r)
        ctrl.submit(wb)
        ctrl.submit(rd)   # while the writeback is still queued
        sim.run()
        assert got == [rd]
        assert ctrl.stats.forwarded_reads == 1
        assert rd.hit is True

    def test_forwarding_cleared_after_completion(self, tiny_cfg):
        sim, ctrl = build("CD", tiny_cfg, use_mapi=False)
        wb = CacheRequest(RequestType.WRITEBACK, 0x8000, 0)
        submit_and_run(sim, ctrl, [wb])
        rd = CacheRequest(RequestType.READ, 0x8000, 0)
        submit_and_run(sim, ctrl, [rd])
        assert ctrl.stats.forwarded_reads == 0   # served by the array


class TestRouting:
    def test_cd_routes_by_access_type(self, tiny_cfg):
        sim, ctrl = build("CD", tiny_cfg, use_mapi=False)
        wb = CacheRequest(RequestType.WRITEBACK, 0x8000, 0)
        ctrl.submit(wb)
        # The writeback's tag READ sits in the READ queue under CD.
        assert sum(len(q) for q in ctrl.read_q) == 1
        assert sum(len(q) for q in ctrl.write_q) == 0

    def test_rod_routes_by_request_type(self, tiny_cfg):
        sim, ctrl = build("ROD", tiny_cfg, use_mapi=False)
        wb = CacheRequest(RequestType.WRITEBACK, 0x8000, 0)
        ctrl.submit(wb)
        # Under ROD the same tag read belongs to the WRITE queue.
        assert sum(len(q) for q in ctrl.read_q) == 0
        assert sum(len(q) for q in ctrl.write_q) == 1

    def test_dca_routes_like_cd(self, tiny_cfg):
        sim, ctrl = build("DCA", tiny_cfg, use_mapi=False)
        wb = CacheRequest(RequestType.WRITEBACK, 0x8000, 0)
        ctrl.submit(wb)
        assert sum(len(q) for q in ctrl.read_q) == 1
        lrs = [a for q in ctrl.read_q for a in q.low_priority_reads()]
        assert len(lrs) == 1   # ... but classified LR

    def test_read_request_accesses_are_pr(self, tiny_cfg):
        sim, ctrl = build("DCA", tiny_cfg, use_mapi=False)
        rd = CacheRequest(RequestType.READ, 0x4000, 0)
        ctrl.submit(rd)
        prs = [a for q in ctrl.read_q for a in q.priority_reads()]
        assert len(prs) == 1


class TestDCASpecifics:
    def test_rrpc_updated_on_pr_issue(self, tiny_cfg):
        sim, ctrl = build("DCA", tiny_cfg, use_mapi=False)
        rd = CacheRequest(RequestType.READ, 0x4000, 0)
        submit_and_run(sim, ctrl, [rd])
        assert max(ctrl.rrpc.snapshot()) == 7   # some bank saw a PR

    def test_lr_held_until_ofs(self, tiny_cfg):
        """An LR whose bank row-conflicts with a recent PR bank is held."""
        sim, ctrl = build("DCA", tiny_cfg, use_mapi=False)
        wb = CacheRequest(RequestType.WRITEBACK, 0x8000, 0)
        done = submit_and_run(sim, ctrl, [wb])
        # With no PRs around, OFS drains it (row closed -> eligible).
        assert done == [wb]
        assert ctrl.stats.lr_ofs_issues >= 1

    def test_queues_drain_completely(self, tiny_cfg):
        sim, ctrl = build("DCA", tiny_cfg, use_mapi=False)
        reqs = [CacheRequest(RequestType.READ, 0x4000 + i * 64, i % 4)
                for i in range(20)]
        reqs += [CacheRequest(RequestType.WRITEBACK, 0x80000 + i * 64, i % 4)
                 for i in range(20)]
        done = submit_and_run(sim, ctrl, reqs)
        assert len(done) == 40
        assert ctrl.queues_empty()


class TestAllDesignsDrain:
    @pytest.mark.parametrize("design", ["CD", "ROD", "DCA"])
    @pytest.mark.parametrize("orgn", ["sa", "dm"])
    def test_mixed_burst_drains(self, tiny_cfg, design, orgn):
        sim, ctrl = build(design, tiny_cfg, organization=orgn, use_mapi=True)
        reqs = []
        for i in range(30):
            reqs.append(CacheRequest(RequestType.READ,
                                     0x10000 + i * 64, i % 4, pc=i * 8))
            reqs.append(CacheRequest(RequestType.WRITEBACK,
                                     0x90000 + i * 64, i % 4))
        done = submit_and_run(sim, ctrl, reqs)
        assert len(done) == 60
        assert ctrl.queues_empty()
        stats = ctrl.device.total_stats()
        assert stats.total_accesses > 0
