"""Memory-side components: main memory, SRAM caches, MSHRs, Lee writeback."""

import pytest

from repro.config import CacheGeometry, MainMemoryConfig
from repro.mem.llc_writeback import DRAMAwareWritebackIndex
from repro.mem.mainmem import BankedMainMemory, MainMemory, make_mainmem
from repro.mem.mshr import MSHRFile
from repro.mem.sram import SRAMCache
from repro.sim.engine import Simulator


class TestMainMemory:
    def test_fetch_latency(self):
        sim = Simulator()
        mm = MainMemory(sim, MainMemoryConfig())
        done = []
        mm.fetch(0x1000, done.append)
        sim.run()
        assert done == [0x1000]
        assert sim.now == 50_000

    def test_bus_serializes(self):
        sim = Simulator()
        mm = MainMemory(sim, MainMemoryConfig())
        t1 = mm.fetch(0x0, lambda a: None)
        t2 = mm.fetch(0x40, lambda a: None)
        assert t2 - t1 == MainMemoryConfig().bus_occupancy_ps

    def test_writes_consume_bus(self):
        sim = Simulator()
        mm = MainMemory(sim, MainMemoryConfig())
        mm.write(0x0)
        t = mm.fetch(0x40, lambda a: None)
        assert t == MainMemoryConfig().bus_occupancy_ps + 50_000

    def test_stats(self):
        sim = Simulator()
        mm = MainMemory(sim, MainMemoryConfig())
        mm.fetch(0, lambda a: None)
        mm.write(64)
        assert mm.stats.reads == 1
        assert mm.stats.writes == 1
        mm.reset_stats()
        assert mm.stats.reads == 0

    def test_bus_wait_counters(self):
        """Queued accesses accumulate the time they waited for the bus."""
        cfg = MainMemoryConfig()
        sim = Simulator()
        mm = MainMemory(sim, cfg)
        mm.fetch(0x0, lambda a: None)       # bus free: no wait
        mm.fetch(0x40, lambda a: None)      # waits one slot
        mm.write(0x80)                      # waits two slots
        assert mm.stats.read_bus_wait_ps == cfg.bus_occupancy_ps
        assert mm.stats.write_bus_wait_ps == 2 * cfg.bus_occupancy_ps

    def test_write_latency_counters(self):
        cfg = MainMemoryConfig()
        sim = Simulator()
        mm = MainMemory(sim, cfg)
        mm.write(0x0)
        assert mm.stats.write_latency_sum_ps == cfg.latency_ps
        assert mm.stats.mean_write_latency_ps == float(cfg.latency_ps)

    def test_capture_restore_round_trip(self):
        sim = Simulator()
        mm = MainMemory(sim, MainMemoryConfig())
        mm.fetch(0x0, lambda a: None)
        img = mm.capture_state()
        t_then = mm.fetch(0x40, lambda a: None)
        mm.restore_state(img)
        assert mm.fetch(0x40, lambda a: None) == t_then

    def test_restore_rejects_banked_image(self):
        sim = Simulator()
        mm = MainMemory(sim, MainMemoryConfig())
        with pytest.raises(ValueError):
            mm.restore_state({"model": "banked", "channels": []})


BANKED = MainMemoryConfig(model="banked")


def _banked(sim):
    return BankedMainMemory(sim, BANKED)


class TestBankedMainMemory:
    """The banked model behind the Substrate (mainmem.model="banked")."""

    def test_factory_dispatch(self):
        sim = Simulator()
        assert isinstance(make_mainmem(sim, MainMemoryConfig()), MainMemory)
        assert isinstance(make_mainmem(sim, BANKED), BankedMainMemory)

    def test_cold_fetch_timing(self):
        """Closed bank: ACT + CAS + the burst; callback fires at the end."""
        t = BANKED.timings
        sim = Simulator()
        mm = _banked(sim)
        done = []
        end = mm.fetch(0x1000, done.append)
        assert end == t.tRCD + t.tCAS + t.tBURST
        sim.run()
        assert done == [0x1000] and sim.now == end

    def test_row_hit_is_faster(self):
        """A second block of the same row skips the activation."""
        sim = Simulator()
        mm = _banked(sim)
        t1 = mm.fetch(0x0, lambda a: None)
        t2 = mm.fetch(0x40, lambda a: None)   # next block, same row
        assert t2 - t1 == BANKED.timings.tBURST   # back-to-back bursts

    def test_channels_run_in_parallel(self):
        """Blocks on different channels don't serialise on one bus."""
        org = BANKED.org
        sim = Simulator()
        mm = _banked(sim)
        d0 = mm.mapper.decode(0x0)
        ch_stride = org.row_bytes     # robarachco: channel above column
        d1 = mm.mapper.decode(ch_stride)
        assert d0.channel != d1.channel
        t1 = mm.fetch(0x0, lambda a: None)
        t2 = mm.fetch(ch_stride, lambda a: None)
        assert t1 == t2

    def test_rank_switch_pays_tcs(self):
        """Different-rank bursts on one channel need the tCS bus gap."""
        org, t = BANKED.org, BANKED.timings
        rank_stride = org.row_bytes * org.channels
        sim = Simulator()
        mm = _banked(sim)
        d0, d1 = mm.mapper.decode(0x0), mm.mapper.decode(rank_stride)
        assert d0.channel == d1.channel and d0.rank != d1.rank
        t1 = mm.fetch(0x0, lambda a: None)
        t2 = mm.fetch(rank_stride, lambda a: None)
        assert t2 - t1 == t.tCS + t.tBURST
        assert mm.channels[d0.channel].stats.rank_switches == 1

    def test_same_rank_bank_switch_free(self):
        """Same-rank different-bank bursts stream back-to-back."""
        org, t = BANKED.org, BANKED.timings
        bank_stride = (org.row_bytes * org.channels
                       * org.ranks_per_channel)
        sim = Simulator()
        mm = _banked(sim)
        d0, d1 = mm.mapper.decode(0x0), mm.mapper.decode(bank_stride)
        assert (d0.channel, d0.rank) == (d1.channel, d1.rank)
        assert d0.bank != d1.bank
        t1 = mm.fetch(0x0, lambda a: None)
        t2 = mm.fetch(bank_stride, lambda a: None)
        assert t2 - t1 == t.tBURST
        assert mm.channels[d0.channel].stats.rank_switches == 0

    def test_stats_and_reset(self):
        sim = Simulator()
        mm = _banked(sim)
        end = mm.fetch(0x0, lambda a: None)
        mm.write(0x40)
        s = mm.stats
        assert s.reads == 1 and s.writes == 1
        assert s.read_latency_sum_ps == end
        assert s.read_bus_wait_ps == end - BANKED.timings.tBURST
        assert s.write_latency_sum_ps > 0
        ch = mm.mapper.decode(0x0).channel
        assert mm.channels[ch].stats.total_accesses == 2
        mm.reset_stats()
        assert s.reads == 0
        assert mm.channels[ch].stats.total_accesses == 0

    def test_metrics_registry_keys(self):
        sim = Simulator()
        mm = _banked(sim)
        for i in range(BANKED.org.channels):
            assert f"ch{i}" in mm.metrics

    def test_total_stats_rolls_up_channels(self):
        org = BANKED.org
        sim = Simulator()
        mm = _banked(sim)
        mm.fetch(0x0, lambda a: None)
        mm.fetch(org.row_bytes, lambda a: None)   # other channel
        total = mm.total_stats()
        assert total.read_accesses == 2

    def test_capture_restore_round_trip(self):
        sim = Simulator()
        mm = _banked(sim)
        mm.fetch(0x0, lambda a: None)
        mm.write(0x2000)
        img = mm.capture_state()
        t_then = mm.fetch(0x40, lambda a: None)
        mm.restore_state(img)
        assert mm.fetch(0x40, lambda a: None) == t_then

    def test_restore_validates_shape(self):
        sim = Simulator()
        mm = _banked(sim)
        with pytest.raises(ValueError):
            mm.restore_state({"model": "flat", "bus_free": 0})
        with pytest.raises(ValueError):
            mm.restore_state({"model": "banked", "channels": []})

    def test_callback_arg_routing(self):
        """Like the flat model, ``arg`` replaces the address payload."""
        sim = Simulator()
        mm = _banked(sim)
        got = []
        mm.fetch(0x1000, got.append, arg="token")
        sim.run()
        assert got == ["token"]


GEOM = CacheGeometry(size_bytes=8 * 1024, assoc=2)  # 64 sets, tiny


class TestSRAMCache:
    def test_miss_then_hit(self):
        c = SRAMCache(GEOM)
        hit, victim = c.access(0x1000, False)
        assert not hit and victim is None
        hit, _ = c.access(0x1000, False)
        assert hit

    def test_touch_does_not_allocate(self):
        c = SRAMCache(GEOM)
        assert not c.touch(0x1000, False)
        assert not c.probe(0x1000)

    def test_touch_hit_updates_dirty(self):
        c = SRAMCache(GEOM)
        c.fill(0x1000)
        assert c.touch(0x1000, True)
        assert c.dirty_count() == 1

    def test_lru_eviction(self):
        c = SRAMCache(GEOM)
        s = GEOM.num_sets * 64
        a0, a1, a2 = 0x0, s, 2 * s  # same set, 2-way
        c.access(a0, False)
        c.access(a1, False)
        c.access(a0, False)          # refresh a0
        _, victim = c.access(a2, False)
        assert not c.probe(a1)       # a1 was LRU
        assert c.probe(a0)

    def test_dirty_victim_returned(self):
        c = SRAMCache(GEOM)
        s = GEOM.num_sets * 64
        c.access(0x0, True)
        c.access(s, False)
        _, victim = c.access(2 * s, False)
        assert victim == 0x0
        assert c.stats.dirty_evictions == 1

    def test_clean_victim_not_returned(self):
        c = SRAMCache(GEOM)
        s = GEOM.num_sets * 64
        c.access(0x0, False)
        c.access(s, False)
        _, victim = c.access(2 * s, False)
        assert victim is None

    def test_clean_method(self):
        c = SRAMCache(GEOM)
        c.access(0x1000, True)
        assert c.clean(0x1000)
        assert not c.clean(0x1000)   # already clean
        assert c.dirty_count() == 0

    def test_invalidate(self):
        c = SRAMCache(GEOM)
        c.access(0x1000, True)
        assert c.invalidate(0x1000)
        assert not c.probe(0x1000)

    def test_hit_rate(self):
        c = SRAMCache(GEOM)
        c.access(0x1000, False)
        c.access(0x1000, False)
        assert c.stats.hit_rate == 0.5


class TestDirtyRowIndex:
    @staticmethod
    def row_of(addr):
        return addr // 4096

    def test_tracking(self):
        c = SRAMCache(GEOM, row_of=TestDirtyRowIndex.row_of)
        c.access(0x0, True)
        c.access(0x40, True)
        c.access(0x1000, True)
        assert c.dirty_in_row(0) == [0x0, 0x40]
        assert c.dirty_in_row(1) == [0x1000]

    def test_untrack_on_clean(self):
        c = SRAMCache(GEOM, row_of=TestDirtyRowIndex.row_of)
        c.access(0x0, True)
        c.clean(0x0)
        assert c.dirty_in_row(0) == []

    def test_untrack_on_eviction(self):
        c = SRAMCache(GEOM, row_of=TestDirtyRowIndex.row_of)
        s = GEOM.num_sets * 64
        c.access(0x0, True)
        c.access(s, False)
        c.access(2 * s, False)  # evicts dirty 0x0
        assert c.dirty_in_row(0) == []


class TestMSHR:
    def test_fresh_allocation(self):
        m = MSHRFile(4)
        entry, fresh = m.allocate(0x1000, 0)
        assert fresh and entry.block_addr == 0x1000

    def test_coalescing(self):
        m = MSHRFile(4)
        e1, fresh1 = m.allocate(0x1000, 0)
        e2, fresh2 = m.allocate(0x1000, 5)
        assert fresh1 and not fresh2
        assert e1 is e2
        assert m.coalesced == 1

    def test_write_coalesce_marks_dirty(self):
        m = MSHRFile(4)
        m.allocate(0x1000, 0, is_write=False)
        entry, _ = m.allocate(0x1000, 1, is_write=True)
        assert entry.any_write

    def test_capacity_stall(self):
        m = MSHRFile(2)
        m.allocate(0x0, 0)
        m.allocate(0x40, 0)
        entry, fresh = m.allocate(0x80, 0)
        assert entry is None and not fresh
        assert m.full_stalls == 1

    def test_complete_frees(self):
        m = MSHRFile(1)
        m.allocate(0x0, 0)
        m.complete(0x0)
        entry, fresh = m.allocate(0x40, 0)
        assert fresh

    def test_complete_unknown_raises(self):
        with pytest.raises(KeyError):
            MSHRFile(1).complete(0x123)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            MSHRFile(0)


class TestLeeWriteback:
    @staticmethod
    def row_of(addr):
        return addr // 4096

    def _cache(self):
        return SRAMCache(CacheGeometry(size_bytes=64 * 1024, assoc=4),
                         row_of=self.row_of)

    def test_requires_tracking_cache(self):
        plain = SRAMCache(GEOM)
        with pytest.raises(ValueError):
            DRAMAwareWritebackIndex(plain, self.row_of)

    def test_batches_same_row(self):
        c = self._cache()
        idx = DRAMAwareWritebackIndex(c, self.row_of, batch_limit=4)
        for off in range(0, 5 * 64, 64):
            c.access(off, True)          # 5 dirty blocks in row 0
        batch = idx.on_dirty_eviction(0x0)
        assert len(batch) == 4           # limit honored; victim excluded
        assert 0x0 not in batch
        assert all(self.row_of(a) == 0 for a in batch)

    def test_batch_cleans_lines(self):
        c = self._cache()
        idx = DRAMAwareWritebackIndex(c, self.row_of, batch_limit=8)
        c.access(0x0, True)
        c.access(0x40, True)
        batch = idx.on_dirty_eviction(0x0)
        assert batch == [0x40]
        assert c.dirty_count() == 1      # only the victim line remains dirty
        assert idx.on_dirty_eviction(0x0) == []  # nothing left to batch

    def test_other_rows_untouched(self):
        c = self._cache()
        idx = DRAMAwareWritebackIndex(c, self.row_of)
        c.access(0x0, True)
        c.access(0x1000, True)           # row 1
        batch = idx.on_dirty_eviction(0x0)
        assert batch == []
        assert c.dirty_count() == 2

    def test_stats(self):
        c = self._cache()
        idx = DRAMAwareWritebackIndex(c, self.row_of)
        c.access(0x0, True)
        c.access(0x40, True)
        idx.on_dirty_eviction(0x0)
        assert idx.stats.triggers == 1
        assert idx.stats.eager_writebacks == 1
        assert idx.stats.batch_factor == 1.0
