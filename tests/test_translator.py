"""Request -> access translation (the paper's Fig. 2 sequences)."""

from repro.cache.dramcache import DRAMCacheArray
from repro.cache.translator import Translator
from repro.config import DRAMCacheGeometry, DRAMOrganization
from repro.core.access import AccessRole, CacheRequest, Priority, RequestType
from repro.dram.address import AddressMapper

GEOM = DRAMCacheGeometry(size_bytes=2 * 2**20)


def make(orgn):
    array = DRAMCacheArray(GEOM, orgn)
    mapper = AddressMapper(DRAMOrganization())
    return array, Translator(array, mapper)


def read_req(addr=0x4000):
    return CacheRequest(RequestType.READ, addr, core_id=0, pc=0x400100)


def wb_req(addr=0x4000):
    return CacheRequest(RequestType.WRITEBACK, addr, core_id=0)


def refill_req(addr=0x4000):
    return CacheRequest(RequestType.REFILL, addr, core_id=0)


class TestSetAssociativeRead:
    def test_initial_is_tag_read(self):
        _, tr = make("sa")
        acc = tr.initial_access(read_req(), 0)
        assert acc.role == AccessRole.TAG_READ
        assert acc.priority == Priority.PR

    def test_hit_generates_data_read_and_tag_write(self):
        array, tr = make("sa")
        array.fill(0x4000, dirty=False)
        out = tr.after_tag_read(read_req(), 0)
        assert out.hit
        roles = [a.role for a in out.next_accesses]
        assert roles == [AccessRole.DATA_READ, AccessRole.TAG_WRITE]
        assert not out.memory_fetch

    def test_hit_accesses_total_three(self):
        """Paper Fig. 2: a SA read hit is RTr + RDr + WTr."""
        array, tr = make("sa")
        array.fill(0x4000, dirty=False)
        assert tr.accesses_per_read_hit() == 3

    def test_data_read_critical_tag_write_not(self):
        array, tr = make("sa")
        array.fill(0x4000, dirty=False)
        out = tr.after_tag_read(read_req(), 0)
        data, tagw = out.next_accesses
        assert data.critical and not tagw.critical

    def test_miss_requests_memory_fetch(self):
        _, tr = make("sa")
        out = tr.after_tag_read(read_req(), 0)
        assert not out.hit
        assert out.memory_fetch
        assert out.next_accesses == []

    def test_tag_and_data_same_channel(self):
        array, tr = make("sa")
        array.fill(0x4000, dirty=False)
        req = read_req()
        rt = tr.initial_access(req, 0)
        out = tr.after_tag_read(req, 0)
        assert all(a.channel == rt.channel for a in out.next_accesses)


class TestSetAssociativeWriteback:
    def test_hit_generates_two_writes(self):
        array, tr = make("sa")
        array.fill(0x4000, dirty=False)
        out = tr.after_tag_read(wb_req(), 0)
        assert out.hit
        roles = [a.role for a in out.next_accesses]
        assert roles == [AccessRole.DATA_WRITE, AccessRole.TAG_WRITE]
        assert out.victim_read is None

    def test_miss_clean_victim_no_extra_read(self):
        _, tr = make("sa")
        out = tr.after_tag_read(wb_req(), 0)
        assert not out.hit
        assert out.victim_read is None
        assert out.victim_mem_write is None
        assert len(out.next_accesses) == 2

    def test_miss_dirty_victim_needs_data_read(self):
        """Paper Fig. 2: RDw required when the victim's dirty flag is set."""
        array, tr = make("sa")
        base = 0x4000
        set_idx = array.sa.set_index(base // 64)
        # Fill the whole set dirty so the allocation must evict dirty data.
        for t in range(15):
            array.fill(array.sa.block_addr(set_idx, t) * 64, dirty=True)
        new_addr = array.sa.block_addr(set_idx, 20) * 64
        out = tr.after_tag_read(wb_req(new_addr), 0)
        assert not out.hit
        assert out.victim_read is not None
        assert out.victim_read.role == AccessRole.DATA_READ
        assert out.victim_mem_write is not None

    def test_wb_tag_read_is_low_priority(self):
        _, tr = make("sa")
        acc = tr.initial_access(wb_req(), 0)
        assert acc.priority == Priority.LR

    def test_refill_identical_shape_to_writeback(self):
        """Paper: 'this translation is identical to the write request'."""
        _, tr1 = make("sa")
        _, tr2 = make("sa")
        out_wb = tr1.after_tag_read(wb_req(), 0)
        out_rf = tr2.after_tag_read(refill_req(), 0)
        assert ([a.role for a in out_wb.next_accesses]
                == [a.role for a in out_rf.next_accesses])

    def test_refill_inserts_clean_writeback_dirty(self):
        array1, tr1 = make("sa")
        tr1.after_tag_read(wb_req(0x4000), 0)
        assert array1.probe(0x4000).dirty
        array2, tr2 = make("sa")
        tr2.after_tag_read(refill_req(0x4000), 0)
        assert not array2.probe(0x4000).dirty


class TestDirectMapped:
    def test_read_hit_single_access(self):
        """Alloy: tag+data in one burst, so a read hit is ONE access."""
        array, tr = make("dm")
        array.fill(0x4000, dirty=False)
        out = tr.after_tag_read(read_req(), 0)
        assert out.hit
        assert out.next_accesses == []
        assert tr.accesses_per_read_hit() == 1

    def test_writeback_two_accesses(self):
        array, tr = make("dm")
        array.fill(0x4000, dirty=False)
        out = tr.after_tag_read(wb_req(), 0)
        assert [a.role for a in out.next_accesses] == [AccessRole.DATA_WRITE]
        assert tr.accesses_per_writeback_hit() == 2

    def test_dirty_victim_no_extra_read(self):
        """DM: victim data arrived with the TAD read — no RDw."""
        array, tr = make("dm")
        conflict = array.dm.num_entries * 64  # same entry, other tag
        array.fill(conflict, dirty=True)
        out = tr.after_tag_read(wb_req(0x0), 0)
        assert not out.hit
        assert out.victim_read is None
        assert out.victim_mem_write == conflict


class TestRequestHitState:
    def test_hit_recorded_on_request(self):
        array, tr = make("sa")
        array.fill(0x4000, dirty=False)
        req = read_req()
        assert req.hit is None
        tr.after_tag_read(req, 0)
        assert req.hit is True
