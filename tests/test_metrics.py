"""Weighted speedup, geometric means, normalization."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.metrics.speedup import (
    geomean,
    normalized_weighted_speedups,
    weighted_speedup,
)


class TestGeomean:
    def test_simple(self):
        assert geomean([2, 8]) == pytest.approx(4.0)

    def test_single(self):
        assert geomean([3.5]) == pytest.approx(3.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geomean([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])
        with pytest.raises(ValueError):
            geomean([1.0, -2.0])

    @given(st.lists(st.floats(min_value=0.01, max_value=100), min_size=1,
                    max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_bounded_by_min_max(self, vals):
        g = geomean(vals)
        assert min(vals) - 1e-9 <= g <= max(vals) + 1e-9

    @given(st.lists(st.floats(min_value=0.01, max_value=100), min_size=1,
                    max_size=10),
           st.floats(min_value=0.1, max_value=10))
    @settings(max_examples=100, deadline=None)
    def test_scale_invariance(self, vals, k):
        assert geomean([v * k for v in vals]) == pytest.approx(
            geomean(vals) * k, rel=1e-9)


class TestWeightedSpeedup:
    def test_equal_ipcs(self):
        assert weighted_speedup([1, 1], [1, 1]) == pytest.approx(2.0)

    def test_slowdown_sums_fractions(self):
        assert weighted_speedup([0.5, 0.25], [1.0, 1.0]) == pytest.approx(0.75)

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            weighted_speedup([1], [1, 2])

    def test_empty(self):
        with pytest.raises(ValueError):
            weighted_speedup([], [])

    def test_zero_alone_ipc(self):
        with pytest.raises(ValueError):
            weighted_speedup([1], [0])


class TestNormalized:
    def test_baseline_is_one(self):
        table = normalized_weighted_speedups(
            {"CD": [1.0, 2.0], "DCA": [1.2, 2.4]}, baseline="CD")
        assert table["CD"] == pytest.approx(1.0)
        assert table["DCA"] == pytest.approx(1.2)

    def test_missing_baseline(self):
        with pytest.raises(KeyError):
            normalized_weighted_speedups({"DCA": [1.0]}, baseline="CD")

    def test_mismatched_mix_counts(self):
        with pytest.raises(ValueError):
            normalized_weighted_speedups(
                {"CD": [1.0], "DCA": [1.0, 2.0]}, baseline="CD")

    def test_geomean_of_per_mix_ratios(self):
        # ratios 2.0 and 0.5 -> geomean exactly 1.0
        table = normalized_weighted_speedups(
            {"CD": [1.0, 1.0], "X": [2.0, 0.5]}, baseline="CD")
        assert table["X"] == pytest.approx(1.0)
