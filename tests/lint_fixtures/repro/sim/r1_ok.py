"""R1 fixture: the sanctioned forms of everything r1_bad does wrong."""

import random


class Workload:
    __slots__ = ("rng",)

    def __init__(self, seed):
        self.rng = random.Random(seed)

    def pick(self, items):
        return self.rng.choice(items)


def scan(banks):
    order = []
    for b in sorted({3, 1, 2}):
        order.append(b)
    hot = [b for b in sorted(set(banks))]
    as_list = list(banks)
    for b in as_list:
        order.append(b)
    return order, hot


def suppressed_probe():
    import time
    return time.perf_counter()  # dca-lint: disable=R1
