"""Suppression fixture: file-wide and disable=all pragmas."""
# dca-lint: disable-file=R1

import time

_SCRATCH = {}   # dca-lint: disable=all


def profile_hook():
    # R1 is off for the whole file via the pragma under the docstring.
    return time.time()


def noisy():
    t = time.perf_counter()
    return t
