"""R1 fixture: every banned nondeterminism source, one per line."""

import os
import random
import time
import uuid
from datetime import datetime
from random import randint
from time import perf_counter as pc


def stamp():
    t0 = time.time()          # expect: R1
    t1 = pc()                 # expect: R1
    t2 = datetime.now()       # expect: R1
    return t0, t1, t2


def entropy():
    a = os.urandom(8)         # expect: R1
    b = uuid.uuid4()          # expect: R1
    c = random.random()       # expect: R1
    random.shuffle([1, 2])    # expect: R1
    d = randint(0, 7)         # expect: R1
    return a, b, c, d


def scan(banks):
    order = []
    for b in {3, 1, 2}:       # expect: R1
        order.append(b)
    hot = [b for b in set(banks)]      # expect: R1
    cold = {b: 0 for b in frozenset(banks)}    # expect: R1
    return order, hot, cold
