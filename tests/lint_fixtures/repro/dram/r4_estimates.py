"""R4 fixture: impure vs pure estimate methods (PR 5 rollback class)."""


class Model:
    __slots__ = ("bus_free", "_scratch", "_probe_count", "_memo", "_gen",
                 "_memo_gen")

    def estimate_burst_start(self, now):
        self._scratch = now               # expect: R4
        self._probe_count += 1            # expect: R4
        return max(now, self.bus_free)

    def _estimate_uncached(self, now):
        self.bus_free = now + 4           # expect: R4
        return self.bus_free

    def estimate_pure(self, now):
        start = max(now, self.bus_free)
        local_scratch = start + 1
        return local_scratch

    def estimate_memoized(self, now):
        if self._memo_gen != self._gen:
            self._memo.clear()
            # generation-keyed memo invalidation: observationally pure
            self._memo_gen = self._gen    # dca-lint: disable=R4
        return self._memo.get(now, self.bus_free)

    def issue(self, now):
        self.bus_free = now + 4           # issue() may move state
        return self.bus_free

    def estimated_total(self):
        # name does not match estimate_* / _estimate*
        self.bus_free += 0
        return self.bus_free
