"""R3 fixture: slotless hot-path classes and closures in live state."""


class BareTimingState:            # expect: R3
    """dram/ class without __slots__."""

    def __init__(self, t):
        self.t = t


class AlsoBare:                   # expect: R3
    pass


class Controller:
    __slots__ = ("on_done", "hook", "ok")

    def wire(self, latency):
        self.on_done = lambda access: access.arrival + latency   # expect: R3

        def drain(queue):
            return queue.pop()

        self.hook = drain         # expect: R3
        self.ok = drain(None)
