"""R3 fixture: slotted hot classes, exempt families, legal callables."""

from dataclasses import dataclass
from enum import IntEnum
from typing import NamedTuple, Protocol


class Slotted:
    __slots__ = ("a", "b")

    def __init__(self):
        self.a = 0
        self.b = 0


class RowState(IntEnum):
    CLOSED = 0
    HIT = 1


class Decoded(NamedTuple):
    bank: int
    row: int


@dataclass(frozen=True)
class TimingPoint:
    cycle: int


class SubstrateLike(Protocol):
    bus_free: int


class ChannelStats(MetricGroup):  # noqa: F821 — parsed, never executed
    """MetricGroup family: dynamic counters, exempt from __slots__."""

    COUNTERS = ("reads", "writes")


class TimingError(ValueError):
    pass


def module_level_hook(access):
    return access.arrival


class Wired:
    __slots__ = ("on_done", "row_of")

    def __init__(self, mapper):
        self.on_done = module_level_hook     # module function: picklable
        self.row_of = mapper.row_of          # bound method: picklable


class Waived:
    __slots__ = ("fn",)

    def wire(self):
        self.fn = lambda: 0  # dca-lint: disable=R3
