"""R2 fixture: every legal way to hold state in a simulation package."""

from dataclasses import dataclass, field

__all__ = ["Captured", "CopyControlled", "SubclassOfCaptured"]

_LIMIT = 64                        # scalars are fine
_ROLES = frozenset({"PR", "LR"})   # immutable containers are fine


class Captured:
    """The canonical pattern: an explicit capture/restore pair."""

    def __init__(self):
        self.rows = {}

    def capture_state(self):
        return {"rows": dict(self.rows)}

    def restore_state(self, state):
        self.rows = dict(state["rows"])


class WarmCaptured:
    """Any capture*/restore* pair counts (System uses *_warm_state)."""

    def __init__(self):
        self.sets = []

    def capture_warm_state(self):
        return list(self.sets)

    def restore_warm_state(self, state):
        self.sets = list(state)


class CopyControlled:
    """Copy-control dunders make copying explicit instead."""

    def __init__(self):
        self.pool = []

    def __deepcopy__(self, memo):
        clone = CopyControlled()
        memo[id(self)] = clone
        return clone


class SubclassOfCaptured(Captured):
    """Hooks inherited from a same-module base are visible to the rule."""

    def __init__(self):
        super().__init__()
        self.overlay = {}


class ScalarsOnly:
    """No mutable containers, nothing to capture."""

    def __init__(self):
        self.count = 0
        self.name = "ch0"


@dataclass
class FieldDeclared:
    """Dataclasses declare state as fields, not in a source __init__."""

    waiters: list = field(default_factory=list)


class SuppressedHoarder:              # dca-lint: disable=R2
    """Explicitly waived, with the pragma on the class line."""

    def __init__(self):
        self.secrets = {}
