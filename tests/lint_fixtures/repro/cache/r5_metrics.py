"""R5 fixture: ad-hoc counter containers vs registry-backed groups."""


class AdHoc:
    def capture_state(self):
        return {}

    def restore_state(self, state):
        pass

    def __init__(self):
        self.stats_rowhits = {}           # expect: R5
        self.turnaround_stats = []        # expect: R5
        self.counters = dict()            # expect: R5
        self._stats_by_bank = [0] * 8     # expect: R5


class RogueCounters:                      # not a MetricGroup
    COUNTERS = ("reads", "writes")        # expect: R5


class BankStats(MetricGroup):  # noqa: F821 — parsed, never executed
    COUNTERS = ("row_hits", "row_misses")


class Disciplined:
    def capture_state(self):
        return {}

    def restore_state(self, state):
        pass

    def __init__(self, registry):
        self.stats = BankStats()          # a group object, not a container
        registry.register("bank", self.stats)
        self.queue_stats = BankStats()    # stats-named, but a group
