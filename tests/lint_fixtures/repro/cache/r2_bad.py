"""R2 fixture: invisible module state and hookless stateful classes."""

_PENDING = []                     # expect: R2
_MEMO = dict()                    # expect: R2
_TABLE = [0] * 16                 # expect: R2


class HookySet:                   # expect: R2
    """Mutable state, no capture/restore, not allowlisted."""

    def __init__(self, ways):
        self.tags = [-1] * ways   # the state R2 wants capturable
        self.dirty = set()


class Inherited(HookySet):        # expect: R2
    """Base (same module) has no hooks either, so this is flagged too."""

    def __init__(self, ways):
        super().__init__(ways)
        self.extra = {}
