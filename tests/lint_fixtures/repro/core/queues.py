"""R7 trip fixture.

Deliberately mirrors the path of a module on the mypyc compile list
(``repro.core.queues`` — see ``repro.build_info.MYPYC_MODULES``): R7
scopes by dotted module name, so only compiled-module paths exercise it.
Each marked line violates mypyc's native object model.
"""


class LateAttr:
    __slots__ = ("declared", "extra")

    def __init__(self):
        self.declared = 0

    def warm(self):
        self.extra = []          # slot-declared: legal late assignment
        self.cache = {}          # expect: R7

    def peek(self):
        return self.__dict__     # expect: R7

    def snapshot(self):
        return vars(self)        # expect: R7

    def poke(self, name, value):
        setattr(self, name, value)   # expect: R7


class Tunable:
    def __init__(self):
        self.x = 0


Tunable.default_x = 3            # expect: R7

# The standard pragma syntax silences a deliberate exception:
Tunable.audited_x = 4            # dca-lint: disable=R7
