"""R7 clean fixture: compile-safe idioms on a compiled-module path.

Mirrors ``repro.core.access`` (on the mypyc compile list) and stays
silent: every attribute has a fixed slot, reflective access is absent,
and class objects are never mutated after definition.
"""


class Declared:
    __slots__ = ("count", "rows", "scratch")

    def __init__(self):
        self.count = 0
        self.rows = []
        self.scratch = None

    def bump(self):
        self.count += 1          # assigned in __init__: fine
        self.scratch = [self.count]   # slot-declared: fine


class AnnotatedOnly:
    limit: int = 8               # class-level annotation declares it

    def __init__(self):
        self.used = 0

    def fill(self):
        self.used = self.limit   # reads class var, writes __init__ attr
