"""A file outside any repro package: package-scoped rules never fire.

Tree-wide rules (R4, R5) still apply, which estimate_nothing checks.
"""

import time

_CACHE = {}          # R2 does not apply outside simulation packages


class NoSlotsNeeded:
    def __init__(self):
        self.journal = []   # R2/R3 out of scope here

    def now(self):
        return time.time()  # R1 out of scope here


def estimate_nothing(self_like):
    # R4 matches methods via self-attribute targets; plain args are fine.
    total = self_like.bus_free + 1
    return total
