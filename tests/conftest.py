"""Shared fixtures: small configurations that keep tests fast."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.config import (
    DRAMCacheGeometry,
    DRAMOrganization,
    DRAMTimings,
    SystemConfig,
    scaled_config,
)


@pytest.fixture
def timings() -> DRAMTimings:
    return DRAMTimings.stacked()


@pytest.fixture
def org() -> DRAMOrganization:
    return DRAMOrganization()


@pytest.fixture
def tiny_cfg() -> SystemConfig:
    """A miniature system: tiny caches, paper timings/queues."""
    base = scaled_config(8)
    return replace(
        base,
        l2=replace(base.l2, size_bytes=64 * 1024),
        dram_cache=replace(base.dram_cache, size_bytes=4 * 2**20),
    )


@pytest.fixture
def small_cache_geom() -> DRAMCacheGeometry:
    return DRAMCacheGeometry(size_bytes=4 * 2**20)
