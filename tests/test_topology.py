"""End-to-end memory-topology generalisation.

The PR-8 surface: `mainmem.model` (flat vs banked off-chip memory),
pluggable interleave policies, and the rank dimension — all sweepable
through the ordinary RunSpec/SweepSpec config paths, all visible in the
result metrics, and all transparent to the snapshot and warm-cache
layers.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro import snapshot
from repro.config import SubstrateConfig, scaled_config
from repro.experiments.common import RunSpec, SimParams, run_one
from repro.scenarios import SweepSpec
from repro.sim.system import System
from repro.snapshot import WarmCache
from repro.workloads.profiles import profile

#: tiny budgets + tiny footprints keep every run in the ~100 ms range
PARAMS = SimParams(footprint_scale=1 / 400, warmup_insts=2_000,
                   measure_insts=5_000, replay_accesses=1_000)

BANKED = (("mainmem.model", "banked"),)


def strip_meta(result) -> dict:
    d = result.to_cache_dict()
    d.pop("meta")
    return d


class TestMainmemModelAxis:
    """`mainmem.model` as an end-to-end sweepable config path."""

    def test_banked_run_publishes_device_metrics(self):
        res = run_one(RunSpec("DCA", "sa", mix_id=1, config=BANKED), PARAMS)
        mm = res.metrics["mainmem"]
        assert mm["reads"] > 0
        dev = res.metrics["mainmem_dev"]
        assert "ch0" in dev and "ch1" in dev
        total = res.metrics["mainmem_total"]
        assert (total["read_accesses"] + total["write_accesses"]
                == mm["reads"] + mm["writes"])
        # Banked defaults: 2 ranks/channel -> rank switches happen.
        assert total["rank_switches"] > 0

    def test_flat_default_keeps_metric_key_set(self):
        """The default tree gains no topology keys (golden-pin contract)."""
        res = run_one(RunSpec("DCA", "sa", mix_id=1), PARAMS)
        for key in ("mainmem_dev", "mainmem_total", "rank_totals"):
            assert key not in res.metrics

    def test_flat_and_banked_timings_differ(self):
        """The banked timing model is real — fetches see bank timing
        (ACT+CAS+burst, row hits) instead of the fixed 50 ns."""
        flat = run_one(RunSpec("CD", "sa", mix_id=1), PARAMS)
        banked = run_one(RunSpec("CD", "sa", mix_id=1, config=BANKED),
                         PARAMS)
        assert (flat.metrics["mainmem"]["mean_read_latency_ps"]
                != banked.metrics["mainmem"]["mean_read_latency_ps"])

    def test_banked_org_is_sweepable(self):
        cfg = BANKED + (("mainmem.org.channels", 4),
                        ("mainmem.org.ranks_per_channel", 1))
        res = run_one(RunSpec("CD", "sa", mix_id=1, config=cfg), PARAMS)
        dev = res.metrics["mainmem_dev"]
        assert set(dev) == {"ch0", "ch1", "ch2", "ch3"}
        assert res.metrics["mainmem_total"]["rank_switches"] == 0

    def test_banked_command_fidelity_publishes_rank_groups(self):
        cfg = BANKED + (("mainmem.substrate.fidelity", "command"),)
        res = run_one(RunSpec("CD", "sa", mix_id=1, config=cfg), PARAMS)
        dev = res.metrics["mainmem_dev"]
        assert "ch0_rank0" in dev and "ch0_rank1" in dev
        assert dev["ch0"]["refreshes_issued"] >= 0   # command counters live


class TestInterleaveAxis:
    """`org.interleave` (and the mainmem copy) as sweep axes."""

    def test_single_rank_orders_are_identical(self):
        """With 1 rank/channel the two plain field orders are one layout,
        so the whole simulation must be bit-identical."""
        a = run_one(RunSpec("DCA", "sa", mix_id=1), PARAMS)
        b = run_one(RunSpec("DCA", "sa", mix_id=1,
                            config=(("org.interleave", "rorabachco"),)),
                    PARAMS)
        assert strip_meta(a) == strip_meta(b)

    def test_chxor_changes_channel_distribution(self):
        a = run_one(RunSpec("DCA", "sa", mix_id=1), PARAMS)
        b = run_one(RunSpec("DCA", "sa", mix_id=1,
                            config=(("org.interleave", "chxor"),)), PARAMS)
        assert strip_meta(a) != strip_meta(b)

    def test_mainmem_interleave_is_independent(self):
        cfg = BANKED + (("mainmem.org.interleave", "chxor"),)
        res = run_one(RunSpec("CD", "sa", mix_id=1, config=cfg), PARAMS)
        assert res.metrics["mainmem"]["reads"] > 0

    def test_sweep_spec_expands_topology_axes(self):
        sw = SweepSpec("topo", axes={"mainmem.model": ["flat", "banked"],
                                     "org.interleave": ["robarachco",
                                                        "chxor"]},
                       base={"mix_id": 1, "design": "CD"})
        assert len(sw.compile()) == 4

    def test_sweep_spec_rejects_bad_topology_values_at_build(self):
        """Fail-fast: a bad axis value dies at spec build, not mid-sweep."""
        with pytest.raises(ValueError):
            SweepSpec("bad", axes={"org.interleave": ["corachbaro"]},
                      base={"mix_id": 1, "design": "CD"})
        with pytest.raises(ValueError):
            SweepSpec("bad", axes={"mainmem.org.channels": [3]},
                      base={"mix_id": 1, "design": "CD"})


class TestPerRankStats:
    """The rank dimension end-to-end on the stacked (cache) substrate."""

    def make_result(self):
        spec = RunSpec("DCA", "sa", mix_id=1,
                       config=(("org.ranks_per_channel", 2),
                               ("substrate.fidelity", "command"),
                               ("timings.tREFI", 400_000)))
        return run_one(spec, PARAMS)

    def test_rank_groups_and_rollup_published(self):
        res = self.make_result()
        sub = res.metrics["substrate"]
        assert "ch0_rank0" in sub and "ch0_rank1" in sub
        ranks = res.metrics["rank_totals"]
        assert set(ranks) == {"rank0", "rank1"}

    def test_rank_rollup_consistent_with_channel_totals(self):
        res = self.make_result()
        ranks = res.metrics["rank_totals"]
        total = res.metrics["substrate_total"]
        for counter in ("refreshes_issued", "refreshes_postponed",
                        "rrd_stalls", "faw_stalls", "refresh_stalls"):
            assert (ranks["rank0"][counter] + ranks["rank1"][counter]
                    == total[counter]), counter
        assert ranks["rank0"]["refreshes_issued"] > 0
        assert ranks["rank1"]["refreshes_issued"] > 0

    def test_rank_switches_counted(self):
        res = self.make_result()
        assert res.metrics["substrate_total"]["rank_switches"] > 0


def banked_system(seed: int = 1) -> System:
    base = scaled_config(8)
    cfg = replace(base,
                  l2=replace(base.l2, size_bytes=128 * 1024),
                  dram_cache=replace(base.dram_cache, size_bytes=8 * 2**20))
    cfg = cfg.with_overrides([("mainmem.model", "banked")])
    return System(cfg, "DCA", [profile("mcf"), profile("libquantum")],
                  seed=seed, footprint_scale=1 / 400)


class TestBankedSnapshot:
    """Capture/restore transparency with the banked backend in the loop."""

    def test_restore_then_continue_is_bit_identical(self):
        a = banked_system(seed=5)
        a.begin(2_000, 6_000, replay_accesses=1_000)
        res_a = a.finish()
        assert res_a.metrics["mainmem_total"]["total_accesses"] > 0

        b = banked_system(seed=5)
        b.begin(2_000, 6_000, replay_accesses=1_000)
        b.sim.run(max_events=a.sim.events_run // 2)
        c = snapshot.restore(snapshot.capture(b))
        assert snapshot.state_signature(c) == snapshot.state_signature(b)
        res_b, res_c = b.finish(), c.finish()
        assert res_b.to_cache_dict() == res_c.to_cache_dict()
        assert res_c.to_cache_dict() == res_a.to_cache_dict()

    def test_signature_includes_banked_mainmem_state(self):
        b = banked_system(seed=5)
        b.begin(2_000, 6_000, replay_accesses=1_000)
        b.sim.run(max_events=5_000)
        sig = snapshot.state_signature(b)
        assert sig["mainmem"]["model"] == "banked"
        assert len(sig["mainmem"]["channels"]) == 2


class TestBankedWarmCache:
    """Warm states are functional-only, so they cross mainmem models."""

    def test_warm_restore_round_trip_banked(self):
        donor = RunSpec("CD", "sa", mix_id=1, config=BANKED)
        spec = RunSpec("DCA", "sa", mix_id=1, config=BANKED)
        cache = WarmCache()
        run_one(donor, PARAMS, warm_cache=cache)
        warm = run_one(spec, PARAMS, warm_cache=cache)
        cold = run_one(spec, PARAMS)
        assert warm.meta["warm"]["restored"] is True
        assert strip_meta(warm) == strip_meta(cold)

    def test_flat_warm_state_serves_banked_run(self):
        """warm_group_key masks the mainmem config: functional warm-up is
        timing-free, so one warm-up serves both models bit-identically."""
        cache = WarmCache()
        run_one(RunSpec("CD", "sa", mix_id=1), PARAMS, warm_cache=cache)
        spec = RunSpec("DCA", "sa", mix_id=1, config=BANKED)
        warm = run_one(spec, PARAMS, warm_cache=cache)
        assert warm.meta["warm"]["restored"] is True
        assert strip_meta(warm) == strip_meta(run_one(spec, PARAMS))


class TestCommandFidelityMultiRankSubstrate:
    """System-level sanity for ranks>1 at command fidelity with tCS."""

    def test_tcs_on_stacked_part_slows_it_down(self):
        """Turning on a rank-to-rank penalty can only add time."""
        base_over = [("org.ranks_per_channel", 2)]
        base = scaled_config(8).with_overrides(base_over)
        slow = scaled_config(8).with_overrides(
            base_over + [("timings.tCS", 5_000)])

        def elapsed(cfg):
            sys_ = System(cfg, "CD", [profile("mcf")], seed=2,
                          footprint_scale=1 / 400)
            sys_.begin(1_000, 4_000, replay_accesses=500)
            return sys_.finish().elapsed_ps

        assert elapsed(slow) >= elapsed(base)
