"""Warm-state cache: key masking, bit-identical forking, grid integration.

The warm cache's contract has two halves:

* **masking** — :func:`warm_group_key` hashes only the warm-up-relevant
  run prefix, so specs differing in controller design, scheduler, MAP-I
  or XOR remapping share one key (one warm-up per group) while anything
  that shapes the functional warm state (workload, seed, footprint,
  geometry, organization, Lee mode, replay budget) splits it;
* **bit identity** — a run forked from a warm state equals a cold run
  exactly (everything but ``meta``, which records provenance).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.experiments.common import (
    GridExecutionError,
    ResultStore,
    RunSpec,
    SimParams,
    build_system,
    run_grid,
    run_one,
    warm_group_key,
)
from repro.snapshot import WarmCache, WarmStateError

#: tiny budgets + tiny footprints keep every run in the ~100 ms range
PARAMS = SimParams(footprint_scale=1 / 400, warmup_insts=2_000,
                   measure_insts=5_000, replay_accesses=1_000)


def strip_meta(result) -> dict:
    d = result.to_cache_dict()
    d.pop("meta")
    return d


class TestWarmGroupKey:
    BASE = RunSpec("CD", "sa", mix_id=1)

    def equal(self, other: RunSpec) -> bool:
        return (warm_group_key(self.BASE, PARAMS)
                == warm_group_key(other, PARAMS))

    def test_masks_controller_design(self):
        assert self.equal(RunSpec("DCA", "sa", mix_id=1))
        assert self.equal(RunSpec("ROD", "sa", mix_id=1))

    def test_masks_scheduler_mapi_and_remap(self):
        assert self.equal(RunSpec("CD", "sa", mix_id=1, scheduler="frfcfs"))
        assert self.equal(RunSpec("CD", "sa", mix_id=1, use_mapi=False))
        assert self.equal(RunSpec("CD", "sa", True, mix_id=1))

    def test_masks_queue_overrides(self):
        assert self.equal(RunSpec("CD", "sa", mix_id=1,
                                  config=(("queues.read_entries", 16),)))

    def test_splits_on_workload(self):
        assert not self.equal(RunSpec("CD", "sa", mix_id=2))
        assert not self.equal(RunSpec("CD", "sa",
                                      workload="adversarial_conflict"))
        assert not self.equal(RunSpec("CD", "sa", alone_benchmark="mcf"))

    def test_splits_on_seed_organization_lee(self):
        assert not self.equal(RunSpec("CD", "sa", mix_id=1, seed=42))
        assert not self.equal(RunSpec("CD", "dm", mix_id=1))
        assert not self.equal(RunSpec("CD", "sa", mix_id=1,
                                      lee_writeback=True))

    def test_splits_on_warm_relevant_params(self):
        for change in ({"replay_accesses": 500}, {"footprint_scale": 1 / 200},
                       {"capacity_scale": 4}):
            other = dataclasses.replace(PARAMS, **change)
            assert (warm_group_key(self.BASE, PARAMS)
                    != warm_group_key(self.BASE, other))

    def test_splits_on_geometry_override(self):
        assert not self.equal(RunSpec("CD", "sa", mix_id=1,
                                      config=(("l2.size_bytes", 65536),)))


class TestWarmForkBitIdentity:
    @pytest.mark.parametrize("design,scheduler", [
        ("CD", "bliss"), ("ROD", "frfcfs"), ("DCA", "bliss"),
        ("DCA", "frfcfs")])
    def test_forked_equals_cold(self, design, scheduler):
        donor = RunSpec("CD", "sa", mix_id=1)           # warms the cache
        spec = RunSpec(design, "sa", mix_id=1, scheduler=scheduler)
        cache = WarmCache()
        run_one(donor, PARAMS, warm_cache=cache)
        warm = run_one(spec, PARAMS, warm_cache=cache)
        cold = run_one(spec, PARAMS)
        assert warm.meta["warm"]["restored"] is True
        assert strip_meta(warm) == strip_meta(cold)

    def test_capturing_run_also_equals_cold(self):
        """The donor run (the one that captures) must be unperturbed by
        the copy-on-write freeze of its array."""
        spec = RunSpec("DCA", "sa", mix_id=1)
        captured = run_one(spec, PARAMS, warm_cache=WarmCache())
        cold = run_one(spec, PARAMS)
        assert captured.meta["warm"]["restored"] is False
        assert strip_meta(captured) == strip_meta(cold)

    def test_direct_mapped_and_lee(self):
        for extra in ({"organization": "dm"}, {"lee_writeback": True}):
            donor = RunSpec("CD", mix_id=1, **extra)
            spec = RunSpec("DCA", mix_id=1, **extra)
            cache = WarmCache()
            run_one(donor, PARAMS, warm_cache=cache)
            warm = run_one(spec, PARAMS, warm_cache=cache)
            assert warm.meta["warm"]["restored"] is True
            assert strip_meta(warm) == strip_meta(run_one(spec, PARAMS))


class TestRestoreValidation:
    def make_warm(self, spec=RunSpec("CD", "sa", mix_id=1)):
        system = build_system(spec, PARAMS)
        system.functional_warmup(replay_accesses=PARAMS.replay_accesses)
        return system.capture_warm_state()

    def test_rejects_wrong_organization(self):
        warm = self.make_warm()
        other = build_system(RunSpec("CD", "dm", mix_id=1), PARAMS)
        with pytest.raises(WarmStateError, match="does not match"):
            other.restore_warm_state(warm)

    def test_rejects_wrong_workload_or_seed(self):
        warm = self.make_warm()
        for spec in (RunSpec("CD", "sa", mix_id=2),
                     RunSpec("CD", "sa", mix_id=1, seed=123)):
            with pytest.raises(WarmStateError, match="does not match"):
                build_system(spec, PARAMS).restore_warm_state(warm)

    def test_rejects_running_system(self):
        warm = self.make_warm()
        system = build_system(RunSpec("DCA", "sa", mix_id=1), PARAMS)
        system.begin(1_000, 1_000, warm_state=warm)
        system.sim.run(max_events=100)
        with pytest.raises(WarmStateError):
            system.restore_warm_state(warm)

    def test_rejects_consumed_trace(self):
        warm = self.make_warm()
        system = build_system(RunSpec("DCA", "sa", mix_id=1), PARAMS)
        for core in system.cores:
            next(core.trace)
        with pytest.raises(WarmStateError, match="consumed"):
            system.restore_warm_state(warm)

    def test_capture_requires_pristine_system(self):
        system = build_system(RunSpec("CD", "sa", mix_id=1), PARAMS)
        system.begin(1_000, 1_000, functional_warmup=False)
        system.sim.run(max_events=50)
        with pytest.raises(WarmStateError, match="before timed"):
            system.capture_warm_state()

    def test_stale_schema_rejected(self):
        warm = dataclasses.replace(self.make_warm(), schema_version=0)
        system = build_system(RunSpec("CD", "sa", mix_id=1), PARAMS)
        with pytest.raises(WarmStateError, match="schema"):
            system.restore_warm_state(warm)

    def test_rejects_mismatched_replay_budget(self):
        """Restoring with an explicit replay budget asserts the warm
        state was captured with exactly that budget — a quick-scale warm
        state must not silently stand in for a full-scale warm-up."""
        warm = self.make_warm()              # captured with PARAMS budget
        system = build_system(RunSpec("DCA", "sa", mix_id=1), PARAMS)
        with pytest.raises(WarmStateError, match="replay"):
            system.begin(1_000, 1_000, warm_state=warm,
                         replay_accesses=PARAMS.replay_accesses * 2)
        # The matching budget (and the budget-agnostic form) both pass.
        system.begin(1_000, 1_000, warm_state=warm,
                     replay_accesses=PARAMS.replay_accesses)

    def test_rejects_mismatched_geometry(self):
        """Same organization string, different resolved geometry (e.g. a
        different capacity scale) must refuse: adopted sets indexed under
        another num_sets would be silently wrong, not almost right."""
        warm = self.make_warm()
        other_params = dataclasses.replace(PARAMS, capacity_scale=4)
        system = build_system(RunSpec("CD", "sa", mix_id=1), other_params)
        with pytest.raises(WarmStateError, match="does not match"):
            system.restore_warm_state(warm)

    def test_failed_validation_mutates_nothing(self):
        """All-or-nothing restore: when a later core fails the
        consumed-trace check, earlier cores' traces must not have been
        fast-forwarded (a fallback cold run would silently skew)."""
        warm = self.make_warm()
        system = build_system(RunSpec("DCA", "sa", mix_id=1), PARAMS)
        next(system.cores[-1].trace)       # only the *last* core consumed
        with pytest.raises(WarmStateError, match="consumed"):
            system.restore_warm_state(warm)
        assert all(c.trace.count == 0 for c in system.cores[:-1])


class TestWarmCacheStore:
    def test_hit_miss_counters(self):
        cache = WarmCache()
        assert cache.get("k") is None and cache.misses == 1
        warm = object()
        cache.put("k", warm)
        assert cache.get("k") is warm and cache.hits == 1

    def test_fifo_eviction(self):
        cache = WarmCache(capacity=2)
        for i in range(3):
            cache.put(f"k{i}", i)
        assert len(cache) == 2
        assert cache.get("k0") is None          # oldest evicted
        assert cache.get("k1") == 1 and cache.get("k2") == 2

    def test_put_existing_key_does_not_evict(self):
        cache = WarmCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 3)                        # replace, not grow
        assert len(cache) == 2 and cache.get("b") == 2

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            WarmCache(capacity=0)


class TestRunGridWarm:
    SPECS = [RunSpec(d, "sa", mix_id=1, scheduler=s)
             for d in ("CD", "DCA") for s in ("bliss", "frfcfs")]

    def run(self, warm: bool):
        return run_grid(self.SPECS, PARAMS, jobs=1, use_cache=False,
                        store=ResultStore(enabled=False), warm_cache=warm)

    def test_grid_results_identical_and_warm_served(self):
        cold = self.run(False)
        warm = self.run(True)
        assert list(cold) == list(warm) == self.SPECS      # input order
        restored = [r.meta["warm"]["restored"] for r in warm.values()]
        assert restored.count(False) >= 1                  # one capture...
        assert restored.count(True) >= len(self.SPECS) - 2  # ...rest forked
        for spec in self.SPECS:
            assert strip_meta(cold[spec]) == strip_meta(warm[spec])
            assert "warm" not in cold[spec].meta

    def test_warm_provenance_not_persisted_in_result_cache(self, tmp_path):
        """Warm and cold runs share cache entries, so stored entries must
        be provenance-free: a later cache hit must not replay this run's
        restored/cold flags.  The in-memory results keep them."""
        store = ResultStore(tmp_path / "cache")
        results = run_grid(self.SPECS[:2], PARAMS, jobs=1, store=store,
                           warm_cache=True)
        assert all("warm" in r.meta for r in results.values())
        for spec in self.SPECS[:2]:
            cached = store.load(spec, PARAMS)
            assert cached is not None
            assert "warm" not in cached.meta
            assert cached.meta["spec"]           # other meta survives

    def test_unkeyable_spec_is_isolated_not_fatal(self):
        """A spec whose warm key cannot even be computed (unknown design
        with queue overrides resolves Table II queues in the parent) must
        fail as one point, not crash the grouping."""
        bad = RunSpec("BOGUS", "sa", mix_id=1,
                      config=(("queues.read_entries", 16),))
        with pytest.raises(GridExecutionError) as exc:
            run_grid([self.SPECS[0], bad], PARAMS, jobs=1, use_cache=False,
                     store=ResultStore(enabled=False), warm_cache=True)
        assert bad in exc.value.failures
        assert self.SPECS[0] in exc.value.results

    def test_failure_isolated_within_group(self, tmp_path):
        bad = RunSpec("DCA", "sa", workload="trace:" + str(tmp_path / "no"))
        specs = [self.SPECS[0], bad, self.SPECS[1]]
        with pytest.raises(GridExecutionError) as exc:
            run_grid(specs, PARAMS, jobs=1, use_cache=False,
                     store=ResultStore(enabled=False), warm_cache=True)
        assert bad in exc.value.failures
        assert set(exc.value.results) == {self.SPECS[0], self.SPECS[1]}
