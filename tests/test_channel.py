"""Channel: bus serialization, turnaround penalties, row-state stats."""

import pytest

from repro.config import DRAMOrganization, DRAMTimings
from repro.dram.channel import Channel, RowState

T = DRAMTimings.stacked()


@pytest.fixture
def ch():
    return Channel(T, DRAMOrganization())


class TestBusSerialization:
    def test_bursts_never_overlap(self, ch):
        ends = []
        for i in range(10):
            start, end = ch.issue(0, i % 4, 0, False, 0)
            assert end - start == T.tBURST
            if ends:
                assert start >= ends[-1]
            ends.append(end)

    def test_completion_after_start(self, ch):
        start, end = ch.issue(0, 0, 0, False, 0)
        assert end > start >= 0


class TestTurnarounds:
    def test_no_turnaround_same_direction(self, ch):
        for _ in range(5):
            ch.issue(0, 0, 0, False, 0)
        assert ch.stats.turnarounds == 0

    def test_turnaround_counted_on_switch(self, ch):
        ch.issue(0, 0, 0, False, 0)
        ch.issue(0, 0, 0, True, 0)
        ch.issue(0, 0, 0, False, 0)
        assert ch.stats.turnarounds == 2

    def test_first_access_no_turnaround(self, ch):
        ch.issue(0, 0, 0, True, 0)
        assert ch.stats.turnarounds == 0

    def test_wtr_delay_applied(self, ch):
        """A read burst must wait tWTR after the last write burst."""
        _, wend = ch.issue(0, 0, 0, True, 0)
        rstart, _ = ch.issue(0, 0, 0, False, wend)
        assert rstart >= wend + T.tWTR

    def test_rtw_delay_applied(self, ch):
        _, rend = ch.issue(0, 0, 0, False, 0)
        wstart, _ = ch.issue(0, 0, 0, True, rend)
        assert wstart >= rend + T.tRTW

    def test_wtr_larger_than_rtw(self):
        # The asymmetry the paper leans on: W->R is the expensive switch.
        assert T.tWTR > T.tRTW


class TestRowStats:
    def test_closed_then_hit(self, ch):
        ch.issue(0, 0, 7, False, 0)
        ch.issue(0, 0, 7, False, 10_000_000)
        s = ch.stats
        assert s.read_row_closed == 1
        assert s.read_row_hits == 1
        assert s.read_row_conflicts == 0

    def test_conflict_counted(self, ch):
        ch.issue(0, 0, 7, False, 0)
        ch.issue(0, 0, 8, False, 10_000_000)
        assert ch.stats.read_row_conflicts == 1

    def test_write_stats_separate(self, ch):
        ch.issue(0, 0, 7, True, 0)
        ch.issue(0, 0, 7, True, 10_000_000)
        s = ch.stats
        assert s.write_row_closed == 1
        assert s.write_row_hits == 1
        assert s.read_accesses == 0
        assert s.write_accesses == 2

    def test_row_state_query(self, ch):
        assert ch.row_state(0, 3, 9) == RowState.CLOSED
        ch.issue(0, 3, 9, False, 0)
        assert ch.row_state(0, 3, 9) == RowState.HIT
        assert ch.row_state(0, 3, 10) == RowState.CONFLICT

    def test_banks_independent(self, ch):
        ch.issue(0, 0, 7, False, 0)
        assert ch.row_state(0, 1, 7) == RowState.CLOSED


class TestEstimate:
    def test_estimate_matches_issue(self, ch):
        est = ch.estimate_burst_start(0, 2, 5, False, 1000)
        start, _ = ch.issue(0, 2, 5, False, 1000)
        assert est == start

    def test_estimate_is_pure(self, ch):
        ch.estimate_burst_start(0, 2, 5, False, 1000)
        assert ch.stats.total_accesses == 0
        assert ch.bus_free == 0


class TestStatsReset:
    def test_reset_zeroes(self, ch):
        ch.issue(0, 0, 0, False, 0)
        ch.issue(0, 0, 0, True, 0)
        ch.reset_stats()
        assert ch.stats.total_accesses == 0
        assert ch.stats.turnarounds == 0

    def test_reset_keeps_bank_state(self, ch):
        ch.issue(0, 0, 7, False, 0)
        ch.reset_stats()
        assert ch.row_state(0, 0, 7) == RowState.HIT
