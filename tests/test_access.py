"""Access / CacheRequest vocabulary semantics (paper Fig. 2 taxonomy)."""

from repro.core.access import (
    Access,
    AccessRole,
    CacheRequest,
    Priority,
    RequestType,
)


def mk(role, rtype):
    req = CacheRequest(rtype, 0x1000, core_id=2, pc=0x44)
    return Access(role, req, 1, 0, 3, 7, 5, 19, arrival=100), req


class TestPriorityTaxonomy:
    def test_read_request_tag_read_is_pr(self):
        a, _ = mk(AccessRole.TAG_READ, RequestType.READ)
        assert a.priority == Priority.PR

    def test_read_request_data_read_is_pr(self):
        a, _ = mk(AccessRole.DATA_READ, RequestType.READ)
        assert a.priority == Priority.PR

    def test_writeback_tag_read_is_lr(self):
        a, _ = mk(AccessRole.TAG_READ, RequestType.WRITEBACK)
        assert a.priority == Priority.LR

    def test_refill_tag_read_is_lr(self):
        """Paper §IV-B: refills count as cache-write requests -> LR."""
        a, _ = mk(AccessRole.TAG_READ, RequestType.REFILL)
        assert a.priority == Priority.LR

    def test_writes_are_write_class(self):
        for role in (AccessRole.TAG_WRITE, AccessRole.DATA_WRITE):
            for rt in RequestType:
                a, _ = mk(role, rt)
                assert a.priority == Priority.WRITE

    def test_victim_data_read_of_writeback_is_lr(self):
        a, _ = mk(AccessRole.DATA_READ, RequestType.WRITEBACK)
        assert a.priority == Priority.LR


class TestBusDirection:
    def test_reads(self):
        for role in (AccessRole.TAG_READ, AccessRole.DATA_READ):
            a, _ = mk(role, RequestType.READ)
            assert not a.is_write and a.is_bus_read

    def test_writes(self):
        for role in (AccessRole.TAG_WRITE, AccessRole.DATA_WRITE):
            a, _ = mk(role, RequestType.READ)
            assert a.is_write and not a.is_bus_read


class TestBookkeeping:
    def test_seq_monotonic(self):
        a1, _ = mk(AccessRole.TAG_READ, RequestType.READ)
        a2, _ = mk(AccessRole.TAG_READ, RequestType.READ)
        assert a2.seq > a1.seq

    def test_core_id_proxied(self):
        a, req = mk(AccessRole.TAG_READ, RequestType.READ)
        assert a.core_id == req.core_id == 2

    def test_coordinates_stored(self):
        a, _ = mk(AccessRole.TAG_READ, RequestType.READ)
        assert (a.channel, a.rank, a.bank, a.row, a.col) == (1, 0, 3, 7, 5)
        assert a.global_bank == 19

    def test_request_is_read(self):
        assert CacheRequest(RequestType.READ, 0, 0).is_read
        assert not CacheRequest(RequestType.WRITEBACK, 0, 0).is_read
        assert not CacheRequest(RequestType.REFILL, 0, 0).is_read

    def test_request_initial_state(self):
        r = CacheRequest(RequestType.READ, 0, 0)
        assert r.hit is None
        assert r.done_time == -1
        assert r.accesses_left == 0
