"""Property-based lockstep: calendar queue vs binary-heap reference.

Hypothesis drives both engines through identical randomized traces of
schedule / cancel / run(until) / run(max_events) / stop operations —
including callback-driven scheduling and cancellation — and asserts the
externally observable state is identical at every step: the clock, the
events-run counter, the live-event count, and the exact callback
dispatch order ``(now, tag)``.

Calendar geometry (bucket width, ring size) is itself randomized so the
overflow heap, bucket wrap, and lap-collision paths are all exercised;
the heap engine is geometry-free and serves as the oracle.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.sim.engine import make_simulator


class Trace:
    """One engine executing a scripted operation sequence."""

    def __init__(self, kind, bucket_ps, nbuckets):
        self.sim = make_simulator(kind, bucket_ps=bucket_ps,
                                  nbuckets=nbuckets)
        self.log = []
        self.handles = []            # all Event handles ever issued

    def observe(self):
        s = self.sim
        return (s.now, s.events_run, s.pending(), tuple(self.log))

    def _callback(self, spec):
        """spec = (tag, spawn_delays, cancel_index)."""
        tag, spawns, cxl = spec
        sim = self.sim
        self.log.append((sim.now, tag))
        for d in spawns:
            # Child callbacks are leaves: tag derived, no further spawns.
            self.handles.append(
                sim.after(d, self._callback, (f"{tag}+{d}", (), None)))
        if cxl is not None and self.handles:
            self.handles[cxl % len(self.handles)].cancel()

    def apply(self, op):
        kind = op[0]
        sim = self.sim
        if kind == "at":
            _, delay, tag, spawns, cxl = op
            self.handles.append(
                sim.at(sim.now + delay, self._callback, (tag, spawns, cxl)))
        elif kind == "cancel":
            if self.handles:
                self.handles[op[1] % len(self.handles)].cancel()
        elif kind == "run":
            sim.run()
        elif kind == "run_until":
            sim.run(until=sim.now + op[1])
        elif kind == "run_max":
            sim.run(max_events=op[1])
        elif kind == "run_both":
            sim.run(until=sim.now + op[1], max_events=op[2])
        elif kind == "stop":
            sim.stop()
        elif kind == "drain":
            target = sim.events_run + op[1]
            sim.drain(lambda: sim.events_run >= target, check_every=op[2])


# Delays up to ~20k ps: with 16-64 ps buckets and 4-16 slot rings the
# horizon is at most 1024 ps, so far-future scheduling (overflow) and
# near-term ring traffic are both common.
_delays = st.integers(min_value=0, max_value=20_000)
_spawns = st.lists(st.integers(min_value=1, max_value=9_000),
                   min_size=0, max_size=3)
_maybe_cancel = st.one_of(st.none(), st.integers(min_value=0,
                                                 max_value=10_000))

_tags = st.integers(min_value=0, max_value=10_000)

_op = st.one_of(
    st.tuples(st.just("at"), _delays, _tags, _spawns, _maybe_cancel),
    st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=10_000)),
    st.tuples(st.just("run")),
    st.tuples(st.just("run_until"), _delays),
    st.tuples(st.just("run_max"), st.integers(min_value=0, max_value=8)),
    st.tuples(st.just("run_both"), _delays,
              st.integers(min_value=0, max_value=8)),
    st.tuples(st.just("stop")),
    st.tuples(st.just("drain"), st.integers(min_value=0, max_value=6),
              st.integers(min_value=1, max_value=4)),
)

_geometry = st.tuples(
    st.sampled_from([16, 64, 1024]),     # bucket_ps
    st.sampled_from([4, 16, 512]),       # nbuckets
)


@settings(max_examples=200, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=st.lists(_op, min_size=1, max_size=40), geometry=_geometry)
def test_calendar_matches_heap_on_random_traces(ops, geometry):
    bucket_ps, nbuckets = geometry
    heap = Trace("heap", bucket_ps, nbuckets)
    cal = Trace("calendar", bucket_ps, nbuckets)
    for i, op in enumerate(ops):
        heap.apply(op)
        cal.apply(op)
        assert cal.observe() == heap.observe(), (
            f"divergence after op {i}: {op!r}")
    # Flush everything still pending and compare the complete history.
    heap.sim.run()
    cal.sim.run()
    assert cal.observe() == heap.observe()


@settings(max_examples=100, deadline=None)
@given(times=st.lists(st.integers(min_value=0, max_value=100_000),
                      min_size=1, max_size=60),
       cancels=st.sets(st.integers(min_value=0, max_value=59)),
       geometry=_geometry)
def test_static_schedules_pop_in_identical_order(times, cancels, geometry):
    """Pure schedule-then-cancel-then-run traces: pop order must be the
    stable (time, insertion) order on both engines."""
    bucket_ps, nbuckets = geometry

    def run(kind):
        sim = make_simulator(kind, bucket_ps=bucket_ps, nbuckets=nbuckets)
        log = []
        handles = [sim.at(t, log.append, (t, i))
                   for i, t in enumerate(times)]
        for c in cancels:
            if c < len(handles):
                handles[c].cancel()
        sim.run()
        return log, sim.now, sim.events_run

    assert run("calendar") == run("heap")


@settings(max_examples=100, deadline=None)
@given(times=st.lists(st.integers(min_value=0, max_value=50_000),
                      min_size=1, max_size=40),
       until_frac=st.floats(min_value=0.0, max_value=1.2),
       budget=st.one_of(st.none(), st.integers(min_value=0, max_value=12)),
       geometry=_geometry)
def test_partial_runs_leave_identical_pending_sets(times, until_frac,
                                                   budget, geometry):
    """run(until, max_events) prefixes: clock, dispatched set, and the
    signature of what remains must match, then resuming must too."""
    bucket_ps, nbuckets = geometry
    until = int(max(times) * until_frac)

    def run(kind):
        sim = make_simulator(kind, bucket_ps=bucket_ps, nbuckets=nbuckets)
        log = []
        for i, t in enumerate(times):
            sim.at(t, log.append, (t, i))
        sim.run(until=until, max_events=budget)
        mid = (list(log), sim.now, sim.pending(), sim.signature()["heap"])
        sim.run()
        return mid, list(log), sim.now

    assert run("calendar") == run("heap")
