"""Victim-selection policies across both cache organisations."""

import pytest

from repro.cache.dramcache import DRAMCacheArray
from repro.cache.replacement import SA_POLICIES, SRAM_POLICIES
from repro.config import (CacheGeometry, DRAMCacheGeometry, DRAMOrganization,
                          scaled_config)
from repro.mem.sram import SRAMCache
from repro.sim.system import System
from repro.workloads.profiles import profile


def sram_set():
    # [tag, dirty, stamp]
    return [[1, False, 10], [2, True, 5], [3, False, 7], [4, True, 20]]


class TestSRAMPolicies:
    def test_lru_picks_oldest(self):
        assert SRAM_POLICIES["lru"](sram_set())[0] == 2

    def test_lruc_prefers_oldest_clean(self):
        assert SRAM_POLICIES["lruc"](sram_set())[0] == 3

    def test_lrud_prefers_oldest_dirty(self):
        assert SRAM_POLICIES["lrud"](sram_set())[0] == 2

    def test_lruc_falls_back_when_all_dirty(self):
        s = [[1, True, 10], [2, True, 5]]
        assert SRAM_POLICIES["lruc"](s)[0] == 2

    def test_lrud_falls_back_when_all_clean(self):
        s = [[1, False, 10], [2, False, 5]]
        assert SRAM_POLICIES["lrud"](s)[0] == 2


class TestSAPolicies:
    TAGS = [11, 12, 13, 14]
    DIRTY = [False, True, False, True]
    STAMP = [10, 5, 7, 20]

    def test_lru(self):
        assert SA_POLICIES["lru"](self.TAGS, self.DIRTY, self.STAMP) == 1

    def test_lruc(self):
        assert SA_POLICIES["lruc"](self.TAGS, self.DIRTY, self.STAMP) == 2

    def test_lrud(self):
        assert SA_POLICIES["lrud"](self.TAGS, self.DIRTY, self.STAMP) == 1

    def test_fallbacks(self):
        all_clean = [False] * 4
        all_dirty = [True] * 4
        assert SA_POLICIES["lrud"](self.TAGS, all_clean, self.STAMP) == 1
        assert SA_POLICIES["lruc"](self.TAGS, all_dirty, self.STAMP) == 1


def small_cache(policy):
    # 4096 B / (64 B x 2 ways) = 32 sets; set-0 addresses stride by 2048.
    return SRAMCache(CacheGeometry(size_bytes=4096, assoc=2,
                                   latency_cycles=1, replacement=policy))


class TestSRAMCacheEviction:
    def test_lru_evicts_oldest(self):
        c = small_cache("lru")
        c.access(0, False)                 # older, clean
        c.access(2048, True)               # newer, dirty
        hit, victim = c.access(4096, False)
        assert not hit and victim is None  # clean victim: no writeback
        assert c.stats.clean_evictions == 1
        assert c.probe(2048)               # the dirty line survived

    def test_lrud_evicts_dirty_first(self):
        c = small_cache("lrud")
        c.access(0, False)
        c.access(2048, True)
        _hit, victim = c.access(4096, False)
        assert victim == 2048              # dirty victim despite being newer
        assert c.stats.dirty_evictions == 1
        assert c.probe(0)

    def test_lruc_spares_the_dirty_line(self):
        c = small_cache("lruc")
        c.access(0, True)                  # older, dirty
        c.access(2048, False)              # newer, clean
        _hit, victim = c.access(4096, False)
        assert victim is None
        assert c.stats.clean_evictions == 1
        assert c.probe(0)


def fill_set0(arr, n):
    stride = arr.sa.num_sets * arr.geometry.block_bytes
    addrs = [k * stride for k in range(n)]
    for a in addrs:
        arr.fill(a, dirty=False)
    return addrs, stride


class TestSAArrayEviction:
    def test_lru_default_victims_oldest(self):
        arr = DRAMCacheArray(DRAMCacheGeometry(), "sa")
        addrs, stride = fill_set0(arr, arr.sa.ways)
        arr.lookup_write(addrs[1])         # dirty + most recent
        res = arr.fill(arr.sa.ways * stride, dirty=False)
        assert res.victim_block_addr == addrs[0]
        assert not res.victim_dirty

    def test_lrud_victims_dirty_way(self):
        arr = DRAMCacheArray(DRAMCacheGeometry(), "sa", replacement="lrud")
        addrs, stride = fill_set0(arr, arr.sa.ways)
        arr.lookup_write(addrs[1])
        res = arr.fill(arr.sa.ways * stride, dirty=False)
        assert res.victim_block_addr == addrs[1]
        assert res.victim_dirty

    def test_lruc_victims_oldest_clean_way(self):
        arr = DRAMCacheArray(DRAMCacheGeometry(), "sa", replacement="lruc")
        addrs, stride = fill_set0(arr, arr.sa.ways)
        arr._sa_sets[0].dirty[0] = True    # oldest way dirty, stamps kept
        res = arr.fill(arr.sa.ways * stride, dirty=False)
        assert res.victim_block_addr == addrs[1]
        assert not res.victim_dirty

    def test_invalid_ways_fill_before_policy_applies(self):
        arr = DRAMCacheArray(DRAMCacheGeometry(), "sa", replacement="lrud")
        addrs, stride = fill_set0(arr, 3)
        arr.lookup_write(addrs[0])
        res = arr.fill(3 * stride, dirty=False)
        assert res.victim_block_addr is None


class TestConfigValidation:
    def test_bogus_policies_rejected(self):
        with pytest.raises(ValueError):
            CacheGeometry(size_bytes=4096, assoc=2, latency_cycles=1,
                          replacement="mru")
        with pytest.raises(ValueError):
            DRAMOrganization(replacement="rrip")

    def test_sweepable_via_dotted_overrides(self):
        cfg = scaled_config(8).with_overrides(
            [("org.replacement", "lrud"), ("l2.replacement", "lruc")])
        assert cfg.org.replacement == "lrud"
        assert cfg.l2.replacement == "lruc"


class TestSystemIntegration:
    def test_system_runs_with_nondefault_policies(self):
        cfg = scaled_config(8).with_overrides(
            [("org.replacement", "lrud"), ("l2.replacement", "lruc")])
        s = System(cfg, "DCA", [profile("lbm"), profile("gcc")],
                   footprint_scale=1 / 64, seed=4)
        r = s.run(warmup_insts=3_000, measure_insts=8_000,
                  replay_accesses=20_000)
        assert all(i > 0 for i in r.ipcs)
        assert r.metrics["l2"]["clean_evictions"] >= 0
        assert s.controller.array.replacement == "lrud"
