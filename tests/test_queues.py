"""Access queues: capacity, occupancy accounting, filtered views."""

import pytest

from repro.core.access import Access, AccessRole, CacheRequest, Priority, RequestType
from repro.core.queues import AccessQueue


def mk(role=AccessRole.TAG_READ, rtype=RequestType.READ):
    req = CacheRequest(rtype, 0, 0)
    return Access(role, req, 0, 0, 0, 0, 0, 0, 0)


class TestCapacity:
    def test_positive_capacity_required(self):
        with pytest.raises(ValueError):
            AccessQueue(0)

    def test_has_room(self):
        q = AccessQueue(2)
        assert q.has_room()
        q.push(mk())
        q.push(mk())
        assert not q.has_room()

    def test_continuations_may_exceed(self):
        q = AccessQueue(1)
        q.push(mk())
        q.push(mk())  # reserved-slot semantics: push always succeeds
        assert len(q) == 2
        assert q.occupancy == 2.0

    def test_occupancy_fraction(self):
        q = AccessQueue(4)
        q.push(mk())
        assert q.occupancy == 0.25


class TestViews:
    def test_priority_reads(self):
        q = AccessQueue(8)
        pr = mk(rtype=RequestType.READ)
        lr = mk(rtype=RequestType.WRITEBACK)
        q.push(pr)
        q.push(lr)
        assert q.priority_reads() == [pr]
        assert q.low_priority_reads() == [lr]

    def test_refill_reads_are_lr(self):
        q = AccessQueue(8)
        a = mk(rtype=RequestType.REFILL)
        assert a.priority == Priority.LR

    def test_filtered(self):
        q = AccessQueue(8)
        a = mk(role=AccessRole.TAG_READ)
        b = mk(role=AccessRole.DATA_WRITE)
        q.push(a)
        q.push(b)
        assert q.filtered(lambda x: x.is_write) == [b]

    def test_oldest(self):
        q = AccessQueue(8)
        a, b = mk(), mk()
        q.push(b)
        q.push(a)
        assert q.oldest() is (a if a.seq < b.seq else b)

    def test_oldest_empty(self):
        assert AccessQueue(4).oldest() is None

    def test_iteration(self):
        q = AccessQueue(4)
        items = [mk(), mk()]
        for a in items:
            q.push(a)
        assert list(q) == items


class TestRemoval:
    def test_remove(self):
        q = AccessQueue(4)
        a = mk()
        q.push(a)
        q.remove(a)
        assert len(q) == 0

    def test_remove_missing_raises(self):
        q = AccessQueue(4)
        with pytest.raises(ValueError):
            q.remove(mk())


class TestOccupancyIntegral:
    def test_mean_occupancy(self):
        q = AccessQueue(4)
        a = mk()
        q.push(a, now=0)
        q.remove(a, now=100)   # 1 entry for 100 ps
        assert q.mean_occupancy(200) == pytest.approx(0.5)

    def test_mean_occupancy_at_zero_time(self):
        assert AccessQueue(4).mean_occupancy(0) == 0.0
