"""Access queues: capacity, occupancy accounting, filtered views."""

import pytest

from repro.core.access import Access, AccessRole, CacheRequest, Priority, RequestType
from repro.core.queues import AccessQueue


def mk(role=AccessRole.TAG_READ, rtype=RequestType.READ):
    req = CacheRequest(rtype, 0, 0)
    return Access(role, req, 0, 0, 0, 0, 0, 0, 0)


class TestCapacity:
    def test_positive_capacity_required(self):
        with pytest.raises(ValueError):
            AccessQueue(0)

    def test_has_room(self):
        q = AccessQueue(2)
        assert q.has_room()
        q.push(mk())
        q.push(mk())
        assert not q.has_room()

    def test_continuations_may_exceed(self):
        q = AccessQueue(1)
        q.push(mk())
        q.push(mk())  # reserved-slot semantics: push always succeeds
        assert len(q) == 2
        assert q.occupancy == 2.0

    def test_occupancy_fraction(self):
        q = AccessQueue(4)
        q.push(mk())
        assert q.occupancy == 0.25


class TestViews:
    def test_priority_reads(self):
        q = AccessQueue(8)
        pr = mk(rtype=RequestType.READ)
        lr = mk(rtype=RequestType.WRITEBACK)
        q.push(pr)
        q.push(lr)
        assert q.priority_reads() == [pr]
        assert q.low_priority_reads() == [lr]

    def test_refill_reads_are_lr(self):
        q = AccessQueue(8)
        a = mk(rtype=RequestType.REFILL)
        assert a.priority == Priority.LR

    def test_filtered(self):
        q = AccessQueue(8)
        a = mk(role=AccessRole.TAG_READ)
        b = mk(role=AccessRole.DATA_WRITE)
        q.push(a)
        q.push(b)
        assert q.filtered(lambda x: x.is_write) == [b]

    def test_oldest(self):
        q = AccessQueue(8)
        a, b = mk(), mk()
        q.push(b)
        q.push(a)
        assert q.oldest() is (a if a.seq < b.seq else b)

    def test_oldest_empty(self):
        assert AccessQueue(4).oldest() is None

    def test_iteration(self):
        q = AccessQueue(4)
        items = [mk(), mk()]
        for a in items:
            q.push(a)
        assert list(q) == items


class TestRemoval:
    def test_remove(self):
        q = AccessQueue(4)
        a = mk()
        q.push(a)
        q.remove(a)
        assert len(q) == 0

    def test_remove_missing_raises(self):
        q = AccessQueue(4)
        with pytest.raises(ValueError):
            q.remove(mk())


class TestOccupancyIntegral:
    def test_mean_occupancy(self):
        q = AccessQueue(4)
        a = mk()
        q.push(a, now=0)
        q.remove(a, now=100)   # 1 entry for 100 ps
        assert q.mean_occupancy(200) == pytest.approx(0.5)

    def test_mean_occupancy_at_zero_time(self):
        assert AccessQueue(4).mean_occupancy(0) == 0.0

    def test_reset_accounting_excludes_warmup(self):
        """Regression: the integral was never reset at the warm-up
        boundary, so mean occupancy silently included warm-up traffic
        and divided by the full elapsed time."""
        q = AccessQueue(4)
        warm = mk()
        q.push(warm, now=0)             # occupied through all of warm-up
        q.reset_accounting(now=100)     # warm-up ends at t=100
        q.remove(warm, now=150)         # 1 entry for 50 ps measured
        assert q.mean_occupancy(200) == pytest.approx(0.5)

    def test_reset_accounting_empty_interval(self):
        q = AccessQueue(4)
        q.push(mk(), now=0)
        q.reset_accounting(now=100)
        assert q.mean_occupancy(100) == 0.0


class TestIndexes:
    def test_counts(self):
        q = AccessQueue(8)
        pr = mk(rtype=RequestType.READ)
        lr = mk(rtype=RequestType.WRITEBACK)
        wr = mk(role=AccessRole.DATA_WRITE)
        for a in (pr, lr, wr):
            q.push(a)
        assert (q.pr_count, q.lr_count) == (1, 1)
        q.remove(pr)
        assert (q.pr_count, q.lr_count) == (0, 1)

    def test_contains(self):
        q = AccessQueue(4)
        a, b = mk(), mk()
        q.push(a)
        assert a in q and b not in q

    def test_bank_buckets_partition(self):
        q = AccessQueue(16)
        accs = []
        for gb in (0, 0, 3, 5, 3):
            req = CacheRequest(RequestType.READ, 0, 0)
            a = Access(AccessRole.TAG_READ, req, 0, 0, gb, 0, 0, gb, 0)
            accs.append(a)
            q.push(a)
        buckets = q.bank_buckets()
        assert sorted(buckets) == [0, 3, 5]
        assert list(buckets[0]) == [accs[0], accs[1]]
        assert list(buckets[3]) == [accs[2], accs[4]]
        q.check_invariants()

    def test_empty_buckets_are_dropped(self):
        q = AccessQueue(4)
        a = mk()
        q.push(a)
        q.remove(a)
        assert q.bank_buckets() == {}
        assert q.pr_bank_buckets() == {}
        q.check_invariants()

    def test_swap_pop_keeps_indexes_consistent(self):
        """Randomized push/remove churn; every index stays exact."""
        import random
        rng = random.Random(42)
        q = AccessQueue(32)
        live = []
        for step in range(500):
            if live and (len(live) >= 32 or rng.random() < 0.5):
                a = live.pop(rng.randrange(len(live)))
                q.remove(a, now=step)
            else:
                gb = rng.randrange(8)
                rtype = rng.choice([RequestType.READ, RequestType.WRITEBACK,
                                    RequestType.REFILL])
                role = rng.choice([AccessRole.TAG_READ, AccessRole.DATA_WRITE])
                req = CacheRequest(rtype, 0, 0)
                a = Access(role, req, 0, 0, gb, rng.randrange(4), 0, gb, 0)
                live.append(a)
                q.push(a, now=step)
            q.check_invariants()
        assert set(q.entries) == set(live)

    def test_views_match_entries(self):
        q = AccessQueue(16)
        for rtype in (RequestType.READ, RequestType.WRITEBACK,
                      RequestType.READ, RequestType.REFILL):
            q.push(mk(rtype=rtype))
        assert (set(q.priority_reads())
                == {a for a in q.entries if a.priority == Priority.PR})
        assert (set(q.low_priority_reads())
                == {a for a in q.entries if a.priority == Priority.LR})
