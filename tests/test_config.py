"""Table II configuration values and unit conversions."""

import pytest

from repro.config import (
    BLISSConfig,
    CacheGeometry,
    DRAMCacheGeometry,
    DRAMOrganization,
    DRAMTimings,
    MainMemoryConfig,
    QueueConfig,
    ns,
    paper_config,
    scaled_config,
)


class TestNs:
    def test_integer_ns(self):
        assert ns(8) == 8000

    def test_fractional_ns(self):
        assert ns(3.33) == 3330
        assert ns(1.67) == 1670
        assert ns(7.5) == 7500

    def test_rounding(self):
        assert ns(0.0004) == 0
        assert ns(0.0006) == 1


class TestDRAMTimings:
    def test_stacked_matches_table2(self):
        t = DRAMTimings.stacked()
        assert (t.tRCD, t.tCAS, t.tRP, t.tRAS) == (8000, 8000, 8000, 30000)
        assert (t.tWTR, t.tRTP, t.tRTW) == (5000, 7500, 1670)
        assert (t.tWR, t.tBURST) == (15000, 3330)

    def test_ddr3_turnarounds_larger(self):
        ddr3 = DRAMTimings.ddr3_1600()
        stacked = DRAMTimings.stacked()
        assert ddr3.tWTR > stacked.tWTR
        assert ddr3.tRTW > stacked.tRTW

    def test_penalties(self):
        t = DRAMTimings.stacked()
        assert t.row_miss_penalty() == t.tRCD + t.tCAS
        assert t.row_conflict_penalty() == t.tRP + t.tRCD + t.tCAS
        assert t.row_conflict_penalty() > t.row_miss_penalty()

    def test_frozen(self):
        t = DRAMTimings.stacked()
        with pytest.raises(AttributeError):
            t.tRCD = 1


class TestOrganization:
    def test_table2_geometry(self):
        o = DRAMOrganization()
        assert o.channels == 4
        assert o.banks_per_rank == 16
        assert o.ranks_per_channel == 1
        assert o.row_bytes == 4096
        assert o.total_banks == 64
        assert o.blocks_per_row == 64

    def test_default_interleave(self):
        assert DRAMOrganization().interleave == "robarachco"

    def test_non_power_of_two_rejected_at_construction(self):
        """Fail-fast: a bad geometry never survives long enough to build
        a mapper — sweep expansion catches it at spec-build time."""
        for field, value in [("channels", 3), ("ranks_per_channel", 6),
                             ("banks_per_rank", 10), ("row_bytes", 3000),
                             ("block_bytes", 48), ("channels", 0),
                             ("row_bytes", -4096)]:
            with pytest.raises(ValueError, match=field):
                DRAMOrganization(**{field: value})

    def test_row_smaller_than_block_rejected(self):
        with pytest.raises(ValueError, match="row_bytes"):
            DRAMOrganization(row_bytes=32, block_bytes=64)

    def test_unknown_interleave_rejected(self):
        with pytest.raises(ValueError, match="interleave"):
            DRAMOrganization(interleave="corachbaro")


class TestQueueConfig:
    def test_default_sizes(self):
        q = QueueConfig()
        assert q.read_entries == 64
        assert q.write_entries == 64

    def test_rod_sizes(self):
        q = QueueConfig.for_design("ROD")
        assert q.read_entries == 32
        assert q.write_entries == 96

    def test_rod_case_insensitive(self):
        assert QueueConfig.for_design("rod").read_entries == 32

    def test_other_designs_default(self):
        for d in ("CD", "DCA", "cd", "dca"):
            q = QueueConfig.for_design(d)
            assert (q.read_entries, q.write_entries) == (64, 64)

    def test_watermarks(self):
        q = QueueConfig()
        assert q.write_low_watermark == 0.50
        assert q.write_high_watermark == 0.85
        assert q.lr_drain_low == 0.75
        assert q.lr_drain_high == 0.85

    def test_positive_windows(self):
        q = QueueConfig()
        assert q.issue_window >= 1
        assert q.opportunistic_min_batch >= 1


class TestDRAMCacheGeometry:
    def test_paper_capacity(self):
        g = DRAMCacheGeometry()
        assert g.size_bytes == 256 * 2**20
        assert g.data_capacity == 240 * 2**20

    def test_sets_consistent_with_capacity(self):
        g = DRAMCacheGeometry()
        assert g.sa_sets * g.sa_ways * g.block_bytes == g.data_capacity
        assert g.dm_entries * g.block_bytes == g.data_capacity

    def test_sa_15_way(self):
        assert DRAMCacheGeometry().sa_ways == 15


class TestCacheGeometry:
    def test_l1_sets(self):
        g = CacheGeometry(size_bytes=32 * 1024, assoc=2)
        assert g.num_sets == 256

    def test_l2_sets(self):
        g = CacheGeometry(size_bytes=8 * 2**20, assoc=16)
        assert g.num_sets == 8192


class TestMainMemoryConfig:
    def test_latency(self):
        assert MainMemoryConfig().latency_ps == 50_000

    def test_bus_occupancy(self):
        # 64 B over a 64-bit 2 GHz bus: 8 transfers at 0.5 ns.
        assert MainMemoryConfig().bus_occupancy_ps == 4000

    def test_default_model_is_flat(self):
        assert MainMemoryConfig().model == "flat"

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="model"):
            MainMemoryConfig(model="quantum")

    def test_banked_defaults_are_ddr3_two_rank(self):
        cfg = MainMemoryConfig(model="banked")
        assert cfg.org.channels == 2
        assert cfg.org.ranks_per_channel == 2
        assert cfg.org.banks_per_rank == 8
        assert cfg.org.row_bytes == 8192
        assert cfg.timings == DRAMTimings.ddr3_1600()

    def test_ddr3_rank_turnaround(self):
        """gem5's DDR3_1600_x64 different-rank bus delay: 2 CK = 2.5 ns."""
        assert DRAMTimings.ddr3_1600().tCS == 2500

    def test_stacked_has_free_rank_switch(self):
        """tCS=0 keeps the single-rank stacked part bit-identical."""
        assert DRAMTimings.stacked().tCS == 0

    def test_negative_tcs_rejected(self):
        from dataclasses import replace
        with pytest.raises(ValueError, match="tCS"):
            replace(DRAMTimings.ddr3_1600(), tCS=-1)


class TestSystemConfig:
    def test_paper_config_cores(self):
        assert paper_config().num_cores == 4

    def test_cpu_cycle(self):
        assert paper_config().cpu.cycle_ps == 250

    def test_scaled_divides_capacities(self):
        full, scaled = paper_config(), scaled_config(8)
        assert scaled.l2.size_bytes == full.l2.size_bytes // 8
        assert scaled.dram_cache.size_bytes == full.dram_cache.size_bytes // 8

    def test_scaled_preserves_timings_and_queues(self):
        full, scaled = paper_config(), scaled_config(8)
        assert scaled.timings == full.timings
        assert scaled.queues == full.queues
        assert scaled.org == full.org

    def test_with_queues_for(self):
        cfg = paper_config().with_queues_for("ROD")
        assert cfg.queues.read_entries == 32
        assert cfg.queues.write_entries == 96

    def test_with_overrides_nested_paths(self):
        cfg = paper_config().with_overrides({
            "queues.read_entries": 16,
            "org.channels": 8,
            "queues.write_high_watermark": 0.9,
        })
        assert cfg.queues.read_entries == 16
        assert cfg.org.channels == 8
        assert cfg.queues.write_high_watermark == 0.9
        assert cfg.queues_explicit is True
        # untouched fields survive
        assert cfg.queues.write_entries == 64
        assert cfg.org.banks_per_rank == 16

    def test_with_overrides_coerces_to_field_type(self):
        """An int sweep value targeting a float field must not create a
        distinct-but-equal config (cache keys would diverge)."""
        cfg = paper_config().with_overrides(
            [("queues.write_high_watermark", 1)])
        assert cfg.queues.write_high_watermark == 1.0
        assert isinstance(cfg.queues.write_high_watermark, float)
        cfg = paper_config().with_overrides([("num_cores", 8.0)])
        assert cfg.num_cores == 8 and isinstance(cfg.num_cores, int)

    def test_with_overrides_rejects_fractional_int(self):
        with pytest.raises(ValueError):
            paper_config().with_overrides([("queues.read_entries", 16.5)])

    def test_with_overrides_rejects_bool_for_int(self):
        """True would silently become a 1-entry queue."""
        with pytest.raises(ValueError, match="bool"):
            paper_config().with_overrides([("queues.read_entries", True)])

    def test_with_overrides_non_queue_path_not_explicit(self):
        cfg = paper_config().with_overrides([("org.channels", 2)])
        assert cfg.queues_explicit is False

    def test_with_overrides_unknown_path(self):
        with pytest.raises(ValueError, match="unknown config field"):
            paper_config().with_overrides([("queues.bogus", 1)])
        with pytest.raises(ValueError, match="unknown config field"):
            paper_config().with_overrides([("bogus.x", 1)])

    def test_with_overrides_path_through_scalar(self):
        """Descending into a scalar is a ValueError, not AttributeError,
        and int attributes like .real are not addressable."""
        with pytest.raises(ValueError, match="scalar"):
            paper_config().with_overrides([("num_cores.x", 1)])
        with pytest.raises(ValueError, match="scalar"):
            paper_config().with_overrides([("num_cores.real", 1)])

    def test_with_overrides_property_not_addressable(self):
        """Only declared fields are settable; derived properties
        (org.total_banks) must be rejected, replace() can't set them."""
        with pytest.raises(ValueError, match="unknown config field"):
            paper_config().with_overrides([("org.total_banks", 8)])

    def test_with_overrides_group_path_rejected(self):
        with pytest.raises(ValueError, match="group, not a scalar"):
            paper_config().with_overrides([("queues", 1)])

    def test_explicit_queues_survive_controller(self):
        """The per-design Table II substitution yields to explicit queue
        overrides (sweep axes) but still applies to stock configs."""
        from repro.core import make_controller
        from repro.sim.engine import Simulator
        cfg = scaled_config().with_queues_for("ROD").with_overrides(
            [("queues.read_entries", 16)])
        ctrl = make_controller("ROD", Simulator(), cfg)
        assert ctrl.cfg.queues.read_entries == 16
        assert ctrl.cfg.queues.write_entries == 96
        stock = make_controller("ROD", Simulator(), scaled_config())
        assert stock.cfg.queues.read_entries == 32

    def test_bliss_defaults(self):
        b = BLISSConfig()
        assert b.blacklist_threshold == 4
        assert b.clearing_interval_ps == 10_000_000  # 10 us
