"""Bank state machine: row states and timing-constraint composition."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import DRAMTimings
from repro.dram.bank import Bank, ROW_CLOSED, ROW_CONFLICT, ROW_HIT


@pytest.fixture
def bank():
    return Bank(DRAMTimings.stacked())


T = DRAMTimings.stacked()


class TestRowState:
    def test_initially_closed(self, bank):
        assert bank.row_state(5) == ROW_CLOSED

    def test_hit_after_commit(self, bank):
        cas = bank.earliest_cas(5, 0)
        bank.commit(5, cas, False, cas + T.tCAS + T.tBURST)
        assert bank.row_state(5) == ROW_HIT
        assert bank.row_state(6) == ROW_CONFLICT

    def test_closed_after_precharge(self, bank):
        cas = bank.earliest_cas(5, 0)
        bank.commit(5, cas, False, cas + T.tCAS + T.tBURST)
        bank.precharge(bank.ready_pre)
        assert bank.row_state(5) == ROW_CLOSED


class TestTiming:
    def test_closed_row_costs_trcd(self, bank):
        assert bank.earliest_cas(1, 1000) == 1000 + T.tRCD

    def test_open_row_hit_is_immediate(self, bank):
        cas = bank.earliest_cas(1, 0)
        bank.commit(1, cas, False, cas + T.tCAS + T.tBURST)
        later = bank.ready_cas + 100_000
        assert bank.earliest_cas(1, later) == later

    def test_conflict_costs_trp_plus_trcd(self, bank):
        cas = bank.earliest_cas(1, 0)
        bank.commit(1, cas, False, cas + T.tCAS + T.tBURST)
        t = bank.ready_pre + 50_000  # long after all windows
        assert bank.earliest_cas(2, t) == t + T.tRP + T.tRCD

    def test_tras_bounds_precharge(self, bank):
        """PRE may not issue earlier than tRAS after ACT."""
        cas = bank.earliest_cas(1, 0)  # ACT at 0, CAS at tRCD
        bank.commit(1, cas, False, cas + T.tCAS + T.tBURST)
        assert bank.ready_pre >= bank.act_time + T.tRAS

    def test_write_recovery_bounds_precharge(self, bank):
        cas = bank.earliest_cas(1, 0)
        burst_end = cas + T.tCAS + T.tBURST
        bank.commit(1, cas, True, burst_end)
        assert bank.ready_pre >= burst_end + T.tWR

    def test_read_to_precharge(self, bank):
        cas = bank.earliest_cas(1, 0)
        bank.commit(1, cas, False, cas + T.tCAS + T.tBURST)
        assert bank.ready_pre >= cas + T.tRTP

    def test_earliest_cas_is_pure(self, bank):
        before = (bank.open_row, bank.ready_cas, bank.ready_pre,
                  bank.ready_act)
        bank.earliest_cas(7, 12345)
        after = (bank.open_row, bank.ready_cas, bank.ready_pre,
                 bank.ready_act)
        assert before == after

    def test_reset(self, bank):
        cas = bank.earliest_cas(1, 0)
        bank.commit(1, cas, True, cas + T.tCAS + T.tBURST)
        bank.reset()
        assert bank.row_state(1) == ROW_CLOSED
        assert bank.ready_pre == 0


@given(st.lists(st.tuples(st.integers(0, 7), st.booleans()),
                min_size=1, max_size=30))
@settings(max_examples=100, deadline=None)
def test_commit_sequence_invariants(ops):
    """Arbitrary access sequences keep bank bookkeeping consistent:

    * earliest_cas never proposes a CAS in the past;
    * ready_pre >= act_time + tRAS at all times (tRAS honored);
    * committing opens exactly the requested row.
    """
    bank = Bank(T)
    now = 0
    for row, is_write in ops:
        cas = bank.earliest_cas(row, now)
        assert cas >= now
        burst_end = cas + T.tCAS + T.tBURST
        bank.commit(row, cas, is_write, burst_end)
        assert bank.open_row == row
        assert bank.ready_pre >= bank.act_time + T.tRAS
        now = burst_end  # decisions advance with the bus


@given(st.integers(0, 100), st.integers(0, 10**7))
@settings(max_examples=50, deadline=None)
def test_earliest_cas_monotone_in_time(row, now):
    """Asking later never returns an earlier CAS."""
    bank = Bank(T)
    cas0 = bank.earliest_cas(row, now)
    cas1 = bank.earliest_cas(row, now + 1000)
    assert cas1 >= cas0
