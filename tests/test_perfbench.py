"""Perf harness: scenario equivalence, result structure, BENCH emission."""

import json

import pytest

from repro.bench.decision_loop import (
    SCENARIOS,
    bench_scenario,
    run_decision_loop,
    verify_equivalence,
)
from repro.bench.harness import BENCH_SCHEMA_VERSION, run_perf


class TestEquivalence:
    @pytest.mark.parametrize("mode", [m for m, _n, _q in SCENARIOS])
    def test_engines_agree(self, mode):
        verify_equivalence(mode, queue_size=32, decisions=150, seed=7)


class TestScenario:
    def test_result_structure(self):
        r = bench_scenario("bliss_all", "t", queue_size=24, n_decisions=150)
        d = r.to_dict()
        assert d["decisions"] == 150
        assert d["naive_per_s"] > 0 and d["indexed_per_s"] > 0
        assert d["speedup"] > 0


class TestHarness:
    def test_bench_json_schema(self, tmp_path):
        # Tiny decision counts keep this a structural test, not a perf one.
        import repro.bench.decision_loop as dl
        import repro.bench.harness as hz
        orig = dl.run_decision_loop

        def tiny(quick=False, seed=0):
            return orig(quick=True, seed=seed)

        hz.run_decision_loop = tiny
        try:
            path = run_perf(quick=True, label="test", out_dir=tmp_path,
                            end_to_end=False)
        finally:
            hz.run_decision_loop = orig
        data = json.loads(path.read_text())
        assert path.name == "BENCH_test.json"
        assert data["schema_version"] == BENCH_SCHEMA_VERSION
        dl_data = data["decision_loop"]
        assert dl_data["equivalence_checked"] is True
        assert len(dl_data["scenarios"]) == len(SCENARIOS)
        assert dl_data["geomean_speedup"] > 0
