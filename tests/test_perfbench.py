"""Perf harness: scenario equivalence, result structure, BENCH emission."""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.bench.decision_loop import (
    SCENARIOS,
    bench_scenario,
    verify_equivalence,
)
from repro.bench.harness import BENCH_SCHEMA_VERSION, run_perf

REPO_ROOT = Path(__file__).parent.parent


class TestEquivalence:
    @pytest.mark.parametrize("mode", [m for m, _n, _q in SCENARIOS])
    def test_engines_agree(self, mode):
        verify_equivalence(mode, queue_size=32, decisions=150, seed=7)


class TestScenario:
    def test_result_structure(self):
        r = bench_scenario("bliss_all", "t", queue_size=24, n_decisions=150)
        d = r.to_dict()
        assert d["decisions"] == 150
        assert d["naive_per_s"] > 0 and d["indexed_per_s"] > 0
        assert d["speedup"] > 0


class TestHarness:
    def test_bench_json_schema(self, tmp_path):
        # Tiny decision counts keep this a structural test, not a perf one.
        import repro.bench.decision_loop as dl
        import repro.bench.harness as hz
        orig = dl.run_decision_loop

        def tiny(quick=False, seed=0):
            return orig(quick=True, seed=seed)

        hz.run_decision_loop = tiny
        try:
            path = run_perf(quick=True, label="test", out_dir=tmp_path,
                            end_to_end=False)
        finally:
            hz.run_decision_loop = orig
        data = json.loads(path.read_text())
        assert path.name == "BENCH_test.json"
        assert data["schema_version"] == BENCH_SCHEMA_VERSION
        dl_data = data["decision_loop"]
        assert dl_data["equivalence_checked"] is True
        assert len(dl_data["scenarios"]) == len(SCENARIOS)
        assert dl_data["geomean_speedup"] > 0


class TestSubstrateLoop:
    def test_substrate_section_structure(self):
        from repro.bench.substrate_loop import run_substrate_loop
        data = run_substrate_loop(quick=True)
        assert {s["name"] for s in data["scenarios"]} == {
            "issue_loop_steady", "issue_loop_bursty"}
        for s in data["scenarios"]:
            assert s["burst_per_s"] > 0 and s["command_per_s"] > 0
            assert s["command_overhead_x"] > 0
            # The bursty stream must actually exercise refresh catch-up,
            # else the overhead number would not measure fidelity work.
            if s["name"] == "issue_loop_bursty":
                assert s["command_counters"]["refreshes_issued"] > 0
        assert data["max_command_overhead_x"] > 0

    def test_section_selection(self, tmp_path):
        path = run_perf(quick=True, label="subonly", out_dir=tmp_path,
                        sections=("substrate",))
        data = json.loads(path.read_text())
        assert data["sections"] == ["substrate"]
        assert "substrate" in data
        assert "decision_loop" not in data and "end_to_end" not in data

    def test_unknown_section_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="sections"):
            run_perf(quick=True, label="x", out_dir=tmp_path,
                     sections=("cycle_accurate",))

    def test_sections_field_reflects_suppressed_e2e(self, tmp_path):
        path = run_perf(quick=True, label="noe2e", out_dir=tmp_path,
                        end_to_end=False, sections=("substrate", "e2e"))
        data = json.loads(path.read_text())
        assert data["sections"] == ["substrate"]
        assert "end_to_end" not in data


def _load_check_floor():
    path = REPO_ROOT / "benchmarks" / "perf" / "check_floor.py"
    spec = importlib.util.spec_from_file_location("check_floor", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


class TestCheckFloor:
    """The CI regression gate: floors, ceilings, missing metrics."""

    FLOOR = {
        "metrics": {"a.speedup": 2.0},
        "ceilings": {"b.overhead_x": 1.5},
    }

    def _check(self, bench, tolerance=0.15):
        return _load_check_floor().check(bench, self.FLOOR, tolerance)

    def test_all_within_reference_passes(self):
        assert self._check(
            {"a": {"speedup": 2.1}, "b": {"overhead_x": 1.4}}) == []

    def test_tolerance_band_is_two_sided(self):
        # Floors allow a drop inside tolerance; ceilings a rise.
        assert self._check(
            {"a": {"speedup": 1.75}, "b": {"overhead_x": 1.7}}) == []

    def test_floor_violation_fails(self):
        fails = self._check({"a": {"speedup": 1.5}, "b": {"overhead_x": 1.0}})
        assert len(fails) == 1 and "a.speedup" in fails[0]

    def test_ceiling_violation_fails(self):
        fails = self._check({"a": {"speedup": 2.5}, "b": {"overhead_x": 2.0}})
        assert len(fails) == 1 and "b.overhead_x" in fails[0]

    def test_missing_metric_fails_both_kinds(self):
        fails = self._check({})
        assert len(fails) == 2
        assert all("missing" in f for f in fails)

    def test_committed_floor_file_is_well_formed(self):
        floor = json.loads(
            (REPO_ROOT / "benchmarks" / "perf" / "floor.json").read_text())
        assert set(floor) >= {"schema_version", "tolerance", "metrics"}
        for ref in floor["metrics"].values():
            assert ref > 0
        for ref in floor.get("ceilings", {}).values():
            assert ref > 0
        # The gate guards every harness section that pins a ratio.
        guarded = {m.split(".")[0]
                   for m in (*floor["metrics"], *floor.get("ceilings", {}))}
        assert {"decision_loop", "topology", "compiled"} <= guarded
