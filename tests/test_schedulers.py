"""BLISS and FR-FCFS candidate selection + RRPC counters."""

import pytest

from repro.config import BLISSConfig, DRAMOrganization, DRAMTimings
from repro.core.access import Access, AccessRole, CacheRequest, RequestType
from repro.core.bliss import BLISSScheduler
from repro.core.frfcfs import FRFCFSScheduler
from repro.core.rrpc import RRPCTable
from repro.dram.channel import Channel


def mk_access(core=0, bank=0, row=0, role=AccessRole.TAG_READ,
              rtype=RequestType.READ):
    req = CacheRequest(rtype, 0, core)
    return Access(role, req, channel=0, rank=0, bank=bank, row=row, col=0,
                  global_bank=bank, arrival=0)


@pytest.fixture
def channel():
    return Channel(DRAMTimings.stacked(), DRAMOrganization())


class TestBLISS:
    def test_empty_candidates(self, channel):
        s = BLISSScheduler(BLISSConfig(), 4)
        assert s.pick([], channel, 0) is None

    def test_oldest_first_when_equal(self, channel):
        s = BLISSScheduler(BLISSConfig(), 4)
        a, b = mk_access(core=0), mk_access(core=1)
        assert s.pick([b, a], channel, 0) is a if a.seq < b.seq else b

    def test_row_hit_first(self, channel):
        s = BLISSScheduler(BLISSConfig(), 4)
        channel.issue(0, 2, 9, False, 0)  # open row 9 in bank 2
        older_miss = mk_access(bank=3, row=1)
        newer_hit = mk_access(bank=2, row=9)
        assert s.pick([older_miss, newer_hit], channel, 0) is newer_hit

    def test_blacklist_after_streak(self, channel):
        s = BLISSScheduler(BLISSConfig(blacklist_threshold=4), 4)
        for _ in range(4):
            s.on_served(2)
        assert s.blacklist[2]
        assert s.blacklist_events == 1

    def test_streak_broken_by_other_core(self):
        s = BLISSScheduler(BLISSConfig(blacklist_threshold=4), 4)
        for _ in range(3):
            s.on_served(2)
        s.on_served(1)
        for _ in range(3):
            s.on_served(2)
        assert not s.blacklist[2]

    def test_blacklisted_deprioritized(self, channel):
        s = BLISSScheduler(BLISSConfig(), 4)
        for _ in range(4):
            s.on_served(0)
        bl_access = mk_access(core=0)     # older but blacklisted
        ok_access = mk_access(core=1)
        assert s.pick([bl_access, ok_access], channel, 0) is ok_access

    def test_clearing_interval(self, channel):
        cfg = BLISSConfig(clearing_interval_ps=1000)
        s = BLISSScheduler(cfg, 4)
        for _ in range(4):
            s.on_served(0)
        assert s.blacklist[0]
        s.maybe_clear(now=2000)
        assert not s.blacklist[0]

    def test_blacklist_beats_row_hit(self, channel):
        """Application fairness outranks row locality in BLISS."""
        s = BLISSScheduler(BLISSConfig(), 4)
        for _ in range(4):
            s.on_served(0)
        channel.issue(0, 2, 9, False, 0)
        bl_hit = mk_access(core=0, bank=2, row=9)
        ok_miss = mk_access(core=1, bank=3, row=1)
        assert s.pick([bl_hit, ok_miss], channel, 0) is ok_miss


class TestFRFCFS:
    def test_row_hit_first(self, channel):
        s = FRFCFSScheduler()
        channel.issue(0, 2, 9, False, 0)
        older_miss = mk_access(bank=3, row=1)
        newer_hit = mk_access(bank=2, row=9)
        assert s.pick([older_miss, newer_hit], channel, 0) is newer_hit

    def test_oldest_otherwise(self, channel):
        s = FRFCFSScheduler()
        a = mk_access(bank=3, row=1)
        b = mk_access(bank=4, row=1)
        assert s.pick([b, a], channel, 0) in (a, b)
        assert s.pick([b, a], channel, 0).seq == min(a.seq, b.seq)

    def test_interface_parity(self, channel):
        s = FRFCFSScheduler()
        s.maybe_clear(0)
        s.on_served(1)
        assert s.served == 1


class TestRRPC:
    def test_initial_zero(self):
        t = RRPCTable(64)
        assert t.snapshot() == [0] * 64

    def test_set_to_max_on_pr(self):
        t = RRPCTable(64)
        t.on_priority_read(5)
        assert t.value(5) == 7

    def test_decrement_on_other_prs(self):
        t = RRPCTable(64)
        t.on_priority_read(5)
        for _ in range(3):
            t.on_priority_read(9)
        assert t.value(5) == 4
        assert t.value(9) == 7

    def test_floor_at_zero(self):
        t = RRPCTable(64)
        t.on_priority_read(5)
        for _ in range(20):
            t.on_priority_read(9)
        assert t.value(5) == 0

    def test_matches_naive_model(self):
        """O(1) lazy formulation == literal decrement-all semantics."""
        import random
        rng = random.Random(42)
        t = RRPCTable(16)
        naive = [0] * 16
        for _ in range(500):
            b = rng.randrange(16)
            t.on_priority_read(b)
            naive = [max(0, v - 1) for v in naive]
            naive[b] = 7
            assert t.snapshot() == naive

    def test_allows_flush_ff4(self):
        """Paper FF-4: flush allowed when the counter is below 4."""
        t = RRPCTable(8)
        t.on_priority_read(0)
        assert not t.allows_flush(0, 4)   # counter 7
        for _ in range(3):
            t.on_priority_read(1)
        assert not t.allows_flush(0, 4)   # counter 4
        t.on_priority_read(1)
        assert t.allows_flush(0, 4)       # counter 3

    def test_len(self):
        assert len(RRPCTable(64)) == 64
