"""Golden-run regression pins: committed metric snapshots must not drift.

Three fixtures, one mechanism:

* ``tests/golden/fig08_quick.json`` — the complete results (headline
  fields + full metrics tree) of a small fig08-style run set on the
  default **burst** substrate.  Any change to simulated behaviour —
  intended or not — trips this test with a readable per-metric diff, so
  refactors that are supposed to be behaviour-preserving (snapshot/
  restore, scheduler fast paths, warm-state forking, the substrate
  protocol extraction) cannot silently bend results.
* ``tests/golden/command_quick.json`` — the same pin for the
  **command-level** substrate model (``substrate.fidelity=command``),
  freezing the refresh/tFAW/tRRD/page-policy timing composition.
* ``tests/golden/mainmem_banked_quick.json`` — the same pin with the
  **banked** off-chip memory model (``mainmem.model=banked``), freezing
  the DDR3-style multi-channel/multi-rank timing below the cache
  (including the tCS rank-to-rank bus turnaround) and the
  ``mainmem_dev``/``mainmem_total`` metric subtrees.

When a behaviour change is *intended*, regenerate the fixtures and
commit them together with the change::

    REPRO_REGOLD=1 PYTHONPATH=src python -m pytest tests/test_golden.py

The fixtures are calibrated on CI's platform (CPython on x86-64 Linux
glibc); exotic libm implementations could differ in float ulps.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.experiments.common import RunSpec, SimParams, run_one
from repro.sim.system import RESULT_SCHEMA_VERSION

GOLDEN_DIR = Path(__file__).parent / "golden"

#: one point per controller design over Table I mix 1 at quick scale
BURST_SPECS = [RunSpec(d, "sa", mix_id=1) for d in ("CD", "ROD", "DCA")]

#: command-fidelity pins: two designs so cross-design timing interplay
#: (PR/LR scheduling over refresh + rank throttling) is frozen too
COMMAND_SPECS = [
    RunSpec(d, "sa", mix_id=1, config=(("substrate.fidelity", "command"),))
    for d in ("CD", "DCA")
]

#: banked-mainmem pins: the off-chip topology below the cache
BANKED_SPECS = [
    RunSpec(d, "sa", mix_id=1, config=(("mainmem.model", "banked"),))
    for d in ("CD", "DCA")
]


def compute_entries(specs) -> dict:
    params = SimParams.quick()
    entries = {}
    for spec in specs:
        result = run_one(spec, params)
        data = result.to_cache_dict()
        data.pop("meta")            # provenance, not behaviour
        entries[spec.label()] = data
    return entries


def walk_diff(expected, actual, path: str = "") -> list[str]:
    """Readable leaf-level diff lines between two nested structures."""
    lines: list[str] = []
    if isinstance(expected, dict) and isinstance(actual, dict):
        for key in sorted(set(expected) | set(actual), key=str):
            sub = f"{path}.{key}" if path else str(key)
            if key not in actual:
                lines.append(f"  {sub}: missing (golden {expected[key]!r})")
            elif key not in expected:
                lines.append(f"  {sub}: unexpected (got {actual[key]!r})")
            else:
                lines.extend(walk_diff(expected[key], actual[key], sub))
    elif (isinstance(expected, list) and isinstance(actual, list)
          and len(expected) == len(actual)):
        for i, (e, a) in enumerate(zip(expected, actual)):
            lines.extend(walk_diff(e, a, f"{path}[{i}]"))
    elif expected != actual:
        lines.append(f"  {path}: golden {expected!r} != got {actual!r}")
    return lines


def check_golden(golden_path: Path, specs) -> None:
    entries = compute_entries(specs)

    if os.environ.get("REPRO_REGOLD"):
        golden_path.parent.mkdir(parents=True, exist_ok=True)
        golden_path.write_text(json.dumps(
            {"result_schema_version": RESULT_SCHEMA_VERSION,
             "params": "quick", "entries": entries},
            indent=2, sort_keys=True) + "\n")
        pytest.skip(f"regenerated {golden_path}")

    assert golden_path.exists(), (
        f"missing golden fixture {golden_path}; generate with "
        f"REPRO_REGOLD=1 PYTHONPATH=src python -m pytest tests/test_golden.py")
    golden = json.loads(golden_path.read_text())
    assert golden["result_schema_version"] == RESULT_SCHEMA_VERSION, (
        "result schema changed: regenerate the golden fixture "
        "(REPRO_REGOLD=1) and review the diff it pins")

    diffs: list[str] = []
    for label, expected in golden["entries"].items():
        actual = entries.get(label)
        if actual is None:
            diffs.append(f"  {label}: missing from run set")
            continue
        diffs.extend(walk_diff(expected, actual, label))
    assert not diffs, (
        "simulated results drifted from the golden run "
        "(intended? regenerate with REPRO_REGOLD=1 and commit the diff):\n"
        + "\n".join(diffs[:40])
        + (f"\n  ... and {len(diffs) - 40} more" if len(diffs) > 40 else ""))


def test_golden_fig08_quick():
    check_golden(GOLDEN_DIR / "fig08_quick.json", BURST_SPECS)


def test_golden_command_fidelity():
    check_golden(GOLDEN_DIR / "command_quick.json", COMMAND_SPECS)


def test_golden_mainmem_banked():
    check_golden(GOLDEN_DIR / "mainmem_banked_quick.json", BANKED_SPECS)


def test_banked_golden_exercises_the_topology():
    """The banked pin must pin real multi-rank traffic below the cache."""
    golden_path = GOLDEN_DIR / "mainmem_banked_quick.json"
    if not golden_path.exists():
        pytest.skip("banked golden not generated yet")
    golden = json.loads(golden_path.read_text())
    for label, entry in golden["entries"].items():
        total = entry["metrics"]["mainmem_total"]
        assert total["total_accesses"] > 0, label
        assert total["rank_switches"] > 0, label


def test_command_fidelity_exercises_new_mechanisms():
    """The command pin must actually pin refresh + rank throttling — a
    golden of a run where the mechanisms never fired would pin nothing."""
    golden_path = GOLDEN_DIR / "command_quick.json"
    if not golden_path.exists():
        pytest.skip("command golden not generated yet")
    golden = json.loads(golden_path.read_text())
    for label, entry in golden["entries"].items():
        total = entry["metrics"]["substrate_total"]
        assert total["refreshes_issued"] > 0, label
        assert total["rrd_stalls"] + total["faw_stalls"] > 0, label
