"""ATCache-style SRAM tag cache (Fig. 18 model)."""

import pytest

from repro.cache.dramcache import DRAMCacheArray
from repro.cache.tagcache import TagCache
from repro.config import DRAMCacheGeometry

GEOM = DRAMCacheGeometry(size_bytes=8 * 2**20)


@pytest.fixture
def array():
    return DRAMCacheArray(GEOM, "sa")


class TestDisabled:
    def test_size_zero_counts_every_lookup(self, array):
        tc = TagCache(array, 0)
        assert not tc.enabled
        for i in range(10):
            assert not tc.access(i * 64, False)
        assert tc.stats.dram_tag_reads == 10
        assert tc.stats.dram_tag_accesses == 10


class TestHitPath:
    def test_repeat_access_hits(self, array):
        tc = TagCache(array, 32 * 1024)
        assert not tc.access(0x4000, False)   # demand miss
        assert tc.access(0x4000, False)       # SRAM hit
        assert tc.stats.tag_hits == 1

    def test_same_set_same_tag_block(self, array):
        """Two blocks of one set share the tag block: second lookup hits."""
        tc = TagCache(array, 32 * 1024)
        a = array.sa.block_addr(5, 1) * 64
        b = array.sa.block_addr(5, 2) * 64
        tc.access(a, False)
        assert tc.access(b, False)

    def test_prefetch_covers_next_sets(self, array):
        """Sequential blocks -> consecutive sets -> prefetched tag blocks."""
        tc = TagCache(array, 64 * 1024, prefetch_degree=3)
        tc.access(0 * 64, False)    # set 0; prefetches sets 1..3
        assert tc.access(1 * 64, False)
        assert tc.access(2 * 64, False)
        assert tc.access(3 * 64, False)
        assert not tc.access(4 * 64, False)  # beyond prefetch degree

    def test_prefetch_fills_counted(self, array):
        tc = TagCache(array, 64 * 1024, prefetch_degree=3)
        tc.access(0, False)
        assert tc.stats.prefetch_fills == 3
        assert tc.stats.dram_tag_reads == 4   # demand + 3 prefetch


class TestDirtyWriteback:
    @staticmethod
    def _colliding_sets(tc, array, n):
        """DRAM-cache set indices whose tag blocks share one SRAM set."""
        target = tc._set_of(tc._tag_block_of_set(0))
        found = [0]
        s = 1
        while len(found) < n:
            if tc._set_of(tc._tag_block_of_set(s)) == target:
                found.append(s)
            s += 1
        return found

    def test_write_lookup_dirties_block(self, array):
        tc = TagCache(array, 512, assoc=2, prefetch_degree=0)
        sets = self._colliding_sets(tc, array, 3)
        tc.access(array.sa.block_addr(sets[0], 1) * 64, is_write=True)
        # Evict it by filling its SRAM set with other tag blocks.
        tc.access(array.sa.block_addr(sets[1], 1) * 64, False)
        tc.access(array.sa.block_addr(sets[2], 1) * 64, False)
        assert tc.stats.dram_tag_writes >= 1

    def test_clean_eviction_free(self, array):
        tc = TagCache(array, 512, assoc=2, prefetch_degree=0)
        sets = self._colliding_sets(tc, array, 3)
        for s in sets:
            tc.access(array.sa.block_addr(s, 1) * 64, is_write=False)
        assert tc.stats.dram_tag_writes == 0


class TestTrafficClaim:
    def test_small_tag_cache_amplifies_traffic(self, array):
        """The Fig. 18 effect: random tag traffic + prefetch > baseline."""
        import random
        rng = random.Random(1)
        base = TagCache(array, 0)
        small = TagCache(array, 32 * 1024, prefetch_degree=3)
        addrs = [rng.randrange(0, GEOM.data_capacity) & ~63
                 for _ in range(20_000)]
        for a in addrs:
            base.access(a, False)
            small.access(a, False)
        assert small.stats.dram_tag_accesses > base.stats.dram_tag_accesses

    def test_streaming_tag_cache_hit_rate(self, array):
        tc = TagCache(array, 128 * 1024, prefetch_degree=3)
        for i in range(4000):
            tc.access(i * 64, False)
        assert tc.stats.hit_rate > 0.6   # spatial prefetch pays off
