"""Functional DRAM-cache array: hits, fills, LRU, dirty state, bulk fill."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.dramcache import DRAMCacheArray
from repro.config import DRAMCacheGeometry

GEOM = DRAMCacheGeometry(size_bytes=2 * 2**20)  # small: fast eviction tests


@pytest.fixture(params=["sa", "dm"])
def array(request):
    return DRAMCacheArray(GEOM, request.param)


@pytest.fixture
def sa():
    return DRAMCacheArray(GEOM, "sa")


@pytest.fixture
def dm():
    return DRAMCacheArray(GEOM, "dm")


class TestBasics:
    def test_cold_miss(self, array):
        assert not array.probe(0x1000).hit

    def test_fill_then_hit(self, array):
        array.fill(0x1000, dirty=False)
        res = array.probe(0x1000)
        assert res.hit and not res.dirty

    def test_dirty_fill(self, array):
        array.fill(0x1000, dirty=True)
        assert array.probe(0x1000).dirty

    def test_lookup_read_counts(self, array):
        array.fill(0x1000, dirty=False)
        array.lookup_read(0x1000)
        array.lookup_read(0x2000000)
        assert array.lookups == 2
        assert array.hits == 1
        assert array.hit_rate == 0.5

    def test_lookup_write_sets_dirty(self, array):
        array.fill(0x1000, dirty=False)
        array.lookup_write(0x1000)
        assert array.probe(0x1000).dirty

    def test_invalid_organization(self):
        with pytest.raises(ValueError):
            DRAMCacheArray(GEOM, "fully-assoc")

    def test_invalidate(self, array):
        array.fill(0x1000, dirty=True)
        assert array.invalidate(0x1000)
        assert not array.probe(0x1000).hit
        assert not array.invalidate(0x1000)

    def test_block_granularity(self, array):
        array.fill(0x1000, dirty=False)
        assert array.probe(0x1000 + 63).hit  # same block
        assert not array.probe(0x1000 + 64).hit

    def test_reset_counters(self, array):
        array.fill(0x1000, False)
        array.lookup_read(0x1000)
        array.reset_counters()
        assert array.lookups == array.hits == array.fills == 0


class TestEvictionSA:
    def _addr_in_set(self, sa, set_idx, tag):
        return sa.sa.block_addr(set_idx, tag) * 64

    def test_victim_returned_when_full(self, sa):
        addrs = [self._addr_in_set(sa, 0, t) for t in range(16)]
        for a in addrs[:15]:
            assert sa.fill(a, dirty=False).victim_block_addr is None
        res = sa.fill(addrs[15], dirty=False)
        assert res.victim_block_addr is not None

    def test_lru_victim_choice(self, sa):
        addrs = [self._addr_in_set(sa, 0, t) for t in range(16)]
        for a in addrs[:15]:
            sa.fill(a, dirty=False)
        sa.lookup_read(addrs[0])  # refresh the oldest
        res = sa.fill(addrs[15], dirty=False)
        assert res.victim_block_addr == addrs[1]  # now the LRU

    def test_dirty_victim_flagged(self, sa):
        addrs = [self._addr_in_set(sa, 0, t) for t in range(16)]
        sa.fill(addrs[0], dirty=True)
        for a in addrs[1:15]:
            sa.fill(a, dirty=False)
        res = sa.fill(addrs[15], dirty=False)
        assert res.victim_block_addr == addrs[0]
        assert res.victim_dirty
        assert sa.dirty_evictions == 1

    def test_refill_of_present_block_refreshes(self, sa):
        a = self._addr_in_set(sa, 0, 1)
        sa.fill(a, dirty=True)
        res = sa.fill(a, dirty=False)
        assert res.victim_block_addr is None
        assert sa.probe(a).dirty  # dirty not lost


class TestEvictionDM:
    def test_conflict_evicts(self, dm):
        a0 = 0x0
        a1 = dm.dm.num_entries * 64  # same entry, different tag
        dm.fill(a0, dirty=True)
        res = dm.fill(a1, dirty=False)
        assert res.victim_block_addr == a0
        assert res.victim_dirty
        assert not dm.probe(a0).hit
        assert dm.probe(a1).hit


class TestLocations:
    def test_sa_tag_data_same_row(self, sa):
        addr = 0x123440
        res_row = sa.tag_location(addr) // GEOM.row_bytes
        sa.fill(addr, dirty=False)
        way = sa.probe(addr).way
        assert sa.data_location(addr, way) // GEOM.row_bytes == res_row

    def test_dm_tad_single_location(self, dm):
        addr = 0x123440
        assert dm.tag_location(addr) == dm.data_location(addr, 0)


class TestBulkFill:
    def test_bulk_equivalent_to_sequential(self):
        """bulk_fill must leave the same resident set as fill-by-fill."""
        for orgn in ("sa", "dm"):
            a = DRAMCacheArray(GEOM, orgn)
            b = DRAMCacheArray(GEOM, orgn)
            n = 5000
            a.bulk_fill(0, n, dirty_fraction=0.0)
            for i in range(n):
                b.fill(i * 64, dirty=False)
            hits_a = sum(a.probe(i * 64).hit for i in range(n))
            hits_b = sum(b.probe(i * 64).hit for i in range(n))
            assert hits_a == hits_b

    def test_bulk_dirty_fraction(self):
        a = DRAMCacheArray(GEOM, "sa")
        n = 4000
        a.bulk_fill(0, n, dirty_fraction=0.5, seed=3)
        dirty = sum(a.probe(i * 64).dirty for i in range(n)
                    if a.probe(i * 64).hit)
        resident = sum(a.probe(i * 64).hit for i in range(n))
        assert 0.35 * resident < dirty < 0.65 * resident

    def test_bulk_fill_deterministic(self):
        a = DRAMCacheArray(GEOM, "sa")
        b = DRAMCacheArray(GEOM, "sa")
        a.bulk_fill(0, 3000, dirty_fraction=0.3, seed=7)
        b.bulk_fill(0, 3000, dirty_fraction=0.3, seed=7)
        for i in range(3000):
            assert a.probe(i * 64) == b.probe(i * 64)

    def test_two_ranges_share_capacity(self):
        """Second core's prefill must not wipe the first's (LRU merge)."""
        a = DRAMCacheArray(GEOM, "sa")
        n = 2000  # two small ranges, well within capacity
        a.bulk_fill(0, n, dirty_fraction=0.0)
        a.bulk_fill(1 << 44, n, dirty_fraction=0.0)
        hits0 = sum(a.probe(i * 64).hit for i in range(n))
        hits1 = sum(a.probe((1 << 44) + i * 64).hit for i in range(n))
        assert hits1 == n
        assert hits0 == n  # first range survives

    def test_zero_blocks_noop(self, array):
        array.bulk_fill(0, 0)
        assert array.fills == 0


def _state(a):
    return (a.contents_signature(), a._clock, a.dirty_evictions)


class TestBulkFillMany:
    """bulk_fill_many must be byte-for-byte the sequential composition."""

    @given(st.lists(
        st.tuples(st.integers(0, 3),                  # range id (<< 44)
                  st.integers(0, 4000),               # n_blocks
                  st.floats(0.0, 1.0),                # dirty_fraction
                  st.integers(0, 9)),                 # seed
        min_size=0, max_size=5),
        st.sampled_from(["sa", "dm"]))
    @settings(max_examples=50, deadline=None)
    def test_fused_matches_sequential(self, specs, orgn):
        fills = [(rid << 44, n, df, sd) for rid, n, df, sd in specs]
        a = DRAMCacheArray(GEOM, orgn)
        b = DRAMCacheArray(GEOM, orgn)
        a.bulk_fill_many(fills)
        for start, n, df, sd in fills:
            b.bulk_fill(start, n, dirty_fraction=df, seed=sd)
        assert _state(a) == _state(b)

    def test_overlapping_ranges_match_sequential(self):
        """Same base address twice: later inserts displace earlier ones
        with identical eviction accounting on both paths."""
        # Two 40k-block ranges over ~2.2k 15-way sets: each call's groups
        # exceed the ways (per-call clipping) and the second call's
        # inserts displace the first's survivors (cross-call eviction).
        fills = [(0, 40_000, 0.4, 1), (0, 40_000, 0.6, 2),
                 (1 << 44, 500, 0.0, 3)]
        a = DRAMCacheArray(GEOM, "sa")
        b = DRAMCacheArray(GEOM, "sa")
        a.bulk_fill_many(fills)
        for start, n, df, sd in fills:
            b.bulk_fill(start, n, dirty_fraction=df, seed=sd)
        assert _state(a) == _state(b)
        assert a.dirty_evictions > 0

    def test_warm_array_falls_back_to_sequential(self):
        """A non-pristine array must take the exact sequential path."""
        fills = [(0, 2000, 0.3, 1), (1 << 44, 2000, 0.3, 2)]
        a = DRAMCacheArray(GEOM, "sa")
        b = DRAMCacheArray(GEOM, "sa")
        for arr in (a, b):
            arr.fill(0x12340, dirty=True)
        a.bulk_fill_many(fills)
        for start, n, df, sd in fills:
            b.bulk_fill(start, n, dirty_fraction=df, seed=sd)
        assert _state(a) == _state(b)

    def test_cow_overlay_is_not_treated_as_pristine(self):
        """After capture_state() the sets dict is a copy-on-write overlay
        whose emptiness does not mean the array is empty."""
        a = DRAMCacheArray(GEOM, "sa")
        b = DRAMCacheArray(GEOM, "sa")
        for arr in (a, b):
            arr.bulk_fill(0, 3000, dirty_fraction=0.2, seed=5)
            arr.capture_state()
        fills = [(0, 3000, 0.7, 8)]
        a.bulk_fill_many(fills)
        for start, n, df, sd in fills:
            b.bulk_fill(start, n, dirty_fraction=df, seed=sd)
        assert _state(a) == _state(b)


@given(st.lists(st.integers(0, 300), min_size=1, max_size=200),
       st.sampled_from(["sa", "dm"]))
@settings(max_examples=50, deadline=None)
def test_probe_consistency(blocks, orgn):
    """After any fill sequence, probe agrees with a reference dict model
    restricted to single-set occupancy accounting."""
    a = DRAMCacheArray(GEOM, orgn)
    filled = set()
    for blk in blocks:
        addr = blk * 64
        res = a.fill(addr, dirty=False)
        filled.add(addr)
        if res.victim_block_addr is not None:
            filled.discard(res.victim_block_addr)
    for addr in filled:
        assert a.probe(addr).hit
