"""L2 write buffer: drain policies, coalescing, forwarding flushes."""

from repro.config import WriteBufferConfig, scaled_config
from repro.mem.writebuffer import L2WriteBuffer
from repro.sim.engine import Simulator
from repro.sim.system import System
from repro.workloads.profiles import profile


class _Sink:
    def __init__(self):
        self.calls = []

    def submit(self, addr, core_id):
        self.calls.append((addr, core_id))


def make_buf(**kw):
    sim = Simulator()
    sink = _Sink()
    buf = L2WriteBuffer(sim, WriteBufferConfig(**kw), sink.submit)
    return sim, sink, buf


class TestPassThrough:
    def test_depth0_submits_immediately(self):
        _sim, sink, buf = make_buf()          # depth=0 is the default
        for k in range(3):
            buf.push(k * 0x40, core_id=k)
        assert sink.calls == [(0x00, 0), (0x40, 1), (0x80, 2)]
        assert len(buf) == 0
        assert buf.stats.enqueued == buf.stats.drained == 3
        assert buf.stats.drain_stalls == 0


class TestBuffering:
    def test_coalesces_repeat_addresses(self):
        _sim, sink, buf = make_buf(depth=4)
        buf.push(0x100, 0)
        buf.push(0x100, 1)
        assert len(buf) == 1
        assert buf.stats.coalesced == 1
        assert sink.calls == []

    def test_full_policy_bursts_whole_buffer(self):
        _sim, sink, buf = make_buf(depth=3, policy="full")
        for a in (0x000, 0x040, 0x080):
            buf.push(a, 0)
        assert sink.calls == []
        buf.push(0x0C0, 0)
        assert buf.stats.drain_stalls == 1
        assert [a for a, _ in sink.calls] == [0x000, 0x040, 0x080]  # FIFO
        assert len(buf) == 1               # only the new push remains

    def test_watermark_drains_high_to_low(self):
        # depth=8, defaults high=0.75 (6 entries), low=0.25 (2 entries)
        _sim, sink, buf = make_buf(depth=8)
        for k in range(5):
            buf.push(k * 0x40, 0)
        assert sink.calls == []
        buf.push(5 * 0x40, 0)              # hits the high watermark
        assert len(buf) == 2
        assert [a for a, _ in sink.calls] == [0x000, 0x040, 0x080, 0x0C0]

    def test_idle_policy_drains_after_quiet_window(self):
        sim, sink, buf = make_buf(depth=8, policy="idle", idle_ps=1_000)
        buf.push(0x000, 0)
        buf.push(0x040, 0)
        assert sink.calls == []
        sim.run(until=5_000)
        assert [a for a, _ in sink.calls] == [0x000, 0x040]
        assert buf.stats.idle_drains == 1
        assert len(buf) == 0

    def test_idle_window_restarts_on_new_push(self):
        sim, sink, buf = make_buf(depth=8, policy="idle", idle_ps=1_000)
        buf.push(0x000, 0)
        sim.at(600, lambda _: buf.push(0x040, 0), None)
        sim.run(until=5_000)
        # The check at t=1000 saw a push at t=600 and deferred to t=1600.
        assert buf.stats.idle_drains == 1
        assert [a for a, _ in sink.calls] == [0x000, 0x040]

    def test_flush_forwards_the_named_block(self):
        _sim, sink, buf = make_buf(depth=4)
        buf.push(0x100, 0)
        buf.push(0x140, 1)
        assert buf.flush(0x100) is True
        assert sink.calls == [(0x100, 0)]
        assert buf.stats.forward_flushes == 1
        assert buf.flush(0x9999 & ~0x3F) is False
        assert len(buf) == 1

    def test_occupancy_integral_is_exact(self):
        sim, _sink, buf = make_buf(depth=4)
        buf.push(0x000, 0)                 # t=0, occupancy 1
        sim.at(1_000, lambda _: buf.push(0x040, 0), None)
        sim.run(until=2_000)
        assert buf.stats.occupancy_integral_ps == 1_000  # 1 entry x 1000 ps

    def test_reset_accounting_restarts_integral_clock(self):
        sim, _sink, buf = make_buf(depth=4)
        buf.push(0x000, 0)
        sim.at(1_000, lambda _: buf.reset_accounting(sim.now), None)
        sim.at(1_500, lambda _: buf.push(0x040, 0), None)
        sim.run(until=2_000)
        # Only the 500 ps between the reset and the second push count.
        assert buf.stats.occupancy_integral_ps == 500

    def test_capture_restore_round_trip(self):
        _sim, sink, buf = make_buf(depth=8)   # high mark 6: no auto-drain
        buf.push(0x000, 0)
        buf.push(0x040, 1)
        state = buf.capture_state()
        buf.push(0x080, 2)
        buf.restore_state(state)
        assert len(buf) == 2
        buf._drain_to(0)
        assert [a for a, _ in sink.calls] == [0x000, 0x040]  # FIFO kept


class TestSystemIntegration:
    def test_lee_batches_drain_through_buffer(self):
        cfg = scaled_config(8).with_overrides(
            [("writebuf.depth", 8), ("writebuf.policy", "full")])
        s = System(cfg, "CD", [profile("lbm")] * 2, footprint_scale=1 / 64,
                   seed=2, lee_writeback=True)
        r = s.run(warmup_insts=3_000, measure_insts=8_000,
                  replay_accesses=20_000)
        wb = r.metrics["writebuf"]
        assert r.writebacks > 0
        assert wb["enqueued"] > 0
        assert wb["drained"] > 0
        assert r.writebuf_drain_stalls == wb["drain_stalls"] >= 0
        assert wb["occupancy_integral_ps"] >= 0

    def test_default_depth0_never_stalls(self):
        s = System(scaled_config(8), "CD", [profile("lbm")] * 2,
                   footprint_scale=1 / 64, seed=2)
        r = s.run(warmup_insts=3_000, measure_insts=8_000,
                  replay_accesses=20_000)
        wb = r.metrics["writebuf"]
        assert wb["drain_stalls"] == 0
        assert wb["enqueued"] == wb["drained"]   # pure pass-through
        assert r.writebuf_drain_stalls == 0
