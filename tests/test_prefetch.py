"""Prefetchers: candidate generation, training, system integration."""

import pytest

from repro.config import PrefetchConfig, scaled_config
from repro.mem.prefetch import (NextLinePrefetcher, StridePrefetcher,
                                make_prefetcher)
from repro.sim.system import System
from repro.workloads.profiles import profile

BLOCK = 64


class TestNextLine:
    def test_miss_triggers_next_lines(self):
        pf = NextLinePrefetcher(BLOCK, degree=2)
        assert list(pf.on_access(0x1000, 0, hit=False)) == [0x1040, 0x1080]

    def test_hit_is_quiet(self):
        pf = NextLinePrefetcher(BLOCK)
        assert list(pf.on_access(0x1000, 0, hit=True)) == []

    def test_fill_extends_the_stream(self):
        pf = NextLinePrefetcher(BLOCK, degree=2)
        assert list(pf.on_fill(0x1040)) == [0x1040 + 2 * BLOCK]

    def test_stateless_capture(self):
        pf = NextLinePrefetcher(BLOCK)
        assert pf.capture_state() == {}
        pf.restore_state({})               # must be a no-op, not an error


class TestStride:
    def make(self, **kw):
        kw.setdefault("min_confidence", 2)
        return StridePrefetcher(BLOCK, **kw)

    def test_needs_confidence_before_issuing(self):
        pf = self.make()
        pc = 0x400
        assert list(pf.on_access(0x1000, pc, False)) == []   # allocate
        assert list(pf.on_access(0x1080, pc, False)) == []   # conf 1
        assert list(pf.on_access(0x1100, pc, False)) == [0x1180]  # conf 2

    def test_degree_projects_multiple_strides(self):
        pf = self.make(degree=3)
        pc = 0x400
        for addr in (0x1000, 0x1080, 0x1100):
            out = pf.on_access(addr, pc, False)
        assert list(out) == [0x1180, 0x1200, 0x1280]

    def test_stride_change_resets_confidence(self):
        pf = self.make()
        pc = 0x400
        for addr in (0x1000, 0x1080, 0x1100):
            pf.on_access(addr, pc, False)
        assert list(pf.on_access(0x1140, pc, False)) == []   # new stride: conf 1
        assert list(pf.on_access(0x1180, pc, False)) == [0x11C0]  # conf 2

    def test_zero_stride_never_issues(self):
        pf = self.make()
        pc = 0x400
        for _ in range(5):
            assert list(pf.on_access(0x1000, pc, False)) == []

    def test_table_aliasing_replaces_entry(self):
        pf = self.make(table_entries=4)
        pf.on_access(0x1000, 1, False)
        pf.on_access(0x1080, 1, False)
        pf.on_access(0x2000, 5, False)     # 5 % 4 == 1: evicts pc 1
        assert list(pf.on_access(0x1100, 1, False)) == []    # retrains

    def test_fill_is_quiet(self):
        assert list(self.make().on_fill(0x1000)) == []

    def test_capture_restore_round_trip(self):
        pf = self.make()
        pc = 0x400
        pf.on_access(0x1000, pc, False)
        pf.on_access(0x1080, pc, False)
        state = pf.capture_state()
        pf.on_access(0x9000, pc, False)    # wild jump corrupts the row
        pf.restore_state(state)
        # Restored at confidence 1: the next striding access issues.
        assert list(pf.on_access(0x1100, pc, False)) == [0x1180]
        # The captured state is a value copy, not a shared reference.
        pf.on_access(0x8000, pc, False)
        assert state == {pc % 64: [pc, 0x1080, 0x80, 1]}


class TestFactory:
    def test_dispatch(self):
        assert isinstance(
            make_prefetcher(PrefetchConfig(kind="nextline"), BLOCK),
            NextLinePrefetcher)
        assert isinstance(
            make_prefetcher(PrefetchConfig(kind="stride"), BLOCK),
            StridePrefetcher)

    def test_none_has_no_prefetcher(self):
        with pytest.raises(ValueError):
            make_prefetcher(PrefetchConfig(kind="none"), BLOCK)


def run_system(overrides, benchmarks=None, **kw):
    cfg = scaled_config(8).with_overrides(overrides)
    benchmarks = benchmarks or [profile("lbm"), profile("milc")]
    s = System(cfg, "CD", benchmarks, footprint_scale=1 / 64, seed=3, **kw)
    return s, s.run(warmup_insts=3_000, measure_insts=8_000,
                    replay_accesses=20_000)


class TestSystemIntegration:
    def test_nextline_prefetching_is_useful(self):
        _s, r = run_system([("prefetch.kind", "nextline"),
                            ("writebuf.depth", 4)])
        assert r.prefetch_issued > 0
        assert r.prefetch_useful > 0
        assert r.writebuf_drain_stalls >= 0
        pf = r.metrics["prefetch"]
        assert 0.0 <= pf["accuracy"] <= 1.0
        assert pf["issued"] == r.prefetch_issued
        assert pf["useful"] >= pf["late"]

    def test_stride_prefetcher_runs(self):
        _s, r = run_system([("prefetch.kind", "stride"),
                            ("prefetch.degree", 2)])
        assert "prefetch" in r.metrics
        assert r.prefetch_issued >= 0
        assert all(i > 0 for i in r.ipcs)

    def test_default_config_mounts_no_prefetch_group(self):
        _s, r = run_system([])
        assert "prefetch" not in r.metrics
        assert r.prefetch_issued == 0 == r.prefetch_useful

    def test_partition_must_leave_demand_slots(self):
        cfg = scaled_config(8).with_overrides(
            [("prefetch.kind", "nextline"), ("prefetch.mshr_entries", 32)])
        with pytest.raises(ValueError):
            System(cfg, "CD", [profile("gcc")], footprint_scale=1 / 64)
