"""Substrate protocol + timing invariants for both fidelity models.

Property-style pins over random issue streams:

* bursts never overlap on the shared data bus and ``bus_free`` is
  monotone (both fidelities, every page policy);
* CAS spacing respects the tRCD / tRP+tRCD composition on closed /
  conflicting rows;
* the command model admits at most four ACTs per rank inside any tFAW
  window and spaces same-rank ACTs by at least tRRD;
* ``estimate_burst_start`` always equals the start ``issue`` commits;
* refresh fires on schedule, blacks the rank out for tRFC, and is
  accounted (issued / postponed / ACT stalls);
* page policies close rows (and are visible as row-closed accesses);
* lazy bookkeeping is deterministic: interleaving estimates with issues
  never changes any committed time or counter;
* the substrate config rides the sweep axis machinery end to end with
  the new counters visible in results.json.
"""

from __future__ import annotations

import random
from dataclasses import replace

import pytest

from repro.config import (
    DRAMOrganization,
    DRAMTimings,
    SubstrateConfig,
    ns,
)
from repro.dram.bank import ROW_HIT, RowState
from repro.dram.channel import Channel
from repro.dram.command import FAW_DEPTH, CommandChannel
from repro.dram.stats import ChannelStats, CommandChannelStats
from repro.dram.substrate import Substrate, make_channel

T = DRAMTimings.stacked()
ORG = DRAMOrganization(ranks_per_channel=2, banks_per_rank=8)

FIDELITY_POINTS = [
    SubstrateConfig(),
    SubstrateConfig(fidelity="command"),
    SubstrateConfig(fidelity="command", page_policy="closed"),
    SubstrateConfig(fidelity="command", page_policy="timeout"),
    SubstrateConfig(fidelity="command", refresh=False),
]


def _ids(sub: SubstrateConfig) -> str:
    return f"{sub.fidelity}-{sub.page_policy}" + ("" if sub.refresh else "-norefresh")


def random_stream(rng: random.Random, n: int):
    """(rank, bank, row, is_write, now) with a drifting decision clock."""
    now = 0
    for _ in range(n):
        yield (rng.randrange(ORG.ranks_per_channel),
               rng.randrange(ORG.banks_per_rank),
               rng.randrange(16), rng.random() < 0.3, now)
        # Mostly same-time batches (the controller's issue window), with
        # occasional jumps past refresh intervals and page timeouts.
        r = rng.random()
        if r < 0.6:
            pass
        elif r < 0.9:
            now += rng.randrange(1, 3 * T.tBURST)
        else:
            now += rng.randrange(T.tREFI // 2, 2 * T.tREFI)


class TestTimingsValidation:
    def test_stock_timings_valid(self):
        DRAMTimings.stacked()
        DRAMTimings.ddr3_1600()

    @pytest.mark.parametrize("field", ["tRCD", "tCAS", "tRP", "tRAS",
                                       "tWTR", "tRTP", "tRTW", "tWR",
                                       "tBURST"])
    @pytest.mark.parametrize("bad", [0, -1])
    def test_core_timings_must_be_positive(self, field, bad):
        with pytest.raises(ValueError, match=field):
            replace(DRAMTimings.stacked(), **{field: bad})

    @pytest.mark.parametrize("field", ["tRRD", "tFAW", "tREFI", "tRFC"])
    def test_rank_timings_reject_negative(self, field):
        with pytest.raises(ValueError, match=field):
            replace(DRAMTimings.stacked(), **{field: -1})

    def test_rank_timings_zero_disables(self):
        t = replace(DRAMTimings.stacked(), tRRD=0, tFAW=0, tREFI=0, tRFC=0)
        assert t.tFAW == 0

    def test_faw_shorter_than_rrd_rejected(self):
        with pytest.raises(ValueError, match="tFAW"):
            replace(DRAMTimings.stacked(), tRRD=ns(10), tFAW=ns(5))

    def test_rfc_swallowing_refi_rejected(self):
        with pytest.raises(ValueError, match="tRFC"):
            replace(DRAMTimings.stacked(), tREFI=ns(100), tRFC=ns(100))

    def test_refi_without_rfc_rejected(self):
        with pytest.raises(ValueError, match="tRFC"):
            replace(DRAMTimings.stacked(), tRFC=0)


class TestSubstrateConfigValidation:
    def test_defaults(self):
        sub = SubstrateConfig()
        assert sub.fidelity == "burst" and sub.page_policy == "open"

    def test_unknown_fidelity_rejected(self):
        with pytest.raises(ValueError, match="fidelity"):
            SubstrateConfig(fidelity="cycle")

    def test_unknown_page_policy_rejected(self):
        with pytest.raises(ValueError, match="page policy"):
            SubstrateConfig(page_policy="adaptive")

    def test_bad_timeout_rejected(self):
        with pytest.raises(ValueError, match="page_timeout_ps"):
            SubstrateConfig(page_timeout_ps=0)

    def test_factory_rejects_unknown_fidelity(self):
        # Bypass SubstrateConfig's own validation to pin the factory's.
        class Fake:
            fidelity = "cycle"
        with pytest.raises(ValueError, match="fidelity"):
            make_channel(T, ORG, Fake())


class TestProtocol:
    @pytest.mark.parametrize("sub", FIDELITY_POINTS, ids=_ids)
    def test_models_satisfy_protocol(self, sub):
        assert isinstance(make_channel(T, ORG, sub), Substrate)

    def test_factory_picks_model_and_stats(self):
        burst = make_channel(T, ORG)
        cmd = make_channel(T, ORG, SubstrateConfig(fidelity="command"))
        assert type(burst) is Channel
        assert type(cmd) is CommandChannel
        # Burst keeps the plain counter group: its metric snapshots (and
        # the golden pins over them) must not grow command-only keys.
        assert type(burst.stats) is ChannelStats
        assert type(cmd.stats) is CommandChannelStats
        assert "refreshes_issued" not in burst.stats.snapshot()
        assert "refreshes_issued" in cmd.stats.snapshot()

    def test_row_state_enum_single_definition(self):
        from repro.dram import channel as chmod
        from repro.dram import bank as bmod
        assert chmod.RowState is bmod.RowState
        assert RowState.HIT == ROW_HIT == 0


class TestBusInvariants:
    @pytest.mark.parametrize("sub", FIDELITY_POINTS, ids=_ids)
    def test_bursts_never_overlap_and_bus_monotone(self, sub):
        rng = random.Random(0xB05)
        ch = make_channel(T, ORG, sub)
        prev_end = 0
        prev_bus_free = 0
        for rank, bank, row, is_write, now in random_stream(rng, 400):
            start, end = ch.issue(rank, bank, row, is_write, now)
            assert end - start == T.tBURST
            assert start >= now
            assert start >= prev_end, "bursts overlapped on the bus"
            assert ch.bus_free >= prev_bus_free, "bus_free went backwards"
            prev_end, prev_bus_free = end, ch.bus_free

    @pytest.mark.parametrize("sub", FIDELITY_POINTS, ids=_ids)
    def test_estimate_matches_issue(self, sub):
        rng = random.Random(0xE57)
        ch = make_channel(T, ORG, sub)
        for rank, bank, row, is_write, now in random_stream(rng, 300):
            est = ch.estimate_burst_start(rank, bank, row, is_write, now)
            start, _ = ch.issue(rank, bank, row, is_write, now)
            assert est == start


class TestCasComposition:
    @pytest.mark.parametrize("sub", [SubstrateConfig(),
                                     SubstrateConfig(fidelity="command")],
                             ids=["burst", "command"])
    def test_closed_row_pays_trcd(self, sub):
        ch = make_channel(T, ORG, sub)
        start, _ = ch.issue(0, 0, 5, False, 0)
        assert start >= T.tRCD + T.tCAS

    @pytest.mark.parametrize("sub", [SubstrateConfig(),
                                     SubstrateConfig(fidelity="command")],
                             ids=["burst", "command"])
    def test_conflict_pays_trp_trcd(self, sub):
        ch = make_channel(T, ORG, sub)
        _, end = ch.issue(0, 0, 5, False, 0)
        # Decide long after tRAS/tRTP windows so only tRP+tRCD remain.
        now = end + T.tRAS + T.tWR
        start, _ = ch.issue(0, 0, 6, False, now)
        assert start >= now + T.tRP + T.tRCD + T.tCAS

    @pytest.mark.parametrize("sub", [SubstrateConfig(),
                                     SubstrateConfig(fidelity="command")],
                             ids=["burst", "command"])
    def test_row_hit_skips_activation(self, sub):
        ch = make_channel(T, ORG, sub)
        _, end = ch.issue(0, 0, 5, False, 0)
        now = end
        start, _ = ch.issue(0, 0, 5, False, now)
        assert start < now + T.tRCD + T.tCAS


class TestRankConstraints:
    def _act_times(self, stream_len=600, seed=0xFA3):
        """Issue a random stream; return per-rank effective ACT times."""
        rng = random.Random(seed)
        ch = make_channel(T, ORG, SubstrateConfig(fidelity="command"))
        acts: dict[int, list[int]] = {r: [] for r in
                                      range(ORG.ranks_per_channel)}
        for rank, bank, row, is_write, now in random_stream(rng, stream_len):
            pre_state = ch.banks[ch.bank_index(rank, bank)].row_state(row)
            start, _ = ch.issue(rank, bank, row, is_write, now)
            if pre_state != ROW_HIT:
                acts[rank].append(start - T.tCAS - T.tRCD)
        return acts

    def test_at_most_four_acts_per_faw_window(self):
        acts = self._act_times()
        assert any(len(v) > FAW_DEPTH for v in acts.values()), \
            "stream too small to exercise the window"
        for rank, times in acts.items():
            assert times == sorted(times)
            for i in range(FAW_DEPTH, len(times)):
                assert times[i] - times[i - FAW_DEPTH] >= T.tFAW, (
                    f"rank {rank}: five ACTs inside one tFAW window "
                    f"at index {i}")

    def test_trrd_spacing(self):
        for rank, times in self._act_times(seed=0x44D).items():
            for a, b in zip(times, times[1:]):
                assert b - a >= T.tRRD, f"rank {rank}: ACTs {a},{b}"

    def test_ranks_are_independent(self):
        """Saturating rank 0's ACT window must not delay rank 1."""
        ch = make_channel(T, ORG, SubstrateConfig(fidelity="command"))
        for b in range(FAW_DEPTH):
            ch.issue(0, b, 3, False, 0)
        assert ch.stats.rrd_stalls + ch.stats.faw_stalls >= FAW_DEPTH - 1
        est_rank1 = ch.estimate_burst_start(1, 0, 3, False, 0)
        # Rank 1's first ACT is bus-bound only, never window-bound.
        assert est_rank1 <= ch.bus_free + T.tBURST

    def test_disabled_by_zero_timings(self):
        t = replace(T, tRRD=0, tFAW=0)
        ch = CommandChannel(t, ORG, substrate=SubstrateConfig(
            fidelity="command"))
        for b in range(8):
            ch.issue(0, b, 3, False, 0)
        assert ch.stats.rrd_stalls == 0
        assert ch.stats.faw_stalls == 0


class TestRefresh:
    def make(self, refresh=True, **tweaks):
        t = replace(T, **tweaks) if tweaks else T
        return CommandChannel(t, ORG, substrate=SubstrateConfig(
            fidelity="command", refresh=refresh))

    def test_refresh_count_tracks_elapsed_time(self):
        ch = self.make()
        ch.issue(0, 0, 1, False, 0)
        k = 9
        ch.issue(0, 0, 1, False, k * T.tREFI + T.tREFI // 2)
        # Rank 0 owed k refreshes over the idle gap (give or take the one
        # whose due time the second access straddles).
        assert k - 1 <= ch.stats.refreshes_issued <= k + 1

    def test_refresh_closes_rows(self):
        ch = self.make()
        ch.issue(0, 0, 7, False, 0)
        assert ch.banks[0].open_row == 7
        ch.issue(0, 1, 3, False, 2 * T.tREFI)   # sync via a sibling bank
        assert ch.banks[0].open_row is None, "refresh must precharge"

    def test_act_after_refresh_waits_for_blackout(self):
        ch = self.make()
        ch.issue(0, 0, 1, False, 0)
        now = T.tREFI + 1          # just past the due time
        start, _ = ch.issue(0, 2, 5, False, now)
        assert start >= T.tREFI + T.tRFC + T.tRCD + T.tCAS
        assert ch.stats.refresh_stalls == 1

    def test_postponed_refresh_accounted(self):
        ch = self.make()
        # Park an access just before the due time: its tRAS/tRTP window
        # makes the rank un-prechargeable at the due instant.
        ch.issue(0, 0, 1, False, T.tREFI - T.tBURST)
        ch.issue(0, 1, 2, False, T.tREFI + T.tRAS)
        assert ch.stats.refreshes_issued == 1
        assert ch.stats.refreshes_postponed == 1
        assert ch.stats.refresh_postpone_rate == 1.0

    def test_refresh_off_by_config(self):
        ch = self.make(refresh=False)
        ch.issue(0, 0, 1, False, 0)
        ch.issue(0, 0, 1, False, 20 * T.tREFI)
        assert ch.stats.refreshes_issued == 0

    def test_refresh_off_by_zero_trefi(self):
        ch = self.make(tREFI=0, tRFC=0)
        ch.issue(0, 0, 1, False, 0)
        ch.issue(0, 0, 1, False, 10**9)
        assert ch.stats.refreshes_issued == 0


class TestPagePolicies:
    def test_closed_policy_precharges_every_access(self):
        ch = make_channel(T, ORG, SubstrateConfig(
            fidelity="command", page_policy="closed"))
        ch.issue(0, 0, 5, False, 0)
        assert ch.banks[0].open_row is None
        ch.issue(0, 0, 5, False, 10**6)
        assert ch.stats.policy_closes == 2
        assert ch.stats.read_row_hits == 0
        assert ch.stats.read_row_closed == 2

    def test_timeout_policy_closes_idle_rows_only(self):
        sub = SubstrateConfig(fidelity="command", page_policy="timeout",
                              page_timeout_ps=ns(100))
        ch = make_channel(T, ORG, sub)
        _, end = ch.issue(0, 0, 5, False, 0)
        # Quick re-access: still a row hit.
        _, end = ch.issue(0, 0, 5, False, end + ns(10))
        assert ch.stats.read_row_hits == 1
        # Long idle: the policy precharged at last_end + timeout.
        start, _ = ch.issue(0, 0, 5, False, end + ns(500))
        assert ch.stats.policy_closes == 1
        assert ch.stats.read_row_closed == 2   # cold open + re-open
        assert ch.banks[0].open_row == 5

    def test_open_policy_never_closes(self):
        ch = make_channel(T, ORG, SubstrateConfig(fidelity="command",
                                                  refresh=False))
        _, end = ch.issue(0, 0, 5, False, 0)
        ch.issue(0, 0, 5, False, end + 10 * T.tREFI)
        assert ch.stats.policy_closes == 0
        assert ch.stats.read_row_hits == 1


class TestDeterminism:
    def test_estimates_never_perturb_outcomes(self):
        """The command model's lazy bookkeeping mutates on queries; the
        committed schedule must be identical whether or not estimates
        were interleaved (else scheduler probing would bend results)."""
        rng = random.Random(0xDE7)
        stream = list(random_stream(rng, 300))
        sub = SubstrateConfig(fidelity="command", page_policy="timeout")

        plain = make_channel(T, ORG, sub)
        probed = make_channel(T, ORG, sub)
        outs_plain, outs_probed = [], []
        for rank, bank, row, is_write, now in stream:
            outs_plain.append(plain.issue(rank, bank, row, is_write, now))
            # Probe several unrelated banks first, then issue.
            for b in range(ORG.banks_per_rank):
                probed.estimate_burst_start(rank ^ 1, b, row, not is_write,
                                            now)
                probed.estimate_burst_start(rank, b, row, is_write, now)
            outs_probed.append(probed.issue(rank, bank, row, is_write, now))
        assert outs_plain == outs_probed
        assert plain.stats == probed.stats

    def test_capture_restore_replays_identically(self):
        rng = random.Random(0xCAF)
        stream = list(random_stream(rng, 240))
        sub = SubstrateConfig(fidelity="command", page_policy="timeout")
        ch = make_channel(T, ORG, sub)
        for rank, bank, row, is_write, now in stream[:120]:
            ch.issue(rank, bank, row, is_write, now)
        snap = ch.capture_state()

        fork = make_channel(T, ORG, sub)
        fork.restore_state(snap)
        assert fork.capture_state() == snap
        tail = [ch.issue(*op) for op in stream[120:]]
        fork_tail = [fork.issue(*op) for op in stream[120:]]
        assert tail == fork_tail
        assert ch.capture_state() == fork.capture_state()

    def test_restore_rejects_bank_mismatch(self):
        ch = make_channel(T, ORG)
        other = make_channel(T, DRAMOrganization(ranks_per_channel=1,
                                                 banks_per_rank=4))
        with pytest.raises(ValueError, match="bank count"):
            other.restore_state(ch.capture_state())


class TestSweepIntegration:
    def test_fidelity_axis_compiles(self):
        from repro.scenarios.spec import SweepSpec
        sweep = SweepSpec(name="sub", axes={
            "substrate.fidelity": ["burst", "command"]},
            base={"mix_id": 1})
        points = sweep.compile()
        assert len(points) == 2
        assert [dict(p.spec.config)["substrate.fidelity"] for p in points] \
            == ["burst", "command"]

    def test_bad_fidelity_axis_is_a_spec_error(self):
        from repro.scenarios.spec import SweepSpec
        with pytest.raises(ValueError, match="fidelity"):
            SweepSpec(name="sub", axes={
                "substrate.fidelity": ["burst", "cycle"]},
                base={"mix_id": 1})

    def test_sweep_end_to_end_surfaces_command_counters(self, tmp_path):
        """`dca-repro sweep --axis substrate.fidelity=burst,command` runs
        through the full engine, and the command point's results.json
        metrics snapshot carries the refresh/tFAW counters."""
        import json
        from repro.experiments.common import SimParams
        from repro.scenarios.executor import run_sweep
        from repro.scenarios.spec import SweepSpec

        sweep = SweepSpec(
            name="subfid",
            axes={"substrate.fidelity": ["burst", "command"]},
            # Short tREFI so refresh fires at this tiny scale.
            base={"mix_id": 1, "timings.tREFI": 400_000})
        params = SimParams(warmup_insts=2_000, measure_insts=6_000,
                           replay_accesses=1_000)
        outcome = run_sweep(sweep, params, jobs=1, out_dir=tmp_path,
                            cache_dir=tmp_path / "cache")
        assert not outcome.failures
        data = json.loads((tmp_path / "subfid" / "results.json").read_text())
        by_fid = {p["axes"]["substrate.fidelity"]: p["result"]
                  for p in data["points"]}
        burst_sub = by_fid["burst"]["metrics"]["substrate_total"]
        cmd_sub = by_fid["command"]["metrics"]["substrate_total"]
        assert "refreshes_issued" not in burst_sub
        assert cmd_sub["refreshes_issued"] > 0
        assert cmd_sub["rrd_stalls"] + cmd_sub["faw_stalls"] > 0
        # The command model's constraints cost simulated time.
        assert (by_fid["command"]["elapsed_ps"]
                != by_fid["burst"]["elapsed_ps"])


def test_command_channel_rejects_plain_stats():
    from repro.dram.stats import ChannelStats
    with pytest.raises(TypeError, match="CommandChannelStats"):
        make_channel(T, ORG, SubstrateConfig(fidelity="command"),
                     stats=ChannelStats())


def test_command_restore_rejects_rank_mismatch():
    sub = SubstrateConfig(fidelity="command")
    one_by_16 = make_channel(T, DRAMOrganization(ranks_per_channel=1,
                                                 banks_per_rank=16), sub)
    two_by_8 = make_channel(T, ORG, sub)
    # Same total bank count: only the rank-structure check can catch it.
    with pytest.raises(ValueError, match="rank/bank structure"):
        two_by_8.restore_state(one_by_16.capture_state())


def test_failed_restore_leaves_channel_unchanged():
    ch = make_channel(T, ORG)
    ch.issue(0, 0, 5, False, 0)
    before = ch.capture_state()
    foreign = make_channel(T, DRAMOrganization(ranks_per_channel=1,
                                               banks_per_rank=4))
    foreign.issue(0, 1, 2, True, 0)
    with pytest.raises(ValueError):
        ch.restore_state(foreign.capture_state())
    assert ch.capture_state() == before, "rejected restore must be atomic"
