"""Experiment harness: specs, result store, speedup tables, CLI plumbing."""

import json

import pytest

from repro.experiments import common
from repro.experiments.common import (
    GridExecutionError,
    ResultStore,
    RunSpec,
    SimParams,
    alone_ipc_table,
    alone_specs,
    format_table,
    grid_specs,
    mix_weighted_speedup,
    run_grid,
    run_one,
)
from repro.experiments import table1_workloads, table2_params
from repro.experiments.runner import MODULES, build_parser
from repro.sim.system import RESULT_SCHEMA_VERSION, ResultSchemaError, SystemResult

QUICK = SimParams(warmup_insts=2_000, measure_insts=5_000,
                  replay_accesses=1_000)


class TestRunSpec:
    def test_benchmarks_from_mix(self):
        assert len(RunSpec("CD", mix_id=3).benchmarks()) == 4

    def test_benchmarks_alone(self):
        profs = RunSpec("CD", alone_benchmark="mcf").benchmarks()
        assert [p.name for p in profs] == ["mcf"]

    def test_needs_target(self):
        with pytest.raises(ValueError):
            RunSpec("CD").benchmarks()

    def test_label(self):
        assert RunSpec("DCA", xor_remap=True).label() == "XOR+DCA"
        assert RunSpec("CD", lee_writeback=True).label() == "LEE+CD"
        assert (RunSpec("DCA", workload="adversarial_conflict").label()
                == "DCA:adversarial_conflict")
        assert (RunSpec("DCA", config=(("queues.read_entries", 16),)).label()
                == "DCA[queues.read_entries=16]")

    def test_grid_specs_cross_product(self):
        specs = grid_specs([1, 2], ("sa", "dm"), remaps=(False, True))
        assert len(specs) == 2 * 2 * 2 * 3
        assert len(set(specs)) == len(specs)   # hashable + unique

    def test_alone_specs_cover_all_benchmarks(self):
        specs = alone_specs("sa")
        assert len(specs) == 11
        assert all(s.design == "CD" for s in specs)


class TestRunOne:
    def test_produces_result(self):
        res = run_one(RunSpec("DCA", mix_id=1), QUICK)
        assert isinstance(res, SystemResult)
        assert len(res.ipcs) == 4
        assert res.design == "DCA"

    def test_deterministic(self):
        r1 = run_one(RunSpec("CD", mix_id=2), QUICK)
        r2 = run_one(RunSpec("CD", mix_id=2), QUICK)
        assert r1.ipcs == r2.ipcs


class TestCaching:
    def test_cache_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        spec = RunSpec("CD", alone_benchmark="gcc")
        first = run_grid([spec], QUICK, jobs=1)
        files = list(tmp_path.glob("*.json"))
        assert len(files) == 1
        second = run_grid([spec], QUICK, jobs=1)
        assert second[spec].ipcs == first[spec].ipcs

    def test_corrupt_cache_ignored(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        spec = RunSpec("CD", alone_benchmark="gcc")
        key = common._spec_key(spec, QUICK)
        (tmp_path / f"{key}.json").write_text("{not json")
        out = run_grid([spec], QUICK, jobs=1)
        assert out[spec].ipcs[0] > 0

    def test_key_distinguishes_specs(self):
        k1 = common._spec_key(RunSpec("CD", mix_id=1), QUICK)
        k2 = common._spec_key(RunSpec("DCA", mix_id=1), QUICK)
        k3 = common._spec_key(RunSpec("CD", mix_id=1), SimParams())
        assert len({k1, k2, k3}) == 3

    def test_key_tracks_trace_file_content(self, tmp_path):
        """Editing a trace:<path> file must change the cache key — the
        path alone would silently serve results of the old contents."""
        path = tmp_path / "w.trace"
        path.write_text("1 0 r\n")
        spec = RunSpec("CD", workload=f"trace:{path}")
        store = ResultStore(tmp_path)
        k1 = store.key(spec, QUICK)
        assert store.key(spec, QUICK) == k1   # stable while unchanged
        path.write_text("1 64 w\n")
        assert store.key(spec, QUICK) != k1
        # non-trace specs are unaffected by the token machinery
        assert common._workload_content_token(None) is None
        assert common._workload_content_token("adversarial_conflict") is None

    def test_explicit_cache_dir_parameter(self, tmp_path):
        spec = RunSpec("CD", alone_benchmark="gcc")
        run_grid([spec], QUICK, jobs=1, cache_dir=tmp_path / "c")
        assert list((tmp_path / "c").glob("*.json"))

    def test_use_cache_false_reads_and_writes_nothing(self, tmp_path):
        spec = RunSpec("CD", alone_benchmark="gcc")
        out = run_grid([spec], QUICK, jobs=1, use_cache=False,
                       cache_dir=tmp_path / "c")
        assert out[spec].ipcs[0] > 0
        assert not (tmp_path / "c").exists()


class TestResultStore:
    SPEC = RunSpec("CD", alone_benchmark="gcc")

    def store_with_entry(self, tmp_path):
        store = ResultStore(tmp_path)
        result = run_one(self.SPEC, QUICK)
        store.store(self.SPEC, QUICK, result)
        return store, result

    def test_round_trip(self, tmp_path):
        store, result = self.store_with_entry(tmp_path)
        loaded = store.load(self.SPEC, QUICK)
        assert loaded is not None
        assert loaded.ipcs == result.ipcs
        assert loaded.metrics == result.metrics

    def test_key_includes_schema_version(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path)
        k_now = store.key(self.SPEC, QUICK)
        monkeypatch.setattr(common, "RESULT_SCHEMA_VERSION",
                            RESULT_SCHEMA_VERSION + 1)
        assert store.key(self.SPEC, QUICK) != k_now

    def test_pre_refactor_entry_rejected(self, tmp_path):
        """An entry without schema_version (old code) is a miss even if it
        lands on the current key (defence in depth below the key change)."""
        store, result = self.store_with_entry(tmp_path)
        path = store.path(self.SPEC, QUICK)
        old = json.loads(path.read_text())
        del old["schema_version"]
        del old["metrics"]
        path.write_text(json.dumps(old))
        assert store.load(self.SPEC, QUICK) is None

    def test_wrong_schema_version_rejected(self, tmp_path):
        store, _ = self.store_with_entry(tmp_path)
        path = store.path(self.SPEC, QUICK)
        data = json.loads(path.read_text())
        data["schema_version"] = RESULT_SCHEMA_VERSION + 999
        path.write_text(json.dumps(data))
        assert store.load(self.SPEC, QUICK) is None

    def test_unknown_extra_field_rejected(self, tmp_path):
        store, _ = self.store_with_entry(tmp_path)
        path = store.path(self.SPEC, QUICK)
        data = json.loads(path.read_text())
        data["field_from_the_future"] = 1
        path.write_text(json.dumps(data))
        assert store.load(self.SPEC, QUICK) is None

    def test_disabled_store_is_inert(self, tmp_path):
        store = ResultStore(tmp_path / "c", enabled=False)
        store.store(self.SPEC, QUICK, run_one(self.SPEC, QUICK))
        assert not (tmp_path / "c").exists()
        assert store.load(self.SPEC, QUICK) is None

    def test_truncated_entry_is_a_miss(self, tmp_path):
        """A torn write (e.g. disk full mid-rename fallback) is a miss."""
        store, _ = self.store_with_entry(tmp_path)
        path = store.path(self.SPEC, QUICK)
        text = path.read_text()
        path.write_text(text[:len(text) // 2])
        assert store.load(self.SPEC, QUICK) is None

    def test_empty_entry_is_a_miss(self, tmp_path):
        store, _ = self.store_with_entry(tmp_path)
        store.path(self.SPEC, QUICK).write_text("")
        assert store.load(self.SPEC, QUICK) is None

    def test_wrong_json_type_is_a_miss(self, tmp_path):
        store, _ = self.store_with_entry(tmp_path)
        store.path(self.SPEC, QUICK).write_text("[1, 2, 3]")
        assert store.load(self.SPEC, QUICK) is None

    def test_partial_field_set_is_a_miss(self, tmp_path):
        """An entry missing fields (partial schema migration) is a miss."""
        store, _ = self.store_with_entry(tmp_path)
        path = store.path(self.SPEC, QUICK)
        data = json.loads(path.read_text())
        del data["ipcs"]
        del data["metrics"]
        path.write_text(json.dumps(data))
        assert store.load(self.SPEC, QUICK) is None

    def test_binary_garbage_is_a_miss(self, tmp_path):
        store, _ = self.store_with_entry(tmp_path)
        store.path(self.SPEC, QUICK).write_bytes(b"\xff\xfe\x00garbage")
        assert store.load(self.SPEC, QUICK) is None

    def test_from_cache_dict_validates(self):
        with pytest.raises(ResultSchemaError):
            SystemResult.from_cache_dict({"schema_version": -1})
        with pytest.raises(ResultSchemaError):
            SystemResult.from_cache_dict([1, 2, 3])


class TestResultRoundTrip:
    def test_json_round_trip_is_lossless(self):
        result = run_one(RunSpec("DCA", mix_id=1), QUICK)
        wire = json.loads(json.dumps(result.to_cache_dict()))
        restored = SystemResult.from_cache_dict(wire)
        assert restored == result

    def test_metrics_snapshot_deterministic(self):
        """Two identical RunSpec runs produce bit-identical snapshots."""
        spec = RunSpec("DCA", mix_id=2)
        s1 = json.dumps(run_one(spec, QUICK).metrics, sort_keys=False)
        s2 = json.dumps(run_one(spec, QUICK).metrics, sort_keys=False)
        assert s1 == s2

    def test_metrics_snapshot_covers_layers(self):
        result = run_one(RunSpec("CD", mix_id=1), QUICK)
        assert {"controller", "substrate", "substrate_total", "l2",
                "mainmem"} <= set(result.metrics)
        assert result.metrics["controller"]["reads_done"] == result.reads_done


class TestFailureIsolation:
    GOOD = RunSpec("CD", alone_benchmark="gcc")
    BAD = RunSpec("BOGUS", alone_benchmark="gcc")

    def test_one_crash_does_not_kill_the_grid(self, tmp_path):
        with pytest.raises(GridExecutionError) as exc_info:
            run_grid([self.BAD, self.GOOD], QUICK, jobs=1,
                     cache_dir=tmp_path)
        err = exc_info.value
        assert list(err.failures) == [self.BAD]
        assert "unknown design" in err.failures[self.BAD]
        # The good point completed, was returned, and was cached.
        assert err.results[self.GOOD].ipcs[0] > 0
        assert ResultStore(tmp_path).load(self.GOOD, QUICK) is not None

    def test_parallel_crash_isolated_too(self, tmp_path):
        with pytest.raises(GridExecutionError) as exc_info:
            run_grid([self.GOOD, self.BAD], QUICK, jobs=2,
                     cache_dir=tmp_path)
        assert list(exc_info.value.failures) == [self.BAD]
        assert self.GOOD in exc_info.value.results

    def test_results_keyed_in_input_order(self, tmp_path):
        specs = [RunSpec("CD", alone_benchmark=b)
                 for b in ("mcf", "gcc", "astar")]
        out = run_grid(specs, QUICK, jobs=3, cache_dir=tmp_path)
        assert list(out) == specs

    def test_run_experiment_survives_partial_failure(self, tmp_path,
                                                     monkeypatch, capsys):
        """The runner's GridExecutionError path: the experiment is
        reported failed (return False, failures on stderr) without an
        exception escaping to kill the remaining experiment ids."""
        from repro.experiments import runner
        bad, good = self.BAD, self.GOOD

        class BoomModule:
            ID = "boom"
            TITLE = "synthetic partial failure"

            @staticmethod
            def run(params, mixes, jobs=0, progress=False, use_cache=True):
                raise GridExecutionError(
                    {bad: "Traceback ...\nValueError: unknown design"},
                    {good: None})

        monkeypatch.setitem(runner.MODULES, "boom", BoomModule)
        ok = runner.run_experiment("boom", QUICK, [1], jobs=1,
                                   out_dir=tmp_path)
        assert ok is False
        err = capsys.readouterr().err
        assert "1 of 2 grid points failed" in err
        assert "unknown design" in err
        # no report artefacts for the failed experiment
        assert not (tmp_path / "boom.json").exists()


class TestSpeedupPlumbing:
    def test_alone_table_and_ws(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        specs = [RunSpec("CD", alone_benchmark=b, seed=9)
                 for b in ("gcc", "astar")]
        results = run_grid(specs, QUICK, jobs=1)
        table = alone_ipc_table(results)
        assert set(table) == {"gcc", "astar"}
        fake = SystemResult(
            design="CD", organization="sa", xor_remap=False,
            benchmarks=["gcc", "astar"], ipcs=[table["gcc"], table["astar"]],
            elapsed_ps=1, mean_read_latency_ps=1, dram_read_hit_rate=0,
            reads_done=1, writebacks=0, refills=0,
            read_priority_inversions=0, lr_ofs_issues=0, lr_drain_issues=0,
            accesses_per_turnaround=1, read_row_hit_rate=0, turnarounds=0,
            dram_accesses=0, l2_hit_rate=0, mainmem_reads=0, mainmem_writes=0)
        # each core exactly at its alone IPC -> WS == number of cores
        assert mix_weighted_speedup(fake, table) == pytest.approx(2.0)


class TestFormatTable:
    def test_alignment_and_rows(self):
        out = format_table(["a", "bb"], [[1, 22], [333, 4]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_no_title(self):
        out = format_table(["x"], [[1]])
        assert out.splitlines()[0].startswith("x")


class TestStaticExperiments:
    def test_table1_all_checks_pass(self):
        _r, _d, checks = table1_workloads.run(QUICK, [1])
        assert all(ok for _desc, ok in checks)

    def test_table2_all_checks_pass(self):
        report, _d, checks = table2_params.run(QUICK, [1])
        assert all(ok for _desc, ok in checks)
        assert "tRCD" in report


class TestSeedDerivation:
    def test_alone_runs_get_distinct_seeds(self):
        """Alone benchmarks used to all collapse to seed 1, sharing one
        RNG stream; each must get its own deterministic stream."""
        from repro.experiments.common import default_seed
        from repro.workloads.profiles import PROFILES
        seeds = {b: default_seed(RunSpec("CD", alone_benchmark=b))
                 for b in PROFILES}
        assert len(set(seeds.values())) == len(PROFILES)
        # stable across calls/processes (CRC, not salted hash)
        assert seeds == {b: default_seed(RunSpec("CD", alone_benchmark=b))
                         for b in PROFILES}

    def test_explicit_seed_and_mix_seed_still_win(self):
        from repro.experiments.common import default_seed
        assert default_seed(RunSpec("CD", mix_id=7)) == 7
        assert default_seed(RunSpec("CD", mix_id=7, seed=42)) == 42
        assert default_seed(
            RunSpec("CD", alone_benchmark="mcf", seed=9)) == 9

    def test_workload_specs_get_distinct_seeds(self):
        from repro.experiments.common import default_seed
        a = default_seed(RunSpec("DCA", workload="adversarial_conflict"))
        b = default_seed(RunSpec("DCA", workload="adversarial_writeback"))
        assert a != b

    def test_seed_follows_benchmarks_precedence(self):
        """The seed derives from the field that supplies the benchmarks
        (alone_benchmark > workload > mix_id, like benchmarks())."""
        from repro.experiments.common import default_seed
        combined = RunSpec("DCA", workload="adversarial_conflict", mix_id=1)
        assert default_seed(combined) == default_seed(
            RunSpec("DCA", workload="adversarial_conflict"))
        assert default_seed(combined) != 1


class TestRunnerCLI:
    def test_all_ids_registered(self):
        expected = {"table1", "table2"} | {f"fig{n:02d}" for n in range(8, 20)}
        assert set(MODULES) == expected

    def test_measure_zero_rejected(self, capsys):
        """`if args.measure:` silently ignored --measure 0; it now errors."""
        from repro.experiments.runner import main
        with pytest.raises(SystemExit) as exc_info:
            main(["table1", "--measure", "0"])
        assert exc_info.value.code == 2
        assert "--measure" in capsys.readouterr().err

    def test_measure_negative_rejected(self):
        from repro.experiments.runner import main
        with pytest.raises(SystemExit):
            main(["table1", "--measure", "-5"])

    def test_mixes_out_of_range_rejected(self, capsys):
        """--mixes 0 used to yield an empty grid that 'passed', and
        --mixes 40 was clamped to 30 without a word; both now error."""
        from repro.experiments.runner import main
        for bad in ("0", "31", "-3"):
            with pytest.raises(SystemExit) as exc_info:
                main(["table1", "--mixes", bad])
            assert exc_info.value.code == 2
        assert "--mixes" in capsys.readouterr().err

    def test_measure_applied(self, tmp_path, monkeypatch):
        from repro.experiments import runner
        captured = {}

        def fake_run_experiment(exp_id, params, mixes, jobs, out_dir,
                                use_cache=True):
            captured["params"] = params
            captured["mixes"] = mixes
            return True

        monkeypatch.setattr(runner, "run_experiment", fake_run_experiment)
        rc = runner.main(["table1", "--measure", "12345", "--mixes", "2",
                          "--out", str(tmp_path)])
        assert rc == 0
        assert captured["params"].measure_insts == 12345
        assert captured["mixes"] == [1, 2]

    def test_parser_defaults(self):
        args = build_parser().parse_args(["fig08"])
        assert args.mixes == 30
        assert not args.quick

    def test_parser_multi_ids(self):
        args = build_parser().parse_args(["fig08", "fig09", "--quick"])
        assert args.ids == ["fig08", "fig09"]
        assert args.quick

    def test_results_json_shape(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c"))
        from repro.experiments.runner import run_experiment
        ok = run_experiment("table1", QUICK, [1], jobs=1, out_dir=tmp_path)
        assert ok
        data = json.loads((tmp_path / "table1.json").read_text())
        assert data["id"] == "table1"
        assert all(data["checks"].values())
