"""Experiment harness: specs, caching, speedup tables, CLI plumbing."""

import json

import pytest

from repro.experiments import common
from repro.experiments.common import (
    RunSpec,
    SimParams,
    alone_ipc_table,
    alone_specs,
    format_table,
    grid_specs,
    mix_weighted_speedup,
    run_grid,
    run_one,
)
from repro.experiments import table1_workloads, table2_params
from repro.experiments.runner import MODULES, build_parser
from repro.sim.system import SystemResult

QUICK = SimParams(warmup_insts=2_000, measure_insts=5_000,
                  replay_accesses=1_000)


class TestRunSpec:
    def test_benchmarks_from_mix(self):
        assert len(RunSpec("CD", mix_id=3).benchmarks()) == 4

    def test_benchmarks_alone(self):
        profs = RunSpec("CD", alone_benchmark="mcf").benchmarks()
        assert [p.name for p in profs] == ["mcf"]

    def test_needs_target(self):
        with pytest.raises(ValueError):
            RunSpec("CD").benchmarks()

    def test_label(self):
        assert RunSpec("DCA", xor_remap=True).label() == "XOR+DCA"
        assert RunSpec("CD", lee_writeback=True).label() == "LEE+CD"

    def test_grid_specs_cross_product(self):
        specs = grid_specs([1, 2], ("sa", "dm"), remaps=(False, True))
        assert len(specs) == 2 * 2 * 2 * 3
        assert len(set(specs)) == len(specs)   # hashable + unique

    def test_alone_specs_cover_all_benchmarks(self):
        specs = alone_specs("sa")
        assert len(specs) == 11
        assert all(s.design == "CD" for s in specs)


class TestRunOne:
    def test_produces_result(self):
        res = run_one(RunSpec("DCA", mix_id=1), QUICK)
        assert isinstance(res, SystemResult)
        assert len(res.ipcs) == 4
        assert res.design == "DCA"

    def test_deterministic(self):
        r1 = run_one(RunSpec("CD", mix_id=2), QUICK)
        r2 = run_one(RunSpec("CD", mix_id=2), QUICK)
        assert r1.ipcs == r2.ipcs


class TestCaching:
    def test_cache_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        spec = RunSpec("CD", alone_benchmark="gcc")
        first = run_grid([spec], QUICK, jobs=1)
        files = list(tmp_path.glob("*.json"))
        assert len(files) == 1
        second = run_grid([spec], QUICK, jobs=1)
        assert second[spec].ipcs == first[spec].ipcs

    def test_corrupt_cache_ignored(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        spec = RunSpec("CD", alone_benchmark="gcc")
        key = common._spec_key(spec, QUICK)
        (tmp_path / f"{key}.json").write_text("{not json")
        out = run_grid([spec], QUICK, jobs=1)
        assert out[spec].ipcs[0] > 0

    def test_key_distinguishes_specs(self):
        k1 = common._spec_key(RunSpec("CD", mix_id=1), QUICK)
        k2 = common._spec_key(RunSpec("DCA", mix_id=1), QUICK)
        k3 = common._spec_key(RunSpec("CD", mix_id=1), SimParams())
        assert len({k1, k2, k3}) == 3


class TestSpeedupPlumbing:
    def test_alone_table_and_ws(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        specs = [RunSpec("CD", alone_benchmark=b, seed=9)
                 for b in ("gcc", "astar")]
        results = run_grid(specs, QUICK, jobs=1)
        table = alone_ipc_table(results)
        assert set(table) == {"gcc", "astar"}
        fake = SystemResult(
            design="CD", organization="sa", xor_remap=False,
            benchmarks=["gcc", "astar"], ipcs=[table["gcc"], table["astar"]],
            elapsed_ps=1, mean_read_latency_ps=1, dram_read_hit_rate=0,
            reads_done=1, writebacks=0, refills=0,
            read_priority_inversions=0, lr_ofs_issues=0, lr_drain_issues=0,
            accesses_per_turnaround=1, read_row_hit_rate=0, turnarounds=0,
            dram_accesses=0, l2_hit_rate=0, mainmem_reads=0, mainmem_writes=0)
        # each core exactly at its alone IPC -> WS == number of cores
        assert mix_weighted_speedup(fake, table) == pytest.approx(2.0)


class TestFormatTable:
    def test_alignment_and_rows(self):
        out = format_table(["a", "bb"], [[1, 22], [333, 4]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_no_title(self):
        out = format_table(["x"], [[1]])
        assert out.splitlines()[0].startswith("x")


class TestStaticExperiments:
    def test_table1_all_checks_pass(self):
        _r, _d, checks = table1_workloads.run(QUICK, [1])
        assert all(ok for _desc, ok in checks)

    def test_table2_all_checks_pass(self):
        report, _d, checks = table2_params.run(QUICK, [1])
        assert all(ok for _desc, ok in checks)
        assert "tRCD" in report


class TestRunnerCLI:
    def test_all_ids_registered(self):
        expected = {"table1", "table2"} | {f"fig{n:02d}" for n in range(8, 20)}
        assert set(MODULES) == expected

    def test_parser_defaults(self):
        args = build_parser().parse_args(["fig08"])
        assert args.mixes == 30
        assert not args.quick

    def test_parser_multi_ids(self):
        args = build_parser().parse_args(["fig08", "fig09", "--quick"])
        assert args.ids == ["fig08", "fig09"]
        assert args.quick

    def test_results_json_shape(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c"))
        from repro.experiments.runner import run_experiment
        ok = run_experiment("table1", QUICK, [1], jobs=1, out_dir=tmp_path)
        assert ok
        data = json.loads((tmp_path / "table1.json").read_text())
        assert data["id"] == "table1"
        assert all(data["checks"].values())
