"""Differential snapshot tests: restore-then-continue == straight-through.

The tentpole invariant of repro.snapshot: capturing a running simulation
and restoring it — in-process (deepcopy) or via the pickled on-disk form —
must be invisible.  For every controller design x underlying scheduler,
random (seed, capture-point) trials run three ways:

* **A** straight through (an event-loop slice, then finish);
* **B** identically, but with a snapshot captured at the slice boundary;
* **C** restored from B's snapshot and continued.

A == B proves capture does not perturb the donor; B == C proves the
restore is bit-identical.  Equality is checked at three depths: the full
state signature (event heap, queue contents with PR/LR/bank context,
bank/bus timing, scheduler and predictor state, caches, MSHRs, cores),
the per-request completion times of every post-capture request, and the
final metric-laden results.
"""

from __future__ import annotations

import random
from dataclasses import replace

import pytest

from repro import snapshot
from repro.config import SubstrateConfig, scaled_config
from repro.core.access import Access
from repro.sim.system import System
from repro.workloads.profiles import profile

#: the six controller design points (design x underlying scheduler)
DESIGN_POINTS = [(d, s)
                 for d in ("CD", "ROD", "DCA")
                 for s in ("bliss", "frfcfs")]

WARMUP, MEASURE, REPLAY = 2_000, 6_000, 1_000
SCALE = 1 / 400


def small_cfg():
    base = scaled_config(8)
    return replace(base,
                   l2=replace(base.l2, size_bytes=128 * 1024),
                   dram_cache=replace(base.dram_cache, size_bytes=8 * 2**20))


def make_system(design: str, scheduler: str = "bliss", seed: int = 1,
                organization: str = "sa", lee: bool = False,
                use_mapi: bool = True,
                substrate: SubstrateConfig | None = None) -> System:
    cfg = small_cfg()
    if substrate is not None:
        # Shrink the refresh interval so the mechanism fires several
        # times even at this test's tiny instruction budget.
        cfg = replace(cfg, substrate=substrate,
                      timings=replace(cfg.timings, tREFI=400_000))
    return System(cfg, design,
                  [profile("mcf"), profile("libquantum")],
                  organization=organization, scheduler=scheduler,
                  lee_writeback=lee, use_mapi=use_mapi, seed=seed,
                  footprint_scale=SCALE)


def begin(system: System) -> System:
    system.begin(WARMUP, MEASURE, replay_accesses=REPLAY)
    return system


def spy_completions(system: System) -> list:
    """Record (type, addr, arrival, completion) of every request submitted
    from now on, through the real submit path."""
    log: list = []
    real = system.controller.submit

    def submit(req):
        log.append(req)
        real(req)

    system.controller.submit = submit
    return log


def completion_times(log: list) -> list[tuple]:
    return [(int(r.rtype), r.addr, r.core_id, r.arrival, r.done_time)
            for r in log]


class TestDifferential:
    @pytest.mark.parametrize("design,scheduler", DESIGN_POINTS)
    def test_restore_then_continue_is_bit_identical(self, design, scheduler):
        """Property-style over random seeds and capture points."""
        rng = random.Random(hash((design, scheduler, 0xD1FF)) & 0xFFFF)
        for _ in range(2):
            seed = rng.randrange(1, 10_000)

            # A runs straight through; its event count bounds the random
            # capture point so every trial captures genuinely mid-run.
            a = begin(make_system(design, scheduler, seed))
            res_a = a.finish()
            total = a.sim.events_run
            k = rng.randrange(total // 4, 3 * total // 4)

            b = begin(make_system(design, scheduler, seed))
            b.sim.run(max_events=k)
            snap = snapshot.capture(b, meta={"k": k, "seed": seed})
            c = snapshot.restore(snap)

            # The restored system is in the captured state, observably.
            assert snapshot.state_signature(c) == snapshot.state_signature(b)

            # Lock-step continuation: mid-flight queue contents, bank
            # timing and heap stay bit-identical event for event.
            log_b, log_c = spy_completions(b), spy_completions(c)
            b.sim.run(max_events=1_000)
            c.sim.run(max_events=1_000)
            assert snapshot.state_signature(c) == snapshot.state_signature(b)

            res_b = b.finish()
            res_c = c.finish()

            # Per-request completion times of the whole continuation.
            assert completion_times(log_c) == completion_times(log_b)
            # Full results: metrics snapshot, IPCs, elapsed time.
            assert res_b.to_cache_dict() == res_c.to_cache_dict()
            # Neither the capture nor the sliced event-loop driving
            # perturbed the run: it equals the straight-through result.
            assert res_a.to_cache_dict() == res_b.to_cache_dict()

    @pytest.mark.parametrize("page_policy", ["open", "timeout"])
    def test_command_fidelity_substrate(self, page_policy):
        """The command-level substrate's extra state — refresh due times,
        blackout ends, per-rank ACT windows, page-policy idle marks —
        must survive capture/restore bit-for-bit (it travels through
        Channel.capture_state in the signature and deepcopy in the
        snapshot)."""
        sub = SubstrateConfig(fidelity="command", page_policy=page_policy)
        a = begin(make_system("DCA", seed=13, substrate=sub))
        res_a = a.finish()
        # The run genuinely exercised the command-level mechanisms.
        total = res_a.metrics["substrate_total"]
        assert total["refreshes_issued"] > 0
        assert total["rrd_stalls"] + total["faw_stalls"] > 0

        b = begin(make_system("DCA", seed=13, substrate=sub))
        b.sim.run(max_events=a.sim.events_run // 2)
        c = snapshot.restore(snapshot.capture(b))
        assert snapshot.state_signature(c) == snapshot.state_signature(b)
        res_b, res_c = b.finish(), c.finish()
        assert res_b.to_cache_dict() == res_c.to_cache_dict()
        assert res_c.to_cache_dict() == res_a.to_cache_dict()

    def test_direct_mapped_organization(self):
        a = begin(make_system("DCA", organization="dm", seed=7))
        res_a = a.finish()
        mid = a.sim.events_run // 2

        b = begin(make_system("DCA", organization="dm", seed=7))
        b.sim.run(max_events=mid)
        c = snapshot.restore(snapshot.capture(b))
        assert snapshot.state_signature(c) == snapshot.state_signature(b)
        assert b.finish().to_cache_dict() == res_a.to_cache_dict()
        assert c.finish().to_cache_dict() == res_a.to_cache_dict()

    def test_lee_writeback_row_index_survives(self):
        """The L2's dirty-row index and the Lee batcher use a bound-method
        row mapping; a restored system must batch identically."""
        probe = begin(make_system("DCA", seed=3, lee=True))
        res_probe = probe.finish()
        assert res_probe.lee_eager_writebacks > 0   # the mechanism fired

        b = begin(make_system("DCA", seed=3, lee=True))
        b.sim.run(max_events=probe.sim.events_run // 2)
        c = snapshot.restore(snapshot.capture(b))
        res_b, res_c = b.finish(), c.finish()
        assert res_b.to_cache_dict() == res_c.to_cache_dict()
        assert res_c.to_cache_dict() == res_probe.to_cache_dict()

    def test_one_snapshot_forks_independent_runs(self):
        probe = begin(make_system("ROD", seed=11))
        probe.finish()
        total = probe.sim.events_run

        b = begin(make_system("ROD", seed=11))
        b.sim.run(max_events=total // 2)
        snap = snapshot.capture(b)
        c1, c2 = snapshot.restore(snap), snapshot.restore(snap)
        c1.sim.run(max_events=total // 8)
        # Running one fork never moves the other (or the frozen image).
        assert (snapshot.state_signature(c2)
                == snapshot.state_signature(snapshot.restore(snap)))
        assert c1.finish().to_cache_dict() == c2.finish().to_cache_dict()

    def test_access_seq_is_per_system_not_global(self):
        """The scheduler age tiebreak lives on the Translator, so a
        restored fork continues its own numbering even while the donor
        keeps running — interleaved live simulations never contaminate
        each other (the old class-global counter did)."""
        probe = begin(make_system("CD", seed=5))
        probe.finish()
        b = begin(make_system("CD", seed=5))
        b.sim.run(max_events=probe.sim.events_run // 2)
        captured_seq = b.controller.translator._seq
        c = snapshot.restore(snapshot.capture(b))
        assert c.controller.translator._seq == captured_seq
        b.finish()                       # donor runs on...
        assert b.controller.translator._seq > captured_seq
        # ...without moving the fork's counter.
        assert c.controller.translator._seq == captured_seq
        # Hand-built accesses (no explicit seq) still self-number off the
        # class fallback and never touch any live system.
        before = Access._seq
        from repro.core.access import AccessRole, CacheRequest, RequestType
        req = CacheRequest(RequestType.READ, 0, 0)
        a = Access(AccessRole.TAG_READ, req, 0, 0, 0, 0, 0, 0, 0)
        assert a.seq == before + 1 == Access._seq
        assert c.controller.translator._seq == captured_seq


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        probe = begin(make_system("DCA", "frfcfs", seed=9))
        probe.finish()
        b = begin(make_system("DCA", "frfcfs", seed=9))
        b.sim.run(max_events=probe.sim.events_run // 2)
        snap = snapshot.capture(b)
        path = snapshot.save(snap, tmp_path / "mid.snap")

        loaded = snapshot.load(path)
        assert loaded.schema_version == snapshot.SNAPSHOT_SCHEMA_VERSION
        c = snapshot.restore(loaded)
        assert snapshot.state_signature(c) == snapshot.state_signature(b)
        assert c.finish().to_cache_dict() == b.finish().to_cache_dict()

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.snap"
        path.write_bytes(b"definitely not a snapshot")
        with pytest.raises(snapshot.SnapshotError, match="magic"):
            snapshot.load(path)

    def test_stale_schema_rejected(self, tmp_path):
        b = begin(make_system("CD", seed=2))
        path = snapshot.save(snapshot.capture(b), tmp_path / "old.snap")
        raw = bytearray(path.read_bytes())
        raw[len(b"DCASNAP1")] = 99        # corrupt the version field
        path.write_bytes(bytes(raw))
        with pytest.raises(snapshot.SnapshotError, match="schema"):
            snapshot.load(path)

    def test_restore_rejects_stale_in_memory_schema(self):
        b = begin(make_system("CD", seed=2))
        snap = snapshot.capture(b)
        snap.schema_version = 0
        with pytest.raises(snapshot.SnapshotError):
            snapshot.restore(snap)


class TestPooledEngineSnapshot:
    """The calendar engine's Event freelist must never leak across a
    snapshot boundary.

    Pooled Event objects are *dead* storage awaiting reuse; if a restore
    carried them over (or, worse, if restored live events aliased the
    donor's pooled objects), the donor recycling an event would rewrite
    the restored simulation's pending queue in place.  Both deepcopy and
    pickle restore paths must therefore produce an empty pool and a
    fully disjoint event object graph.
    """

    @staticmethod
    def _held_events(sim) -> list:
        """Every Event object the engine currently holds, dead or alive."""
        evs = [e for bucket in sim._buckets for e in bucket]
        evs += list(sim._overflow)
        if sim._stage is not None:
            evs += list(sim._stage[sim._stage_pos:])
        evs += list(sim._pool)
        return evs

    def _donor_with_hot_pool(self, seed: int = 11) -> System:
        b = begin(make_system("DCA", "bliss", seed=seed))
        b.sim.run(max_events=5_000)
        # The scenario must actually bite: the donor is mid-run with a
        # populated freelist and live pending events.
        assert b.sim._pool, "freelist empty - capture point too early"
        assert b.sim.pending() > 0
        return b

    def test_restore_pool_is_empty_and_disjoint(self):
        b = self._donor_with_hot_pool()
        snap = snapshot.capture(b)
        c = snapshot.restore(snap)

        assert c.sim._pool == []
        donor_ids = {id(e) for e in self._held_events(b.sim)}
        restored_ids = {id(e) for e in self._held_events(c.sim)}
        assert not donor_ids & restored_ids

    def test_pickle_round_trip_pool_is_empty(self, tmp_path):
        b = self._donor_with_hot_pool(seed=23)
        path = snapshot.save(snapshot.capture(b), tmp_path / "pool.snap")
        c = snapshot.restore(snapshot.load(path))
        assert c.sim._pool == []
        assert snapshot.state_signature(c) == snapshot.state_signature(b)

    def test_donor_recycling_cannot_perturb_restored_run(self):
        """Continue donor first (recycling its pooled events), then the
        restored copy: if any restored event aliased donor storage the
        continuations would diverge."""
        b = self._donor_with_hot_pool(seed=37)
        c = snapshot.restore(snapshot.capture(b))

        log_b, log_c = spy_completions(b), spy_completions(c)
        b.sim.run(max_events=2_000)       # donor churns its freelist...
        res_b = b.finish()
        c.sim.run(max_events=2_000)       # ...before the copy even moves
        res_c = c.finish()

        assert completion_times(log_c) == completion_times(log_b)
        assert res_b.to_cache_dict() == res_c.to_cache_dict()
