"""ChannelStats arithmetic and derived metrics."""

from repro.dram.stats import ChannelStats


class TestDerivedMetrics:
    def test_accesses_per_turnaround(self):
        s = ChannelStats(read_accesses=30, write_accesses=10, turnarounds=4)
        assert s.accesses_per_turnaround == 10.0

    def test_accesses_per_turnaround_no_turnarounds(self):
        s = ChannelStats(read_accesses=7)
        assert s.accesses_per_turnaround == 7.0

    def test_row_hit_rate(self):
        s = ChannelStats(read_row_hits=6, read_row_closed=2,
                         read_row_conflicts=2)
        assert s.read_row_hit_rate == 0.6

    def test_row_hit_rate_empty(self):
        assert ChannelStats().read_row_hit_rate == 0.0

    def test_total(self):
        s = ChannelStats(read_accesses=3, write_accesses=4)
        assert s.total_accesses == 7


class TestMergeSum:
    def test_merge_adds_fields(self):
        a = ChannelStats(read_accesses=1, turnarounds=2)
        b = ChannelStats(read_accesses=3, write_accesses=5)
        m = a.merge(b)
        assert m.read_accesses == 4
        assert m.write_accesses == 5
        assert m.turnarounds == 2

    def test_merge_does_not_mutate(self):
        a = ChannelStats(read_accesses=1)
        a.merge(ChannelStats(read_accesses=9))
        assert a.read_accesses == 1

    def test_sum_many(self):
        parts = [ChannelStats(read_accesses=i) for i in range(5)]
        assert ChannelStats.sum(parts).read_accesses == 10

    def test_sum_empty(self):
        assert ChannelStats.sum([]).total_accesses == 0

    def test_reset(self):
        s = ChannelStats(read_accesses=5, bus_busy_ps=100)
        s.reset()
        assert s.read_accesses == 0
        assert s.bus_busy_ps == 0
