"""MSHR partitioning, demand-latency accounting, and the wakeup invariant.

The headline invariant (the ISSUE-9 bugfix): ``full_stalls`` counts one
stall per *held operation*, never per retry attempt, and a fill wakes
``min(free demand slots, waiters)`` cores in FIFO order — not the whole
waiter list.
"""

import pytest

from repro.config import scaled_config
from repro.mem.mshr import MSHRFile
from repro.sim.cpu import MISS, MSHR_FULL
from repro.sim.system import System
from repro.workloads.profiles import profile


class TestPartition:
    def test_demand_capacity_bounds(self):
        m = MSHRFile(2)
        assert m.allocate(0x000, 0)[1]
        assert m.allocate(0x040, 0)[1]
        assert m.full
        entry, fresh = m.allocate(0x080, 0)
        assert entry is None and not fresh
        assert m.stats.full_stalls == 1

    def test_retry_not_double_counted(self):
        m = MSHRFile(1)
        m.allocate(0x000, 0)
        assert m.allocate(0x040, 0) == (None, False)
        assert m.allocate(0x040, 0, retry=True) == (None, False)
        assert m.allocate(0x040, 0, retry=True) == (None, False)
        assert m.stats.full_stalls == 1    # one held op, many attempts

    def test_prefetch_partition_is_separate(self):
        m = MSHRFile(2, prefetch_capacity=1)
        assert m.allocate_prefetch(0x100, 0) is not None
        assert m.allocate_prefetch(0x140, 0) is None
        assert m.stats.prefetch_rejects == 1
        # A full prefetch partition neither blocks nor admits demand.
        assert not m.full
        assert m.allocate(0x000, 0)[1]
        assert m.allocate(0x040, 0)[1]
        assert m.full

    def test_no_partition_rejects_all_prefetches(self):
        m = MSHRFile(4)
        assert m.allocate_prefetch(0x000, 0) is None
        assert m.stats.prefetch_rejects == 1

    def test_demand_coalesces_onto_prefetch_entry(self):
        m = MSHRFile(2, prefetch_capacity=1)
        pe = m.allocate_prefetch(0x100, 0)
        entry, fresh = m.allocate(0x100, 5)
        assert entry is pe and not fresh
        assert m.stats.coalesced == 1
        assert entry.is_prefetch

    def test_complete_frees_the_right_partition(self):
        m = MSHRFile(1, prefetch_capacity=1)
        m.allocate(0x000, 0)
        m.allocate_prefetch(0x040, 0)
        m.complete(0x040)
        assert m.full                      # demand slot still held
        assert m.allocate_prefetch(0x080, 0) is not None
        m.complete(0x000)
        assert m.demand_free == 1

    def test_invalid_capacities_rejected(self):
        with pytest.raises(ValueError):
            MSHRFile(0)
        with pytest.raises(ValueError):
            MSHRFile(4, prefetch_capacity=-1)


class TestDemandLatency:
    def test_accumulates_sum_and_max(self):
        m = MSHRFile(4)
        m.allocate(0x000, 100)
        m.allocate(0x040, 100)
        m.complete(0x000, now=400)
        m.complete(0x040, now=700)
        st = m.stats
        assert st.demand_fills == 2
        assert st.demand_latency_sum_ps == 300 + 600
        assert st.demand_latency_max_ps == 600
        assert st.snapshot()["mean_demand_latency_ps"] == 450.0

    def test_prefetch_completion_not_counted(self):
        m = MSHRFile(1, prefetch_capacity=1)
        m.allocate_prefetch(0x000, 100)
        m.complete(0x000, now=900)
        assert m.stats.demand_fills == 0
        assert m.stats.demand_latency_sum_ps == 0

    def test_clockless_completion_skips_latency(self):
        m = MSHRFile(1)
        m.allocate(0x000, 100)
        m.complete(0x000)
        assert m.stats.demand_fills == 0

    def test_unknown_completion_raises(self):
        with pytest.raises(KeyError):
            MSHRFile(1).complete(0x123400)


class _Waiter:
    """Stands in for a core parked on a full MSHR file."""

    def __init__(self):
        self.woken = 0

    def mshr_freed(self):
        self.woken += 1


def contended_system(l2_mshrs=2, n_cores=3, overrides=()):
    """A real System with a recorded (non-simulating) controller."""
    cfg = scaled_config(8).with_overrides(
        [("l2_mshrs", l2_mshrs), *overrides])
    s = System(cfg, "CD", [profile("gcc")] * n_cores,
               footprint_scale=1 / 64, seed=1)
    submitted = []
    s.controller.submit = submitted.append
    return s, submitted


class TestWakeupFairness:
    def test_full_stalls_count_held_ops_not_retries(self):
        s, _ = contended_system(l2_mshrs=2)
        c0, c1, c2 = s.cores
        assert s.mem_access(c0, 0x1000, False, 0)[0] == MISS
        assert s.mem_access(c0, 0x2000, False, 0)[0] == MISS
        assert s.mem_access(c1, 0x3000, False, 0)[0] == MSHR_FULL
        assert s.mem_access(c2, 0x4000, False, 0)[0] == MSHR_FULL
        # Retries while the file is still full are the same held ops.
        assert s.mem_access(c1, 0x3000, False, 0, retrying=True)[0] == MSHR_FULL
        assert s.mem_access(c2, 0x4000, False, 0, retrying=True)[0] == MSHR_FULL
        assert s.mshr.stats.full_stalls == 2

    def test_one_fill_wakes_one_waiter_fifo(self):
        s, submitted = contended_system(l2_mshrs=2)
        c0 = s.cores[0]
        s.mem_access(c0, 0x1000, False, 0)
        s.mem_access(c0, 0x2000, False, 0)
        w1, w2 = _Waiter(), _Waiter()
        s.wait_for_mshr(w1)
        s.wait_for_mshr(w2)
        s._l2_fill_done(next(r for r in submitted if r.addr == 0x1000))
        assert (w1.woken, w2.woken) == (1, 0)
        assert s._mshr_waiters == [w2]
        s._l2_fill_done(next(r for r in submitted if r.addr == 0x2000))
        assert (w1.woken, w2.woken) == (1, 1)
        assert s._mshr_waiters == []

    def test_wakes_min_of_free_slots_and_waiters(self):
        s, submitted = contended_system(l2_mshrs=2)
        c0 = s.cores[0]
        s.mem_access(c0, 0x1000, False, 0)
        s.mem_access(c0, 0x2000, False, 0)
        # A fill with nobody waiting frees a slot silently.
        s._l2_fill_done(next(r for r in submitted if r.addr == 0x1000))
        waiters = [_Waiter() for _ in range(3)]
        for w in waiters:
            s.wait_for_mshr(w)
        # Two slots free, three waiters: wake exactly the first two.
        s._l2_fill_done(next(r for r in submitted if r.addr == 0x2000))
        assert [w.woken for w in waiters] == [1, 1, 0]
        assert s._mshr_waiters == [waiters[2]]

    def test_prefetch_fill_wakes_nobody(self):
        s, submitted = contended_system(
            l2_mshrs=3,
            overrides=[("prefetch.kind", "nextline"),
                       ("prefetch.mshr_entries", 1)])
        c0 = s.cores[0]
        # Demand partition is 3 - 1 = 2; the first miss also issues a
        # next-line prefetch into the 1-entry prefetch partition.
        assert s.mshr.capacity == 2
        s.mem_access(c0, 0x1000, False, 0)
        s.mem_access(c0, 0x2000, False, 0)
        w = _Waiter()
        s.wait_for_mshr(w)
        s._l2_fill_done(next(r for r in submitted if r.prefetch))
        assert w.woken == 0                # no demand slot was freed
        assert s._mshr_waiters == [w]


class TestContentionEndToEnd:
    def test_three_core_run_with_tiny_mshr_file(self):
        cfg = scaled_config(8).with_overrides([("l2_mshrs", 2)])
        s = System(cfg, "CD", [profile("lbm")] * 3,
                   footprint_scale=1 / 64, seed=2)
        r = s.run(warmup_insts=2_000, measure_insts=6_000,
                  replay_accesses=5_000)
        st = r.metrics["mshr"]
        assert all(i > 0 for i in r.ipcs)
        assert st["full_stalls"] > 0       # 3 cores over 2 MSHRs contend
        assert st["demand_fills"] > 0
        assert st["mean_demand_latency_ps"] > 0
        assert st["demand_latency_max_ps"] >= st["mean_demand_latency_ps"]

    def test_contended_run_is_deterministic(self):
        def run():
            cfg = scaled_config(8).with_overrides([("l2_mshrs", 2)])
            return System(cfg, "CD", [profile("lbm")] * 3,
                          footprint_scale=1 / 64, seed=2).run(
                warmup_insts=2_000, measure_insts=6_000,
                replay_accesses=5_000)
        r1, r2 = run(), run()
        assert r1.ipcs == r2.ipcs
        assert r1.metrics["mshr"] == r2.metrics["mshr"]
