"""Scenario sweep engine: specs, sharding, manifests, resumable execution."""

import json

import pytest

from repro.experiments import common
from repro.experiments.common import SimParams
from repro.scenarios import SweepManifest, SweepSpec, parse_axis_value, run_sweep
from repro.scenarios.cli import main as sweep_cli_main
from repro.scenarios.cli import parse_axis, parse_shard
from repro.scenarios.manifest import MANIFEST_SCHEMA_VERSION
from repro.scenarios.spec import TARGET_AXES as TARGET_AXES_SET
from repro.experiments.runner import main as runner_main

TINY = SimParams(warmup_insts=1_000, measure_insts=3_000,
                 replay_accesses=500)


def tiny_sweep(**kw):
    kw.setdefault("name", "t")
    kw.setdefault("axes", {"scheduler": ["bliss", "frfcfs"]})
    kw.setdefault("base", {"mix_id": 1})
    return SweepSpec(**kw)


class TestSweepSpec:
    def test_cross_product_order_deterministic(self):
        sw = SweepSpec("s", axes={"design": ["CD", "DCA"],
                                  "queues.read_entries": [16, 64]},
                       base={"mix_id": 1})
        pts = sw.compile()
        assert len(pts) == 4
        assert pts == sw.compile()
        assert [p.axis_dict()["design"] for p in pts] == \
            ["CD", "CD", "DCA", "DCA"]

    def test_config_axes_land_in_runspec_config(self):
        sw = SweepSpec("s", axes={"queues.read_entries": [16]},
                       base={"mix_id": 2, "design": "ROD"})
        spec = sw.compile()[0].spec
        assert spec.config == (("queues.read_entries", 16),)
        assert spec.design == "ROD"
        assert spec.mix_id == 2

    def test_default_design_is_dca(self):
        assert tiny_sweep().compile()[0].spec.design == "DCA"

    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError, match="unknown axis"):
            SweepSpec("s", axes={"bogus_knob": [1]}, base={"mix_id": 1})

    def test_unknown_config_path_rejected(self):
        with pytest.raises(ValueError, match="no.*field"):
            SweepSpec("s", axes={"queues.bogus": [1]}, base={"mix_id": 1})

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            SweepSpec("s", axes={"scheduler": []}, base={"mix_id": 1})

    def test_scalar_axis_value_rejected(self):
        """A hand-written spec file with {'mix_id': 5} or {'design':
        'DCA'} gets a usage error, not a TypeError or a per-character
        explosion of the string."""
        with pytest.raises(ValueError, match="must be a list"):
            SweepSpec("s", axes={"mix_id": 5})
        with pytest.raises(ValueError, match="must be a list"):
            SweepSpec("s", axes={"design": "DCA"}, base={"mix_id": 1})

    def test_needs_workload_axis(self):
        with pytest.raises(ValueError, match="workload axis"):
            SweepSpec("s", axes={"scheduler": ["bliss"]})

    def test_conflicting_workload_axes_rejected(self):
        """mix_id next to workload would silently demote mix_id to a
        seed (RunSpec.benchmarks precedence) and mislabel every point."""
        with pytest.raises(ValueError, match="conflicting workload axes"):
            SweepSpec("s", axes={"workload": ["adversarial_conflict"],
                                 "mix_id": [1, 2, 3]})
        with pytest.raises(ValueError, match="conflicting workload axes"):
            SweepSpec("s", axes={"alone_benchmark": ["mcf"]},
                      base={"mix_id": 1})

    def test_config_axis_value_type_checked_at_build(self):
        """A string value for an int field fails at spec construction,
        not as an opaque per-point worker crash."""
        with pytest.raises(ValueError, match="queues.read_entries"):
            SweepSpec("s", axes={"queues.read_entries": [16, "lots"]},
                      base={"mix_id": 1})

    def test_runspec_axis_values_canonicalised(self):
        """0/1 bools, case-variant designs/schedulers and int-for-float
        config values must compile to the same RunSpecs (and hence cache
        keys) as the figure grids — no type-spelling cache forks."""
        sw = SweepSpec("s", axes={"xor_remap": [0, "true"],
                                  "design": ["dca", "CD"],
                                  "queues.write_high_watermark": [1]},
                       base={"mix_id": 1, "scheduler": "BLISS"})
        assert sw.axes["xor_remap"] == [False, True]
        assert sw.axes["design"] == ["DCA", "CD"]
        assert sw.axes["queues.write_high_watermark"] == [1.0]
        # JSON emitters often spell ints as floats; 1.0 must not fork keys
        sw2 = SweepSpec("s2", axes={"mix_id": [1.0, 2.0]})
        assert sw2.axes["mix_id"] == [1, 2]
        assert isinstance(sw2.compile()[0].spec.mix_id, int)
        spec = sw.compile()[0].spec
        assert spec.xor_remap is False and spec.design == "DCA"
        assert spec.scheduler == "bliss"
        assert spec.config == (("queues.write_high_watermark", 1.0),)

    @pytest.mark.parametrize("axes", [
        {"design": ["BOGUS"]},
        {"scheduler": ["fifo"]},
        {"organization": ["fa"]},
        {"workload": ["adversarial_conflit"]},       # typo
        {"workload": ["trace:/does/not/exist.t"]},
        {"alone_benchmark": ["perlbench"]},
        {"mix_id": [31]},
        {"xor_remap": [2]},
        {"seed": [0, 1]},       # 0 aliases the derived default seed
    ])
    def test_runspec_axis_values_validated_at_build(self, axes):
        """A typo'd axis value is a build-time usage error, not N opaque
        per-point worker failures after the grid started."""
        base = {} if set(axes) & set(TARGET_AXES_SET) else {"mix_id": 1}
        with pytest.raises(ValueError):
            SweepSpec("s", axes=axes, base=base)

    def test_name_path_tricks_rejected(self):
        """The name becomes a directory: traversal/hidden spellings fail."""
        for bad in ("", "..", ".", "a/b", "..\\x", ".hidden", "-flag"):
            with pytest.raises(ValueError, match="identifier"):
                tiny_sweep(name=bad)
        tiny_sweep(name="ok-1.2_x")   # benign punctuation still allowed

    def test_malformed_trace_fails_at_build(self, tmp_path):
        """A parseable-at-all check happens at spec build, not as N
        identical worker crashes mid-grid."""
        bad = tmp_path / "bad.trace"
        bad.write_text("not a trace line\n")
        with pytest.raises(ValueError, match="workload"):
            SweepSpec("s", axes={"workload": [f"trace:{bad}"]})

    def test_axis_values_deduped_after_canonicalisation(self):
        sw = SweepSpec("s", axes={"design": ["dca", "DCA", "CD"]},
                       base={"mix_id": 1})
        assert sw.axes["design"] == ["DCA", "CD"]
        assert len(sw.compile()) == 2

    def test_top_level_config_scalars_sweepable(self):
        """l2_mshrs is a SystemConfig knob without a dot; it compiles
        into a config override like dotted paths do."""
        sw = SweepSpec("s", axes={"l2_mshrs": [8, 32]}, base={"mix_id": 1})
        spec = sw.compile()[0].spec
        assert spec.config == (("l2_mshrs", 8),)
        # internal marker: not an axis
        with pytest.raises(ValueError):
            SweepSpec("s", axes={"queues_explicit": [True]},
                      base={"mix_id": 1})
        # System derives num_cores from the benchmark count, so an axis
        # over it would be a silent no-op posing as a scaling study
        with pytest.raises(ValueError, match="unknown axis"):
            SweepSpec("s", axes={"num_cores": [2, 4]}, base={"mix_id": 1})

    def test_config_axis_through_scalar_rejected(self):
        """A path descending into a scalar (num_cores.real passes a
        naive hasattr check) is a build-time usage error."""
        with pytest.raises(ValueError, match="scalar"):
            SweepSpec("s", axes={"num_cores.real": [1]}, base={"mix_id": 1})

    def test_config_group_name_without_dot_rejected(self):
        """'queues' alone is neither a RunSpec field nor a dotted path."""
        with pytest.raises(ValueError, match="unknown axis"):
            SweepSpec("s", axes={"queues": [1]}, base={"mix_id": 1})

    def test_axis_base_overlap_rejected(self):
        with pytest.raises(ValueError, match="pinned in base"):
            SweepSpec("s", axes={"mix_id": [1, 2]}, base={"mix_id": 1})

    def test_sweep_id_changes_with_grid_and_params(self):
        a = tiny_sweep().sweep_id(TINY)
        b = tiny_sweep(axes={"scheduler": ["bliss"]}).sweep_id(TINY)
        c = tiny_sweep().sweep_id(SimParams())
        assert len({a, b, c}) == 3
        assert tiny_sweep().sweep_id(TINY) == a

    def test_shards_partition_grid(self):
        sw = SweepSpec("s", axes={"mix_id": [1, 2, 3], "design": ["CD", "DCA"]})
        full = sw.compile()
        shards = [sw.shard_points((i, 4)) for i in range(4)]
        flattened = [p for shard in shards for p in shard]
        assert sorted(p.spec.label() + str(p.axes) for p in flattened) == \
            sorted(p.spec.label() + str(p.axes) for p in full)
        assert all(len(s) >= 1 for s in shards)

    def test_bad_shard_rejected(self):
        with pytest.raises(ValueError):
            tiny_sweep().shard_points((2, 2))

    def test_dict_round_trip(self):
        sw = tiny_sweep()
        assert SweepSpec.from_dict(sw.to_dict()).to_dict() == sw.to_dict()

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown sweep-spec keys"):
            SweepSpec.from_dict({"axes": {"mix_id": [1]}, "shards": 4})


class TestAxisParsing:
    @pytest.mark.parametrize("text,expected", [
        ("16", 16), ("0.85", 0.85), ("true", True), ("false", False),
        ("none", None), ("bliss", "bliss"), ("trace:/x/y.t", "trace:/x/y.t"),
    ])
    def test_value_coercion(self, text, expected):
        assert parse_axis_value(text) == expected

    def test_parse_axis(self):
        name, values = parse_axis("queues.read_entries=16, 64")
        assert name == "queues.read_entries"
        assert values == [16, 64]

    def test_parse_axis_malformed(self):
        import argparse
        with pytest.raises(argparse.ArgumentTypeError):
            parse_axis("nodelimiter")

    def test_parse_shard(self):
        assert parse_shard("1/4") == (0, 4)
        assert parse_shard("4/4") == (3, 4)

    def test_parse_shard_out_of_range(self):
        import argparse
        for bad in ("0/4", "5/4", "x/y", "3"):
            with pytest.raises(argparse.ArgumentTypeError):
                parse_shard(bad)


class TestManifest:
    KEYS = ["k1", "k2", "k3"]

    def test_checkpoint_and_resume(self, tmp_path):
        path = tmp_path / "m.json"
        m = SweepManifest.load_or_create(path, "id1", "s", self.KEYS)
        m.mark_done("k2")
        m2 = SweepManifest.load_or_create(path, "id1", "s", self.KEYS)
        assert m2.completed == {"k2"}
        assert m2.pending() == ["k1", "k3"]
        assert not m2.is_complete()
        m2.mark_many(["k1", "k3"])
        assert SweepManifest.load_or_create(
            path, "id1", "s", self.KEYS).is_complete()

    def test_mismatched_sweep_id_starts_fresh(self, tmp_path):
        path = tmp_path / "m.json"
        SweepManifest.load_or_create(path, "id1", "s", self.KEYS).mark_done("k1")
        m = SweepManifest.load_or_create(path, "OTHER", "s", self.KEYS)
        assert m.completed == set()

    def test_corrupt_manifest_starts_fresh(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text("{torn")
        m = SweepManifest.load_or_create(path, "id1", "s", self.KEYS)
        assert m.completed == set()
        assert json.loads(path.read_text())["schema_version"] == \
            MANIFEST_SCHEMA_VERSION

    def test_different_shard_split_starts_fresh(self, tmp_path):
        path = tmp_path / "m.json"
        SweepManifest.load_or_create(
            path, "id1", "s", self.KEYS, (0, 1)).mark_done("k1")
        m = SweepManifest.load_or_create(path, "id1", "s", self.KEYS, (0, 2))
        assert m.completed == set()


class TestRunSweep:
    def test_end_to_end_then_fully_cached(self, tmp_path):
        sw = tiny_sweep()
        first = run_sweep(sw, TINY, jobs=1, out_dir=tmp_path / "o",
                          cache_dir=tmp_path / "c")
        assert first.executed == 2 and first.cached == 0
        assert not first.failures
        again = run_sweep(sw, TINY, jobs=1, out_dir=tmp_path / "o",
                          cache_dir=tmp_path / "c")
        assert again.executed == 0 and again.cached == 2

    def test_results_artifact_uses_result_schema(self, tmp_path):
        from repro.sim.system import RESULT_SCHEMA_VERSION, SystemResult
        outcome = run_sweep(tiny_sweep(), TINY, jobs=1,
                            out_dir=tmp_path / "o", cache_dir=tmp_path / "c")
        data = json.loads(outcome.results_path.read_text())
        assert data["kind"] == "sweep"
        assert data["result_schema_version"] == RESULT_SCHEMA_VERSION
        assert data["complete"] is True
        assert len(data["points"]) == 2
        for point in data["points"]:
            # every per-point payload is a loadable SystemResult cache dict
            restored = SystemResult.from_cache_dict(point["result"])
            assert restored.ipcs and "controller" in restored.metrics
            assert point["axes"]["scheduler"] in ("bliss", "frfcfs")

    def test_resume_after_interruption(self, tmp_path, monkeypatch):
        """The acceptance criterion: kill a sweep mid-grid, re-run, and the
        previously finished points are served from the cache while the
        remainder executes to completion."""
        sw = SweepSpec("resume", axes={"scheduler": ["bliss", "frfcfs"],
                                       "queues.read_entries": [16, 64]},
                       base={"mix_id": 1})
        real_run_one = common.run_one
        executed: list = []

        def interrupting(spec, params):
            if len(executed) >= 2:
                raise KeyboardInterrupt   # simulated ^C mid-sweep
            result = real_run_one(spec, params)
            executed.append(spec)
            return result

        monkeypatch.setattr(common, "run_one", interrupting)
        with pytest.raises(KeyboardInterrupt):
            run_sweep(sw, TINY, jobs=1, out_dir=tmp_path / "o",
                      cache_dir=tmp_path / "c")
        # mid-sweep checkpoints live in the JSON ∪ the append-only log
        mdir = tmp_path / "o" / "resume"
        done = set(json.loads(
            (mdir / "manifest.json").read_text())["completed"])
        done |= set((mdir / "manifest.log").read_text().split())
        assert len(done) == 2

        def counting(spec, params):
            executed.append(spec)
            return real_run_one(spec, params)

        executed.clear()
        monkeypatch.setattr(common, "run_one", counting)
        outcome = run_sweep(sw, TINY, jobs=1, out_dir=tmp_path / "o",
                            cache_dir=tmp_path / "c")
        assert len(executed) == 2          # only the unfinished half ran
        assert outcome.executed == 2 and outcome.cached == 2
        assert not outcome.failures
        manifest = json.loads(
            (tmp_path / "o" / "resume" / "manifest.json").read_text())
        assert len(manifest["completed"]) == 4
        assert json.loads(
            outcome.results_path.read_text())["complete"] is True

    def test_point_failure_isolated_and_checkpointed(self, tmp_path,
                                                     monkeypatch):
        sw = SweepSpec("f", axes={"scheduler": ["bliss", "frfcfs"]},
                       base={"mix_id": 1})
        real_run_one = common.run_one

        def failing(spec, params):
            if spec.scheduler == "frfcfs":
                raise RuntimeError("injected point failure")
            return real_run_one(spec, params)

        monkeypatch.setattr(common, "run_one", failing)
        outcome = run_sweep(sw, TINY, jobs=1, out_dir=tmp_path / "o",
                            cache_dir=tmp_path / "c")
        assert len(outcome.failures) == 1
        assert "injected point failure" in outcome.failures[0].error
        good = [p for p in outcome.points if p.error is None]
        assert len(good) == 1 and good[0].result is not None
        data = json.loads(outcome.results_path.read_text())
        assert data["complete"] is False

    def test_sharded_execution_covers_grid(self, tmp_path):
        sw = tiny_sweep(name="sh")
        a = run_sweep(sw, TINY, shard=(0, 2), jobs=1,
                      out_dir=tmp_path / "o", cache_dir=tmp_path / "c")
        b = run_sweep(sw, TINY, shard=(1, 2), jobs=1,
                      out_dir=tmp_path / "o", cache_dir=tmp_path / "c")
        assert a.executed == 1 and b.executed == 1
        assert a.manifest_path != b.manifest_path
        # after both shards, a whole-grid run is fully cache-served
        whole = run_sweep(sw, TINY, jobs=1, out_dir=tmp_path / "o",
                          cache_dir=tmp_path / "c")
        assert whole.executed == 0 and whole.cached == 2

    def test_no_cache_records_no_checkpoints(self, tmp_path):
        """--no-cache progress is not resumable, so the manifest must not
        claim it: a later cached run executes everything."""
        sw = tiny_sweep(name="nc")
        first = run_sweep(sw, TINY, jobs=1, out_dir=tmp_path / "o",
                          cache_dir=tmp_path / "c", use_cache=False)
        assert first.executed == 2
        manifest = json.loads(
            (tmp_path / "o" / "nc" / "manifest.json").read_text())
        assert manifest["completed"] == []
        # ... but the artifact of a fully successful run is complete:
        # this run's outcomes are the whole truth without a cache
        data = json.loads(first.results_path.read_text())
        assert data["complete"] is True
        second = run_sweep(sw, TINY, jobs=1, out_dir=tmp_path / "o",
                           cache_dir=tmp_path / "c")
        assert second.executed == 2 and second.cached == 0

    def test_queue_depth_axis_changes_controller(self, tmp_path):
        """A queues.read_entries axis produces distinct cached results."""
        sw = SweepSpec("q", axes={"queues.read_entries": [4, 64]},
                       base={"mix_id": 1, "design": "DCA"})
        outcome = run_sweep(sw, TINY, jobs=1, out_dir=tmp_path / "o",
                            cache_dir=tmp_path / "c")
        r4, r64 = [p.result for p in outcome.points]
        assert r4.metrics != r64.metrics   # the knob reached the machine


class TestSweepCLI:
    def test_dry_run(self, capsys):
        rc = sweep_cli_main(["--dry-run", "--axis", "scheduler=bliss,frfcfs"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "2 points" in out and "scheduler=frfcfs" in out

    def test_runner_dispatches_sweep(self, capsys):
        rc = runner_main(["sweep", "--dry-run", "--axis", "design=CD,DCA"])
        assert rc == 0
        assert "2 points" in capsys.readouterr().out

    def test_mixes_shorthand_and_validation(self, capsys):
        rc = sweep_cli_main(["--dry-run", "--axis", "design=CD", "--mixes", "3"])
        assert rc == 0
        assert "3 points" in capsys.readouterr().out
        with pytest.raises(SystemExit):
            sweep_cli_main(["--dry-run", "--axis", "design=CD",
                            "--mixes", "0"])

    def test_measure_validation(self):
        with pytest.raises(SystemExit):
            sweep_cli_main(["--dry-run", "--axis", "design=CD",
                            "--measure", "0"])

    def test_unknown_axis_is_usage_error(self):
        with pytest.raises(SystemExit):
            sweep_cli_main(["--dry-run", "--axis", "bogus=1"])

    def test_duplicate_axis_flag_rejected(self):
        with pytest.raises(SystemExit):
            sweep_cli_main(["--dry-run", "--axis", "scheduler=bliss",
                            "--axis", "scheduler=frfcfs"])

    def test_mixes_conflicts_with_mix_id_axis(self):
        with pytest.raises(SystemExit):
            sweep_cli_main(["--dry-run", "--axis", "mix_id=1,2",
                            "--mixes", "3"])

    def test_spec_file(self, tmp_path, capsys):
        spec = {"name": "fromfile",
                "axes": {"design": ["CD", "ROD", "DCA"]},
                "base": {"mix_id": 1}}
        path = tmp_path / "s.json"
        path.write_text(json.dumps(spec))
        rc = sweep_cli_main(["--dry-run", "--spec", str(path)])
        assert rc == 0
        assert "fromfile: 3 points" in capsys.readouterr().out

    def test_cli_end_to_end_and_resume(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c"))
        args = ["--quick", "--measure", "2000", "--jobs", "1",
                "--axis", "scheduler=bliss,frfcfs",
                "--name", "cli", "--out", str(tmp_path / "o")]
        assert sweep_cli_main(args) == 0
        out = capsys.readouterr().out
        assert "2 executed, 0 cached" in out
        assert sweep_cli_main(args) == 0
        assert "0 executed, 2 cached" in capsys.readouterr().out
