"""MAP-I miss predictor: learning, prediction, accounting."""

import pytest

from repro.cache.mapi import MAPIPredictor


class TestPrediction:
    def test_cold_predicts_miss(self):
        p = MAPIPredictor(1)
        assert p.predict_miss(0, 0x400100)

    def test_learns_hits(self):
        p = MAPIPredictor(1)
        pc = 0x400100
        for _ in range(4):
            p.update(0, pc, was_hit=True, predicted_miss=True)
        assert not p.predict_miss(0, pc)

    def test_learns_misses_back(self):
        p = MAPIPredictor(1)
        pc = 0x400100
        for _ in range(8):
            p.update(0, pc, was_hit=True, predicted_miss=False)
        for _ in range(8):
            p.update(0, pc, was_hit=False, predicted_miss=False)
        assert p.predict_miss(0, pc)

    def test_counters_saturate(self):
        p = MAPIPredictor(1)
        pc = 0x400100
        for _ in range(100):
            p.update(0, pc, was_hit=True, predicted_miss=False)
        t = p.tables[0][p._index(pc)]
        assert t == p.counter_max

    def test_per_core_tables(self):
        p = MAPIPredictor(2)
        pc = 0x400100
        for _ in range(4):
            p.update(0, pc, was_hit=True, predicted_miss=False)
        assert not p.predict_miss(0, pc)
        assert p.predict_miss(1, pc)   # core 1 still cold

    def test_different_pcs_independent(self):
        p = MAPIPredictor(1)
        for _ in range(4):
            p.update(0, 0x100, was_hit=True, predicted_miss=False)
        assert not p.predict_miss(0, 0x100)
        # A PC hashing to a different entry stays cold.
        other = next(pc for pc in range(0x200, 0x10000, 64)
                     if p._index(pc) != p._index(0x100))
        assert p.predict_miss(0, other)


class TestStats:
    def test_accuracy_tracking(self):
        p = MAPIPredictor(1)
        p.predict_miss(0, 0)
        p.update(0, 0, was_hit=False, predicted_miss=True)   # correct
        p.update(0, 0, was_hit=True, predicted_miss=True)    # wasted fetch
        p.update(0, 0, was_hit=False, predicted_miss=False)  # missed opp
        assert p.stats.correct == 1
        assert p.stats.wasted_fetches == 1
        assert p.stats.missed_opportunities == 1

    def test_table_size_validation(self):
        with pytest.raises(ValueError):
            MAPIPredictor(1, table_entries=100)
