"""Benchmark profiles, trace generation, Table I."""

import dataclasses

import pytest

from repro.workloads.generator import make_trace
from repro.workloads.profiles import PROFILES, BenchmarkProfile, profile
from repro.workloads.table1 import TABLE1_MIXES, all_mix_ids, mix_name, mix_profiles


class TestProfiles:
    def test_eleven_benchmarks(self):
        assert len(PROFILES) == 11

    def test_lookup(self):
        assert profile("mcf").name == "mcf"

    def test_unknown(self):
        with pytest.raises(KeyError):
            profile("perlbench")

    def test_validation_apki(self):
        with pytest.raises(ValueError):
            BenchmarkProfile("x", l2_apki=0, store_fraction=0.1,
                             seq_fraction=0.5, num_streams=1, footprint_mb=1)

    def test_validation_fraction(self):
        with pytest.raises(ValueError):
            BenchmarkProfile("x", l2_apki=10, store_fraction=1.5,
                             seq_fraction=0.5, num_streams=1, footprint_mb=1)

    def test_validation_streams(self):
        with pytest.raises(ValueError):
            BenchmarkProfile("x", l2_apki=10, store_fraction=0.1,
                             seq_fraction=0.5, num_streams=0, footprint_mb=1)

    def test_mean_gap(self):
        assert profile("mcf").mean_gap_instructions == pytest.approx(1000 / 45)

    def test_spread_of_intensities(self):
        """The suite spans memory intensities like the paper's selection."""
        apkis = [p.l2_apki for p in PROFILES.values()]
        assert min(apkis) <= 10 and max(apkis) >= 40

    def test_streamers_present(self):
        assert profile("libquantum").seq_fraction > 0.9
        assert profile("mcf").seq_fraction <= 0.2

    def test_write_heavy_lbm(self):
        assert profile("lbm").store_fraction >= 0.4


class TestTraceGenerator:
    def test_deterministic(self):
        t1 = make_trace(profile("soplex"), seed=5)
        t2 = make_trace(profile("soplex"), seed=5)
        assert [next(t1) for _ in range(500)] == [next(t2) for _ in range(500)]

    def test_seed_matters(self):
        t1 = make_trace(profile("soplex"), seed=5)
        t2 = make_trace(profile("soplex"), seed=6)
        assert ([next(t1) for _ in range(200)]
                != [next(t2) for _ in range(200)])

    def test_addresses_within_footprint(self):
        p = profile("gcc")
        t = make_trace(p, seed=1, footprint_scale=1 / 8)
        limit = max(1024 * 64, int(p.footprint_bytes / 8))
        for _ in range(2000):
            _, addr, _, _ = next(t)
            assert 0 <= addr < limit + 64

    def test_core_offset_applied(self):
        t = make_trace(profile("gcc"), seed=1, core_offset=1 << 44)
        for _ in range(100):
            _, addr, _, _ = next(t)
            assert addr >= 1 << 44

    def test_store_fraction_approximate(self):
        p = profile("lbm")  # 45% stores
        t = make_trace(p, seed=3)
        writes = sum(next(t)[2] for _ in range(20_000))
        assert 0.40 < writes / 20_000 < 0.50

    def test_mean_gap_approximates_apki(self):
        p = profile("milc")  # APKI 20 -> mean gap 50
        t = make_trace(p, seed=4)
        gaps = [next(t)[0] for _ in range(30_000)]
        mean = sum(gaps) / len(gaps)
        assert 0.7 * p.mean_gap_instructions < mean < 1.3 * p.mean_gap_instructions

    def test_streaming_blocks_sequential(self):
        p = profile("libquantum")  # 95% sequential
        t = make_trace(p, seed=7)
        seq_steps = 0
        prev = None
        for _ in range(2000):
            _, addr, _, _ = next(t)
            if prev is not None and addr - prev == 64:
                seq_steps += 1
            prev = addr
        assert seq_steps > 1000   # majority single-block strides

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            make_trace(profile("gcc"), footprint_scale=0)

    def test_pcs_stable_for_streams(self):
        t = make_trace(profile("libquantum"), seed=2)
        pcs = {next(t)[3] for _ in range(5000)}
        # few distinct PCs: streams + the random-access pool
        assert len(pcs) <= 2 + 8


class TestTable1:
    def test_thirty_mixes(self):
        assert all_mix_ids() == list(range(1, 31))

    def test_exact_paper_rows(self):
        assert TABLE1_MIXES[1] == ("soplex", "mcf", "gcc", "libquantum")
        assert TABLE1_MIXES[15] == ("omnetpp", "mcf", "leslie3d", "lbm")
        assert TABLE1_MIXES[30] == ("omnetpp", "bwaves", "leslie3d", "GemsFDTD")

    def test_mix_profiles_resolve(self):
        for m in all_mix_ids():
            profs = mix_profiles(m)
            assert len(profs) == 4
            assert all(p.name in PROFILES for p in profs)

    def test_mix_name(self):
        assert mix_name(1) == "soplex-mcf-gcc-libquantum"

    def test_invalid_mix(self):
        with pytest.raises(KeyError):
            mix_profiles(31)

    def test_all_names_known(self):
        for names in TABLE1_MIXES.values():
            for n in names:
                assert n in PROFILES
