"""Benchmark profiles, trace generation, Table I, workload scenarios."""

import pytest

from repro.workloads.generator import BLOCK, make_trace
from repro.workloads.profiles import PROFILES, BenchmarkProfile, profile
from repro.workloads.scenarios import (
    SCENARIOS,
    ConflictProfile,
    PhasedProfile,
    TraceFileWorkload,
    workload_names,
    workload_profiles,
)
from repro.workloads.table1 import TABLE1_MIXES, all_mix_ids, mix_name, mix_profiles


class TestProfiles:
    def test_eleven_benchmarks(self):
        assert len(PROFILES) == 11

    def test_lookup(self):
        assert profile("mcf").name == "mcf"

    def test_unknown(self):
        with pytest.raises(KeyError):
            profile("perlbench")

    def test_validation_apki(self):
        with pytest.raises(ValueError):
            BenchmarkProfile("x", l2_apki=0, store_fraction=0.1,
                             seq_fraction=0.5, num_streams=1, footprint_mb=1)

    def test_validation_fraction(self):
        with pytest.raises(ValueError):
            BenchmarkProfile("x", l2_apki=10, store_fraction=1.5,
                             seq_fraction=0.5, num_streams=1, footprint_mb=1)

    def test_validation_streams(self):
        with pytest.raises(ValueError):
            BenchmarkProfile("x", l2_apki=10, store_fraction=0.1,
                             seq_fraction=0.5, num_streams=0, footprint_mb=1)

    def test_mean_gap(self):
        assert profile("mcf").mean_gap_instructions == pytest.approx(1000 / 45)

    def test_spread_of_intensities(self):
        """The suite spans memory intensities like the paper's selection."""
        apkis = [p.l2_apki for p in PROFILES.values()]
        assert min(apkis) <= 10 and max(apkis) >= 40

    def test_streamers_present(self):
        assert profile("libquantum").seq_fraction > 0.9
        assert profile("mcf").seq_fraction <= 0.2

    def test_write_heavy_lbm(self):
        assert profile("lbm").store_fraction >= 0.4


class TestTraceGenerator:
    def test_deterministic(self):
        t1 = make_trace(profile("soplex"), seed=5)
        t2 = make_trace(profile("soplex"), seed=5)
        assert [next(t1) for _ in range(500)] == [next(t2) for _ in range(500)]

    def test_seed_matters(self):
        t1 = make_trace(profile("soplex"), seed=5)
        t2 = make_trace(profile("soplex"), seed=6)
        assert ([next(t1) for _ in range(200)]
                != [next(t2) for _ in range(200)])

    def test_addresses_within_footprint(self):
        p = profile("gcc")
        t = make_trace(p, seed=1, footprint_scale=1 / 8)
        limit = max(1024 * 64, int(p.footprint_bytes / 8))
        for _ in range(2000):
            _, addr, _, _ = next(t)
            assert 0 <= addr < limit + 64

    def test_core_offset_applied(self):
        t = make_trace(profile("gcc"), seed=1, core_offset=1 << 44)
        for _ in range(100):
            _, addr, _, _ = next(t)
            assert addr >= 1 << 44

    def test_store_fraction_approximate(self):
        p = profile("lbm")  # 45% stores
        t = make_trace(p, seed=3)
        writes = sum(next(t)[2] for _ in range(20_000))
        assert 0.40 < writes / 20_000 < 0.50

    def test_mean_gap_approximates_apki(self):
        p = profile("milc")  # APKI 20 -> mean gap 50
        t = make_trace(p, seed=4)
        gaps = [next(t)[0] for _ in range(30_000)]
        mean = sum(gaps) / len(gaps)
        assert 0.7 * p.mean_gap_instructions < mean < 1.3 * p.mean_gap_instructions

    def test_streaming_blocks_sequential(self):
        p = profile("libquantum")  # 95% sequential
        t = make_trace(p, seed=7)
        seq_steps = 0
        prev = None
        for _ in range(2000):
            _, addr, _, _ = next(t)
            if prev is not None and addr - prev == 64:
                seq_steps += 1
            prev = addr
        assert seq_steps > 1000   # majority single-block strides

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            make_trace(profile("gcc"), footprint_scale=0)

    def test_pcs_stable_for_streams(self):
        t = make_trace(profile("libquantum"), seed=2)
        pcs = {next(t)[3] for _ in range(5000)}
        # few distinct PCs: streams + the random-access pool
        assert len(pcs) <= 2 + 8

    def test_more_streams_than_blocks_does_not_crash(self):
        """Tiny scaled footprints used to hit randrange(0): the integer
        segment width footprint_blocks // n_streams went to zero."""
        p = BenchmarkProfile("x", l2_apki=10, store_fraction=0.1,
                             seq_fraction=1.0, num_streams=2000,
                             footprint_mb=0.01)
        t = make_trace(p, seed=1)   # floor clamps footprint to 1024 blocks
        for _ in range(3000):
            _, addr, _, _ = next(t)
            assert 0 <= addr < 1024 * BLOCK

    def test_walkers_cover_tail_blocks(self):
        """Sequential walkers must reach the blocks past
        n_streams * (footprint_blocks // n_streams), which the truncating
        partition stranded (only random accesses could touch them)."""
        p = BenchmarkProfile("x", l2_apki=10, store_fraction=0.0,
                             seq_fraction=1.0, num_streams=3,
                             footprint_mb=1025 * 64 / 2**20,  # 1025 blocks
                             jump_prob=0.05)
        t = make_trace(p, seed=3)
        # 1025 // 3 = 341 -> old partition could never touch block 1024
        tail = 3 * (1025 // 3)
        seen = {next(t)[1] // BLOCK for _ in range(60_000)}
        assert any(b >= tail for b in seen), "tail blocks unreachable"
        # walkers also stay inside the footprint
        assert max(seen) < 1025

    def test_partition_covers_whole_footprint(self):
        """With pure sequential traffic every block is some walker's."""
        p = BenchmarkProfile("x", l2_apki=200, store_fraction=0.0,
                             seq_fraction=1.0, num_streams=4,
                             footprint_mb=1030 * 64 / 2**20,
                             jump_prob=0.0)
        t = make_trace(p, seed=5)
        seen = {next(t)[1] // BLOCK for _ in range(40_000)}
        assert seen == set(range(1030))


class TestTable1:
    def test_thirty_mixes(self):
        assert all_mix_ids() == list(range(1, 31))

    def test_exact_paper_rows(self):
        assert TABLE1_MIXES[1] == ("soplex", "mcf", "gcc", "libquantum")
        assert TABLE1_MIXES[15] == ("omnetpp", "mcf", "leslie3d", "lbm")
        assert TABLE1_MIXES[30] == ("omnetpp", "bwaves", "leslie3d", "GemsFDTD")

    def test_mix_profiles_resolve(self):
        for m in all_mix_ids():
            profs = mix_profiles(m)
            assert len(profs) == 4
            assert all(p.name in PROFILES for p in profs)

    def test_mix_name(self):
        assert mix_name(1) == "soplex-mcf-gcc-libquantum"

    def test_invalid_mix(self):
        with pytest.raises(KeyError):
            mix_profiles(31)

    def test_all_names_known(self):
        for names in TABLE1_MIXES.values():
            for n in names:
                assert n in PROFILES


class TestPhasedProfile:
    def phased(self, accesses=50):
        return PhasedProfile("ph", (profile("libquantum"), profile("mcf")),
                             phase_accesses=accesses)

    def test_protocol_surface(self):
        p = self.phased()
        assert p.name == "ph"
        assert p.footprint_bytes == max(profile("libquantum").footprint_bytes,
                                        profile("mcf").footprint_bytes)
        assert 0.0 < p.store_fraction < 1.0

    def test_deterministic(self):
        t1 = self.phased().make_trace(seed=4)
        t2 = self.phased().make_trace(seed=4)
        assert [next(t1) for _ in range(400)] == [next(t2) for _ in range(400)]

    def test_phases_alternate_behaviour(self):
        """Inside a streaming phase accesses stride sequentially; inside
        the pointer-chase phase they mostly don't."""
        t = self.phased(accesses=500).make_trace(seed=1)
        def seq_share(n):
            prev, seq = None, 0
            for _ in range(n):
                _, addr, _, _ = next(t)
                if prev is not None and addr - prev == 64:
                    seq += 1
                prev = addr
            return seq / n
        stream_phase = seq_share(500)
        chase_phase = seq_share(500)
        assert stream_phase > 0.6
        assert chase_phase < 0.3

    def test_validation(self):
        with pytest.raises(ValueError):
            PhasedProfile("x", ())
        with pytest.raises(ValueError):
            PhasedProfile("x", (profile("mcf"),), phase_accesses=0)


class TestConflictProfile:
    def test_rows_rotate_per_slot(self):
        p = ConflictProfile("adv", banks_touched=4, rows_per_bank=2)
        t = p.make_trace(seed=1)
        slot_rows = {}
        for _ in range(64):
            _, addr, _, _ = next(t)
            slot = (addr % p.row_stride_bytes) // p.bank_stride_bytes
            row = addr // p.row_stride_bytes
            slot_rows.setdefault(slot, set()).add(row)
        assert set(slot_rows) == {0, 1, 2, 3}
        assert all(rows == {0, 1} for rows in slot_rows.values())

    def test_footprint_scale_does_not_bend_pattern(self):
        p = ConflictProfile("adv")
        ta = p.make_trace(seed=2)
        tb = p.make_trace(seed=2, footprint_scale=1 / 20)
        assert [next(ta)[1] for _ in range(10)] == \
            [next(tb)[1] for _ in range(10)]

    def test_validation(self):
        with pytest.raises(ValueError):
            ConflictProfile("x", rows_per_bank=1)

    def test_prefill_covers_all_rows_unscaled(self):
        """The trace ignores capacity scaling, so the warm set must too:
        every (slot, row) block is prefilled, deterministically."""
        p = ConflictProfile("adv", banks_touched=4, rows_per_bank=2)
        blocks = p.prefill_blocks()
        assert blocks == p.prefill_blocks()   # deterministic
        assert len(blocks) == 4 * 2 * (p.bank_stride_bytes // 64)
        rows = {addr // p.row_stride_bytes for addr, _ in blocks}
        assert rows == {0, 1}
        assert any(d for _, d in blocks) and not all(d for _, d in blocks)


class TestTraceFileWorkload:
    def write_trace(self, tmp_path, lines):
        path = tmp_path / "t.trace"
        path.write_text("\n".join(lines))
        return TraceFileWorkload(str(path))

    def test_parse_and_replay_cycles(self, tmp_path):
        w = self.write_trace(tmp_path, [
            "# comment", "", "10 0x1000 r 0x400", "5 4096 w", "0 0x40 1",
        ])
        assert w.name == "t"
        assert w.store_fraction == pytest.approx(2 / 3)
        # distinct blocks touched (0x1000 and 4096 share one), not span
        assert w.footprint_bytes == 2 * 64
        t = w.make_trace()
        first = [next(t) for _ in range(3)]
        assert first == [(10, 0x1000, False, 0x400),
                         (5, 4096, True, 0x700000),
                         (0, 0x40, True, 0x700000)]
        assert [next(t) for _ in range(3)] == first   # cyclic

    def test_seed_rotates_start_and_offset_applies(self, tmp_path):
        w = self.write_trace(tmp_path, ["1 0 r", "2 64 r", "3 128 r"])
        t = w.make_trace(seed=1, core_offset=1 << 20)
        assert next(t) == (2, (1 << 20) + 64, False, 0x700000)

    def test_malformed_lines_rejected(self, tmp_path):
        for bad in (["xyz"], ["1 2"], ["1 0x10 q"], ["-1 64 r"]):
            w = self.write_trace(tmp_path, bad)
            with pytest.raises(ValueError, match="trace|malformed|negative"):
                w.make_trace()

    def test_empty_trace_rejected(self, tmp_path):
        w = self.write_trace(tmp_path, ["# only a comment"])
        with pytest.raises(ValueError, match="no accesses"):
            w.make_trace()

    def test_full_virtual_addresses_rejected(self, tmp_path):
        """Un-rebased userspace addresses would alias across the per-core
        2^44 windows (and their span would explode the prefill)."""
        w = self.write_trace(tmp_path, ["1 0x7f0000000000 r"])
        with pytest.raises(ValueError, match="rebase"):
            w.make_trace()

    def test_sparse_trace_footprint_stays_bounded(self, tmp_path):
        """footprint_bytes counts distinct blocks, not the address span:
        a sparse trace must not size a terabyte-scale prefill."""
        w = self.write_trace(tmp_path, [f"1 {i << 30} r" for i in range(8)])
        assert w.footprint_bytes == 8 * 64

    def test_prefill_blocks_exact_set_with_dirty_bits(self, tmp_path):
        """The warm-up seeds exactly the touched blocks (a contiguous
        fill from the core base would warm blocks the trace never
        visits), dirty iff the trace ever writes the block."""
        w = self.write_trace(tmp_path, [
            "1 0x40000000 r", "1 0x40000010 w", "1 128 r",
        ])
        assert w.prefill_blocks() == [(128, False), (0x40000000, True)]


class TestScenarioRegistry:
    def test_registered_scenarios_resolve(self):
        for name in workload_names():
            profs = workload_profiles(name)
            assert len(profs) == 4
            for p in profs:
                assert p.name and p.footprint_bytes > 0
                assert 0.0 <= p.store_fraction <= 1.0
                next(p.make_trace(seed=1))   # protocol: stream works

    def test_trace_prefix_resolves(self, tmp_path):
        path = tmp_path / "x.trace"
        path.write_text("1 0 r\n")
        (w,) = workload_profiles(f"trace:{path}")
        assert isinstance(w, TraceFileWorkload)

    def test_unknown_scenario(self):
        with pytest.raises(KeyError, match="unknown workload"):
            workload_profiles("nope")
        with pytest.raises(ValueError, match="file path"):
            workload_profiles("trace:")

    def test_scenarios_are_registered(self):
        assert {"phased_stream_chase", "adversarial_writeback",
                "adversarial_conflict", "conflict_vs_streams"} <= \
            set(SCENARIOS)


class TestTraceCursor:
    """Positioned, reconstructible trace iteration (the snapshot layer's
    trace contract: same source + args ⇒ identical stream, so a cursor
    can always be rebuilt and fast-forwarded to its position)."""

    SOURCES = [
        ("profile", lambda: profile("soplex")),
        ("phased", lambda: PhasedProfile(
            "ph", (profile("libquantum"), profile("mcf")),
            phase_accesses=64)),
        ("conflict", lambda: ConflictProfile("cf")),
    ]

    @pytest.mark.parametrize("name,make", SOURCES,
                             ids=[n for n, _ in SOURCES])
    def test_deepcopy_mid_stream_continues_identically(self, name, make):
        import copy
        from repro.workloads.cursor import TraceCursor
        cur = TraceCursor(make(), seed=7, core_offset=1 << 44,
                          footprint_scale=1 / 64)
        consumed = [next(cur) for _ in range(500)]
        clone = copy.deepcopy(cur)
        assert clone.count == cur.count == 500
        # Bit-identical continuations, then full independence.
        assert [next(clone) for _ in range(300)] == \
               [next(cur) for _ in range(300)]
        next(cur)
        assert cur.count == 801 and clone.count == 800
        # The deepcopy's rebuild-and-replay did not corrupt the already
        # consumed history: it matches a fresh cursor's first 500 ops.
        fresh = TraceCursor(make(), seed=7, core_offset=1 << 44,
                            footprint_scale=1 / 64)
        assert consumed == [next(fresh) for _ in range(500)]

    @pytest.mark.parametrize("name,make", SOURCES,
                             ids=[n for n, _ in SOURCES])
    def test_pickle_round_trip(self, name, make):
        import pickle
        from repro.workloads.cursor import TraceCursor
        cur = TraceCursor(make(), seed=3, core_offset=0,
                          footprint_scale=1 / 64)
        for _ in range(200):
            next(cur)
        clone = pickle.loads(pickle.dumps(cur))
        assert clone.count == 200
        assert [next(clone) for _ in range(100)] == \
               [next(cur) for _ in range(100)]

    def test_trace_file_cursor(self, tmp_path):
        import copy
        from repro.workloads.cursor import TraceCursor
        path = tmp_path / "t.trc"
        path.write_text("\n".join(f"{i} {i * 64} {'w' if i % 3 else 'r'}"
                                  for i in range(17)))
        cur = TraceCursor(TraceFileWorkload(str(path)), seed=5,
                          core_offset=0, footprint_scale=1.0)
        for _ in range(25):               # wraps past the file end
            next(cur)
        clone = copy.deepcopy(cur)
        # The parsed ops tuple is immutable and shared, not re-read.
        assert clone.source is cur.source
        assert [next(clone) for _ in range(40)] == \
               [next(cur) for _ in range(40)]

    def test_skip_equals_consumption(self):
        from repro.workloads.cursor import TraceCursor
        make = lambda: TraceCursor(profile("gcc"), seed=11, core_offset=0,
                                   footprint_scale=1 / 64)
        a, b = make(), make()
        for _ in range(321):
            next(a)
        b.skip(321)
        assert a.count == b.count == 321
        assert [next(a) for _ in range(50)] == [next(b) for _ in range(50)]

    def test_skip_rejects_negative(self):
        from repro.workloads.cursor import TraceCursor
        cur = TraceCursor(profile("gcc"), seed=1, core_offset=0,
                          footprint_scale=1 / 64)
        with pytest.raises(ValueError):
            cur.skip(-1)

    def test_same_seed_same_stream_all_scenario_types(self):
        """The determinism contract every snapshot restore rests on."""
        for _name, make in self.SOURCES:
            s1, s2 = make(), make()
            t1 = s1.make_trace(seed=9, core_offset=0, footprint_scale=1 / 64)
            t2 = s2.make_trace(seed=9, core_offset=0, footprint_scale=1 / 64)
            assert [next(t1) for _ in range(400)] == \
                   [next(t2) for _ in range(400)]
