"""Legacy setup shim.

All metadata lives in pyproject.toml; this file exists so `pip install -e .`
works in offline environments whose setuptools lacks PEP 660 editable-wheel
support (no `wheel` package installed).
"""

from setuptools import setup

setup()
