"""Setup shim: metadata lives in pyproject.toml.

This file exists for two reasons:

* `pip install -e .` keeps working in offline environments whose
  setuptools lacks PEP 660 editable-wheel support (no `wheel` package);
* it hosts the **optional compiled build**: ``REPRO_COMPILE=1`` compiles
  the hot-path modules (``repro.build_info.MYPYC_MODULES``) to C
  extensions with mypyc.  The default install is pure Python and needs
  no compiler; the compiled build is bit-identical (same goldens, same
  lockstep suites — see tests/test_compiled_parity.py) and exists only
  for wall-clock speed.

    REPRO_COMPILE=1 pip install -e .      # needs mypy + a C toolchain

A missing mypy under REPRO_COMPILE=1 is a hard error, never a silent
fallback: an installer who asked for the compiled build must not end up
benchmarking interpreted code.
"""

import os
import runpy
from pathlib import Path

from setuptools import setup

ext_modules = []
if os.environ.get("REPRO_COMPILE") == "1":
    try:
        from mypyc.build import mypycify
    except ImportError as exc:          # no silent fallback by design
        raise SystemExit(
            "REPRO_COMPILE=1 requires mypy (pip install mypy) and a C "
            "toolchain; install them or drop REPRO_COMPILE for the "
            "pure-Python build") from exc
    here = Path(__file__).resolve().parent
    # Single source of truth for the module list; executed standalone so
    # this works before the package itself is importable.
    info = runpy.run_path(str(here / "src" / "repro" / "build_info.py"))
    paths = [str(here / "src" / Path(*m.split("."))) + ".py"
             for m in info["MYPYC_MODULES"]]
    ext_modules = mypycify(paths, opt_level="3")

setup(ext_modules=ext_modules)
