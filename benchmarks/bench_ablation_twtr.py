"""Ablation: turnaround-delay sensitivity (paper §V).

The paper conservatively halves the JEDEC wide-IO tWTR (10 ns) to 5 ns and
notes "this conservative assumption will only lower the speedup of our
design over ROD" — i.e. with the full JEDEC turnaround penalty, ROD (which
turns the bus around constantly) loses *more* and DCA's margin grows.

This bench runs DCA and ROD at tWTR = 5 ns and 10 ns and checks the
DCA-over-ROD margin is at least as large under the JEDEC value.
"""

import dataclasses
import statistics

from repro.config import scaled_config, ns
from repro.sim.system import System
from repro.workloads.table1 import mix_profiles

MIXES = (1, 4, 7)


def run_margin(twtr_ns: float) -> float:
    """Geomean DCA/ROD weighted-speedup margin over a few mixes."""
    cfg = scaled_config(8)
    cfg = dataclasses.replace(
        cfg, timings=dataclasses.replace(cfg.timings, tWTR=ns(twtr_ns)))
    margins = []
    for mix in MIXES:
        ws = {}
        for design in ("ROD", "DCA"):
            system = System(cfg, design, mix_profiles(mix),
                            organization="sa", footprint_scale=1 / 20,
                            seed=mix)
            r = system.run(warmup_insts=10_000, measure_insts=25_000,
                           replay_accesses=6_000)
            ws[design] = sum(r.ipcs)
        margins.append(ws["DCA"] / ws["ROD"])
    return statistics.geometric_mean(margins)


def test_dca_margin_grows_with_turnaround_cost(benchmark):
    out = {}

    def once():
        out[5] = run_margin(5.0)
        out[10] = run_margin(10.0)
        return out

    benchmark.pedantic(once, rounds=1, iterations=1)
    # Allow 2% noise at this reduced scale, but the trend must not invert.
    assert out[10] >= out[5] * 0.98, out
    # And DCA must beat ROD under the JEDEC turnaround either way.
    assert out[10] > 1.0
