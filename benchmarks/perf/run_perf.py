#!/usr/bin/env python
"""Run the perf harness (decision-loop + end-to-end) and emit BENCH JSON.

Usage::

    PYTHONPATH=src python benchmarks/perf/run_perf.py --quick --label ci

Falls back to locating ``src/`` relative to this file when PYTHONPATH is
not set, so it also runs as a plain script from the repo root.
"""

import sys
from pathlib import Path

try:
    from repro.bench.harness import main
except ImportError:  # no PYTHONPATH: resolve src/ from the repo layout
    sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "src"))
    from repro.bench.harness import main

if __name__ == "__main__":
    raise SystemExit(main())
