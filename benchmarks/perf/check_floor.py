#!/usr/bin/env python
"""Regression gate: compare a BENCH JSON against the committed floor.

Usage::

    python benchmarks/perf/check_floor.py BENCH_ci.json
    python benchmarks/perf/check_floor.py BENCH_ci.json --tolerance 0.15

``floor.json`` (next to this script) pins reference values for the
harness's *speedup ratios* — never absolute wall clocks, which track the
machine, but ratios of two measurements taken on the same machine in the
same process, which are comparable across runners.  Two metric kinds:

* ``metrics`` — bigger is better (speedups).  A metric fails when

      observed < floor * (1 - tolerance)

  i.e. more than ``tolerance`` (default 15 %) below its reference.
* ``ceilings`` — smaller is better (overhead ratios, e.g. the banked
  topology's fetch-loop cost relative to the flat model).  A metric
  fails when

      observed > ceiling * (1 + tolerance)

Missing metrics fail in both directions: a section silently dropping
out of the BENCH file must not read as a pass.  Exit status 0 = all
metrics hold, 1 = regression.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

FLOOR_PATH = Path(__file__).resolve().parent / "floor.json"


def lookup(data: dict, dotted: str):
    """Resolve ``a.b.c`` into nested dicts; None when any hop is absent."""
    node = data
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def check(bench: dict, floor: dict, tolerance: float) -> list[str]:
    """Return a list of failure messages (empty = pass), printing a table."""
    failures = []
    print(f"{'metric':<40} {'ref':>8} {'limit':>8} {'observed':>9}")
    for metric, ref in floor["metrics"].items():
        threshold = ref * (1.0 - tolerance)
        observed = lookup(bench, metric)
        if observed is None:
            print(f"{metric:<40} {ref:>8.2f} {threshold:>8.2f} {'MISSING':>9}")
            failures.append(f"{metric}: missing from BENCH file")
            continue
        status = "ok" if observed >= threshold else "FAIL"
        print(f"{metric:<40} {ref:>8.2f} {threshold:>8.2f} "
              f"{observed:>9.2f}  {status}")
        if observed < threshold:
            failures.append(
                f"{metric}: {observed:.3f} < {threshold:.3f} "
                f"(floor {ref:.3f} - {tolerance:.0%})")
    for metric, ref in floor.get("ceilings", {}).items():
        threshold = ref * (1.0 + tolerance)
        observed = lookup(bench, metric)
        if observed is None:
            print(f"{metric:<40} {ref:>8.2f} {threshold:>8.2f} {'MISSING':>9}")
            failures.append(f"{metric}: missing from BENCH file")
            continue
        status = "ok" if observed <= threshold else "FAIL"
        print(f"{metric:<40} {ref:>8.2f} {threshold:>8.2f} "
              f"{observed:>9.2f}  {status}")
        if observed > threshold:
            failures.append(
                f"{metric}: {observed:.3f} > {threshold:.3f} "
                f"(ceiling {ref:.3f} + {tolerance:.0%})")
    return failures


def main(argv=None) -> int:
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("bench", help="BENCH_<label>.json to check")
    p.add_argument("--floor", default=str(FLOOR_PATH),
                   help="floor file (default: floor.json beside this script)")
    p.add_argument("--tolerance", type=float, default=None,
                   help="allowed fractional drop below the floor "
                        "(default: the floor file's own, else 0.15)")
    args = p.parse_args(argv)

    bench = json.loads(Path(args.bench).read_text())
    floor = json.loads(Path(args.floor).read_text())
    tolerance = args.tolerance
    if tolerance is None:
        tolerance = floor.get("tolerance", 0.15)

    failures = check(bench, floor, tolerance)
    if failures:
        print("\nperf floor violated:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    total = len(floor["metrics"]) + len(floor.get("ceilings", {}))
    print(f"\nall {total} metrics within {tolerance:.0%} of reference")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
