"""Benchmark: regenerate the paper's Fig. 9 at reduced scale."""

from repro.experiments import fig09_remap as module

from conftest import run_and_check


def test_fig09(benchmark, params, mixes):
    run_and_check(benchmark, module, params, mixes, required_pass=0.5)
