"""Benchmark: regenerate the paper's Fig. 17 at reduced scale."""

from repro.experiments import fig17_rowhit_dm as module

from conftest import run_and_check


def test_fig17(benchmark, params, mixes):
    run_and_check(benchmark, module, params, mixes, required_pass=0.5)
