"""Benchmark: regenerate the paper's Fig. 11 at reduced scale."""

from repro.experiments import fig11_dm_workloads as module

from conftest import run_and_check


def test_fig11(benchmark, params, mixes):
    run_and_check(benchmark, module, params, mixes, required_pass=0.5)
