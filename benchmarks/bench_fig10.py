"""Benchmark: regenerate the paper's Fig. 10 at reduced scale."""

from repro.experiments import fig10_sa_workloads as module

from conftest import run_and_check


def test_fig10(benchmark, params, mixes):
    run_and_check(benchmark, module, params, mixes, required_pass=0.5)
