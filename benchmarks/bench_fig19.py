"""Benchmark: regenerate the paper's Fig. 19 at reduced scale."""

from repro.experiments import fig19_lee as module

from conftest import run_and_check


def test_fig19(benchmark, params, mixes):
    run_and_check(benchmark, module, params, mixes, required_pass=0.5)
