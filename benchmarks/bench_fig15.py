"""Benchmark: regenerate the paper's Fig. 15 at reduced scale."""

from repro.experiments import fig15_turnaround_dm as module

from conftest import run_and_check


def test_fig15(benchmark, params, mixes):
    run_and_check(benchmark, module, params, mixes, required_pass=0.5)
