"""Ablation: underlying scheduling algorithm (BLISS vs FR-FCFS).

The paper builds every design on BLISS but notes "our scheme is not
limited to any scheduling algorithm".  This bench runs DCA and CD over
both underlying schedulers and checks DCA's advantage survives the swap.
"""

from repro.config import scaled_config
from repro.sim.system import System
from repro.workloads.table1 import mix_profiles


def run_one(design: str, scheduler: str) -> float:
    system = System(scaled_config(8), design, mix_profiles(1),
                    organization="sa", scheduler=scheduler,
                    footprint_scale=1 / 24, seed=1)
    r = system.run(warmup_insts=10_000, measure_insts=25_000,
                   replay_accesses=6_000)
    return sum(r.ipcs)


def test_dca_gain_independent_of_scheduler(benchmark):
    out = {}

    def once():
        for sched in ("bliss", "frfcfs"):
            out[sched] = {d: run_one(d, sched) for d in ("CD", "DCA")}
        return out

    benchmark.pedantic(once, rounds=1, iterations=1)
    for sched in ("bliss", "frfcfs"):
        assert out[sched]["DCA"] > out[sched]["CD"] * 0.99, (
            f"DCA lost its edge under {sched}: {out[sched]}")
