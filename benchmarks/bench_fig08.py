"""Benchmark: regenerate the paper's Fig. 8 at reduced scale."""

from repro.experiments import fig08_speedup as module

from conftest import run_and_check


def test_fig08(benchmark, params, mixes):
    run_and_check(benchmark, module, params, mixes, required_pass=0.5)
