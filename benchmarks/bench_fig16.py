"""Benchmark: regenerate the paper's Fig. 16 at reduced scale."""

from repro.experiments import fig16_rowhit_sa as module

from conftest import run_and_check


def test_fig16(benchmark, params, mixes):
    run_and_check(benchmark, module, params, mixes, required_pass=0.5)
