"""Benchmark harness configuration.

Each ``bench_<id>.py`` regenerates one paper artefact at reduced scale
(quick SimParams, 3 Table I mixes) and asserts its shape checks.  A
session-scoped scratch cache directory lets figures that share the
simulation grid (8-17) reuse each other's runs *within* the session while
still measuring real simulation work on first touch.
"""

from __future__ import annotations

import os
import tempfile

import pytest

from repro.experiments.common import SimParams

_SCRATCH = tempfile.mkdtemp(prefix="repro-bench-cache-")
os.environ["REPRO_CACHE_DIR"] = _SCRATCH

#: mixes used by benchmark-scale experiment runs
BENCH_MIXES = [1, 2, 3]


@pytest.fixture(scope="session")
def params() -> SimParams:
    return SimParams.quick()


@pytest.fixture(scope="session")
def mixes() -> list[int]:
    return BENCH_MIXES


def run_and_check(benchmark, module, params, mixes, required_pass=1.0):
    """Run one experiment under pytest-benchmark and verify its checks."""
    out = {}

    def once():
        report, data, checks = module.run(params, mixes, jobs=0)
        out["checks"] = checks
        return data

    benchmark.pedantic(once, rounds=1, iterations=1)
    checks = out["checks"]
    passed = sum(1 for _d, ok in checks if ok)
    assert passed >= required_pass * len(checks), (
        f"{module.ID}: only {passed}/{len(checks)} shape checks passed: "
        f"{[(d, ok) for d, ok in checks if not ok]}")
