"""Benchmark: regenerate the paper's Fig. 14 at reduced scale."""

from repro.experiments import fig14_turnaround_sa as module

from conftest import run_and_check


def test_fig14(benchmark, params, mixes):
    run_and_check(benchmark, module, params, mixes, required_pass=0.5)
