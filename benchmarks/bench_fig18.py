"""Benchmark: regenerate the paper's Fig. 18 (tag-cache traffic) at reduced scale."""

from repro.experiments import fig18_tagcache as module

from conftest import run_and_check


def test_fig18(benchmark, params, mixes):
    run_and_check(benchmark, module, params, mixes, required_pass=1.0)
