"""Benchmark: regenerate the paper's Fig. 13 at reduced scale."""

from repro.experiments import fig13_misslat_dm as module

from conftest import run_and_check


def test_fig13(benchmark, params, mixes):
    run_and_check(benchmark, module, params, mixes, required_pass=0.5)
