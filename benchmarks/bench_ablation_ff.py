"""Ablation: DCA's OFS flushing factor (paper §IV-C).

The paper reports the design is insensitive to the flushing factor below
FF-5 ("the average performance difference from FF-4 to FF-1 is less than
1%"), and uses FF-4.  This bench sweeps FF over {1, 4, 7} on one mix and
checks the spread between FF-1 and FF-4 stays small while the raw
mechanism (OFS issues) responds to the knob.
"""

import dataclasses

from repro.config import DCAConfig, scaled_config
from repro.sim.system import System
from repro.workloads.table1 import mix_profiles


def run_ff(ff: int):
    cfg = scaled_config(8)
    cfg = dataclasses.replace(cfg, dca=DCAConfig(flushing_factor=ff))
    system = System(cfg, "DCA", mix_profiles(1), organization="sa",
                    footprint_scale=1 / 24, seed=1)
    r = system.run(warmup_insts=10_000, measure_insts=25_000,
                   replay_accesses=6_000)
    return sum(r.ipcs), system.controller.stats.lr_ofs_issues


def test_flushing_factor_insensitivity(benchmark):
    out = {}

    def once():
        out[1] = run_ff(1)
        out[4] = run_ff(4)
        out[7] = run_ff(7)
        return out

    benchmark.pedantic(once, rounds=1, iterations=1)
    ws1, ws4 = out[1][0], out[4][0]
    # Paper: < 1% between FF-1 and FF-4 averaged over 30 workloads; allow
    # 5% for this single-mix reduced-scale bench.
    assert abs(ws4 - ws1) / ws4 < 0.05
    # The knob must actually gate OFS: a permissive FF admits at least
    # roughly as many LRs as the strictest setting.
    assert out[7][1] >= out[1][1] * 0.9
