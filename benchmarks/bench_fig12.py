"""Benchmark: regenerate the paper's Fig. 12 at reduced scale."""

from repro.experiments import fig12_misslat_sa as module

from conftest import run_and_check


def test_fig12(benchmark, params, mixes):
    run_and_check(benchmark, module, params, mixes, required_pass=0.5)
