"""Benchmark: Table I workload-mix construction (deterministic)."""

from repro.experiments import table1_workloads as module

from conftest import run_and_check


def test_table1(benchmark, params, mixes):
    run_and_check(benchmark, module, params, mixes, required_pass=1.0)
