"""Benchmark: Table II parameter reproduction (deterministic)."""

from repro.experiments import table2_params as module

from conftest import run_and_check


def test_table2(benchmark, params, mixes):
    run_and_check(benchmark, module, params, mixes, required_pass=1.0)
