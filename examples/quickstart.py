#!/usr/bin/env python
"""Quickstart: simulate one multiprogrammed mix on the DCA controller.

Builds the paper's Table II system (capacity-scaled for speed), runs the
first Table I workload mix through the DRAM-Cache-Aware controller, and
prints the headline metrics.

Run:  python examples/quickstart.py
"""

from repro import System, scaled_config
from repro.workloads import mix_name, mix_profiles


def main() -> None:
    cfg = scaled_config(8)          # Table II, capacities / 8
    mix = 1
    print(f"Simulating Table I mix {mix}: {mix_name(mix)}")

    system = System(
        cfg,
        design="DCA",               # "CD" | "ROD" | "DCA"
        benchmarks=mix_profiles(mix),
        organization="sa",          # "sa" (Loh-Hill) | "dm" (Alloy)
        footprint_scale=1 / 20,     # workload footprints scaled with cache
        seed=1,
    )
    result = system.run(warmup_insts=20_000, measure_insts=60_000)

    print(f"\nPer-core IPC: "
          + ", ".join(f"{b}={i:.3f}"
                      for b, i in zip(result.benchmarks, result.ipcs)))
    print(f"DRAM-cache read hit rate:  {result.dram_read_hit_rate:.1%}")
    print(f"Mean L2 miss latency:      {result.mean_read_latency_ps / 1000:.1f} ns")
    print(f"Accesses per turnaround:   {result.accesses_per_turnaround:.1f}")
    print(f"Read row-buffer hit rate:  {result.read_row_hit_rate:.1%}")
    print(f"Requests: {result.reads_done} reads, {result.writebacks} "
          f"writebacks, {result.refills} refills")
    print(f"Main memory: {result.mainmem_reads} fetches, "
          f"{result.mainmem_writes} victim writes")


if __name__ == "__main__":
    main()
