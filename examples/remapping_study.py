#!/usr/bin/env python
"""Remapping study: XOR permutation interleaving on top of each design.

The paper's Fig. 9 experiment: Zhang et al.'s permutation-based bank
remapping mitigates read-read conflicts for *any* controller, but only
DCA additionally removes read priority inversion — so DCA keeps a margin
over CD even when both use remapping, while ROD (which never had the
conflict problem) gains least and keeps paying turnarounds.

Run:  python examples/remapping_study.py [mix-id]
"""

import sys

from repro import System, scaled_config
from repro.workloads import mix_name, mix_profiles


def run(design: str, remap: bool, mix: int) -> tuple[float, float]:
    system = System(scaled_config(8), design, mix_profiles(mix),
                    organization="sa", xor_remap=remap,
                    footprint_scale=1 / 20, seed=mix)
    r = system.run(warmup_insts=20_000, measure_insts=60_000)
    return sum(r.ipcs), r.read_row_hit_rate


def main() -> None:
    mix = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    print(f"Mix {mix}: {mix_name(mix)} (set-associative)\n")
    print(f"{'variant':10} {'wspeedup':>9} {'vs CD':>7} {'row-hit':>8}")
    base = None
    for remap in (False, True):
        for design in ("CD", "ROD", "DCA"):
            ws, rh = run(design, remap, mix)
            base = base or ws
            label = ("XOR+" if remap else "") + design
            print(f"{label:10} {ws:9.3f} {ws / base - 1:+6.1%} {rh:8.1%}")
    print("\nExpected shape (paper Fig. 9): every design gains from")
    print("remapping; XOR+DCA stays the best overall because remapping")
    print("cannot fix read priority inversion, only row conflicts.")


if __name__ == "__main__":
    main()
