#!/usr/bin/env python
"""Remapping study: XOR permutation interleaving on top of each design.

The paper's Fig. 9 experiment: Zhang et al.'s permutation-based bank
remapping mitigates read-read conflicts for *any* controller, but only
DCA additionally removes read priority inversion — so DCA keeps a margin
over CD even when both use remapping, while ROD (which never had the
conflict problem) gains least and keeps paying turnarounds.

Run:  python examples/remapping_study.py [mix-id] [--quick]

``--quick`` shrinks the instruction budgets to smoke-test scale (used by
the CI examples-smoke job); the qualitative shape usually survives, the
exact margins need the full budget.
"""

import sys

from repro import System, scaled_config
from repro.workloads import mix_name, mix_profiles


def run(design: str, remap: bool, mix: int,
        measure_insts: int = 60_000) -> tuple[float, float]:
    system = System(scaled_config(8), design, mix_profiles(mix),
                    organization="sa", xor_remap=remap,
                    footprint_scale=1 / 20, seed=mix)
    r = system.run(warmup_insts=20_000, measure_insts=measure_insts)
    return sum(r.ipcs), r.read_row_hit_rate


def main() -> None:
    args = [a for a in sys.argv[1:] if a != "--quick"]
    quick = "--quick" in sys.argv[1:]
    measure = 15_000 if quick else 60_000
    mix = int(args[0]) if args else 4
    print(f"Mix {mix}: {mix_name(mix)} (set-associative)\n")
    print(f"{'variant':10} {'wspeedup':>9} {'vs CD':>7} {'row-hit':>8}")
    base = None
    for remap in (False, True):
        for design in ("CD", "ROD", "DCA"):
            ws, rh = run(design, remap, mix, measure_insts=measure)
            base = base or ws
            label = ("XOR+" if remap else "") + design
            print(f"{label:10} {ws:9.3f} {ws / base - 1:+6.1%} {rh:8.1%}")
    print("\nExpected shape (paper Fig. 9): every design gains from")
    print("remapping; XOR+DCA stays the best overall because remapping")
    print("cannot fix read priority inversion, only row conflicts.")


if __name__ == "__main__":
    main()
