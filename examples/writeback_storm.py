#!/usr/bin/env python
"""Writeback storm: the paper's Fig. 4 pathology, isolated.

Drives controllers *directly* (no cores, no L2) with the exact scenario
from the paper's CD case study: a stream of demand reads to one row
interleaved with writebacks whose tag reads target a *different row of
the same bank* (guaranteed read-read conflicts).  Under CD the writeback
tag reads enter the read queue and repeatedly close the readers' row;
under DCA they are held as low-priority reads and drained later.

The script prints the completion time of the demand reads under each
design — the Fig. 4 "ideal" is what DCA approximates.

Run:  python examples/writeback_storm.py
"""

from repro import make_controller, scaled_config
from repro.core.access import CacheRequest, RequestType
from repro.sim.engine import Simulator


def storm(design: str) -> tuple[float, int, int]:
    sim = Simulator()
    cfg = scaled_config(8)
    ctrl = make_controller(design, sim, cfg, organization="sa",
                           use_mapi=False)
    array = ctrl.array

    # Demand reads walk sets that live in one DRAM row; writebacks target
    # sets exactly one bank-stride of rows away -> same bank, another row.
    sets_per_row = array.sa.sets_per_row
    rows_per_bank_cycle = cfg.org.channels * cfg.org.banks_per_rank
    reader_sets = [i for i in range(sets_per_row)]
    wb_sets = [s + sets_per_row * rows_per_bank_cycle * 16
               for s in reader_sets]

    # Warm the cache so reads hit (the interesting path).
    for s in reader_sets + wb_sets:
        for way in range(4):
            array.fill(array.sa.block_addr(s, way + 1) * 64, dirty=False)

    reads_done = []
    t = 0
    for i in range(32):
        rd = CacheRequest(RequestType.READ,
                          array.sa.block_addr(reader_sets[i % 4], 1) * 64, 0)
        rd.on_done = lambda r: reads_done.append(r.done_time)
        wb = CacheRequest(RequestType.WRITEBACK,
                          array.sa.block_addr(wb_sets[i % 4], 2) * 64, 1)
        sim.at(t, lambda _a, r=rd: ctrl.submit(r))
        sim.at(t, lambda _a, w=wb: ctrl.submit(w))
        t += 40_000  # a read+writeback pair every 40 ns
    sim.run()
    ctrl.flush_all()
    sim.run()

    assert reads_done, "no demand reads completed"
    stats = ctrl.device.total_stats()
    return (ctrl.stats.mean_read_latency_ps / 1000,
            ctrl.stats.read_priority_inversions,
            stats.read_row_conflicts)


def main() -> None:
    print(f"{'design':6} {'read latency(ns)':>17} {'inversions':>11} "
          f"{'read row conflicts':>19}")
    for design in ("CD", "ROD", "DCA"):
        lat, inv, rrc = storm(design)
        print(f"{design:6} {lat:17.1f} {inv:11d} {rrc:19d}")
    print("\nCD suffers inversions and read-read conflicts; DCA holds the")
    print("writeback tag reads (LRs) out of the demand reads' way.")


if __name__ == "__main__":
    main()
