#!/usr/bin/env python
"""Tag-cache study: why an SRAM tag cache does not cut DRAM tag traffic.

Replays a workload mix's post-L2 request stream against the ATCache-style
SRAM tag cache (paper Fig. 18).  Each tag-cache miss fetches the demand
tag block *plus* spatial prefetches, and dirty tag blocks eventually wash
back to DRAM — so total DRAM tag traffic goes up, roughly 2x even at
192 KB for a 256 MB cache.  The benefit of a tag cache is hit *latency*
(SRAM-speed tag checks), not bandwidth; the paper argues this makes the
DRAM-cache scheduling problem (what DCA solves) worse, not better.

Run:  python examples/tag_cache_study.py [mix-id]
"""

import sys

from repro.experiments.common import SimParams
from repro.experiments.fig18_tagcache import SIZES_KB, tag_traffic
from repro.workloads import mix_name


def main() -> None:
    mix = int(sys.argv[1]) if len(sys.argv) > 1 else 1
    params = SimParams()
    print(f"Mix {mix}: {mix_name(mix)}\n")
    print(f"{'tag cache':>12} {'DRAM tag accesses':>18} {'normalized':>11}")
    base = None
    for kb in SIZES_KB:
        count = tag_traffic(mix, kb, params, accesses_per_core=30_000)
        base = base or count
        label = f"{kb} KB" if kb else "none"
        print(f"{label:>12} {count:18d} {count / base:10.2f}x")
    print("\nExpected shape (paper Fig. 18): every size INCREASES traffic;")
    print("bigger tag caches recover some hits but never beat no-tag-cache.")


if __name__ == "__main__":
    main()
