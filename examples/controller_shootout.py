#!/usr/bin/env python
"""Controller shootout: CD vs ROD vs DCA on one workload mix.

Reproduces the paper's central comparison (its Fig. 7 narrative) on a
single Table I mix, for both DRAM-cache organizations, printing weighted
speedup, miss latency, turnaround behaviour and the pathology counters
each design is supposed to exhibit:

* CD    — read priority inversions (writeback tag reads delaying reads);
* ROD   — few accesses per turnaround (mixed write-queue drains);
* DCA   — inversions ~0, LRs drained opportunistically by OFS.

Run:  python examples/controller_shootout.py [mix-id]
"""

import sys

from repro import System, scaled_config
from repro.workloads import mix_name, mix_profiles

DESIGNS = ("CD", "ROD", "DCA")


def run(design: str, organization: str, mix: int):
    system = System(scaled_config(8), design, mix_profiles(mix),
                    organization=organization, footprint_scale=1 / 20,
                    seed=mix)
    result = system.run(warmup_insts=20_000, measure_insts=60_000)
    ofs = system.controller.stats.lr_ofs_issues
    return result, ofs


def main() -> None:
    mix = int(sys.argv[1]) if len(sys.argv) > 1 else 1
    print(f"Mix {mix}: {mix_name(mix)}\n")
    for organization in ("sa", "dm"):
        label = ("set-associative (Loh-Hill)" if organization == "sa"
                 else "direct-mapped (Alloy)")
        print(f"--- {label} ---")
        header = (f"{'design':6} {'wspeedup':>9} {'vs CD':>7} {'lat(ns)':>8} "
                  f"{'acc/turn':>9} {'inversions':>11} {'OFS LRs':>8}")
        print(header)
        base = None
        for design in DESIGNS:
            r, ofs = run(design, organization, mix)
            ws = sum(r.ipcs)
            base = base or ws
            print(f"{design:6} {ws:9.3f} {ws / base - 1:+6.1%} "
                  f"{r.mean_read_latency_ps / 1000:8.0f} "
                  f"{r.accesses_per_turnaround:9.1f} "
                  f"{r.read_priority_inversions:11d} {ofs:8d}")
        print()
    print("Expected shape (paper Figs. 8, 14-17): DCA fastest; ROD has the")
    print("fewest accesses per turnaround; CD shows the inversion count;")
    print("DCA's inversions stay near zero while OFS drains its LRs.")


if __name__ == "__main__":
    main()
