"""Performance benchmark harness (see benchmarks/perf/).

``repro.bench`` measures the things every PR must not regress:

* **decision-loop throughput** — scheduler picks + queue maintenance per
  second, measured for the naive full-scan selectors *and* the indexed
  fast path on identical states (``decision_loop``);
* **substrate issue-loop throughput** — raw ``issue()`` cost of the
  burst vs command fidelity models on identical access streams
  (``substrate_loop``), pinning the price of fidelity;
* **end-to-end wall clock** — a small fig08-style simulation grid run
  through the real experiment machinery (``harness``).

Results are emitted as ``BENCH_<label>.json`` through the experiment
layer's atomic JSON store, forming the repo's perf trajectory.
"""

from repro.bench.decision_loop import run_decision_loop
from repro.bench.harness import BENCH_SCHEMA_VERSION, SECTIONS, main, run_perf
from repro.bench.substrate_loop import run_substrate_loop

__all__ = ["run_decision_loop", "run_substrate_loop", "run_perf", "main",
           "BENCH_SCHEMA_VERSION", "SECTIONS"]
