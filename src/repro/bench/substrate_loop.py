"""Substrate issue-loop microbenchmark: burst vs command fidelity.

Times the raw ``issue()`` throughput of each substrate model over
identical pre-generated access streams — the per-access cost of the
substrate itself, isolated from queues, schedulers and the event loop.
The command model does strictly more work per issue (rank-window checks,
lazy refresh sync, page-policy bookkeeping), so the ratio quantifies the
price of fidelity and pins the burst model's hot-path status: burst is
the default precisely because this loop is the simulator's innermost
cost centre.

Two stream shapes are measured:

* ``steady`` — decision time advances with the bus (the controller's
  pipelined steady state);
* ``bursty`` — same-time decision batches with occasional long idle
  gaps, which at command fidelity exercises the refresh catch-up path
  (both configurations run the default open page policy, so
  ``policy_closes`` is expectedly 0 in the payload).

Counter totals of the command run are included in the payload so a
BENCH artefact also documents *how much* fidelity work the stream
triggered (a throughput ratio over a stream that never refreshes would
flatter the command model).
"""

from __future__ import annotations

import random
from time import perf_counter

from repro.config import DRAMOrganization, DRAMTimings, SubstrateConfig
from repro.dram.substrate import make_channel


def _make_stream(mode: str, n: int, org: DRAMOrganization,
                 timings: DRAMTimings, seed: int) -> list[tuple]:
    """Pre-generated ``(rank, bank, row, is_write, now)`` tuples."""
    rng = random.Random(seed)
    out = []
    now = 0
    for i in range(n):
        out.append((rng.randrange(org.ranks_per_channel),
                    rng.randrange(org.banks_per_rank),
                    rng.randrange(32), rng.random() < 0.3, now))
        if mode == "steady":
            now += timings.tBURST
        else:                      # bursty: same-time batches + idle gaps
            if i % 8 == 7:
                now += (timings.tREFI // 3 if i % 64 == 63
                        else 4 * timings.tBURST)
    return out


def _time_issue_loop(substrate: SubstrateConfig, stream: list[tuple],
                     timings: DRAMTimings, org: DRAMOrganization
                     ) -> tuple[float, dict]:
    channel = make_channel(timings, org, substrate)
    issue = channel.issue
    t0 = perf_counter()
    for rank, bank, row, is_write, now in stream:
        issue(rank, bank, row, is_write, now)
    elapsed = perf_counter() - t0
    return elapsed, channel.stats.snapshot()


def run_substrate_loop(quick: bool = False, seed: int = 0) -> dict:
    """Benchmark both fidelities on identical streams; JSON-ready summary."""
    n = 20_000 if quick else 200_000
    org = DRAMOrganization()
    timings = DRAMTimings.stacked()
    burst = SubstrateConfig()
    command = SubstrateConfig(fidelity="command")

    scenarios = []
    for mode in ("steady", "bursty"):
        stream = _make_stream(mode, n, org, timings, seed + 71)
        burst_s, _ = _time_issue_loop(burst, stream, timings, org)
        command_s, cmd_stats = _time_issue_loop(command, stream, timings, org)
        scenarios.append({
            "name": f"issue_loop_{mode}",
            "issues": n,
            "burst_s": round(burst_s, 6),
            "command_s": round(command_s, 6),
            "burst_per_s": round(n / burst_s, 1) if burst_s else 0.0,
            "command_per_s": round(n / command_s, 1) if command_s else 0.0,
            "command_overhead_x": (round(command_s / burst_s, 3)
                                   if burst_s else 0.0),
            "command_counters": {
                k: cmd_stats[k]
                for k in ("refreshes_issued", "refreshes_postponed",
                          "faw_stalls", "rrd_stalls", "refresh_stalls",
                          "policy_closes")},
        })
    overheads = [s["command_overhead_x"] for s in scenarios]
    return {
        "issues_per_scenario": n,
        "scenarios": scenarios,
        "max_command_overhead_x": round(max(overheads), 3),
    }
