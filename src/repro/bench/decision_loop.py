"""Decision-loop microbenchmark: naive scan vs indexed fast path.

Each scenario models the steady-state per-slot scheduling decision: pick
one access from a full queue, remove it, and admit a replacement.  The
**naive** engine reproduces the pre-indexing code shape — a plain Python
list, full-queue candidate filters, per-access row-state classification
and O(n) ``list.remove`` — while the **indexed** engine drives the same
decision through :class:`repro.core.queues.AccessQueue`'s bank buckets
and the schedulers' ``pick_banked``.

Both engines consume the *same* ``Access`` objects and the same
replacement stream, so (selection being bit-identical — the property
tests pin this) their queue states evolve in lockstep and the measured
work is directly comparable.  ``verify_equivalence`` additionally steps
both engines pick-by-pick before anything is timed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from time import perf_counter
from typing import Optional

from repro.config import BLISSConfig, DRAMOrganization, DRAMTimings
from repro.core.access import Access, AccessRole, CacheRequest, Priority, RequestType
from repro.core.bliss import BLISSScheduler
from repro.core.frfcfs import FRFCFSScheduler
from repro.core.dca import ofs_bucket_filter, ofs_naive_candidates
from repro.core.queues import AccessQueue
from repro.core.rrpc import RRPCTable
from repro.dram.channel import Channel

#: OFS flushing factor used by the OFS scenario (the paper's FF-4).
_FF = 4


@dataclass
class ScenarioResult:
    """Throughput of one scenario under both engines."""

    name: str
    decisions: int
    queue_size: int
    naive_s: float
    indexed_s: float

    @property
    def naive_per_s(self) -> float:
        return self.decisions / self.naive_s if self.naive_s else 0.0

    @property
    def indexed_per_s(self) -> float:
        return self.decisions / self.indexed_s if self.indexed_s else 0.0

    @property
    def speedup(self) -> float:
        return self.naive_s / self.indexed_s if self.indexed_s else 0.0

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "decisions": self.decisions,
            "queue_size": self.queue_size,
            "naive_s": round(self.naive_s, 6),
            "indexed_s": round(self.indexed_s, 6),
            "naive_per_s": round(self.naive_per_s, 1),
            "indexed_per_s": round(self.indexed_per_s, 1),
            "speedup": round(self.speedup, 3),
        }


class _State:
    """Shared fixture: channel, schedulers, access stream, candidate fns."""

    def __init__(self, mode: str, queue_size: int, n_decisions: int,
                 seed: int):
        self.mode = mode
        rng = random.Random(seed)
        org = DRAMOrganization()
        self.channel = Channel(DRAMTimings.stacked(), org)
        self.banks_per_rank = org.banks_per_rank
        nbanks = org.ranks_per_channel * org.banks_per_rank
        self.nbanks = nbanks
        n_rows = 32
        num_cores = 8

        # Open rows in half the banks so row-hit classification matters.
        t = 0
        for b in range(0, nbanks, 2):
            rank, bank = divmod(b, org.banks_per_rank)
            _s, t = self.channel.issue(rank, bank, rng.randrange(n_rows),
                                       False, t)

        # BLISS is the controllers' default underlying scheduler, so every
        # scenario runs it except the explicit FR-FCFS one.
        use_bliss = mode != "frfcfs_all"
        if use_bliss:
            make = lambda: BLISSScheduler(BLISSConfig(), num_cores)
        else:
            make = lambda: FRFCFSScheduler()
        self.sched_naive = make()
        self.sched_indexed = make()
        if use_bliss:
            for c in (1, 5):     # some blacklisted cores, same in both
                self.sched_naive.blacklist[c] = True
                self.sched_indexed.blacklist[c] = True

        self.rrpc = RRPCTable(nbanks)
        for _ in range(nbanks // 2):   # warm some banks' RRPC counters
            self.rrpc.on_priority_read(rng.randrange(nbanks))

        def mk_access(role: AccessRole, rtype: RequestType) -> Access:
            gb = rng.randrange(nbanks)
            rank, bank = divmod(gb, org.banks_per_rank)
            req = CacheRequest(rtype, rng.randrange(1 << 24), rng.randrange(num_cores))
            return Access(role, req, channel=0, rank=rank, bank=bank,
                          row=rng.randrange(n_rows), col=0, global_bank=gb,
                          arrival=0)

        def mk_initial() -> Access:
            if mode == "write_drain":
                return mk_access(AccessRole.DATA_WRITE, RequestType.WRITEBACK)
            pr_fraction = 0.10 if mode == "dca_ofs" else 0.60
            rtype = (RequestType.READ if rng.random() < pr_fraction
                     else RequestType.WRITEBACK)
            return mk_access(AccessRole.TAG_READ, rtype)

        def mk_replacements() -> dict[Priority, Access]:
            """One candidate replacement per priority class.

            The decision loop replaces the picked access with the
            same-class variant, so the queue's size *and* composition
            stay in steady state — without this, class-selective
            scenarios (PR-only, OFS) would drain their picked class and
            grow the rest without bound, and the naive engine's O(n)
            scans would degrade quadratically instead of measuring the
            steady-state cost.  Both engines share the same objects.
            """
            if mode == "write_drain":
                return {Priority.WRITE: mk_access(AccessRole.DATA_WRITE,
                                                  RequestType.WRITEBACK)}
            return {
                Priority.PR: mk_access(AccessRole.TAG_READ, RequestType.READ),
                Priority.LR: mk_access(AccessRole.TAG_READ,
                                       RequestType.WRITEBACK),
            }

        self.initial = [mk_initial() for _ in range(queue_size)]
        self.stream = [mk_replacements() for _ in range(n_decisions)]

    # -- candidate construction, naive (pre-indexing shape) -----------------

    def naive_candidates(self, pool: list[Access]) -> list[Access]:
        if self.mode == "pr_subset":
            return [a for a in pool if a.priority == Priority.PR]
        if self.mode == "dca_ofs":
            return ofs_naive_candidates(pool, self.channel, self.rrpc, _FF)
        return pool

    # -- candidate construction, indexed ------------------------------------

    def indexed_buckets(self, q: AccessQueue):
        if self.mode == "pr_subset":
            return q.pr_bank_buckets()
        if self.mode == "dca_ofs":
            # The controller's own bucket filter — shared, so the bench
            # always times the production OFS computation.
            return ofs_bucket_filter(q.lr_bank_buckets(),
                                     self.channel.open_rows, self.rrpc, _FF)
        return q.bank_buckets()


def _naive_step(state: _State, pool: list[Access],
                repl: dict[Priority, Access]) -> Optional[Access]:
    a = state.sched_naive.pick(state.naive_candidates(pool), state.channel, 0)
    if a is not None:
        pool.remove(a)
        pool.append(repl[a.priority])
    return a


def _indexed_step(state: _State, q: AccessQueue,
                  repl: dict[Priority, Access]) -> Optional[Access]:
    a = state.sched_indexed.pick_banked(state.indexed_buckets(q),
                                        state.channel, 0)
    if a is not None:
        q.remove(a)
        q.push(repl[a.priority])
    return a


def verify_equivalence(mode: str, queue_size: int = 48,
                       decisions: int = 300, seed: int = 1234) -> None:
    """Step both engines in lockstep; raise if any pick diverges."""
    state = _State(mode, queue_size, decisions, seed)
    pool = list(state.initial)
    q = AccessQueue(queue_size or 1)
    for a in state.initial:
        q.push(a)
    for i, repl in enumerate(state.stream):
        a_naive = _naive_step(state, pool, repl)
        a_indexed = _indexed_step(state, q, repl)
        if a_naive is not a_indexed:
            raise AssertionError(
                f"{mode}: pick #{i} diverged: naive={a_naive!r} "
                f"indexed={a_indexed!r}")


def bench_scenario(mode: str, name: str, queue_size: int,
                   n_decisions: int, seed: int = 0) -> ScenarioResult:
    """Time one scenario under both engines on identical streams."""
    state = _State(mode, queue_size, n_decisions, seed)

    pool = list(state.initial)
    candidates = state.naive_candidates
    sched, channel = state.sched_naive, state.channel
    t0 = perf_counter()
    for repl in state.stream:
        a = sched.pick(candidates(pool), channel, 0)
        if a is not None:
            pool.remove(a)
            pool.append(repl[a.priority])
    naive_s = perf_counter() - t0

    q = AccessQueue(queue_size or 1)
    for a in state.initial:
        q.push(a)
    sched, buckets = state.sched_indexed, state.indexed_buckets
    t0 = perf_counter()
    for repl in state.stream:
        a = sched.pick_banked(buckets(q), channel, 0)
        if a is not None:
            q.remove(a)
            q.push(repl[a.priority])
    indexed_s = perf_counter() - t0

    return ScenarioResult(name=name, decisions=n_decisions,
                          queue_size=queue_size,
                          naive_s=naive_s, indexed_s=indexed_s)


#: (mode, reported name, queue size) — queue sizes follow Table II.
SCENARIOS = (
    ("bliss_all", "bliss_read_queue_64", 64),
    ("pr_subset", "bliss_pr_partition_64", 64),
    ("dca_ofs", "dca_ofs_candidates_64", 64),
    ("write_drain", "bliss_write_drain_96", 96),
    ("frfcfs_all", "frfcfs_read_queue_64", 64),
)


def run_decision_loop(quick: bool = False, seed: int = 0) -> dict:
    """Run every scenario; returns a JSON-ready summary."""
    n = 3_000 if quick else 25_000
    for mode, _name, _qs in SCENARIOS:
        verify_equivalence(mode, seed=seed + 1234)
    results = [bench_scenario(mode, name, qs, n, seed=seed)
               for mode, name, qs in SCENARIOS]
    speedups = [r.speedup for r in results]
    geomean = 1.0
    for s in speedups:
        geomean *= s
    geomean **= 1.0 / len(speedups)
    return {
        "decisions_per_scenario": n,
        "equivalence_checked": True,
        "scenarios": [r.to_dict() for r in results],
        "geomean_speedup": round(geomean, 3),
        "min_speedup": round(min(speedups), 3),
    }
