"""Perf harness entry point: microbench + end-to-end, emitted as BENCH JSON.

Every invocation produces one ``BENCH_<label>.json`` containing

* the decision-loop scenario table (naive vs indexed throughput and the
  speedup ratio, equivalence-verified before timing), and
* the wall-clock of a small end-to-end simulation grid executed through
  the real experiment machinery (``run_grid`` + ``ResultStore``), so the
  number tracks the whole stack, not just the scheduler.

The JSON files form the repo's perf trajectory: each PR commits one
(e.g. ``BENCH_pr2.json``) and CI uploads a fresh one per run, so a
regression shows up as a ratio between two adjacent labels.
"""

from __future__ import annotations

import argparse
import platform
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

from repro.experiments.common import (
    DESIGNS,
    ResultStore,
    RunSpec,
    SimParams,
    atomic_write_json,
    run_grid,
    write_profiled,
)
from repro.bench.compiled_loop import run_compiled_section
from repro.bench.decision_loop import run_decision_loop
from repro.bench.engine_loop import run_engine_section
from repro.bench.substrate_loop import run_substrate_loop
from repro.bench.topology_loop import run_topology_section
from repro.build_info import build_mode, check_required

#: Version of the BENCH_*.json payload; bump on any field/semantics change.
#: v2: added the ``substrate`` section (burst vs command issue-loop
#: throughput) and the ``sections`` field recording what ran.
#: v3: added the ``engine`` section (heap vs calendar event-engine micro
#: ops + equality-checked in-process end-to-end comparison).
#: v4: added the ``topology`` section (flat vs banked mainmem fetch-loop
#: + end-to-end overhead, banked channel-scaling latency curve).
#: v5: added the ``compiled`` section (SoA vs object-model bank state,
#: lockstep-checked; build-mode provenance) and the top-level ``build``
#: field recording interpreted vs compiled for every section's numbers.
BENCH_SCHEMA_VERSION = 5

#: selectable benchmark sections (``repro-perf [section]``)
SECTIONS = ("decision", "substrate", "engine", "topology", "compiled", "e2e")


def run_end_to_end(quick: bool = False, jobs: int = 1) -> dict:
    """Time a small fig08-style grid (uncached) through run_grid."""
    mixes = [1] if quick else [1, 2]
    specs = [RunSpec(d, "sa", mix_id=m) for d in DESIGNS for m in mixes]
    params = SimParams.quick()
    store = ResultStore(enabled=False)     # measure real work, store nothing
    t0 = time.perf_counter()
    results = run_grid(specs, params, jobs=jobs, use_cache=False, store=store)
    wall_s = time.perf_counter() - t0
    reads = sum(r.reads_done for r in results.values())
    accesses = sum(r.dram_accesses for r in results.values())
    return {
        "points": len(specs),
        "designs": list(DESIGNS),
        "mixes": mixes,
        "jobs": jobs,
        "params": "quick",
        "wall_s": round(wall_s, 3),
        "reads_done_total": reads,
        "dram_accesses_total": accesses,
        "dram_accesses_per_s": round(accesses / wall_s, 1) if wall_s else 0.0,
    }


def run_warm_reuse(quick: bool = False, jobs: int = 1) -> dict:
    """Cold vs. warm-cache wall clock on a fig08-style multi-design grid.

    The grid crosses every controller design with both underlying
    schedulers (six design points per mix), which is exactly the shape
    the warm-state cache targets: one functional warm-up per (mix,
    substrate) group, five forks.  After both runs the two result sets
    are checked bit-identical (modulo ``meta``, which records
    provenance) and a mismatch **raises** — a speedup from a warm cache
    that bends results would be worthless, so it must never be recorded
    as a BENCH headline.
    """
    mixes = [1] if quick else [1, 2]
    specs = [RunSpec(d, "sa", mix_id=m, scheduler=s)
             for m in mixes for d in DESIGNS for s in ("bliss", "frfcfs")]
    params = SimParams.quick()

    def timed(warm: bool) -> tuple[float, dict]:
        store = ResultStore(enabled=False)
        t0 = time.perf_counter()
        results = run_grid(specs, params, jobs=jobs, use_cache=False,
                           store=store, warm_cache=warm)
        return time.perf_counter() - t0, results

    cold_s, cold = timed(False)
    warm_s, warm = timed(True)

    def comparable(results: dict) -> dict:
        out = {}
        for spec, res in results.items():
            d = res.to_cache_dict()
            d.pop("meta")
            out[spec] = d
        return out

    identical = comparable(cold) == comparable(warm)
    if not identical:
        raise RuntimeError(
            "warm-cache results diverged from cold execution — the warm "
            "reuse speedup is meaningless; fix the bit-identity regression "
            "(tests/test_warm_cache.py) before benchmarking")
    restored = sum(1 for r in warm.values()
                   if r.meta.get("warm", {}).get("restored"))
    return {
        "points": len(specs),
        "design_points_per_mix": len(DESIGNS) * 2,
        "mixes": mixes,
        "jobs": jobs,
        "params": "quick",
        "cold_wall_s": round(cold_s, 3),
        "warm_wall_s": round(warm_s, 3),
        "speedup": round(cold_s / warm_s, 3) if warm_s else 0.0,
        "warm_restored_points": restored,
        "identical_results": identical,
    }


def run_perf(quick: bool = False, label: str = "dev",
             out_dir: Path = Path("."), end_to_end: bool = True,
             jobs: int = 1, seed: int = 0,
             sections: Optional[Sequence[str]] = None,
             profile_out: Optional[Path] = None) -> Path:
    """Run the harness and write ``BENCH_<label>.json``; returns path.

    ``sections`` selects which benchmark families run (default: all of
    :data:`SECTIONS`; ``end_to_end=False`` additionally drops ``e2e``).
    ``profile_out`` wraps the measured region in cProfile and writes
    pstats data there (atomically; analyse with ``python -m pstats`` or
    snakeviz).  Profiled walls are inflated by tracing overhead — use
    them for *where*, never for BENCH headline ratios.
    """
    if sections is None:
        sections = SECTIONS
    unknown = set(sections) - set(SECTIONS)
    if unknown:
        raise ValueError(f"unknown bench sections {sorted(unknown)}; "
                         f"known: {SECTIONS}")
    if not end_to_end:
        # The recorded section list must describe what actually ran.
        sections = [s for s in sections if s != "e2e"]
    payload = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "kind": "perf",
        "label": label,
        "quick": quick,
        "sections": list(sections),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "build": build_mode(),
    }
    def measured() -> None:
        if "decision" in sections:
            payload["decision_loop"] = run_decision_loop(quick=quick,
                                                         seed=seed)
        if "substrate" in sections:
            payload["substrate"] = run_substrate_loop(quick=quick, seed=seed)
        if "engine" in sections:
            payload["engine"] = run_engine_section(quick=quick, seed=seed)
        if "topology" in sections:
            payload["topology"] = run_topology_section(quick=quick,
                                                       jobs=jobs, seed=seed)
        if "compiled" in sections:
            payload["compiled"] = run_compiled_section(quick=quick, seed=seed)
        if "e2e" in sections:
            payload["end_to_end"] = run_end_to_end(quick=quick, jobs=jobs)
            payload["warm_reuse"] = run_warm_reuse(quick=quick, jobs=jobs)

    if profile_out is not None:
        write_profiled(measured, Path(profile_out))
        payload["profile"] = str(profile_out)
    else:
        measured()
    return atomic_write_json(Path(out_dir) / f"BENCH_{label}.json", payload)


def main(argv: Optional[Sequence[str]] = None) -> int:
    p = argparse.ArgumentParser(
        prog="repro-perf",
        description="Perf harness: scheduler decision loop, substrate "
                    "issue loop (burst vs command fidelity) and "
                    "end-to-end grids; emits BENCH_<label>.json.")
    p.add_argument("section", nargs="*", metavar="section",
                   help=f"benchmark sections to run ({', '.join(SECTIONS)}; "
                        f"default all) — e.g. 'repro-perf substrate'")
    p.add_argument("--quick", action="store_true",
                   help="reduced iteration counts / grid size (CI smoke)")
    p.add_argument("--label", default="dev",
                   help="output label: writes BENCH_<label>.json")
    p.add_argument("--out-dir", default=".",
                   help="directory for the BENCH file (default cwd)")
    p.add_argument("--no-e2e", action="store_true",
                   help="skip the end-to-end simulation grid")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for the end-to-end grid")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--profile", metavar="OUT.prof", default=None,
                   help="run the measured sections under cProfile and "
                        "write pstats data to OUT.prof (walls inflate; "
                        "use for hotspot hunting, not headline ratios)")
    args = p.parse_args(argv)
    check_required()    # REPRO_REQUIRE_COMPILED=1: no silent fallback
    sections = tuple(args.section) if args.section else None
    if sections and set(sections) - set(SECTIONS):
        p.error(f"unknown sections {sorted(set(sections) - set(SECTIONS))}; "
                f"known: {', '.join(SECTIONS)}")
    path = run_perf(quick=args.quick, label=args.label,
                    out_dir=Path(args.out_dir), end_to_end=not args.no_e2e,
                    jobs=args.jobs, seed=args.seed, sections=sections,
                    profile_out=Path(args.profile) if args.profile else None)
    import json
    data = json.loads(path.read_text())
    print(f"wrote {path}")
    if "decision_loop" in data:
        dl = data["decision_loop"]
        for s in dl["scenarios"]:
            print(f"  {s['name']:<24} naive {s['naive_per_s']:>10.0f}/s   "
                  f"indexed {s['indexed_per_s']:>10.0f}/s   x{s['speedup']:.2f}")
        print(f"  geomean speedup: x{dl['geomean_speedup']:.2f} "
              f"(min x{dl['min_speedup']:.2f})")
    if "substrate" in data:
        for s in data["substrate"]["scenarios"]:
            print(f"  {s['name']:<24} burst {s['burst_per_s']:>10.0f}/s   "
                  f"command {s['command_per_s']:>10.0f}/s   "
                  f"overhead x{s['command_overhead_x']:.2f}")
    if "engine" in data:
        eng = data["engine"]
        for row in eng["micro"]["depths"]:
            print(f"  engine micro n={row['events']:<7} "
                  f"sched x{row['schedule_speedup']:.2f}  "
                  f"cancel x{row['cancel_speedup']:.2f}  "
                  f"pop x{row['pop_speedup']:.2f}")
        ee = eng["e2e"]
        print(f"  engine e2e: heap {ee['heap_wall_s']:.1f}s -> calendar "
              f"{ee['calendar_wall_s']:.1f}s  x{ee['speedup']:.2f}  "
              f"(identical={ee['identical_results']})")
    if "topology" in data:
        topo = data["topology"]
        fl = topo["fetch_loop"]
        print(f"  mainmem fetch loop: flat {fl['flat_per_s']:>10.0f}/s   "
              f"banked {fl['banked_per_s']:>10.0f}/s   "
              f"overhead x{fl['banked_overhead_x']:.2f}")
        for row in topo["channel_scaling"]:
            print(f"  banked ch={row['channels']}  "
                  f"mean read {row['mean_read_latency_ps']:>9.0f} ps  "
                  f"bus wait {row['mean_bus_wait_ps']:>9.0f} ps  "
                  f"({row['per_s']:.0f}/s)")
        te = topo["e2e"]
        print(f"  topology e2e: flat {te['flat_wall_s']:.1f}s -> banked "
              f"{te['banked_wall_s']:.1f}s  x{te['banked_overhead_x']:.2f}  "
              f"({te['banked_rank_switches']} rank switches)")
    if "compiled" in data:
        comp = data["compiled"]
        il, el = comp["issue_loop"], comp["estimate_loop"]
        print(f"  soa vs object ({comp['build']}): issue "
              f"{il['object_per_s']:>9.0f}/s -> {il['soa_per_s']:>9.0f}/s  "
              f"x{il['soa_speedup']:.2f}   estimates x{el['soa_speedup']:.2f}"
              f"  (compiled {len(comp['compiled_modules'])}/"
              f"{comp['mypyc_modules']} modules)")
    if "end_to_end" in data:
        e = data["end_to_end"]
        print(f"  end-to-end: {e['points']} points in {e['wall_s']:.1f}s "
              f"({e['dram_accesses_per_s']:.0f} DRAM accesses/s)")
    if "warm_reuse" in data:
        w = data["warm_reuse"]
        print(f"  warm reuse: {w['points']} points cold {w['cold_wall_s']:.1f}s"
              f" -> warm {w['warm_wall_s']:.1f}s  x{w['speedup']:.2f}  "
              f"(identical={w['identical_results']}, "
              f"{w['warm_restored_points']} restored)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
