"""Event-engine benchmarks: heap vs calendar micro ops + end-to-end grid.

Two families, both equivalence-checked before any number is recorded:

* **micro** — raw schedule / cancel / pop throughput of the two engines
  on an identical synthetic trace: timestamps drawn from an LCG over a
  ~0.5 µs window in units of ``tCK`` (heavy same-timestamp ties, the
  shape a DRAM simulation actually produces), 20 % of handles cancelled
  before the drain.  After each engine drains, ``(now, events_run)``
  must match between engines or the run raises.

* **e2e** — the quick fig08-style grid (`run_end_to_end`) executed twice
  in-process, once per engine, by overriding
  :data:`repro.sim.engine.DEFAULT_ENGINE` (``make_simulator`` resolves
  ``None`` at call time precisely so this comparison stays honest: same
  process, same warmed interpreter, only the engine differs).  The two
  result dicts are compared field-by-field (modulo ``meta``) and a
  mismatch **raises** — a speedup that bends simulation results must
  never land in a BENCH file.
"""

from __future__ import annotations

import gc
import time

import repro.sim.engine as engine_mod
from repro.config import paper_config
from repro.sim.engine import make_simulator

#: fraction of scheduled events cancelled before the drain phase
_CANCEL_EVERY = 5

#: event-count depths; quick keeps CI smoke under a second per engine
_DEPTHS_QUICK = (4096, 65536)
_DEPTHS_FULL = (4096, 65536, 262144)


def _lcg_times(n: int, seed: int, tck: int) -> list:
    """Deterministic timestamp trace: dense, tie-heavy, calendar-friendly.

    ``tck * (1 + state % 600)`` spans ~0.5 µs — comfortably inside the
    calendar ring for paper timings, with many exact collisions, which
    is the distribution a running simulation feeds the engine.
    """
    state = seed & 0x7FFFFFFF or 1
    out = []
    append = out.append
    for _ in range(n):
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        append(tck * (1 + state % 600))
    return out


def _time_engine(kind: str, times: list) -> dict:
    """Schedule all, cancel every 5th, drain; per-phase wall seconds."""
    sim = make_simulator(kind)
    noop = id                        # C-level callable: measures the engine
    at = sim.at
    gc.disable()
    try:
        t0 = time.perf_counter()
        handles = [at(t, noop, None) for t in times]
        t1 = time.perf_counter()
        for ev in handles[::_CANCEL_EVERY]:
            ev.cancel()
        t2 = time.perf_counter()
        # Drop the handle list so the calendar engine's refcount-gated
        # freelist can recycle events during the drain (the simulation
        # proper never retains handles to already-dispatched events).
        del handles
        sim.run()
        t3 = time.perf_counter()
    finally:
        gc.enable()
    return {
        "schedule_s": t1 - t0,
        "cancel_s": t2 - t1,
        "pop_s": t3 - t2,
        "now": sim.now,
        "events_run": sim.events_run,
    }


def run_engine_micro(quick: bool = False, seed: int = 0) -> dict:
    """Heap vs calendar on raw engine operations; returns per-depth table."""
    tck = paper_config().timings.tCK
    depths = _DEPTHS_QUICK if quick else _DEPTHS_FULL
    rows = []
    for n in depths:
        times = _lcg_times(n, seed + n, tck)
        heap = _time_engine("heap", times)
        cal = _time_engine("calendar", times)
        if (heap["now"], heap["events_run"]) != (cal["now"], cal["events_run"]):
            raise RuntimeError(
                f"engine divergence at depth {n}: heap ran "
                f"{heap['events_run']} events to t={heap['now']}, calendar "
                f"{cal['events_run']} to t={cal['now']}")
        row = {"events": n, "events_run": cal["events_run"]}
        for phase in ("schedule", "cancel", "pop"):
            h, c = heap[f"{phase}_s"], cal[f"{phase}_s"]
            row[f"heap_{phase}_s"] = round(h, 6)
            row[f"calendar_{phase}_s"] = round(c, 6)
            row[f"{phase}_speedup"] = round(h / c, 3) if c else 0.0
        rows.append(row)
    deepest = rows[-1]
    return {
        "tck_ps": tck,
        "cancel_every": _CANCEL_EVERY,
        "depths": rows,
        # Headline: pop throughput at the deepest depth, where queue
        # discipline dominates and the heap's O(log n) bites hardest.
        "pop_speedup": deepest["pop_speedup"],
        "pop_events_per_s": round(
            deepest["events_run"] / deepest["calendar_pop_s"], 1)
        if deepest["calendar_pop_s"] else 0.0,
    }


def run_engine_e2e(quick: bool = True) -> dict:
    """Quick grid under each engine, in-process, results checked equal."""
    # Imported here: harness imports this module, and the experiment
    # machinery is heavyweight enough to keep out of micro-only runs.
    from repro.bench.harness import run_end_to_end

    # Single-process by construction: the DEFAULT_ENGINE override lives
    # in this interpreter, and worker processes would re-import the
    # module and silently run the default engine on both sides.
    jobs = 1

    def comparable(results: dict) -> dict:
        out = dict(results)
        # wall-clock and throughput legitimately differ between engines
        for k in ("wall_s", "dram_accesses_per_s"):
            out.pop(k, None)
        return out

    saved = engine_mod.DEFAULT_ENGINE
    try:
        engine_mod.DEFAULT_ENGINE = "heap"
        heap = run_end_to_end(quick=quick, jobs=jobs)
        engine_mod.DEFAULT_ENGINE = "calendar"
        cal = run_end_to_end(quick=quick, jobs=jobs)
    finally:
        engine_mod.DEFAULT_ENGINE = saved
    identical = comparable(heap) == comparable(cal)
    if not identical:
        raise RuntimeError(
            "calendar-engine grid results diverged from the heap engine — "
            "the engine speedup is meaningless; fix the bit-identity "
            "regression (tests/test_engine_calendar.py) before benchmarking")
    return {
        "points": heap["points"],
        "jobs": jobs,
        "params": heap["params"],
        "heap_wall_s": heap["wall_s"],
        "calendar_wall_s": cal["wall_s"],
        "speedup": round(heap["wall_s"] / cal["wall_s"], 3)
        if cal["wall_s"] else 0.0,
        "reads_done_total": cal["reads_done_total"],
        "dram_accesses_total": cal["dram_accesses_total"],
        "identical_results": identical,
    }


def run_engine_section(quick: bool = False, seed: int = 0) -> dict:
    """The full ``engine`` BENCH section: micro table + e2e comparison."""
    return {
        "micro": run_engine_micro(quick=quick, seed=seed),
        # e2e always uses the quick grid: the point is the engine ratio
        # under identical work, not grid breadth (the e2e section owns
        # absolute walls).
        "e2e": run_engine_e2e(quick=True),
    }
