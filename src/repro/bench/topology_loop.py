"""Memory-topology benchmarks: flat vs banked main memory, channel scaling.

Two questions, one section:

* **What does the banked off-chip model cost?**  The flat model is a
  two-line queue update; the banked model decodes the address and runs a
  full substrate ``issue()``.  A fetch-loop micro times both on an
  identical address stream, and a small end-to-end grid through the real
  experiment machinery measures the whole-stack overhead of switching
  ``mainmem.model`` — the number that justifies flat staying the
  default.
* **Does the topology behave like a topology?**  A channel-scaling curve
  runs the same stream through banked memories with 1/2/4 channels and
  reports the *simulated* mean read latency: more channels must relieve
  bus/bank contention monotonically (modulo row-locality noise), which
  pins the model's queuing behaviour, not just its wall cost.

Decision times are frozen at ``now=0`` in the micro loops (no event-loop
interleaving), which is the worst-case contention shape: every access
queues behind every earlier one on its channel.
"""

from __future__ import annotations

import random
import time
from dataclasses import replace

from repro.config import MainMemoryConfig
from repro.experiments.common import DESIGNS, ResultStore, RunSpec, SimParams, run_grid
from repro.mem.mainmem import make_mainmem
from repro.sim.engine import Simulator


def _sink(addr: object) -> None:
    """Module-level completion callback: no closure enters the event heap."""


def _make_addrs(n: int, seed: int) -> list[int]:
    """Block addresses over a 256 MiB footprint (past any row wrap)."""
    rng = random.Random(seed)
    return [rng.randrange(1 << 28) & ~63 for _ in range(n)]


def _time_fetch_loop(cfg: MainMemoryConfig, addrs: list[int]
                     ) -> tuple[float, object]:
    mm = make_mainmem(Simulator(), cfg)
    fetch = mm.fetch
    t0 = time.perf_counter()
    for addr in addrs:
        fetch(addr, _sink)
    return time.perf_counter() - t0, mm


def run_topology_section(quick: bool = False, jobs: int = 1,
                         seed: int = 0) -> dict:
    """Benchmark the mainmem models; JSON-ready summary."""
    n = 20_000 if quick else 200_000
    addrs = _make_addrs(n, seed + 137)

    flat_s, _ = _time_fetch_loop(MainMemoryConfig(), addrs)
    banked_s, banked = _time_fetch_loop(MainMemoryConfig(model="banked"),
                                        addrs)
    fetch_loop = {
        "fetches": n,
        "flat_s": round(flat_s, 6),
        "banked_s": round(banked_s, 6),
        "flat_per_s": round(n / flat_s, 1) if flat_s else 0.0,
        "banked_per_s": round(n / banked_s, 1) if banked_s else 0.0,
        "banked_overhead_x": round(banked_s / flat_s, 3) if flat_s else 0.0,
        "banked_rank_switches": banked.total_stats().rank_switches,
    }

    scaling = []
    for channels in (1, 2, 4):
        cfg = MainMemoryConfig(model="banked")
        cfg = replace(cfg, org=replace(cfg.org, channels=channels))
        elapsed, mm = _time_fetch_loop(cfg, addrs)
        stats = mm.stats
        scaling.append({
            "channels": channels,
            "per_s": round(n / elapsed, 1) if elapsed else 0.0,
            "mean_read_latency_ps": round(stats.mean_read_latency_ps, 1),
            "mean_bus_wait_ps": round(stats.read_bus_wait_ps / n, 1),
            "rank_switches": mm.total_stats().rank_switches,
        })

    # End-to-end: the same small grid, flat vs banked, through run_grid.
    specs = [RunSpec(d, "sa", mix_id=1) for d in DESIGNS]
    banked_specs = [RunSpec(d, "sa", mix_id=1,
                            config=(("mainmem.model", "banked"),))
                    for d in DESIGNS]
    params = SimParams.quick()

    def timed_grid(grid_specs: list[RunSpec]) -> tuple[float, dict]:
        store = ResultStore(enabled=False)
        t0 = time.perf_counter()
        results = run_grid(grid_specs, params, jobs=jobs, use_cache=False,
                           store=store)
        return time.perf_counter() - t0, results

    flat_wall, _flat_res = timed_grid(specs)
    banked_wall, banked_res = timed_grid(banked_specs)
    rank_switches = sum(r.metrics["mainmem_total"]["rank_switches"]
                        for r in banked_res.values())
    e2e = {
        "points": len(specs),
        "designs": list(DESIGNS),
        "params": "quick",
        "jobs": jobs,
        "flat_wall_s": round(flat_wall, 3),
        "banked_wall_s": round(banked_wall, 3),
        "banked_overhead_x": (round(banked_wall / flat_wall, 3)
                              if flat_wall else 0.0),
        "banked_rank_switches": rank_switches,
    }

    latencies = [row["mean_read_latency_ps"] for row in scaling]
    return {
        "fetch_loop": fetch_loop,
        "channel_scaling": scaling,
        "scaling_monotonic": latencies == sorted(latencies, reverse=True),
        "e2e": e2e,
    }
