"""Compiled-hot-path benchmark section: SoA vs object model, build mode.

Two questions, one section:

* **What did the struct-of-arrays conversion buy?**  The pre-SoA channel
  kept one :class:`repro.dram.bank.Bank` object per bank and issued
  through its methods (``row_state`` / ``earliest_cas`` / ``commit``,
  each a chain of attribute chases through ``bank.t.<timing>``).  The
  SoA channel stores the same five fields as flat int columns and
  inlines the classification into index arithmetic.  This module keeps
  an **object-model reference channel** wired to the same bus rules and
  drives both through identical access streams — every ``(start, end)``
  return and the final captured timing state are asserted equal before
  anything is timed, so the speedup can never come from divergence.

* **Is this process running the compiled build?**  The section records
  :func:`repro.build_info.build_mode` and the per-module compile status,
  so a BENCH file documents which build produced its numbers.  Under
  ``REPRO_COMPILE=1`` installs the same section measures the mypyc
  build; comparing its JSON against an interpreted run of the same
  machine gives the compile speedup.

The reference channel is *deliberately* written in the pre-SoA shape —
per-object method dispatch, dataclass timing lookups — because that is
the baseline the BENCH ``soa_speedup`` claims against.  Do not
"optimise" it.
"""

from __future__ import annotations

import random
from time import perf_counter
from typing import Any

from repro.build_info import MYPYC_MODULES, build_mode, compiled_modules
from repro.config import DRAMOrganization, DRAMTimings
from repro.dram.bank import Bank
from repro.dram.channel import Channel

# Bus direction states (the reference model mirrors the channel's).
_DIR_NONE = 0
_DIR_READ = 1
_DIR_WRITE = 2


class _ObjectChannel:
    """Pre-SoA reference: per-bank ``Bank`` objects + the shared bus rules.

    Implements exactly the subset of :class:`Channel` the benchmark
    drives (``issue`` and pure estimates) with the historical object
    layout.  Statistics are omitted — both engines skip them so the
    timed region is purely bank/bus state math.
    """

    __slots__ = ("t", "banks", "bpr", "bus_free", "bus_dir",
                 "_last_read_end", "_last_write_end", "_last_rank")

    def __init__(self, timings: DRAMTimings, org: DRAMOrganization):
        self.t = timings
        self.bpr = org.banks_per_rank
        nbanks = org.ranks_per_channel * org.banks_per_rank
        self.banks = [Bank(timings) for _ in range(nbanks)]
        self.bus_free = 0
        self.bus_dir = _DIR_NONE
        self._last_read_end = 0
        self._last_write_end = 0
        self._last_rank = -1

    def _bus_constrained_start(self, data_ready: int, is_write: bool,
                               rank: int) -> int:
        start = max(data_ready, self.bus_free)
        if is_write:
            if self.bus_dir == _DIR_READ:
                start = max(start, self._last_read_end + self.t.tRTW)
        elif self.bus_dir == _DIR_WRITE:
            start = max(start, self._last_write_end + self.t.tWTR)
        if (self.t.tCS and rank >= 0 and self._last_rank >= 0
                and rank != self._last_rank):
            start = max(start, self.bus_free + self.t.tCS)
        return start

    def estimate_burst_start(self, rank: int, bank: int, row: int,
                             is_write: bool, now: int) -> int:
        b = self.banks[rank * self.bpr + bank]
        cas = b.earliest_cas(row, now)
        return self._bus_constrained_start(cas + self.t.tCAS, is_write, rank)

    def issue(self, rank: int, bank: int, row: int, is_write: bool,
              now: int) -> tuple[int, int]:
        b = self.banks[rank * self.bpr + bank]
        cas = b.earliest_cas(row, now)
        start = self._bus_constrained_start(cas + self.t.tCAS, is_write, rank)
        end = start + self.t.tBURST
        b.commit(row, start - self.t.tCAS, is_write, end)
        self._last_rank = rank
        new_dir = _DIR_WRITE if is_write else _DIR_READ
        self.bus_dir = new_dir
        self.bus_free = end
        if is_write:
            self._last_write_end = end
        else:
            self._last_read_end = end
        return start, end

    def capture_banks(self) -> list[tuple[Any, ...]]:
        return [b.capture() for b in self.banks]


def _make_stream(org: DRAMOrganization, n: int,
                 seed: int) -> list[tuple[int, int, int, bool, int]]:
    """A shared (rank, bank, row, is_write, now) access stream.

    ``now`` advances strictly, so SoA estimate probes cannot be served
    from the generation memo — the comparison times the uncached math in
    both models.
    """
    rng = random.Random(seed)
    stream = []
    now = 0
    for _ in range(n):
        rank = rng.randrange(org.ranks_per_channel)
        bank = rng.randrange(org.banks_per_rank)
        row = rng.randrange(32)
        is_write = rng.random() < 0.4
        now += rng.randrange(1, 4000)
        stream.append((rank, bank, row, is_write, now))
    return stream


def _verify_lockstep(org: DRAMOrganization, timings: DRAMTimings,
                     stream: list[tuple[int, int, int, bool, int]]) -> None:
    """Drive both models through the stream; raise on any divergence."""
    soa = Channel(timings, org)
    obj = _ObjectChannel(timings, org)
    for i, (rank, bank, row, is_write, now) in enumerate(stream):
        est_soa = soa.estimate_burst_start(rank, bank, row, is_write, now)
        est_obj = obj.estimate_burst_start(rank, bank, row, is_write, now)
        if est_soa != est_obj:
            raise AssertionError(
                f"estimate #{i} diverged: soa={est_soa} object={est_obj}")
        got_soa = soa.issue(rank, bank, row, is_write, now)
        got_obj = obj.issue(rank, bank, row, is_write, now)
        if got_soa != got_obj:
            raise AssertionError(
                f"issue #{i} diverged: soa={got_soa} object={got_obj}")
    if soa.capture_state()["banks"] != obj.capture_banks():
        raise AssertionError("final bank state diverged between SoA and "
                             "object models")


def run_compiled_section(quick: bool = False, seed: int = 0) -> dict:
    """Benchmark the SoA hot path against the object reference model."""
    n = 20_000 if quick else 200_000
    org = DRAMOrganization()
    timings = DRAMTimings.stacked()
    stream = _make_stream(org, n, seed + 77)
    _verify_lockstep(org, timings, stream[:min(n, 5_000)])

    def time_issue(ch) -> float:
        issue = ch.issue
        t0 = perf_counter()
        for rank, bank, row, is_write, now in stream:
            issue(rank, bank, row, is_write, now)
        return perf_counter() - t0

    def time_estimate(ch) -> float:
        est = ch.estimate_burst_start
        issue = ch.issue
        t0 = perf_counter()
        # Scheduler shape: several candidate probes per commit.
        for i, (rank, bank, row, is_write, now) in enumerate(stream):
            est(rank, bank, row, is_write, now)
            est(rank, bank ^ 1, row + 1, is_write, now)
            est(rank, bank ^ 2, row + 2, not is_write, now)
            if i & 3 == 0:
                issue(rank, bank, row, is_write, now)
        return perf_counter() - t0

    obj_issue_s = time_issue(_ObjectChannel(timings, org))
    soa_issue_s = time_issue(Channel(timings, org))
    obj_est_s = time_estimate(_ObjectChannel(timings, org))
    soa_est_s = time_estimate(Channel(timings, org))

    return {
        "build": build_mode(),
        "mypyc_modules": len(MYPYC_MODULES),
        "compiled_modules": list(compiled_modules()),
        "lockstep_checked": True,
        "issue_loop": {
            "iterations": n,
            "object_s": round(obj_issue_s, 6),
            "soa_s": round(soa_issue_s, 6),
            "object_per_s": round(n / obj_issue_s, 1) if obj_issue_s else 0.0,
            "soa_per_s": round(n / soa_issue_s, 1) if soa_issue_s else 0.0,
            "soa_speedup": round(obj_issue_s / soa_issue_s, 3)
            if soa_issue_s else 0.0,
        },
        "estimate_loop": {
            "probes": n * 3,
            "object_s": round(obj_est_s, 6),
            "soa_s": round(soa_est_s, 6),
            "soa_speedup": round(obj_est_s / soa_est_s, 3)
            if soa_est_s else 0.0,
        },
    }
