"""The whole stacked-DRAM device: channels + the address mapper."""

from __future__ import annotations

from repro.config import DRAMOrganization, DRAMTimings
from repro.dram.address import AddressMapper, DecodedAddress
from repro.dram.channel import Channel
from repro.dram.stats import ChannelStats
from repro.metrics.registry import MetricRegistry


class DRAMDevice:
    """All channels of the stacked DRAM plus address decoding.

    The controller owns one queue pair per channel; the device provides the
    timing substrate those queues schedule onto.  Per-channel counter
    groups are published in :attr:`metrics` (``ch0``, ``ch1``, ...) so the
    controller/system registries can mount the substrate subtree directly.
    """

    def __init__(self, timings: DRAMTimings, org: DRAMOrganization,
                 xor_remap: bool = False):
        self.timings = timings
        self.org = org
        self.mapper = AddressMapper(org, xor_remap=xor_remap)
        self.metrics = MetricRegistry()
        self.channels = []
        for i in range(org.channels):
            stats = ChannelStats()
            self.metrics.register(f"ch{i}", stats)
            self.channels.append(Channel(timings, org, stats=stats))

    def decode(self, addr: int) -> DecodedAddress:
        return self.mapper.decode(addr)

    def channel(self, idx: int) -> Channel:
        return self.channels[idx]

    def total_stats(self) -> ChannelStats:
        """Aggregate substrate counters across channels."""
        return ChannelStats.sum([c.stats for c in self.channels])

    def reset_stats(self) -> None:
        self.metrics.reset()
