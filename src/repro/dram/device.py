"""The whole stacked-DRAM device: channels + the address mapper."""

from __future__ import annotations

from repro.config import DRAMOrganization, DRAMTimings, SubstrateConfig
from repro.dram.address import AddressMapper, DecodedAddress
from repro.dram.stats import ChannelStats
from repro.dram.channel import Channel
from repro.dram.substrate import make_channel
from repro.metrics.registry import MetricRegistry


class DRAMDevice:
    """All channels of the stacked DRAM plus address decoding.

    The controller owns one queue pair per channel; the device provides the
    timing substrate those queues schedule onto.  The substrate *model* is
    pluggable (``SubstrateConfig.fidelity``; see repro.dram.substrate) —
    every channel is built through :func:`~repro.dram.substrate.make_channel`
    and the device itself is fidelity-agnostic.  Per-channel counter
    groups are published in :attr:`metrics` (``ch0``, ``ch1``, ...) so the
    controller/system registries can mount the substrate subtree directly.
    """

    __slots__ = ("timings", "org", "substrate", "mapper", "metrics",
                 "channels")

    def __init__(self, timings: DRAMTimings, org: DRAMOrganization,
                 xor_remap: bool = False,
                 substrate: SubstrateConfig | None = None):
        self.timings = timings
        self.org = org
        self.substrate = (substrate if substrate is not None
                          else SubstrateConfig())
        self.mapper = AddressMapper(org, xor_remap=xor_remap)
        self.metrics = MetricRegistry()
        self.channels: list[Channel] = []
        for i in range(org.channels):
            channel = make_channel(timings, org, self.substrate)
            self.metrics.register(f"ch{i}", channel.stats)
            self.channels.append(channel)

    def decode(self, addr: int) -> DecodedAddress:
        return self.mapper.decode(addr)

    def channel(self, idx: int) -> Channel:
        return self.channels[idx]

    def total_stats(self) -> ChannelStats:
        """Aggregate substrate counters across channels.

        Summed under the channels' own stats class, so command-fidelity
        devices aggregate their extra counters too.
        """
        if not self.channels:
            return ChannelStats()
        cls = type(self.channels[0].stats)
        return cls.sum([c.stats for c in self.channels])

    def reset_stats(self) -> None:
        self.metrics.reset()
