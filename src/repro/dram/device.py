"""The whole stacked-DRAM device: channels + the address mapper."""

from __future__ import annotations

from repro.config import DRAMOrganization, DRAMTimings, SubstrateConfig
from repro.dram.address import AddressMapper, DecodedAddress
from repro.dram.command import CommandChannel
from repro.dram.stats import ChannelStats, RankStats
from repro.dram.channel import Channel
from repro.dram.substrate import make_channel
from repro.metrics.registry import MetricRegistry


class DRAMDevice:
    """All channels of the stacked DRAM plus address decoding.

    The controller owns one queue pair per channel; the device provides the
    timing substrate those queues schedule onto.  The substrate *model* is
    pluggable (``SubstrateConfig.fidelity``; see repro.dram.substrate) —
    every channel is built through :func:`~repro.dram.substrate.make_channel`
    and the device itself is fidelity-agnostic.  Per-channel counter
    groups are published in :attr:`metrics` (``ch0``, ``ch1``, ...) so the
    controller/system registries can mount the substrate subtree directly.
    """

    __slots__ = ("timings", "org", "substrate", "mapper", "metrics",
                 "channels")

    def __init__(self, timings: DRAMTimings, org: DRAMOrganization,
                 xor_remap: bool = False,
                 substrate: SubstrateConfig | None = None):
        self.timings = timings
        self.org = org
        self.substrate = (substrate if substrate is not None
                          else SubstrateConfig())
        self.mapper = AddressMapper(org, xor_remap=xor_remap)
        self.metrics = MetricRegistry()
        self.channels: list[Channel] = []
        for i in range(org.channels):
            channel = make_channel(timings, org, self.substrate)
            self.metrics.register(f"ch{i}", channel.stats)
            # The rank dimension is published only when it is real:
            # command-fidelity channels with >1 rank get one RankStats
            # group per rank (siblings of the channel group — ch{i} is a
            # leaf, nothing can nest under it).  Single-rank devices
            # keep their exact metric key set (golden pins).
            if (isinstance(channel, CommandChannel)
                    and org.ranks_per_channel > 1):
                for j, rs in enumerate(channel.rank_groups):
                    self.metrics.register(f"ch{i}_rank{j}", rs)
            self.channels.append(channel)

    def decode(self, addr: int) -> DecodedAddress:
        return self.mapper.decode(addr)

    def channel(self, idx: int) -> Channel:
        return self.channels[idx]

    def total_stats(self) -> ChannelStats:
        """Aggregate substrate counters across channels.

        Summed under the channels' own stats class, so command-fidelity
        devices aggregate their extra counters too.
        """
        if not self.channels:
            return ChannelStats()
        cls = type(self.channels[0].stats)
        return cls.sum([c.stats for c in self.channels])

    def rank_totals(self) -> list[RankStats]:
        """Cross-channel per-rank rollup: one summed group per rank index.

        Empty unless the device publishes per-rank groups (command
        fidelity with >1 rank), mirroring the registration rule above.
        """
        if self.org.ranks_per_channel <= 1:
            return []
        if not all(isinstance(c, CommandChannel) for c in self.channels):
            return []
        totals: list[RankStats] = []
        for j in range(self.org.ranks_per_channel):
            # ``*_rank{j}`` matches exactly the per-rank groups (channel
            # leaves are plain ``ch{i}``), so the registry rollup is the
            # cross-channel sum for one rank index.
            g = self.metrics.rollup(f"*_rank{j}")
            assert isinstance(g, RankStats)
            totals.append(g)
        return totals

    def reset_stats(self) -> None:
        self.metrics.reset()
