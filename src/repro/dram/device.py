"""The whole stacked-DRAM device: channels + the address mapper."""

from __future__ import annotations

from repro.config import DRAMOrganization, DRAMTimings
from repro.dram.address import AddressMapper, DecodedAddress
from repro.dram.channel import Channel
from repro.dram.stats import ChannelStats


class DRAMDevice:
    """All channels of the stacked DRAM plus address decoding.

    The controller owns one queue pair per channel; the device provides the
    timing substrate those queues schedule onto.
    """

    def __init__(self, timings: DRAMTimings, org: DRAMOrganization,
                 xor_remap: bool = False):
        self.timings = timings
        self.org = org
        self.mapper = AddressMapper(org, xor_remap=xor_remap)
        self.channels = [Channel(timings, org) for _ in range(org.channels)]

    def decode(self, addr: int) -> DecodedAddress:
        return self.mapper.decode(addr)

    def channel(self, idx: int) -> Channel:
        return self.channels[idx]

    def total_stats(self) -> ChannelStats:
        """Aggregate substrate counters across channels."""
        return ChannelStats.sum([c.stats for c in self.channels])

    def reset_stats(self) -> None:
        for c in self.channels:
            c.reset_stats()
