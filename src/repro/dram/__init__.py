"""Die-stacked DRAM substrate: timing model, banks, channels, address mapping.

This package models the stacked DRAM at the granularity a controller sees:
per-bank row-buffer state with ACT/PRE/CAS timing composition, a per-channel
data bus with read/write direction tracking (bus turnarounds cost
tWTR / tRTW), and the RoBaRaChCo address interleaving from the paper's
Table II, optionally post-processed by the permutation-based XOR remapping
of Zhang et al. (MICRO'00).
"""

from repro.dram.address import AddressMapper, DecodedAddress
from repro.dram.bank import Bank, RowState
from repro.dram.channel import Channel
from repro.dram.command import CommandChannel
from repro.dram.device import DRAMDevice
from repro.dram.stats import ChannelStats, CommandChannelStats
from repro.dram.substrate import Substrate, make_channel

__all__ = [
    "AddressMapper",
    "DecodedAddress",
    "Bank",
    "Channel",
    "CommandChannel",
    "RowState",
    "DRAMDevice",
    "ChannelStats",
    "CommandChannelStats",
    "Substrate",
    "make_channel",
]
