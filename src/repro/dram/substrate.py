"""The pluggable-fidelity substrate protocol and its factory.

Everything above the DRAM — schedulers, the controller designs, the
snapshot layer — consumes a channel through one narrow surface, the
:class:`Substrate` protocol:

* ``row_state`` / ``estimate_burst_start`` — pure scheduling queries
  (plus direct reads of the ``open_rows`` struct-of-arrays column on the
  scheduler hot path, ``-1`` = closed);
* ``issue`` — commit one access, returning ``(burst_start, burst_end)``;
* ``reset_stats`` — warm-up boundary;
* ``capture_state`` / ``restore_state`` — value-only timing-state images
  for the snapshot/differential machinery.

Two models implement it:

* ``fidelity="burst"`` — :class:`repro.dram.channel.Channel`, the
  access-granular default.  Collapses the command pipeline the way
  controller-design studies do; fastest, and the model every paper
  figure is calibrated on.
* ``fidelity="command"`` — :class:`repro.dram.command.CommandChannel`,
  which additionally enforces per-rank ACT throttling (tRRD / tFAW),
  periodic refresh (tREFI / tRFC with postpone accounting) and
  pluggable page policies (open / closed / timeout).

:func:`make_channel` is the one construction point; the
:class:`~repro.config.SubstrateConfig` it consumes rides on
``SystemConfig.substrate``, so ``dca-repro sweep --axis
substrate.fidelity=burst,command`` sweeps the substrate like any other
config path.
"""

from __future__ import annotations

from typing import Any, Protocol, runtime_checkable

from repro.config import DRAMOrganization, DRAMTimings, SubstrateConfig
from repro.dram.bank import BankView, RowState
from repro.dram.channel import Channel
from repro.dram.command import CommandChannel
from repro.dram.stats import ChannelStats


@runtime_checkable
class Substrate(Protocol):
    """The query/commit surface controllers and schedulers consume.

    Structural: any object with these members is a substrate.  The two
    shipped models share :class:`~repro.dram.channel.Channel`'s bus core,
    but a foreign implementation only needs this surface plus two bank
    views of the same state: the ``open_rows`` struct-of-arrays column
    (one ``int`` per bank, ``-1`` = closed) the scheduler fast paths
    index directly, and the ``banks`` object list (``open_row`` /
    ``row_state`` per bank) the naive reference selectors read.
    """

    open_rows: list[int]
    banks: list[BankView]
    bus_free: int
    stats: ChannelStats

    def bank_index(self, rank: int, bank: int) -> int: ...

    def row_state(self, rank: int, bank: int, row: int) -> RowState: ...

    def estimate_burst_start(self, rank: int, bank: int, row: int,
                             is_write: bool, now: int) -> int: ...

    def issue(self, rank: int, bank: int, row: int, is_write: bool,
              now: int) -> tuple[int, int]: ...

    def reset_stats(self) -> None: ...

    def capture_state(self) -> dict[str, Any]: ...

    def restore_state(self, state: dict[str, Any]) -> None: ...


def make_channel(timings: DRAMTimings, org: DRAMOrganization,
                 substrate: SubstrateConfig | None = None,
                 stats: ChannelStats | None = None) -> Channel:
    """Construct one channel of the configured fidelity.

    With ``stats=None`` the model picks its own counter group —
    :class:`~repro.dram.stats.ChannelStats` for burst,
    :class:`~repro.dram.stats.CommandChannelStats` (a superset) for
    command — so burst-fidelity metric snapshots stay bit-identical to
    the pre-protocol layout.
    """
    sub = substrate if substrate is not None else SubstrateConfig()
    if sub.fidelity == "burst":
        return Channel(timings, org, stats=stats)
    if sub.fidelity == "command":
        return CommandChannel(timings, org, stats=stats, substrate=sub)
    raise ValueError(f"unknown substrate fidelity {sub.fidelity!r}")
