"""Re-export of :class:`repro.config.DRAMTimings` under the dram package.

The timing dataclass lives in :mod:`repro.config` alongside the rest of the
Table II parameters so a single import gives a complete system description;
this module exists so substrate code can do ``from repro.dram.timings
import DRAMTimings`` without reaching across packages.
"""

from repro.config import DRAMTimings, ns

__all__ = ["DRAMTimings", "ns"]
