"""Command-level DRAM substrate: rank constraints, refresh, page policies.

The burst-granular :class:`~repro.dram.channel.Channel` collapses the DRAM
command pipeline to access granularity — fine for relative controller
comparisons, but unable to express the effects fidelity studies evaluate
(gem5's unified DRAM-cache controller model and TDRAM both run under
refresh, tFAW/tRRD rank throttling and page-policy variation).  This
module adds those mechanisms behind the same substrate protocol:

**Per-rank ACT throttling** — every row activation is recorded in a
four-deep sliding window per rank; a new ACT may not issue earlier than
``tRRD`` after the previous ACT on the rank, nor earlier than ``tFAW``
after the fourth-most-recent one (the JEDEC four-activate window).
Stalls are counted per binding constraint (``rrd_stalls``/``faw_stalls``).

**Periodic refresh** — each rank owes one refresh every ``tREFI``.  The
model is *lazy and deterministic*: refresh bookkeeping is brought up to
date whenever an access next commits on the rank, performing every
refresh that fell due in the meantime (estimates run the same sync on
scratch state and roll it back, so probing stays pure).  A refresh precharges all
banks of the rank and blacks the rank out for ``tRFC``; one that could
not start at its due time (a bank was still row-active past it) starts
as soon as the rank can precharge and is counted ``refreshes_postponed``
— the analogue of the postpone/pull-in credit real controllers track.
ACTs that land inside a blackout are pushed past it (``refresh_stalls``).

**Page policies** — ``open`` keeps rows open (the burst model's
behaviour), ``closed`` auto-precharges after every access, ``timeout``
precharges a row once it has idled for ``page_timeout_ps``.  Policy
closes are counted (``policy_closes``) and show up upstream as row-closed
instead of row-hit/conflict accesses.

All rank/bank timing state is struct-of-arrays like the base channel:
the refresh sync, the scratch capture/rollback the pure estimates run,
and the tFAW window checks operate on flat int lists (the per-rank ACT
history is a bounded ``list[int]``, oldest first — the capture format it
serializes to is unchanged).

Determinism: lazy state advances happen only at commits, are monotone in
simulated time, and the simulator's ``now`` never decreases — so every
committed time and every counter is a pure function of the issue
sequence; estimates may run or not run between issues without changing
any outcome (pinned by tests/test_substrate.py).
"""

from __future__ import annotations

from typing import Any, ClassVar

from repro.config import DRAMOrganization, DRAMTimings, SubstrateConfig
from repro.dram.bank import ROW_CLOSED, ROW_CONFLICT, ROW_HIT
from repro.dram.channel import Channel
from repro.dram.stats import CommandChannelStats, RankStats

#: ACTs admitted per rank inside one tFAW window (JEDEC four-activate).
FAW_DEPTH = 4

#: Scratch image of everything ``_sync_rank`` may touch: the rank's five
#: bank-state column slices plus (refresh_due, blackout_end).
_RankScratch = tuple[list[int], list[int], list[int], list[int], list[int],
                     int, int]


class CommandChannel(Channel):
    """Channel with command-level rank constraints, refresh and page policy."""

    __slots__ = ("substrate", "rank_groups", "_page_policy", "_page_timeout",
                 "_refresh_on", "_act_history", "_refresh_due",
                 "_blackout_end", "_bank_last_end", "_tREFI", "_tRFC",
                 "_tRRD", "_tFAW")

    fidelity: ClassVar[str] = "command"

    def __init__(self, timings: DRAMTimings, org: DRAMOrganization,
                 stats: CommandChannelStats | None = None,
                 substrate: SubstrateConfig | None = None):
        if stats is None:
            stats = CommandChannelStats()
        elif not isinstance(stats, CommandChannelStats):
            # Fail at construction, not at the first refresh: a plain
            # ChannelStats lacks the command-level counters.
            raise TypeError(
                f"command-fidelity channels need CommandChannelStats, "
                f"got {type(stats).__name__}")
        super().__init__(timings, org, stats=stats)
        sub = (substrate if substrate is not None
               else SubstrateConfig(fidelity="command"))
        self.substrate = sub
        self._page_policy = sub.page_policy
        self._page_timeout = sub.page_timeout_ps
        self._refresh_on = bool(sub.refresh) and timings.tREFI > 0
        self._tREFI = timings.tREFI
        self._tRFC = timings.tRFC
        self._tRRD = timings.tRRD
        self._tFAW = timings.tFAW
        nranks = org.ranks_per_channel
        #: per-rank counter groups (activation pressure, refresh debt,
        #: throttling attribution); the owning device registers them in
        #: its metrics tree when the rank dimension is real (nranks > 1)
        self.rank_groups: list[RankStats] = [RankStats()
                                             for _ in range(nranks)]
        #: last FAW_DEPTH effective ACT times per rank (oldest first);
        #: bounded plain lists — trimmed on append — not deques, so the
        #: two-element window checks stay C-level list indexing
        self._act_history: list[list[int]] = [[] for _ in range(nranks)]
        #: next refresh due time per rank
        self._refresh_due = [timings.tREFI] * nranks
        #: end of the rank's current/most recent tRFC blackout
        self._blackout_end = [0] * nranks
        #: burst end of each bank's last access (timeout page policy)
        self._bank_last_end = [0] * self.nbanks

    # ------------------------------------------------------------ lazy state

    def _sync_rank(self, rank: int, bank_idx: int, now: int,
                   account: bool = True) -> None:
        """Bring refresh + page-policy state up to ``now`` for one rank.

        Monotone and idempotent: calling it again at the same (or a
        later) time never changes what an earlier call established.
        ``account=False`` suppresses the counter increments (the pure
        estimate path runs the sync on state it then rolls back, and
        must leave the stats untouched so counters are a function of the
        *issue* sequence alone).
        """
        if self._refresh_on:
            due = self._refresh_due[rank]
            if due <= now:
                tREFI = self._tREFI
                tRFC = self._tRFC
                bpr = self._bpr
                base = rank * bpr
                lim = base + bpr
                open_rows = self.open_rows
                pres = self.ready_pre
                blackout = self._blackout_end[rank]
                s = self.stats
                rs = self.rank_groups[rank]
                while due <= now:
                    start = due if due >= blackout else blackout
                    # All banks must be precharged: a rank still row-active
                    # past the due time postpones the refresh behind its
                    # earliest legal PRE.
                    pre_ready = max(pres[base:lim])
                    if pre_ready > start:
                        start = pre_ready
                    if start == due:
                        # On time — and then so is every remaining owed
                        # refresh (tRFC < tREFI keeps each blackout inside
                        # its own interval, and ready_pre is never raised
                        # past it), so the tail collapses to arithmetic:
                        # a long-idle rank catches up in O(1) instead of
                        # O(elapsed / tREFI) loop iterations.
                        k = (now - due) // tREFI + 1
                        if account:
                            s.refreshes_issued += k
                            rs.refreshes_issued += k
                        due += k * tREFI
                        blackout = due - tREFI + tRFC
                        for i in range(base, lim):
                            open_rows[i] = -1
                            # ready_act is deliberately NOT raised (here
                            # or below): the blackout gates ACTs through
                            # _rank_act_bound, so the delay is attributed
                            # as refresh_stalls.
                            if blackout > pres[i]:
                                pres[i] = blackout
                        break
                    if account:
                        # Postponed for *any* reason — row activity or the
                        # previous refresh's blackout chaining past due.
                        s.refreshes_postponed += 1
                        s.refreshes_issued += 1
                        rs.refreshes_postponed += 1
                        rs.refreshes_issued += 1
                    blackout = start + tRFC
                    for i in range(base, lim):
                        open_rows[i] = -1
                        if blackout > pres[i]:
                            pres[i] = blackout
                    due += tREFI
                self._refresh_due[rank] = due
                self._blackout_end[rank] = blackout
        if self._page_policy == "timeout":
            if self.open_rows[bank_idx] >= 0:
                # The PRE fires once the row has idled for the timeout —
                # but never before it is legal (tRAS/tRTP/tWR composition).
                pre_at = self._bank_last_end[bank_idx] + self._page_timeout
                ready = self.ready_pre[bank_idx]
                if ready > pre_at:
                    pre_at = ready
                if pre_at <= now:
                    self.open_rows[bank_idx] = -1
                    nxt = pre_at + self._tRP
                    if nxt > self.ready_act[bank_idx]:
                        self.ready_act[bank_idx] = nxt
                    if account:
                        self.stats.policy_closes += 1

    def _capture_rank(self, rank: int) -> _RankScratch:
        """Scratch image of everything :meth:`_sync_rank` may touch."""
        base = rank * self._bpr
        lim = base + self._bpr
        return (self.open_rows[base:lim], self.act_times[base:lim],
                self.ready_cas[base:lim], self.ready_pre[base:lim],
                self.ready_act[base:lim],
                self._refresh_due[rank], self._blackout_end[rank])

    def _restore_rank(self, rank: int, saved: _RankScratch) -> None:
        base = rank * self._bpr
        lim = base + self._bpr
        orows, acts, cass, pres, racts, due, blackout = saved
        self.open_rows[base:lim] = orows
        self.act_times[base:lim] = acts
        self.ready_cas[base:lim] = cass
        self.ready_pre[base:lim] = pres
        self.ready_act[base:lim] = racts
        self._refresh_due[rank] = due
        self._blackout_end[rank] = blackout

    def _rank_act_bound(self, rank: int, act: int) -> tuple[int, int]:
        """Fold rank-level ACT constraints into a planned ACT time.

        Returns ``(constrained_act, binding)`` where ``binding`` is 0 for
        none, 1 for tRRD, 2 for tFAW, 3 for a refresh blackout (the
        *latest*-binding constraint wins the attribution).
        """
        binding = 0
        hist = self._act_history[rank]
        if hist:
            if self._tRRD:
                gated = hist[-1] + self._tRRD
                if gated > act:
                    act, binding = gated, 1
            if self._tFAW and len(hist) == FAW_DEPTH:
                gated = hist[0] + self._tFAW
                if gated > act:
                    act, binding = gated, 2
        blackout = self._blackout_end[rank]
        if blackout > act:
            act, binding = blackout, 3
        return act, binding

    def _earliest_cas(self, idx: int, rank: int, row: int,
                      now: int) -> tuple[int, int]:
        """Rank-constrained CAS time; returns ``(cas, binding)``.

        ``binding`` (see :meth:`_rank_act_bound`) is nonzero when a rank
        constraint, not the bank, delayed the activation.
        """
        orow = self.open_rows[idx]
        if orow == row:
            rc = self.ready_cas[idx]
            return (now if now >= rc else rc), 0
        if orow < 0:
            ra = self.ready_act[idx]
            act = now if now >= ra else ra
        else:
            rp = self.ready_pre[idx]
            act = (now if now >= rp else rp) + self._tRP
        act, binding = self._rank_act_bound(rank, act)
        return act + self._tRCD, binding

    # ------------------------------------------------------------- protocol

    def _estimate_uncached(self, rank: int, bank: int, row: int,
                           is_write: bool, now: int) -> int:
        """Earliest burst start under full command-level constraints.

        Pure, like the burst model's: the lazy refresh/page sync runs on
        rank state that is rolled back before returning, and counters
        are left untouched — so probing never changes a committed time
        or a statistic (pinned by tests/test_substrate.py), while still
        matching :meth:`issue`'s placement exactly.  The memoizing
        ``estimate_burst_start`` wrapper lives on the base channel; the
        capture/sync/rollback here is exactly the work worth caching.
        """
        idx = rank * self._bpr + bank
        saved = self._capture_rank(rank)
        self._sync_rank(rank, idx, now, account=False)
        cas, _ = self._earliest_cas(idx, rank, row, now)
        start = self._bus_constrained_start(cas + self._tCAS, is_write, rank)
        self._restore_rank(rank, saved)
        return start

    def issue(self, rank: int, bank: int, row: int, is_write: bool,
              now: int) -> tuple[int, int]:
        """Commit an access under rank constraints; ``(start, end)``."""
        idx = rank * self._bpr + bank
        self._sync_rank(rank, idx, now)
        orow = self.open_rows[idx]
        if orow == row:
            state = ROW_HIT
        elif orow < 0:
            state = ROW_CLOSED
        else:
            state = ROW_CONFLICT

        cas, binding = self._earliest_cas(idx, rank, row, now)
        start, end = self._place_and_commit(idx, rank, row, cas, is_write,
                                            state)

        if state != ROW_HIT:
            # Effective ACT: back-dated like the CAS, so the recorded
            # window is consistent with the bank's tRAS bookkeeping and
            # never earlier than the constrained plan.
            hist = self._act_history[rank]
            if len(hist) == FAW_DEPTH:
                del hist[0]
            hist.append(start - self._tCAS - self._tRCD)
            rs = self.rank_groups[rank]
            rs.acts += 1
            if binding == 1:
                self.stats.rrd_stalls += 1
                rs.rrd_stalls += 1
            elif binding == 2:
                self.stats.faw_stalls += 1
                rs.faw_stalls += 1
            elif binding == 3:
                self.stats.refresh_stalls += 1
                rs.refresh_stalls += 1

        if self._page_policy == "closed" and self.open_rows[idx] >= 0:
            # Auto-precharge: the commit already advanced ready_pre /
            # ready_act for the implicit PRE; only the row closes here.
            self.open_rows[idx] = -1
            self.stats.policy_closes += 1
        self._bank_last_end[idx] = end

        self._account_issue(state, end, is_write)
        return start, end

    def reset_stats(self) -> None:
        super().reset_stats()
        for rs in self.rank_groups:
            rs.reset()

    # -------------------------------------------------------- state capture

    def capture_state(self) -> dict[str, Any]:
        state = super().capture_state()
        state["command"] = {
            "act_history": [list(h) for h in self._act_history],
            "refresh_due": list(self._refresh_due),
            "blackout_end": list(self._blackout_end),
            "bank_last_end": list(self._bank_last_end),
        }
        return state

    def restore_state(self, state: dict[str, Any]) -> None:
        cmd = state["command"]
        nranks = self.org.ranks_per_channel
        # Validate the rank/bank structure before any mutation (the base
        # class's bank-count check alone would accept a same-total but
        # differently-ranked capture, e.g. 1x16 into 2x8).
        if (len(cmd["act_history"]) != nranks
                or len(cmd["refresh_due"]) != nranks
                or len(cmd["blackout_end"]) != nranks
                or len(cmd["bank_last_end"]) != self.nbanks):
            raise ValueError(
                f"rank/bank structure mismatch: captured "
                f"{len(cmd['refresh_due'])} ranks / "
                f"{len(cmd['bank_last_end'])} banks, channel has "
                f"{nranks} ranks / {self.nbanks} banks")
        super().restore_state(state)
        # Keep only the newest FAW_DEPTH entries, exactly as the bounded
        # window would (captures never exceed the depth anyway).
        self._act_history = [list(h)[-FAW_DEPTH:]
                             for h in cmd["act_history"]]
        self._refresh_due = list(cmd["refresh_due"])
        self._blackout_end = list(cmd["blackout_end"])
        self._bank_last_end = list(cmd["bank_last_end"])
