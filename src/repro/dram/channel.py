"""A DRAM channel: banks behind one shared bidirectional data bus.

The data bus services one burst (tBURST) at a time and has a *direction*
(read or write).  Switching direction is a **turnaround**: a read burst may
not start earlier than tWTR after the last write burst ended, and a write
burst may not start earlier than tRTW after the last read burst ended
(JEDEC-style accounting collapsed to burst granularity).  Frequent
turnarounds waste bus time, which is precisely the failure mode of the ROD
controller design the paper analyses.

Issue model (shared by every controller design):

* the scheduler commits to an access at a decision time ``now``;
* the target bank computes its earliest CAS (opening/closing rows as
  needed, overlapping row preparation with the in-flight burst);
* the burst is placed at ``max(bank CAS + tCAS, bus free, turnaround
  constraint)``;
* the bank and bus state are updated and the completion time returned.
"""

from __future__ import annotations

from enum import IntEnum

from repro.config import DRAMOrganization, DRAMTimings
from repro.dram.bank import Bank, ROW_CLOSED, ROW_CONFLICT, ROW_HIT
from repro.dram.stats import ChannelStats


class RowState(IntEnum):
    """Public row-state names (mirrors the int constants in bank.py)."""

    HIT = ROW_HIT
    CLOSED = ROW_CLOSED
    CONFLICT = ROW_CONFLICT


# Bus direction states.
_DIR_NONE = 0
_DIR_READ = 1
_DIR_WRITE = 2


class Channel:
    """One channel: ``ranks_per_channel * banks_per_rank`` banks + data bus."""

    __slots__ = ("timings", "org", "banks", "bus_free", "bus_dir", "stats",
                 "_last_read_end", "_last_write_end")

    def __init__(self, timings: DRAMTimings, org: DRAMOrganization,
                 stats: ChannelStats | None = None):
        self.timings = timings
        self.org = org
        nbanks = org.ranks_per_channel * org.banks_per_rank
        self.banks = [Bank(timings) for _ in range(nbanks)]
        self.bus_free: int = 0          # end of the last burst
        self.bus_dir: int = _DIR_NONE
        self._last_read_end: int = 0
        self._last_write_end: int = 0
        # The counter group may be supplied by the owning device so the
        # same live object sits in its metrics registry.
        self.stats = stats if stats is not None else ChannelStats()

    # -- queries (no mutation) ------------------------------------------------

    def bank_index(self, rank: int, bank: int) -> int:
        return rank * self.org.banks_per_rank + bank

    def row_state(self, rank: int, bank: int, row: int) -> RowState:
        """Row-buffer state an access to (rank, bank, row) would see now."""
        return RowState(self.banks[self.bank_index(rank, bank)].row_state(row))

    def estimate_burst_start(self, rank: int, bank: int, row: int,
                             is_write: bool, now: int) -> int:
        """Earliest burst start for the access (pure query, for schedulers)."""
        b = self.banks[self.bank_index(rank, bank)]
        cas = b.earliest_cas(row, now)
        return self._bus_constrained_start(cas + self.timings.tCAS, is_write)

    def _bus_constrained_start(self, data_ready: int, is_write: bool) -> int:
        """Fold bus-free time and turnaround penalties into a burst start."""
        t = self.timings
        start = max(data_ready, self.bus_free)
        if is_write:
            if self.bus_dir == _DIR_READ:
                start = max(start, self._last_read_end + t.tRTW)
        else:
            if self.bus_dir == _DIR_WRITE:
                start = max(start, self._last_write_end + t.tWTR)
        return start

    # -- commit ---------------------------------------------------------------

    def issue(self, rank: int, bank: int, row: int, is_write: bool,
              now: int) -> tuple[int, int]:
        """Commit an access; returns ``(burst_start, burst_end)``.

        ``burst_end`` is when read data has fully returned / write data has
        been fully transferred — the completion time a request state machine
        should wait on.
        """
        t = self.timings
        b = self.banks[self.bank_index(rank, bank)]
        state = b.row_state(row)

        cas = b.earliest_cas(row, now)
        start = self._bus_constrained_start(cas + t.tCAS, is_write)
        end = start + t.tBURST
        # Back-date the effective CAS so bank bookkeeping (tRTP/tWR windows)
        # lines up with the actual burst position on the bus.
        eff_cas = start - t.tCAS
        b.commit(row, eff_cas, is_write, end)

        # Bus + turnaround accounting.
        new_dir = _DIR_WRITE if is_write else _DIR_READ
        if self.bus_dir != _DIR_NONE and self.bus_dir != new_dir:
            self.stats.turnarounds += 1
        self.bus_dir = new_dir
        self.bus_free = end
        if is_write:
            self._last_write_end = end
        else:
            self._last_read_end = end
        self.stats.bus_busy_ps += t.tBURST

        # Row-state + access-type stats.
        s = self.stats
        if is_write:
            s.write_accesses += 1
            if state == ROW_HIT:
                s.write_row_hits += 1
            elif state == ROW_CLOSED:
                s.write_row_closed += 1
            else:
                s.write_row_conflicts += 1
        else:
            s.read_accesses += 1
            if state == ROW_HIT:
                s.read_row_hits += 1
            elif state == ROW_CLOSED:
                s.read_row_closed += 1
            else:
                s.read_row_conflicts += 1
        return start, end

    def reset_stats(self) -> None:
        self.stats.reset()
