"""A DRAM channel: banks behind one shared bidirectional data bus.

The data bus services one burst (tBURST) at a time and has a *direction*
(read or write).  Switching direction is a **turnaround**: a read burst may
not start earlier than tWTR after the last write burst ended, and a write
burst may not start earlier than tRTW after the last read burst ended
(JEDEC-style accounting collapsed to burst granularity).  Frequent
turnarounds waste bus time, which is precisely the failure mode of the ROD
controller design the paper analyses.

Issue model (shared by every controller design):

* the scheduler commits to an access at a decision time ``now``;
* the target bank computes its earliest CAS (opening/closing rows as
  needed, overlapping row preparation with the in-flight burst);
* the burst is placed at ``max(bank CAS + tCAS, bus free, turnaround
  constraint)``;
* the bank and bus state are updated and the completion time returned.

This class is the ``fidelity="burst"`` substrate model — the default, and
the hot path every controller comparison runs on.  It implements the
:class:`repro.dram.substrate.Substrate` protocol; the command-level model
(:class:`repro.dram.command.CommandChannel`) subclasses it, layering rank
constraints, refresh and page policies on the same bus/statistics core.
"""

from __future__ import annotations

from typing import Any, ClassVar

from repro.config import DRAMOrganization, DRAMTimings
from repro.dram.bank import Bank, ROW_CLOSED, ROW_HIT, RowState
from repro.dram.stats import ChannelStats

__all__ = ["Channel", "RowState"]

# Bus direction states.
_DIR_NONE = 0
_DIR_READ = 1
_DIR_WRITE = 2


class Channel:
    """One channel: ``ranks_per_channel * banks_per_rank`` banks + data bus."""

    __slots__ = ("timings", "org", "banks", "bus_free", "bus_dir", "stats",
                 "_last_read_end", "_last_write_end", "_last_rank", "_gen",
                 "_est_memo", "_est_gen")

    #: substrate fidelity this model implements (see SubstrateConfig)
    fidelity: ClassVar[str] = "burst"

    def __init__(self, timings: DRAMTimings, org: DRAMOrganization,
                 stats: ChannelStats | None = None):
        self.timings = timings
        self.org = org
        nbanks = org.ranks_per_channel * org.banks_per_rank
        self.banks = [Bank(timings) for _ in range(nbanks)]
        self.bus_free: int = 0          # end of the last burst
        self.bus_dir: int = _DIR_NONE
        self._last_read_end: int = 0
        self._last_write_end: int = 0
        self._last_rank: int = -1       # rank of the last burst (-1: none)
        # Timing-state generation: bumped by every committed access and
        # every state restore, i.e. whenever a previously computed
        # estimate could go stale.  estimate_burst_start memoizes on it,
        # so repeated probes of the same candidate between two commits
        # (schedulers re-rank whole queues per decision) compute once.
        self._gen: int = 0
        self._est_memo: dict[tuple[int, int, int, bool, int], int] = {}
        self._est_gen: int = -1
        # The counter group may be supplied by the owning device so the
        # same live object sits in its metrics registry.
        self.stats = stats if stats is not None else ChannelStats()

    # -- queries (no mutation) ------------------------------------------------

    def bank_index(self, rank: int, bank: int) -> int:
        return rank * self.org.banks_per_rank + bank

    def row_state(self, rank: int, bank: int, row: int) -> RowState:
        """Row-buffer state an access to (rank, bank, row) would see now."""
        return RowState(self.banks[self.bank_index(rank, bank)].row_state(row))

    def estimate_burst_start(self, rank: int, bank: int, row: int,
                             is_write: bool, now: int) -> int:
        """Earliest burst start for the access (pure query, for schedulers).

        Memoized per timing-state generation: between two commits the
        channel state is frozen, so equal probes return the cached time;
        any :meth:`issue` or :meth:`restore_state` invalidates the cache
        wholesale.  ``now`` is part of the key, so probes at different
        decision times never alias.
        """
        memo = self._est_memo
        if self._est_gen != self._gen:
            memo.clear()
            # Generation-keyed memo bookkeeping: observationally pure
            # (every estimate returns exactly what the uncached compute
            # would), just lazy invalidation of the cache itself.
            self._est_gen = self._gen  # dca-lint: disable=R4
        key = (rank, bank, row, is_write, now)
        start = memo.get(key)
        if start is None:
            memo[key] = start = self._estimate_uncached(rank, bank, row,
                                                        is_write, now)
        return start

    def _estimate_uncached(self, rank: int, bank: int, row: int,
                           is_write: bool, now: int) -> int:
        """Fidelity-specific estimate (overridden by the command model)."""
        b = self.banks[self.bank_index(rank, bank)]
        cas = b.earliest_cas(row, now)
        return self._bus_constrained_start(cas + self.timings.tCAS, is_write,
                                           rank)

    def _bus_constrained_start(self, data_ready: int, is_write: bool,
                               rank: int = -1) -> int:
        """Fold bus-free time and turnaround penalties into a burst start.

        ``rank`` enables the rank-to-rank bus turnaround: when ``tCS``
        is configured and the burst targets a different rank than the
        previous burst on this channel, the bus needs a ``tCS`` gap
        (gem5's different-rank bus delay).  Pure — the estimate paths
        call this too, so it only *reads* ``_last_rank``.
        """
        t = self.timings
        start = max(data_ready, self.bus_free)
        if is_write:
            if self.bus_dir == _DIR_READ:
                start = max(start, self._last_read_end + t.tRTW)
        else:
            if self.bus_dir == _DIR_WRITE:
                start = max(start, self._last_write_end + t.tWTR)
        if (t.tCS and rank >= 0 and self._last_rank >= 0
                and rank != self._last_rank):
            start = max(start, self.bus_free + t.tCS)
        return start

    # -- commit ---------------------------------------------------------------

    def issue(self, rank: int, bank: int, row: int, is_write: bool,
              now: int) -> tuple[int, int]:
        """Commit an access; returns ``(burst_start, burst_end)``.

        ``burst_end`` is when read data has fully returned / write data has
        been fully transferred — the completion time a request state machine
        should wait on.
        """
        b = self.banks[self.bank_index(rank, bank)]
        state = b.row_state(row)
        start, end = self._place_and_commit(b, rank, row,
                                            b.earliest_cas(row, now),
                                            is_write)
        self._account_issue(state, end, is_write)
        return start, end

    def _place_and_commit(self, b: Bank, rank: int, row: int, cas: int,
                          is_write: bool) -> tuple[int, int]:
        """Place the burst for an earliest-CAS plan and commit the bank.

        The one burst-placement rule both fidelities share: bus/turnaround
        constraints (direction *and* rank-to-rank) fold into the start,
        and the effective CAS is back-dated so bank bookkeeping
        (tRTP/tWR windows) lines up with the actual burst position on
        the bus.  Rank bookkeeping lives here — the only commit point —
        so the estimate paths stay pure.
        """
        t = self.timings
        start = self._bus_constrained_start(cas + t.tCAS, is_write, rank)
        end = start + t.tBURST
        b.commit(row, start - t.tCAS, is_write, end)
        if self._last_rank >= 0 and rank != self._last_rank:
            self.stats.rank_switches += 1
        self._last_rank = rank
        return start, end

    def _account_issue(self, state: int, end: int, is_write: bool) -> None:
        """Bus/turnaround bookkeeping + row-state counters for one burst.

        Shared by every fidelity: the bus core and its statistics are what
        make substrate models comparable, so subclasses reuse this tail
        verbatim and only differ in how the burst start was derived.
        """
        t = self.timings
        self._gen += 1
        new_dir = _DIR_WRITE if is_write else _DIR_READ
        if self.bus_dir != _DIR_NONE and self.bus_dir != new_dir:
            self.stats.turnarounds += 1
        self.bus_dir = new_dir
        self.bus_free = end
        if is_write:
            self._last_write_end = end
        else:
            self._last_read_end = end
        self.stats.bus_busy_ps += t.tBURST

        # Row-state + access-type stats.
        s = self.stats
        if is_write:
            s.write_accesses += 1
            if state == ROW_HIT:
                s.write_row_hits += 1
            elif state == ROW_CLOSED:
                s.write_row_closed += 1
            else:
                s.write_row_conflicts += 1
        else:
            s.read_accesses += 1
            if state == ROW_HIT:
                s.read_row_hits += 1
            elif state == ROW_CLOSED:
                s.read_row_closed += 1
            else:
                s.read_row_conflicts += 1

    def reset_stats(self) -> None:
        self.stats.reset()

    # -- state capture (substrate protocol) -----------------------------------

    def capture_state(self) -> dict[str, Any]:
        """Value-only image of the complete timing state (not the stats).

        Comparable across independent copies — two channels with equal
        captures will time every future access identically.  Subclasses
        extend the dict with their own state under new keys.
        """
        return {
            "bus": (self.bus_free, self.bus_dir,
                    self._last_read_end, self._last_write_end,
                    self._last_rank),
            "banks": [b.capture() for b in self.banks],
        }

    def restore_state(self, state: dict[str, Any]) -> None:
        """Adopt a :meth:`capture_state` image.

        Atomic: validation happens before any mutation, so a rejected
        image leaves the channel exactly as it was.
        """
        if len(state["banks"]) != len(self.banks):
            raise ValueError(
                f"bank count mismatch: captured {len(state['banks'])}, "
                f"channel has {len(self.banks)}")
        (self.bus_free, self.bus_dir,
         self._last_read_end, self._last_write_end,
         self._last_rank) = state["bus"]
        for b, vals in zip(self.banks, state["banks"]):
            b.restore(vals)
        self._gen += 1
