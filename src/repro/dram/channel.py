"""A DRAM channel: banks behind one shared bidirectional data bus.

The data bus services one burst (tBURST) at a time and has a *direction*
(read or write).  Switching direction is a **turnaround**: a read burst may
not start earlier than tWTR after the last write burst ended, and a write
burst may not start earlier than tRTW after the last read burst ended
(JEDEC-style accounting collapsed to burst granularity).  Frequent
turnarounds waste bus time, which is precisely the failure mode of the ROD
controller design the paper analyses.

Issue model (shared by every controller design):

* the scheduler commits to an access at a decision time ``now``;
* the target bank computes its earliest CAS (opening/closing rows as
  needed, overlapping row preparation with the in-flight burst);
* the burst is placed at ``max(bank CAS + tCAS, bus free, turnaround
  constraint)``;
* the bank and bus state are updated and the completion time returned.

Bank state is stored **struct-of-arrays**: five parallel ``list[int]``
columns (``open_rows`` with ``-1`` = closed, ``act_times``, ``ready_cas``,
``ready_pre``, ``ready_act``), one slot per bank, so the issue/estimate
hot paths are list index arithmetic with no per-bank objects.  The
semantics are exactly :class:`repro.dram.bank.Bank`'s (the standalone
reference state machine, which the property tests and the perf harness's
object-model baseline still run); ``banks`` exposes one
:class:`~repro.dram.bank.BankView` proxy per bank for the naive reference
selectors and tests.  The columns are mutated strictly in place — never
rebound — so the views stay live across ``restore_state``.

This class is the ``fidelity="burst"`` substrate model — the default, and
the hot path every controller comparison runs on.  It implements the
:class:`repro.dram.substrate.Substrate` protocol; the command-level model
(:class:`repro.dram.command.CommandChannel`) subclasses it, layering rank
constraints, refresh and page policies on the same bus/statistics core.
"""

from __future__ import annotations

from typing import Any, ClassVar

from repro.config import DRAMOrganization, DRAMTimings
from repro.dram.bank import BankView, ROW_CLOSED, ROW_CONFLICT, ROW_HIT, RowState
from repro.dram.stats import ChannelStats

__all__ = ["Channel", "RowState"]

# Bus direction states.
_DIR_NONE = 0
_DIR_READ = 1
_DIR_WRITE = 2


class Channel:
    """One channel: ``ranks_per_channel * banks_per_rank`` banks + data bus."""

    __slots__ = ("timings", "org", "nbanks", "open_rows", "act_times",
                 "ready_cas", "ready_pre", "ready_act", "banks",
                 "bus_free", "bus_dir", "stats",
                 "_last_read_end", "_last_write_end", "_last_rank", "_gen",
                 "_est_memo", "_est_gen", "_bpr",
                 "_tCAS", "_tRCD", "_tRP", "_tRAS", "_tRTP", "_tWR",
                 "_tBURST", "_tRTW", "_tWTR", "_tCS")

    #: substrate fidelity this model implements (see SubstrateConfig)
    fidelity: ClassVar[str] = "burst"

    def __init__(self, timings: DRAMTimings, org: DRAMOrganization,
                 stats: ChannelStats | None = None):
        self.timings = timings
        self.org = org
        # Timing scalars flattened into slots: every issue/estimate reads
        # several of them, and a slot load beats the two-hop dataclass
        # attribute chase in the inner loop.
        self._tCAS = timings.tCAS
        self._tRCD = timings.tRCD
        self._tRP = timings.tRP
        self._tRAS = timings.tRAS
        self._tRTP = timings.tRTP
        self._tWR = timings.tWR
        self._tBURST = timings.tBURST
        self._tRTW = timings.tRTW
        self._tWTR = timings.tWTR
        self._tCS = timings.tCS
        self._bpr = org.banks_per_rank
        nbanks = org.ranks_per_channel * org.banks_per_rank
        self.nbanks = nbanks
        # Struct-of-arrays bank state: parallel int columns, one slot per
        # bank.  ``-1`` encodes "no open row" (real row ids are >= 0, so
        # the schedulers' ``access.row == open_rows[i]`` hit test needs no
        # None check).  Mutated in place only — the BankView proxies and
        # any outstanding references stay coherent.
        self.open_rows: list[int] = [-1] * nbanks
        self.act_times: list[int] = [0] * nbanks
        self.ready_cas: list[int] = [0] * nbanks
        self.ready_pre: list[int] = [0] * nbanks
        self.ready_act: list[int] = [0] * nbanks
        #: per-bank object views for reference paths and tests (the hot
        #: paths index the columns directly and never touch these)
        self.banks = [BankView(self.open_rows, self.act_times,
                               self.ready_cas, self.ready_pre,
                               self.ready_act, i) for i in range(nbanks)]
        self.bus_free: int = 0          # end of the last burst
        self.bus_dir: int = _DIR_NONE
        self._last_read_end: int = 0
        self._last_write_end: int = 0
        self._last_rank: int = -1       # rank of the last burst (-1: none)
        # Timing-state generation: bumped by every committed access and
        # every state restore, i.e. whenever a previously computed
        # estimate could go stale.  estimate_burst_start memoizes on it,
        # so repeated probes of the same candidate between two commits
        # (schedulers re-rank whole queues per decision) compute once.
        self._gen: int = 0
        self._est_memo: dict[tuple[int, int, int, bool, int], int] = {}
        self._est_gen: int = -1
        # The counter group may be supplied by the owning device so the
        # same live object sits in its metrics registry.
        self.stats = stats if stats is not None else ChannelStats()

    # -- queries (no mutation) ------------------------------------------------

    def bank_index(self, rank: int, bank: int) -> int:
        return rank * self._bpr + bank

    def row_state(self, rank: int, bank: int, row: int) -> RowState:
        """Row-buffer state an access to (rank, bank, row) would see now."""
        orow = self.open_rows[rank * self._bpr + bank]
        if orow < 0:
            return RowState(ROW_CLOSED)
        return RowState(ROW_HIT) if orow == row else RowState(ROW_CONFLICT)

    def estimate_burst_start(self, rank: int, bank: int, row: int,
                             is_write: bool, now: int) -> int:
        """Earliest burst start for the access (pure query, for schedulers).

        Memoized per timing-state generation: between two commits the
        channel state is frozen, so equal probes return the cached time;
        any :meth:`issue` or :meth:`restore_state` invalidates the cache
        wholesale.  ``now`` is part of the key, so probes at different
        decision times never alias.
        """
        memo = self._est_memo
        if self._est_gen != self._gen:
            memo.clear()
            # Generation-keyed memo bookkeeping: observationally pure
            # (every estimate returns exactly what the uncached compute
            # would), just lazy invalidation of the cache itself.
            self._est_gen = self._gen  # dca-lint: disable=R4
        key = (rank, bank, row, is_write, now)
        start = memo.get(key)
        if start is None:
            memo[key] = start = self._estimate_uncached(rank, bank, row,
                                                        is_write, now)
        return start

    def _estimate_uncached(self, rank: int, bank: int, row: int,
                           is_write: bool, now: int) -> int:
        """Fidelity-specific estimate (overridden by the command model)."""
        idx = rank * self._bpr + bank
        orow = self.open_rows[idx]
        if orow == row:
            rc = self.ready_cas[idx]
            cas = now if now >= rc else rc
        elif orow < 0:
            ra = self.ready_act[idx]
            cas = (now if now >= ra else ra) + self._tRCD
        else:
            rp = self.ready_pre[idx]
            cas = (now if now >= rp else rp) + self._tRP + self._tRCD
        return self._bus_constrained_start(cas + self._tCAS, is_write, rank)

    def _bus_constrained_start(self, data_ready: int, is_write: bool,
                               rank: int = -1) -> int:
        """Fold bus-free time and turnaround penalties into a burst start.

        ``rank`` enables the rank-to-rank bus turnaround: when ``tCS``
        is configured and the burst targets a different rank than the
        previous burst on this channel, the bus needs a ``tCS`` gap
        (gem5's different-rank bus delay).  Pure — the estimate paths
        call this too, so it only *reads* ``_last_rank``.
        """
        bus_free = self.bus_free
        start = data_ready if data_ready >= bus_free else bus_free
        if is_write:
            if self.bus_dir == _DIR_READ:
                gated = self._last_read_end + self._tRTW
                if gated > start:
                    start = gated
        elif self.bus_dir == _DIR_WRITE:
            gated = self._last_write_end + self._tWTR
            if gated > start:
                start = gated
        if (self._tCS and rank >= 0 and self._last_rank >= 0
                and rank != self._last_rank):
            gated = bus_free + self._tCS
            if gated > start:
                start = gated
        return start

    # -- commit ---------------------------------------------------------------

    def issue(self, rank: int, bank: int, row: int, is_write: bool,
              now: int) -> tuple[int, int]:
        """Commit an access; returns ``(burst_start, burst_end)``.

        ``burst_end`` is when read data has fully returned / write data has
        been fully transferred — the completion time a request state machine
        should wait on.
        """
        idx = rank * self._bpr + bank
        orow = self.open_rows[idx]
        if orow == row:
            state = ROW_HIT
            rc = self.ready_cas[idx]
            cas = now if now >= rc else rc
        elif orow < 0:
            state = ROW_CLOSED
            ra = self.ready_act[idx]
            cas = (now if now >= ra else ra) + self._tRCD
        else:
            state = ROW_CONFLICT
            rp = self.ready_pre[idx]
            cas = (now if now >= rp else rp) + self._tRP + self._tRCD
        start, end = self._place_and_commit(idx, rank, row, cas, is_write,
                                            state)
        self._account_issue(state, end, is_write)
        return start, end

    def _place_and_commit(self, idx: int, rank: int, row: int, cas: int,
                          is_write: bool, state: int) -> tuple[int, int]:
        """Place the burst for an earliest-CAS plan and commit the bank.

        The one burst-placement rule both fidelities share: bus/turnaround
        constraints (direction *and* rank-to-rank) fold into the start,
        and the effective CAS is back-dated so bank bookkeeping
        (tRTP/tWR windows) lines up with the actual burst position on
        the bus.  Rank bookkeeping lives here — the only commit point —
        so the estimate paths stay pure.  ``state`` is the row state the
        caller classified *before* planning (Bank.commit's internal
        re-classification, inlined).
        """
        start = self._bus_constrained_start(cas + self._tCAS, is_write, rank)
        end = start + self._tBURST
        cas_time = start - self._tCAS
        if state != ROW_HIT:
            # We activated (and possibly precharged).  The ACT time is
            # bound by cas_time - tRCD; reconstruct it for tRAS accounting.
            self.act_times[idx] = cas_time - self._tRCD
            self.open_rows[idx] = row
            self.ready_cas[idx] = cas_time
        # CAS-to-CAS on the same row: back-to-back bursts are gated by the
        # channel bus, not the bank, in this model.
        pre_ok = self.act_times[idx] + self._tRAS
        alt = (end + self._tWR) if is_write else (cas_time + self._tRTP)
        if alt > pre_ok:
            pre_ok = alt
        ready_pre = self.ready_pre
        if pre_ok > ready_pre[idx]:
            ready_pre[idx] = pre_ok
        # Next ACT can only follow the next PRE; maintained when PRE happens
        # implicitly on a conflict.  Approximate by deriving from ready_pre.
        self.ready_act[idx] = ready_pre[idx] + self._tRP
        if self._last_rank >= 0 and rank != self._last_rank:
            self.stats.rank_switches += 1
        self._last_rank = rank
        return start, end

    def _account_issue(self, state: int, end: int, is_write: bool) -> None:
        """Bus/turnaround bookkeeping + row-state counters for one burst.

        Shared by every fidelity: the bus core and its statistics are what
        make substrate models comparable, so subclasses reuse this tail
        verbatim and only differ in how the burst start was derived.
        """
        self._gen += 1
        new_dir = _DIR_WRITE if is_write else _DIR_READ
        if self.bus_dir != _DIR_NONE and self.bus_dir != new_dir:
            self.stats.turnarounds += 1
        self.bus_dir = new_dir
        self.bus_free = end
        if is_write:
            self._last_write_end = end
        else:
            self._last_read_end = end
        self.stats.bus_busy_ps += self._tBURST

        # Row-state + access-type stats.
        s = self.stats
        if is_write:
            s.write_accesses += 1
            if state == ROW_HIT:
                s.write_row_hits += 1
            elif state == ROW_CLOSED:
                s.write_row_closed += 1
            else:
                s.write_row_conflicts += 1
        else:
            s.read_accesses += 1
            if state == ROW_HIT:
                s.read_row_hits += 1
            elif state == ROW_CLOSED:
                s.read_row_closed += 1
            else:
                s.read_row_conflicts += 1

    def reset_stats(self) -> None:
        self.stats.reset()

    # -- state capture (substrate protocol) -----------------------------------

    def capture_state(self) -> dict[str, Any]:
        """Value-only image of the complete timing state (not the stats).

        Comparable across independent copies — two channels with equal
        captures will time every future access identically.  Subclasses
        extend the dict with their own state under new keys.  Per-bank
        entries keep the historical :class:`~repro.dram.bank.Bank` tuple
        layout (``open_row`` as ``None`` when closed), so captures are
        interchangeable between the SoA store and the object reference
        model and pre-SoA snapshot files restore unchanged.
        """
        orows = self.open_rows
        acts = self.act_times
        cass = self.ready_cas
        pres = self.ready_pre
        racts = self.ready_act
        return {
            "bus": (self.bus_free, self.bus_dir,
                    self._last_read_end, self._last_write_end,
                    self._last_rank),
            "banks": [(orows[i] if orows[i] >= 0 else None, acts[i],
                       cass[i], pres[i], racts[i])
                      for i in range(self.nbanks)],
        }

    def restore_state(self, state: dict[str, Any]) -> None:
        """Adopt a :meth:`capture_state` image.

        Atomic: validation happens before any mutation, so a rejected
        image leaves the channel exactly as it was.  The columns are
        written element-wise in place, keeping every outstanding
        BankView/column reference live.
        """
        if len(state["banks"]) != self.nbanks:
            raise ValueError(
                f"bank count mismatch: captured {len(state['banks'])}, "
                f"channel has {self.nbanks}")
        (self.bus_free, self.bus_dir,
         self._last_read_end, self._last_write_end,
         self._last_rank) = state["bus"]
        orows = self.open_rows
        acts = self.act_times
        cass = self.ready_cas
        pres = self.ready_pre
        racts = self.ready_act
        for i, (orow, act, cas, pre, ract) in enumerate(state["banks"]):
            orows[i] = -1 if orow is None else orow
            acts[i] = act
            cass[i] = cas
            pres[i] = pre
            racts[i] = ract
        self._gen += 1
