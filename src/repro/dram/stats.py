"""Counters collected by the DRAM substrate.

The evaluation section of the paper reports three substrate-level metrics:

* **accesses per turnaround** (Figs. 14, 15) — read+write accesses divided
  by the number of bus direction switches;
* **row-buffer hit rate for reads** (Figs. 16, 17);
* bus busy time (used internally for sanity checks).

``ChannelStats`` tracks these per channel; :meth:`ChannelStats.merge`
aggregates across channels for reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class ChannelStats:
    """Per-channel substrate counters.  All counters are monotonically
    increasing; :meth:`reset` zeroes them after warm-up."""

    read_accesses: int = 0
    write_accesses: int = 0
    turnarounds: int = 0
    read_row_hits: int = 0
    read_row_closed: int = 0
    read_row_conflicts: int = 0
    write_row_hits: int = 0
    write_row_closed: int = 0
    write_row_conflicts: int = 0
    bus_busy_ps: int = 0

    @property
    def total_accesses(self) -> int:
        return self.read_accesses + self.write_accesses

    @property
    def accesses_per_turnaround(self) -> float:
        """Figs. 14/15 metric; the higher the better."""
        if self.turnarounds == 0:
            return float(self.total_accesses)
        return self.total_accesses / self.turnarounds

    @property
    def read_row_hit_rate(self) -> float:
        """Figs. 16/17 metric: fraction of read accesses hitting an open row."""
        total = self.read_row_hits + self.read_row_closed + self.read_row_conflicts
        if total == 0:
            return 0.0
        return self.read_row_hits / total

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, 0)

    def merge(self, other: "ChannelStats") -> "ChannelStats":
        """Return a new ChannelStats with summed counters."""
        out = ChannelStats()
        for f in fields(self):
            setattr(out, f.name, getattr(self, f.name) + getattr(other, f.name))
        return out

    @staticmethod
    def sum(stats: list["ChannelStats"]) -> "ChannelStats":
        out = ChannelStats()
        for s in stats:
            out = out.merge(s)
        return out
