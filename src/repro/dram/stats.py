"""Counters collected by the DRAM substrate.

The evaluation section of the paper reports three substrate-level metrics:

* **accesses per turnaround** (Figs. 14, 15) — read+write accesses divided
  by the number of bus direction switches;
* **row-buffer hit rate for reads** (Figs. 16, 17);
* bus busy time (used internally for sanity checks).

``ChannelStats`` tracks these per channel as a
:class:`repro.metrics.registry.MetricGroup`; the shared base supplies
``reset``/``merge``/``sum``/``snapshot``, and :class:`derived` metrics are
recomputed from counters on demand (so they survive aggregation).
"""

from __future__ import annotations

from repro.metrics.registry import MetricGroup, derived


class ChannelStats(MetricGroup):
    """Per-channel substrate counters.  All counters are monotonically
    increasing; :meth:`reset` zeroes them after warm-up."""

    COUNTERS = (
        "read_accesses",
        "write_accesses",
        "turnarounds",
        "read_row_hits",
        "read_row_closed",
        "read_row_conflicts",
        "write_row_hits",
        "write_row_closed",
        "write_row_conflicts",
        "bus_busy_ps",
        "rank_switches",   # bursts targeting a different rank than the last
    )

    @derived
    def total_accesses(self) -> int:
        return self.read_accesses + self.write_accesses

    @derived
    def accesses_per_turnaround(self) -> float:
        """Figs. 14/15 metric; the higher the better."""
        if self.turnarounds == 0:
            return float(self.total_accesses)
        return self.total_accesses / self.turnarounds

    @derived
    def read_row_hit_rate(self) -> float:
        """Figs. 16/17 metric: fraction of read accesses hitting an open row."""
        total = self.read_row_hits + self.read_row_closed + self.read_row_conflicts
        if total == 0:
            return 0.0
        return self.read_row_hits / total


class CommandChannelStats(ChannelStats):
    """Counters of the command-level substrate model.

    A strict superset of :class:`ChannelStats`: only channels built at
    ``fidelity="command"`` carry these, so burst-fidelity metric
    snapshots (and the golden pins over them) keep their exact key set.
    """

    COUNTERS = ChannelStats.COUNTERS + (
        "refreshes_issued",      # refresh cycles performed (per rank, summed)
        "refreshes_postponed",   # refreshes that started after their due time
        "faw_stalls",            # ACTs delayed by the four-ACT tFAW window
        "rrd_stalls",            # ACTs delayed by same-rank tRRD spacing
        "refresh_stalls",        # ACTs delayed by a tRFC rank blackout
        "policy_closes",         # rows auto-precharged by the page policy
    )

    @derived
    def refresh_postpone_rate(self) -> float:
        """Fraction of refreshes that could not start on time."""
        if self.refreshes_issued == 0:
            return 0.0
        return self.refreshes_postponed / self.refreshes_issued


class RankStats(MetricGroup):
    """Per-rank counters of the command-level substrate model.

    Command-fidelity channels with more than one rank publish one group
    per rank (``ch{i}_rank{j}`` in the device registry) so rank-level
    imbalance — activation pressure, refresh debt, throttling — is
    observable per rank, not just as a channel aggregate.  Single-rank
    channels publish none: the channel totals already *are* the rank,
    and the default metric tree keeps its exact key set (golden pins).
    """

    COUNTERS = (
        "acts",                  # row activations on this rank
        "refreshes_issued",
        "refreshes_postponed",
        "rrd_stalls",
        "faw_stalls",
        "refresh_stalls",
    )

    @derived
    def act_stall_rate(self) -> float:
        """Fraction of ACTs delayed by a rank-level constraint."""
        if self.acts == 0:
            return 0.0
        return (self.rrd_stalls + self.faw_stalls
                + self.refresh_stalls) / self.acts
