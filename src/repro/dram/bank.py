"""Per-bank DRAM state machine with open-page policy.

A bank tracks its open row and the earliest times the three command classes
may issue, composed from the timing parameters:

* ``ACT``  — constrained by tRP after the preceding PRE;
* ``PRE``  — constrained by tRAS after ACT, tRTP after a read CAS, and
  tWR after the last write burst;
* ``CAS``  — constrained by tRCD after ACT.

The controller model is access-granular ("first-ready" composition): when
the scheduler commits to an access at decision time ``t``, the bank computes
the earliest legal CAS given its row state, opening/closing rows as needed,
and the channel then places the data burst on the bus.  This collapses the
command-level pipeline the way controller-design studies typically do; all
compared designs share the identical substrate, so relative results are
unaffected by the collapse.
"""

from __future__ import annotations

from enum import IntEnum

from repro.config import DRAMTimings

#: Row-state constants (kept as plain ints for speed in hot paths).
ROW_HIT = 0
ROW_CLOSED = 1
ROW_CONFLICT = 2

#: The complete value state of one bank, as captured/restored:
#: (open_row, act_time, ready_cas, ready_pre, ready_act).
BankState = tuple[int | None, int, int, int, int]


class RowState(IntEnum):
    """Public row-state names, derived from the hot-path int constants.

    This is the single definition (``repro.dram.channel`` re-exports it);
    schedulers and the bank keep comparing plain ints, public query
    surfaces (``Channel.row_state``) wrap them in this enum.
    """

    HIT = ROW_HIT
    CLOSED = ROW_CLOSED
    CONFLICT = ROW_CONFLICT


class BankView:
    """Object view of one bank's slice of a channel's struct-of-arrays state.

    The channel stores bank timing state as five parallel ``list[int]``
    columns (see :class:`repro.dram.channel.Channel`); this proxy gives
    the naive reference selectors, tests and foreign code the historical
    per-bank object surface (``open_row`` / ``row_state`` / readiness
    times) over those columns.  Reads and writes go straight through to
    the shared lists, so a view is never stale.  ``open_row`` keeps the
    ``None``-when-closed convention (the columns use ``-1``).
    """

    __slots__ = ("_open", "_act", "_cas", "_pre", "_ract", "_idx")

    def __init__(self, open_rows: list[int], act_times: list[int],
                 ready_cas: list[int], ready_pre: list[int],
                 ready_act: list[int], idx: int):
        self._open = open_rows
        self._act = act_times
        self._cas = ready_cas
        self._pre = ready_pre
        self._ract = ready_act
        self._idx = idx

    @property
    def open_row(self) -> int | None:
        row = self._open[self._idx]
        return None if row < 0 else row

    @open_row.setter
    def open_row(self, row: int | None) -> None:
        self._open[self._idx] = -1 if row is None else row

    @property
    def act_time(self) -> int:
        return self._act[self._idx]

    @act_time.setter
    def act_time(self, value: int) -> None:
        self._act[self._idx] = value

    @property
    def ready_cas(self) -> int:
        return self._cas[self._idx]

    @ready_cas.setter
    def ready_cas(self, value: int) -> None:
        self._cas[self._idx] = value

    @property
    def ready_pre(self) -> int:
        return self._pre[self._idx]

    @ready_pre.setter
    def ready_pre(self, value: int) -> None:
        self._pre[self._idx] = value

    @property
    def ready_act(self) -> int:
        return self._ract[self._idx]

    @ready_act.setter
    def ready_act(self, value: int) -> None:
        self._ract[self._idx] = value

    def row_state(self, row: int) -> int:
        """Classify an access to ``row``: ROW_HIT / ROW_CLOSED / ROW_CONFLICT."""
        orow = self._open[self._idx]
        if orow < 0:
            return ROW_CLOSED
        return ROW_HIT if orow == row else ROW_CONFLICT

    def capture(self) -> BankState:
        """Value tuple of the bank's slice (same layout as Bank.capture)."""
        i = self._idx
        orow = self._open[i]
        return (None if orow < 0 else orow, self._act[i], self._cas[i],
                self._pre[i], self._ract[i])


class Bank:
    """One DRAM bank: open row + command readiness times (picoseconds)."""

    __slots__ = ("t", "open_row", "act_time", "ready_cas", "ready_pre",
                 "ready_act")

    def __init__(self, timings: DRAMTimings):
        self.t = timings
        self.open_row: int | None = None
        self.act_time: int = 0
        self.ready_cas: int = 0   # earliest CAS to the open row
        self.ready_pre: int = 0   # earliest PRE
        self.ready_act: int = 0   # earliest ACT (tRP after last PRE)

    def row_state(self, row: int) -> int:
        """Classify an access to ``row``: ROW_HIT / ROW_CLOSED / ROW_CONFLICT."""
        if self.open_row is None:
            return ROW_CLOSED
        return ROW_HIT if self.open_row == row else ROW_CONFLICT

    def earliest_cas(self, row: int, now: int) -> int:
        """Earliest legal CAS time for ``row`` if committed at ``now``.

        Pure query — does not mutate state.
        """
        state = self.row_state(row)
        if state == ROW_HIT:
            return max(now, self.ready_cas)
        if state == ROW_CLOSED:
            act = max(now, self.ready_act)
            return act + self.t.tRCD
        pre = max(now, self.ready_pre)
        act = pre + self.t.tRP
        return act + self.t.tRCD

    def commit(self, row: int, cas_time: int, is_write: bool,
               burst_end: int) -> None:
        """Commit an access whose CAS lands at ``cas_time``.

        The caller (channel) has already folded bus constraints into
        ``cas_time``; this method updates row state and readiness times.
        """
        state = self.row_state(row)
        if state != ROW_HIT:
            # We activated (and possibly precharged). The ACT time is bound
            # by cas_time - tRCD; reconstruct it for tRAS accounting.
            act = cas_time - self.t.tRCD
            self.act_time = act
            self.open_row = row
            self.ready_cas = act + self.t.tRCD
            if state == ROW_CONFLICT:
                # The PRE that preceded this ACT pushes the next ACT window.
                self.ready_act = act  # already consumed; next ACT gated via PRE below
        # CAS-to-CAS on the same row: back-to-back bursts are gated by the
        # channel bus, not the bank, in this model.
        if is_write:
            pre_ok = max(self.act_time + self.t.tRAS, burst_end + self.t.tWR)
        else:
            pre_ok = max(self.act_time + self.t.tRAS, cas_time + self.t.tRTP)
        if pre_ok > self.ready_pre:
            self.ready_pre = pre_ok
        # Next ACT can only follow the next PRE; maintained when PRE happens
        # implicitly on a conflict. Approximate by deriving from ready_pre.
        self.ready_act = self.ready_pre + self.t.tRP

    def precharge(self, now: int) -> None:
        """Explicit PRE (used by tests and close-page experiments)."""
        pre = max(now, self.ready_pre)
        self.open_row = None
        self.ready_act = pre + self.t.tRP

    def reset(self) -> None:
        """Return to the all-banks-closed power-up state at time 0."""
        self.open_row = None
        self.act_time = 0
        self.ready_cas = 0
        self.ready_pre = 0
        self.ready_act = 0

    # -- state capture (substrate protocol support) ---------------------------

    def capture(self) -> BankState:
        """Value tuple of the complete bank state (timings excluded)."""
        return (self.open_row, self.act_time, self.ready_cas,
                self.ready_pre, self.ready_act)

    def restore(self, state: BankState) -> None:
        """Adopt a :meth:`capture` tuple."""
        (self.open_row, self.act_time, self.ready_cas,
         self.ready_pre, self.ready_act) = state
