"""Address interleaving for a DRAM level (stacked cache or off-chip).

The paper (Table II) uses **RoBaRaChCo** interleaving: reading the physical
array address from most-significant to least-significant bits gives

    | row | bank | rank | channel | column | block offset |

i.e. consecutive blocks walk columns within one row of one bank, consecutive
rows rotate across channels first, then ranks, then banks.  This spreads a
sequential stream across channels at row granularity while keeping row-buffer
locality within a channel.

The bit-slicing is pluggable: an :class:`InterleavePolicy` names the
LSB-to-MSB order of the sub-row fields (channel / rank / bank), with the
column always lowest and the row always highest — so ``row_of`` and the
workload generators' row arithmetic are policy-independent.  Shipped
policies (``DRAMOrganization.interleave``, sweepable as e.g.
``org.interleave=robarachco,chxor``):

* ``robarachco`` — the default above;
* ``rorabachco`` — rank above bank (row : rank : bank : channel : column),
  so consecutive rows of one channel rotate banks before ranks: bank
  parallelism is exposed first, rank turnarounds amortise over longer
  streaks;
* ``chxor`` — RoBaRaChCo with the channel index XOR-folded with the low
  row bits (permutation channel hashing, self-inverse): strided streams
  that would camp on one channel scatter across all of them.

The optional **XOR permutation remapping** implements Zhang, Zhu & Zhang
(MICRO'00): the bank index is XORed with the low bits of the row index, so
two addresses that fall in the *same bank but different rows* (a row-buffer
conflict) are scattered to *different banks*.  The paper adds this scheme to
all controller designs in its Fig. 9 experiment because it mitigates
read-read conflicts (RRC) the same way it mitigates read-write conflicts in
conventional DRAM.  It is orthogonal to the interleave policy (it permutes
within the bank field, a policy permutes the fields themselves).
"""

from __future__ import annotations

from typing import NamedTuple

from repro.config import INTERLEAVE_POLICIES, DRAMOrganization


class DecodedAddress(NamedTuple):
    """A fully decoded DRAM coordinate.

    ``col`` is in units of cache blocks (64 B) within the row.
    ``global_bank`` is a flattened (channel, rank, bank) index usable as a
    key into per-bank controller state such as DCA's RRPC counters.
    """

    channel: int
    rank: int
    bank: int
    row: int
    col: int

    @property
    def global_bank(self) -> int:
        # Flattening is computed by AddressMapper.decode; stored here lazily
        # would cost a slot, so derive the common 1-rank case directly.
        raise AttributeError("use AddressMapper.global_bank(decoded)")


class InterleavePolicy(NamedTuple):
    """One address bit-slicing: which field owns which bits.

    ``field_order`` lists the sub-row fields from LSB to MSB (some
    permutation of ``"ch"``/``"ra"``/``"ba"``); the column field always
    sits below them and the row field always on top.  ``channel_xor``
    additionally XOR-folds the low row bits into the channel index
    (self-inverse, so encode/decode stay exact mirrors).
    """

    name: str
    field_order: tuple[str, str, str]
    channel_xor: bool = False


#: Shipped policies; the *names* are declared in
#: repro.config.INTERLEAVE_POLICIES so config validation never depends
#: on this module (a tuple, not a dict: module-level mutable state is
#: barred from the simulation packages — dca-lint R2).
INTERLEAVES: tuple[InterleavePolicy, ...] = (
    InterleavePolicy("robarachco", ("ch", "ra", "ba")),
    InterleavePolicy("rorabachco", ("ch", "ba", "ra")),
    InterleavePolicy("chxor", ("ch", "ra", "ba"), channel_xor=True),
)


def interleave_policy(name: str) -> InterleavePolicy:
    """Look up a policy by its config name (case-insensitive)."""
    wanted = name.lower()
    for policy in INTERLEAVES:
        if policy.name == wanted:
            return policy
    raise ValueError(
        f"unknown interleave policy {name!r}; "
        f"known: {tuple(p.name for p in INTERLEAVES)}")


class AddressMapper:
    """Maps byte addresses in a DRAM array to (channel, rank, bank, row, col).

    Parameters
    ----------
    org:
        DRAM geometry (channels/ranks/banks/row size/block size) plus the
        interleave policy name; geometry validity is enforced by
        :class:`~repro.config.DRAMOrganization` itself at construction.
    xor_remap:
        Enable the permutation-based bank remapping (Zhang et al.).
    """

    __slots__ = ("org", "xor_remap", "policy",
                 "_block_bits", "_col_bits", "_ch_bits", "_ra_bits",
                 "_ba_bits", "_col_mask", "_ch_mask", "_ra_mask", "_ba_mask",
                 "_col_shift", "_ch_shift", "_ra_shift", "_ba_shift",
                 "_row_shift", "_ch_xor")

    def __init__(self, org: DRAMOrganization, xor_remap: bool = False):
        self.org = org
        self.xor_remap = xor_remap
        self.policy = interleave_policy(org.interleave)

        self._block_bits = (org.block_bytes - 1).bit_length()
        self._col_bits = (org.blocks_per_row - 1).bit_length()
        self._ch_bits = (org.channels - 1).bit_length()
        self._ra_bits = (org.ranks_per_channel - 1).bit_length()
        self._ba_bits = (org.banks_per_rank - 1).bit_length()

        self._col_mask = org.blocks_per_row - 1
        self._ch_mask = org.channels - 1
        self._ra_mask = org.ranks_per_channel - 1
        self._ba_mask = org.banks_per_rank - 1

        # Bit offsets from LSB: column lowest, then the policy's field
        # order, row on top.  Decode/encode stay straight-line integer
        # arithmetic — the policy only chooses the precomputed shifts.
        self._col_shift = self._block_bits
        shift = self._col_shift + self._col_bits
        bits = {"ch": self._ch_bits, "ra": self._ra_bits,
                "ba": self._ba_bits}
        shifts = {}
        for fld in self.policy.field_order:
            shifts[fld] = shift
            shift += bits[fld]
        self._ch_shift = shifts["ch"]
        self._ra_shift = shifts["ra"]
        self._ba_shift = shifts["ba"]
        self._row_shift = shift
        self._ch_xor = self.policy.channel_xor

    def decode(self, addr: int) -> DecodedAddress:
        """Decode a byte address into DRAM coordinates."""
        if addr < 0:
            raise ValueError(f"negative address: {addr}")
        col = (addr >> self._col_shift) & self._col_mask
        channel = (addr >> self._ch_shift) & self._ch_mask
        rank = (addr >> self._ra_shift) & self._ra_mask
        bank = (addr >> self._ba_shift) & self._ba_mask
        row = addr >> self._row_shift
        if self._ch_xor:
            channel ^= row & self._ch_mask
        if self.xor_remap:
            bank ^= row & self._ba_mask
        return DecodedAddress(channel, rank, bank, row, col)

    def encode(self, d: DecodedAddress) -> int:
        """Inverse of :meth:`decode` (useful in tests; bijective per channel)."""
        bank = d.bank
        if self.xor_remap:
            bank ^= d.row & self._ba_mask
        channel = d.channel
        if self._ch_xor:
            channel ^= d.row & self._ch_mask
        return ((d.row << self._row_shift)
                | (bank << self._ba_shift)
                | (d.rank << self._ra_shift)
                | (channel << self._ch_shift)
                | (d.col << self._col_shift))

    def global_bank(self, d: DecodedAddress) -> int:
        """Flatten (channel, rank, bank) to one index in [0, total_banks)."""
        per_ch = self.org.ranks_per_channel * self.org.banks_per_rank
        return d.channel * per_ch + d.rank * self.org.banks_per_rank + d.bank

    def row_of(self, addr: int) -> int:
        """Fast row extraction without building a tuple."""
        return addr >> self._row_shift

    @property
    def row_bits_start(self) -> int:
        """LSB position of the row field (for workload generators)."""
        return self._row_shift


# The two name surfaces must agree: config validates spellings, this
# module implements them.  Checked at import so they cannot drift.
assert tuple(p.name for p in INTERLEAVES) == INTERLEAVE_POLICIES
