"""Address interleaving for the stacked DRAM array.

The paper (Table II) uses **RoBaRaChCo** interleaving: reading the physical
array address from most-significant to least-significant bits gives

    | row | bank | rank | channel | column | block offset |

i.e. consecutive blocks walk columns within one row of one bank, consecutive
rows rotate across channels first, then ranks, then banks.  This spreads a
sequential stream across channels at row granularity while keeping row-buffer
locality within a channel.

The optional **XOR permutation remapping** implements Zhang, Zhu & Zhang
(MICRO'00): the bank index is XORed with the low bits of the row index, so
two addresses that fall in the *same bank but different rows* (a row-buffer
conflict) are scattered to *different banks*.  The paper adds this scheme to
all controller designs in its Fig. 9 experiment because it mitigates
read-read conflicts (RRC) the same way it mitigates read-write conflicts in
conventional DRAM.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.config import DRAMOrganization


class DecodedAddress(NamedTuple):
    """A fully decoded DRAM coordinate.

    ``col`` is in units of cache blocks (64 B) within the row.
    ``global_bank`` is a flattened (channel, rank, bank) index usable as a
    key into per-bank controller state such as DCA's RRPC counters.
    """

    channel: int
    rank: int
    bank: int
    row: int
    col: int

    @property
    def global_bank(self) -> int:
        # Flattening is computed by AddressMapper.decode; stored here lazily
        # would cost a slot, so derive the common 1-rank case directly.
        raise AttributeError("use AddressMapper.global_bank(decoded)")


class AddressMapper:
    """Maps byte addresses in the DRAM array to (channel, rank, bank, row, col).

    Parameters
    ----------
    org:
        DRAM geometry (channels/ranks/banks/row size/block size).
    xor_remap:
        Enable the permutation-based bank remapping (Zhang et al.).
    """

    __slots__ = ("org", "xor_remap",
                 "_block_bits", "_col_bits", "_ch_bits", "_ra_bits",
                 "_ba_bits", "_col_mask", "_ch_mask", "_ra_mask", "_ba_mask",
                 "_col_shift", "_ch_shift", "_ra_shift", "_ba_shift",
                 "_row_shift")

    def __init__(self, org: DRAMOrganization, xor_remap: bool = False):
        if org.channels & (org.channels - 1):
            raise ValueError("channel count must be a power of two")
        if org.banks_per_rank & (org.banks_per_rank - 1):
            raise ValueError("bank count must be a power of two")
        if org.ranks_per_channel & (org.ranks_per_channel - 1):
            raise ValueError("rank count must be a power of two")
        self.org = org
        self.xor_remap = xor_remap

        self._block_bits = (org.block_bytes - 1).bit_length()
        self._col_bits = (org.blocks_per_row - 1).bit_length()
        self._ch_bits = (org.channels - 1).bit_length()
        self._ra_bits = (org.ranks_per_channel - 1).bit_length()
        self._ba_bits = (org.banks_per_rank - 1).bit_length()

        self._col_mask = org.blocks_per_row - 1
        self._ch_mask = org.channels - 1
        self._ra_mask = org.ranks_per_channel - 1
        self._ba_mask = org.banks_per_rank - 1

        # Bit offsets from LSB, RoBaRaChCo order (Co lowest, Ro highest).
        self._col_shift = self._block_bits
        self._ch_shift = self._col_shift + self._col_bits
        self._ra_shift = self._ch_shift + self._ch_bits
        self._ba_shift = self._ra_shift + self._ra_bits
        self._row_shift = self._ba_shift + self._ba_bits

    def decode(self, addr: int) -> DecodedAddress:
        """Decode a byte address into DRAM coordinates."""
        if addr < 0:
            raise ValueError(f"negative address: {addr}")
        col = (addr >> self._col_shift) & self._col_mask
        channel = (addr >> self._ch_shift) & self._ch_mask
        rank = (addr >> self._ra_shift) & self._ra_mask
        bank = (addr >> self._ba_shift) & self._ba_mask
        row = addr >> self._row_shift
        if self.xor_remap:
            bank ^= row & self._ba_mask
        return DecodedAddress(channel, rank, bank, row, col)

    def encode(self, d: DecodedAddress) -> int:
        """Inverse of :meth:`decode` (useful in tests; bijective per channel)."""
        bank = d.bank
        if self.xor_remap:
            bank ^= d.row & self._ba_mask
        return ((d.row << self._row_shift)
                | (bank << self._ba_shift)
                | (d.rank << self._ra_shift)
                | (d.channel << self._ch_shift)
                | (d.col << self._col_shift))

    def global_bank(self, d: DecodedAddress) -> int:
        """Flatten (channel, rank, bank) to one index in [0, total_banks)."""
        per_ch = self.org.ranks_per_channel * self.org.banks_per_rank
        return d.channel * per_ch + d.rank * self.org.banks_per_rank + d.bank

    def row_of(self, addr: int) -> int:
        """Fast row extraction without building a tuple."""
        return addr >> self._row_shift

    @property
    def row_bits_start(self) -> int:
        """LSB position of the row field (for workload generators)."""
        return self._row_shift
