"""Simulation engine, core model, and full-system wiring.

``System`` is exported lazily: :mod:`repro.sim.system` imports the
controller package, which imports the memory package, which imports the
engine — loading it eagerly here would close an import cycle.
"""

from repro.sim.engine import Event, HeapSimulator, Simulator, make_simulator

__all__ = [
    "Event",
    "HeapSimulator",
    "Simulator",
    "make_simulator",
    "Core",
    "System",
    "SystemResult",
]


def __getattr__(name: str) -> object:
    if name in ("System", "SystemResult"):
        from repro.sim import system

        return getattr(system, name)
    if name == "Core":
        from repro.sim.cpu import Core

        return Core
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
