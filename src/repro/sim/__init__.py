"""Simulation engine, core model, and full-system wiring.

``System`` is exported lazily: :mod:`repro.sim.system` imports the
controller package, which imports the memory package, which imports the
engine — loading it eagerly here would close an import cycle.
"""

from repro.sim.engine import Event, Simulator

__all__ = ["Event", "Simulator", "Core", "System", "SystemResult"]


def __getattr__(name):
    if name in ("System", "SystemResult"):
        from repro.sim import system

        return getattr(system, name)
    if name == "Core":
        from repro.sim.cpu import Core

        return Core
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
