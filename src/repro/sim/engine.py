"""Discrete-event simulation engine.

A single global integer-picosecond timeline driven by a binary heap of
events.  Events are ``(time, seq, callback, arg)`` tuples; ``seq`` breaks
ties deterministically in insertion order, which makes every simulation
bit-reproducible for a given seed.

The engine deliberately has no notion of "processes" or coroutines: the
memory system is naturally callback-shaped (an access completes -> the
request state machine advances -> maybe new accesses enqueue -> maybe the
scheduler issues), and plain callbacks are both the fastest and the
simplest representation in CPython.

Cancellation is O(1): a cancelled event stays in the heap (removing an
arbitrary heap element is O(n)) but is counted, and once cancelled events
exceed half the heap the whole heap is compacted in one O(n) pass — so
cancelled events can never accumulate unboundedly, and ``pending()`` is a
counter read instead of a heap scan.  Compaction preserves pop order
exactly: event ordering is the total order ``(time, seq)``, which
re-heapifying cannot change.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

#: Compact only beyond this heap size (tiny heaps aren't worth the pass).
_COMPACT_MIN = 64


class Event:
    """A cancellable scheduled callback."""

    __slots__ = ("time", "seq", "fn", "arg", "cancelled", "_sim")

    def __init__(self, time: int, seq: int, fn: Callable, arg: Any,
                 sim: "Optional[Simulator]" = None):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.arg = arg
        self.cancelled = False
        self._sim = sim

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def cancel(self) -> None:
        """Mark the event dead; it will be skipped when popped.

        Safe to call repeatedly and after the event has already run
        (a no-op then — ``_sim`` is cleared once the event leaves the
        heap, so the live/cancelled bookkeeping can't be corrupted).
        """
        if self.cancelled:
            return
        sim = self._sim
        if sim is None:
            return
        self.cancelled = True
        self._sim = None
        sim._live -= 1
        sim._cancelled += 1
        sim._maybe_compact()


class Simulator:
    """The event loop.  All model components share one instance.

    Attributes
    ----------
    now:
        Current simulation time in picoseconds.  Monotonically
        non-decreasing across callback invocations.
    """

    __slots__ = ("now", "_heap", "_seq", "_events_run", "_live", "_cancelled",
                 "_stop_requested")

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: list[Event] = []
        self._seq: int = 0
        self._events_run: int = 0
        self._live: int = 0        # scheduled and not yet run/cancelled
        self._cancelled: int = 0   # cancelled but still sitting in the heap
        self._stop_requested: bool = False

    def stop(self) -> None:
        """Request an exact stop: the loop exits after the current callback.

        Callable from inside an event callback (the usual case: a model
        component detects its termination condition).  Unlike ``drain``'s
        periodic predicate, the stopping point is a precise *event*, so
        the end state cannot depend on how callers sliced the event loop
        — the determinism the snapshot layer's bit-identity invariant
        rests on.  The request is consumed by the loop that honours it.
        """
        self._stop_requested = True

    def at(self, time: int, fn: Callable, arg: Any = None) -> Event:
        """Schedule ``fn(arg)`` at absolute time ``time`` (>= now)."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        ev = Event(time, self._seq, fn, arg, self)
        self._seq += 1
        heapq.heappush(self._heap, ev)
        self._live += 1
        return ev

    def after(self, delay: int, fn: Callable, arg: Any = None) -> Event:
        """Schedule ``fn(arg)`` ``delay`` picoseconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.at(self.now + delay, fn, arg)

    def pending(self) -> int:
        """Number of live events in the queue (O(1))."""
        return self._live

    def _maybe_compact(self) -> None:
        """Drop cancelled events once they dominate the heap (O(n), rare)."""
        heap = self._heap
        if len(heap) >= _COMPACT_MIN and self._cancelled * 2 > len(heap):
            # In place: run()/drain() hold a local alias to this list.
            heap[:] = [e for e in heap if not e.cancelled]
            heapq.heapify(heap)
            self._cancelled = 0

    def _discard_cancelled(self) -> None:
        """Bookkeeping for a cancelled event leaving the heap."""
        self._cancelled -= 1

    @property
    def events_run(self) -> int:
        """Total callbacks executed so far (for progress reporting)."""
        return self._events_run

    def signature(self) -> dict:
        """Comparable digest of the engine state (snapshot test hook).

        Two simulators with equal signatures hold the same clock, the
        same counters and the same scheduled work: every heap entry is
        summarised as ``(time, seq, cancelled, callback qualname, arg
        kind)``.  The heap list order is part of the signature — a
        faithful state copy preserves it verbatim, and pop order is fully
        determined by ``(time, seq)`` anyway.  Callbacks are named, not
        identity-compared, so signatures of *independent* simulations
        (original vs. restored-from-snapshot) can be equated.
        """
        def arg_kind(arg: Any) -> str:
            if arg is None or isinstance(arg, (int, str)):
                return repr(arg)
            return type(arg).__name__

        return {
            "now": self.now,
            "seq": self._seq,
            "events_run": self._events_run,
            "live": self._live,
            "cancelled": self._cancelled,
            "heap": [(e.time, e.seq, e.cancelled,
                      getattr(e.fn, "__qualname__", repr(e.fn)),
                      arg_kind(e.arg))
                     for e in self._heap],
        }

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run the event loop.

        Parameters
        ----------
        until:
            Stop once the next event would be strictly after this time
            (the clock is left at ``until``).
        max_events:
            Safety valve for tests: stop after this many callbacks.
            ``0`` executes no events at all (``None`` means unlimited).

        Returns
        -------
        int
            The simulation time when the loop stopped.
        """
        heap = self._heap
        budget = max_events if max_events is not None else -1
        while heap:
            if budget == 0:      # max_events=0 means "run zero events"
                break
            ev = heap[0]
            if ev.cancelled:
                heapq.heappop(heap)
                self._discard_cancelled()
                continue
            if until is not None and ev.time > until:
                self.now = until
                return self.now
            heapq.heappop(heap)
            ev._sim = None       # out of the heap: late cancel() is a no-op
            self._live -= 1
            self.now = ev.time
            self._events_run += 1
            ev.fn(ev.arg)
            if self._stop_requested:
                self._stop_requested = False
                return self.now
            if budget > 0:
                budget -= 1
        if until is not None and self.now < until:
            self.now = until
        return self.now

    def drain(self, fn: Callable[[], bool], check_every: int = 4096) -> int:
        """Run until ``fn()`` returns True, checking every ``check_every`` events.

        Used by the system harness to stop when all cores have retired
        their instruction budgets without polling on every event.  A
        callback calling :meth:`stop` ends the drain at that exact event
        (and a stop requested *before* the drain ends it before any event
        runs) — the periodic predicate remains as the fallback for
        components that don't signal exactly.
        """
        heap = self._heap
        counter = 0
        if self._stop_requested:
            self._stop_requested = False
            return self.now
        while heap:
            ev = heapq.heappop(heap)
            if ev.cancelled:
                self._discard_cancelled()
                continue
            ev._sim = None       # out of the heap: late cancel() is a no-op
            self._live -= 1
            self.now = ev.time
            self._events_run += 1
            ev.fn(ev.arg)
            if self._stop_requested:
                self._stop_requested = False
                break
            counter += 1
            if counter >= check_every:
                counter = 0
                if fn():
                    break
        return self.now
