"""Discrete-event simulation engine.

A single global integer-picosecond timeline.  Events are ``(time, seq,
callback, arg)``; ``seq`` breaks ties deterministically in insertion
order, which makes every simulation bit-reproducible for a given seed.

Two engines implement the same contract:

* :class:`Simulator` — the production engine: a **calendar queue**.  The
  near future is a ring of power-of-two-width picosecond buckets (sized
  from the DRAM clock, see ``DRAMTimings.tCK``); events beyond the ring's
  horizon (refresh, timeouts) sit in a small overflow heap and migrate
  into the ring as the clock approaches them.  Scheduling is an O(1)
  list append, and the run loop drains one bucket at a time into a
  sorted *stage*, dispatching all events that share a timestamp back to
  back without touching any priority structure.  ``Event`` objects are
  recycled through a freelist; recycling is refcount-gated so an event
  whose handle the caller kept (to ``cancel()`` it later) is never
  reused out from under that handle.

* :class:`HeapSimulator` — the original binary-heap engine, kept
  verbatim as the behavioural reference.  The property suite
  (tests/test_engine_calendar.py) runs both engines in lockstep on
  randomized schedule/cancel/run traces and asserts identical
  ``(now, events_run, pending, callback order)`` at every step; the
  perf harness times one against the other.

Pop order is identical by construction: the total order is ``(time,
seq)``.  Every ring bucket covers a disjoint time interval, buckets are
served in interval order, and each bucket is sorted by ``(time, seq)``
when staged; the overflow heap only ever holds events strictly beyond
every ring event, and same-timestamp events inserted *during* a batch
carry larger ``seq`` than everything already staged, so ordered
insertion into the live stage preserves the total order exactly.

The engine deliberately has no notion of "processes" or coroutines: the
memory system is naturally callback-shaped (an access completes -> the
request state machine advances -> maybe new accesses enqueue -> maybe
the scheduler issues), and plain callbacks are both the fastest and the
simplest representation in CPython.

Cancellation is O(1): a cancelled event stays where it is (removing an
arbitrary element is O(n)) but is counted, and once cancelled events
exceed half the queue the structures are compacted in one O(n) pass —
so cancelled events can never accumulate unboundedly, and ``pending()``
is a counter read instead of a scan.  Compaction preserves pop order
exactly: it only removes dead events, never reorders live ones.
"""

from __future__ import annotations

import copy
import heapq
from bisect import bisect_left, insort
from operator import attrgetter
from sys import getrefcount
from typing import Any, Callable, Optional, Union

#: Compact only beyond this queue size (tiny queues aren't worth the pass).
_COMPACT_MIN = 64

#: Freelist bound: recycled Event objects beyond this are left to the GC.
_POOL_MAX = 4096

#: Default calendar geometry: 1024 ps buckets (one DRAM clock rounded up
#: to a power of two) x 512 buckets = a ~0.5 us near-future window; DRAM
#: bank/bus events land in the ring, refresh-interval-scale events
#: (tREFI ~ 3.9 us) in the overflow heap.
DEFAULT_BUCKET_PS = 1024
DEFAULT_NBUCKETS = 512

#: Engine kinds accepted by :func:`make_simulator`.
ENGINES = ("calendar", "heap")

#: Engine chosen when ``make_simulator(None)`` is called (i.e. what
#: ``System`` builds by default).  The perf harness flips this to "heap"
#: to time the old engine through the identical code path.
DEFAULT_ENGINE = "calendar"

_TIME_SEQ = attrgetter("time", "seq")
_TIME = attrgetter("time")


class Event:
    """A cancellable scheduled callback."""

    __slots__ = ("time", "seq", "fn", "arg", "cancelled", "_sim")

    # ``fn``/``arg`` are Any, not Optional[...]: the freelist nulls them
    # on recycle, and precise types would force a None-check on the
    # hottest line in the engine (``ev.fn(ev.arg)``).
    time: int
    seq: int
    fn: Any
    arg: Any
    cancelled: bool
    _sim: Simulator | HeapSimulator | None

    def __init__(self, time: int, seq: int, fn: Callable[[Any], Any],
                 arg: Any = None,
                 sim: Simulator | HeapSimulator | None = None):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.arg = arg
        self.cancelled = False
        self._sim = sim

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def cancel(self) -> None:
        """Mark the event dead; it will be skipped when popped.

        Safe to call repeatedly and after the event has already run
        (a no-op then — ``_sim`` is cleared once the event leaves the
        queue, so the live/cancelled bookkeeping can't be corrupted).
        Events the caller never kept a handle to may be recycled through
        the freelist after running; an event that *was* kept alive by a
        handle is never recycled (recycling is refcount-gated), so this
        no-op guarantee survives pooling.
        """
        if self.cancelled:
            return
        sim = self._sim
        if sim is None:
            return
        self.cancelled = True
        self._sim = None
        sim._live -= 1
        sim._cancelled += 1
        sim._maybe_compact()


def _arg_kind(arg: Any) -> str:
    if arg is None or isinstance(arg, (int, str)):
        return repr(arg)
    return type(arg).__name__


class Simulator:
    """The event loop: calendar-queue engine.  All components share one.

    Attributes
    ----------
    now:
        Current simulation time in picoseconds.  Monotonically
        non-decreasing across callback invocations.

    Parameters
    ----------
    bucket_ps:
        Target ring-bucket width in picoseconds; rounded up to a power
        of two.  ``System`` sizes this from ``DRAMTimings.tCK`` so one
        bucket holds roughly one DRAM clock of events.
    nbuckets:
        Ring length (rounded up to a power of two).  ``bucket * count``
        is the near-future horizon; events beyond it go to the overflow
        heap and migrate in as the clock advances.
    """

    __slots__ = ("now", "_seq", "_events_run", "_live", "_cancelled",
                 "_stop_requested", "_shift", "_nbuckets", "_mask",
                 "_buckets", "_occ", "_overflow", "_cursor_vb",
                 "_ring_count", "_size", "_stage", "_stage_pos",
                 "_stage_vb", "_pool")

    def __init__(self, bucket_ps: int = DEFAULT_BUCKET_PS,
                 nbuckets: int = DEFAULT_NBUCKETS) -> None:
        if bucket_ps < 1:
            raise ValueError(f"bucket_ps must be >= 1, got {bucket_ps!r}")
        if nbuckets < 2:
            raise ValueError(f"nbuckets must be >= 2, got {nbuckets!r}")
        self.now: int = 0
        self._seq: int = 0
        self._events_run: int = 0
        self._live: int = 0        # scheduled and not yet run/cancelled
        self._cancelled: int = 0   # cancelled but still sitting in the queue
        self._stop_requested: bool = False
        self._shift = (bucket_ps - 1).bit_length()
        nb = 1 << (nbuckets - 1).bit_length()
        self._nbuckets = nb
        self._mask = nb - 1
        self._buckets: list[list[Event]] = [[] for _ in range(nb)]
        #: occupancy bitmap: bit i set iff ``_buckets[i]`` is non-empty.
        #: Finding the next non-empty bucket is then two C bigint ops
        #: (shift + lowest-set-bit) instead of a Python scan over empty
        #: slots — the ring stays O(1) even when events are sparse.
        self._occ = 0
        self._overflow: list[Event] = []
        #: lower bound on the virtual bucket (time >> shift) of every
        #: ring event; scans for the next non-empty bucket start here
        self._cursor_vb = 0
        self._ring_count = 0   # events sitting in ring buckets
        self._size = 0         # all events held (ring + overflow + stage)
        #: the bucket currently being dispatched, sorted by (time, seq);
        #: always flushed back before run()/drain() return.  Elements are
        #: ``Event | None`` (dispatched slots are nulled for the refcount
        #: gate); typed Any so the hot loop needs no narrowing.
        self._stage: Optional[list[Any]] = None
        self._stage_pos = 0
        self._stage_vb = -1
        self._pool: list[Event] = []   # Event freelist (never snapshotted)

    # -- scheduling --------------------------------------------------------------

    def stop(self) -> None:
        """Request an exact stop: the loop exits after the current callback.

        Callable from inside an event callback (the usual case: a model
        component detects its termination condition).  Unlike ``drain``'s
        periodic predicate, the stopping point is a precise *event*, so
        the end state cannot depend on how callers sliced the event loop
        — the determinism the snapshot layer's bit-identity invariant
        rests on.  The request is consumed by the loop that honours it.
        """
        self._stop_requested = True

    def at(self, time: int, fn: Callable[[Any], Any], arg: Any = None) -> Event:
        """Schedule ``fn(arg)`` at absolute time ``time`` (>= now)."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        seq = self._seq
        self._seq = seq + 1
        pool = self._pool
        if pool:
            ev = pool.pop()
            ev.time = time
            ev.seq = seq
            ev.fn = fn
            ev.arg = arg
            ev.cancelled = False
            ev._sim = self
        else:
            ev = Event(time, seq, fn, arg, self)
        self._live += 1
        self._size += 1
        vb = time >> self._shift
        if vb == self._stage_vb:
            # Lands in the bucket being dispatched right now: ordered
            # insert into the not-yet-dispatched suffix of the stage.
            # Correct because (time, seq) of a new event always exceeds
            # every already-dispatched entry (time >= now, fresh seq).
            insort(self._stage, ev, lo=self._stage_pos)
        elif vb - (self.now >> self._shift) < self._nbuckets:
            i = vb & self._mask
            slot = self._buckets[i]
            if not slot:
                self._occ |= 1 << i
            slot.append(ev)
            self._ring_count += 1
            if vb < self._cursor_vb:
                self._cursor_vb = vb
        else:
            heapq.heappush(self._overflow, ev)
        return ev

    def after(self, delay: int, fn: Callable[[Any], Any], arg: Any = None) -> Event:
        """Schedule ``fn(arg)`` ``delay`` picoseconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.at(self.now + delay, fn, arg)

    def pending(self) -> int:
        """Number of live events in the queue (O(1))."""
        return self._live

    @property
    def events_run(self) -> int:
        """Total callbacks executed so far (for progress reporting)."""
        return self._events_run

    # -- cancellation bookkeeping ------------------------------------------------

    def _maybe_compact(self) -> None:
        """Drop cancelled events once they dominate the queue (O(n), rare).

        Only the ring buckets and the overflow heap are rebuilt — never
        the active stage, whose list the dispatch loop holds locally;
        staged corpses are skipped (and discounted) at dispatch instead.
        """
        if self._size < _COMPACT_MIN or self._cancelled * 2 <= self._size:
            return
        removed = 0
        occ = 0
        for i, slot in enumerate(self._buckets):
            if slot:
                kept = [e for e in slot if not e.cancelled]
                if len(kept) != len(slot):
                    removed += len(slot) - len(kept)
                    slot[:] = kept
                if kept:
                    occ |= 1 << i
        self._occ = occ
        self._ring_count -= removed
        of = self._overflow
        kept = [e for e in of if not e.cancelled]
        if len(kept) != len(of):
            removed += len(of) - len(kept)
            of[:] = kept
            heapq.heapify(of)
        self._size -= removed
        self._cancelled -= removed

    # -- state digest ------------------------------------------------------------

    def signature(self) -> dict[str, Any]:
        """Comparable digest of the engine state (snapshot test hook).

        Two simulators with equal signatures hold the same clock, the
        same counters and the same scheduled work: every pending event
        is summarised as ``(time, seq, cancelled, callback qualname,
        arg kind)``, enumerated in the canonical ``(time, seq)`` order
        (bucket layout is an implementation detail a faithful copy need
        not share bit-for-bit — pop order is fully determined by
        ``(time, seq)``).  Callbacks are named, not identity-compared,
        so signatures of *independent* simulations (original vs.
        restored-from-snapshot) can be equated.
        """
        events: list[Event] = []
        for slot in self._buckets:
            events.extend(slot)
        events.extend(self._overflow)
        if self._stage is not None:            # defensive: flushed between runs
            events.extend(self._stage[self._stage_pos:])
        events.sort(key=_TIME_SEQ)
        return {
            "now": self.now,
            "seq": self._seq,
            "events_run": self._events_run,
            "live": self._live,
            "cancelled": self._cancelled,
            "heap": [(e.time, e.seq, e.cancelled,
                      getattr(e.fn, "__qualname__", repr(e.fn)),
                      _arg_kind(e.arg))
                     for e in events],
        }

    # -- snapshot hooks ----------------------------------------------------------
    #
    # The freelist is a pure allocation cache: it must never travel with
    # a snapshot (a restored simulation sharing pooled Event objects
    # with its donor would alias recycled events across simulations).
    # Both the deepcopy path (in-process restore) and the pickle path
    # (on-disk snapshots) drop it; the copy starts with an empty pool.

    def __deepcopy__(self, memo: dict[int, Any]) -> "Simulator":
        cls = type(self)
        new = cls.__new__(cls)
        memo[id(self)] = new
        for name in Simulator.__slots__:
            if name == "_pool":
                new._pool = []
            else:
                # Reflective copy over declared slots only; resolves
                # through the native type's setattro at runtime.
                setattr(new, name,  # dca-lint: disable=R7
                        copy.deepcopy(getattr(self, name), memo))
        return new

    def __getstate__(self) -> dict[str, Any]:
        return {name: getattr(self, name)
                for name in Simulator.__slots__ if name != "_pool"}

    def __setstate__(self, state: dict[str, Any]) -> None:
        for name, value in state.items():
            # Same reflective-slot pattern as __deepcopy__ above.
            setattr(self, name, value)  # dca-lint: disable=R7
        self._pool = []

    # -- bucket machinery --------------------------------------------------------

    def _recompute_cursor(self) -> None:
        """Reset the scan cursor to the true earliest ring event.

        Only reachable after the clock jumped past pending events (the
        ``until``+``max_events`` interaction can leave the clock beyond
        undispatched work), which can lap the ring; never on the hot
        path.
        """
        m: int | None = None
        for slot in self._buckets:
            for e in slot:
                if m is None or e.time < m:
                    m = e.time
        self._cursor_vb = (m >> self._shift) if m is not None \
            else (self.now >> self._shift)

    def _acquire_stage(self) -> Optional[list[Any]]:
        """Detach the next non-empty bucket as a sorted dispatch stage.

        Returns the stage list (also stored in ``_stage``) or None when
        no events are held anywhere.  The stage holds exactly the events
        of one virtual bucket in ``(time, seq)`` order — or, when the
        ring is empty, the run of earliest equal-time overflow events.
        """
        shift = self._shift
        mask = self._mask
        nbuckets = self._nbuckets
        buckets = self._buckets
        overflow = self._overflow
        heappop = heapq.heappop
        # Migrate far-future events whose time has come into the ring.
        if overflow and (overflow[0].time >> shift) < (self.now >> shift) + nbuckets:
            horizon = (self.now >> shift) + nbuckets
            n = 0
            occ = self._occ
            cursor = self._cursor_vb
            while overflow and (overflow[0].time >> shift) < horizon:
                ev = heappop(overflow)
                vb = ev.time >> shift
                i = vb & mask
                occ |= 1 << i
                buckets[i].append(ev)
                if vb < cursor:
                    cursor = vb
                n += 1
            self._occ = occ
            self._cursor_vb = cursor
            self._ring_count += n
        if self._ring_count:
            cursor = self._cursor_vb
            misses = 0
            while True:
                # Next non-empty bucket at or after the cursor, via the
                # occupancy bitmap: shift it down to the cursor's slot
                # and take the lowest set bit (both C bigint ops), with
                # one wrap-around when nothing is set above the cursor.
                occ = self._occ
                ci = cursor & mask
                m = occ >> ci
                if m:
                    step = (m & -m).bit_length() - 1
                else:
                    step = nbuckets - ci + (occ & -occ).bit_length() - 1
                vb = cursor + step
                i = vb & mask
                slot = buckets[i]
                stage = slot
                buckets[i] = []
                self._occ = occ & ~(1 << i)
                self._ring_count -= len(stage)
                if len(stage) > 1:
                    stage.sort(key=_TIME_SEQ)
                # A slot can also hold events of a *lapped* virtual
                # bucket (vb + k*nbuckets); after sorting they form
                # a strict suffix — return it to the (now fresh)
                # slot and stage only this bucket's events.
                hi = (vb + 1) << shift
                if stage[-1].time >= hi:
                    cut = bisect_left(stage, hi, key=_TIME)
                    tail = stage[cut:]
                    del stage[cut:]
                    if tail:
                        buckets[i].extend(tail)
                        self._occ |= 1 << i
                        self._ring_count += len(tail)
                    if not stage:
                        # Purely lapped slot: skip it for this lap.
                        misses += 1
                        if misses >= nbuckets:
                            # Cursor a full lap stale (only possible
                            # after an until-jump): relocate exactly.
                            self._recompute_cursor()
                            cursor = self._cursor_vb
                            misses = 0
                        else:
                            cursor = vb + 1
                        continue
                self._cursor_vb = vb
                self._stage = stage
                self._stage_vb = vb
                self._stage_pos = 0
                return stage
        if overflow:
            # Ring empty: serve the overflow front directly.  Events
            # there are strictly later than anything the ring held, and
            # popping heads yields them already in (time, seq) order.
            # The *whole* leading virtual bucket is staged — once the
            # clock lands in this bucket, events scheduled into it by
            # callbacks join the stage, and leaving part of the bucket
            # behind in the overflow heap would dispatch those joiners
            # ahead of it.
            ev = heappop(overflow)
            stage = [ev]
            vb = ev.time >> shift
            while overflow and (overflow[0].time >> shift) == vb:
                stage.append(heappop(overflow))
            self._cursor_vb = vb
            self._stage = stage
            self._stage_vb = vb
            self._stage_pos = 0
            return stage
        return None

    def _flush_stage(self) -> None:
        """Return the undispatched stage suffix to its home structure.

        Called on every run()/drain() exit path (also via ``finally``,
        so a callback exception cannot strand staged events), keeping
        the invariant that no stage exists between runs — signatures,
        snapshots and re-entrant runs all see one coherent queue.
        """
        stage = self._stage
        if stage is None:
            return
        pos = self._stage_pos
        self._stage = None
        self._stage_vb = -1
        self._stage_pos = 0
        if pos < len(stage):
            rest = stage[pos:] if pos else stage
            vb = rest[0].time >> self._shift   # one bucket: a single vb
            if vb - (self.now >> self._shift) < self._nbuckets:
                i = vb & self._mask
                self._buckets[i].extend(rest)
                self._occ |= 1 << i
                self._ring_count += len(rest)
                if vb < self._cursor_vb:
                    self._cursor_vb = vb
            else:
                heappush = heapq.heappush
                overflow = self._overflow
                for e in rest:
                    heappush(overflow, e)

    # -- the loops ---------------------------------------------------------------

    def run(self, until: Optional[int] = None,
            max_events: Optional[int] = None) -> int:
        """Run the event loop.

        Parameters
        ----------
        until:
            Stop once the next event would be strictly after this time
            (the clock is left at ``until``).
        max_events:
            Safety valve for tests: stop after this many callbacks.
            ``0`` executes no events at all (``None`` means unlimited).

        Returns
        -------
        int
            The simulation time when the loop stopped.

        The ``until``/``max_events`` interaction and the ``stop()``
        semantics are pinned bit-compatible with :class:`HeapSimulator`
        by tests/test_engine.py (TestRunStopBoundaries): exhausting the
        budget with ``until`` set still advances the clock to ``until``
        (even past undispatched events), while a ``stop()`` consumed by
        this run leaves the clock at the stopping event's time.
        """
        if until is None and max_events is None:
            return self._run_unbounded()
        budget = max_events if max_events is not None else -1
        pool = self._pool
        pool_max = _POOL_MAX
        try:
            while self._size:
                if budget == 0:
                    break
                stage = self._acquire_stage()
                if stage is None:      # pragma: no cover - _size guards this
                    break
                pos = 0
                while pos < len(stage):
                    if budget == 0:
                        break
                    ev = stage[pos]
                    if ev.cancelled:
                        stage[pos] = None
                        pos += 1
                        self._stage_pos = pos
                        self._cancelled -= 1
                        self._size -= 1
                        if getrefcount(ev) == 2 and len(pool) < pool_max:
                            ev.fn = ev.arg = None
                            pool.append(ev)
                        continue
                    if until is not None and ev.time > until:
                        self.now = until
                        return self.now
                    stage[pos] = None
                    pos += 1
                    self._stage_pos = pos
                    ev._sim = None     # out of the queue: late cancel() no-op
                    self._live -= 1
                    self._size -= 1
                    self.now = ev.time
                    self._events_run += 1
                    ev.fn(ev.arg)
                    # Recycle only when no caller kept a handle: the two
                    # references are the local `ev` and getrefcount's
                    # own argument.  A held handle keeps the object out
                    # of the pool, preserving cancel-after-run no-ops.
                    if getrefcount(ev) == 2 and len(pool) < pool_max:
                        ev.fn = ev.arg = None
                        pool.append(ev)
                    if self._stop_requested:
                        self._stop_requested = False
                        return self.now
                    if budget > 0:
                        budget -= 1
                self._flush_stage()
            if until is not None and self.now < until:
                self.now = until
            return self.now
        finally:
            self._flush_stage()

    def _run_unbounded(self) -> int:
        """The production loop: ``run()`` with no ``until``/``max_events``.

        Identical semantics to the general loop with both limits absent;
        split out so the per-event path carries no limit checks and all
        loop-invariant lookups live in locals.  The end-of-stage test is
        an IndexError catch instead of a ``len()`` call per event —
        correct even when a callback grows the live stage (ordered
        insert of a same-bucket event), since indexing simply keeps
        succeeding past the old length.
        """
        pool = self._pool
        pool_max = _POOL_MAX
        refs = getrefcount
        acquire = self._acquire_stage
        # Counter updates are deferred to stage granularity: per-event
        # read-modify-writes on `_live`/`_size`/`_cancelled`/
        # `_events_run` become two locals reconciled when the stage
        # drains (and, via ``finally``, on *every* exit — stop, or a
        # callback exception).  Safe because a mid-callback ``cancel()``
        # applies commutative deltas to the same counters, and nothing
        # that reads them exactly (signature, snapshots, pending()
        # between runs) can observe the loop mid-stage.
        ndisp = 0    # events dispatched this stage, not yet booked
        ncxl = 0     # cancelled corpses discarded this stage, ditto
        try:
            while self._size:
                stage = acquire()
                if stage is None:      # pragma: no cover - _size guards this
                    break
                # A list iterator keeps yielding elements appended (or
                # order-inserted past the cursor) during iteration, so
                # same-bucket events scheduled by callbacks are picked
                # up in exactly the (time, seq) position insort gave
                # them — no per-event bounds check needed.  (A plain
                # iterator, not enumerate(): enumerate holds its result
                # tuple across iterations, which would add a reference
                # and defeat the refcount recycling gate below.)
                pos = 0
                for ev in stage:
                    stage[pos] = None
                    pos += 1
                    self._stage_pos = pos
                    if ev.cancelled:
                        ncxl += 1
                        if len(pool) < pool_max and refs(ev) == 2:
                            ev.fn = ev.arg = None
                            pool.append(ev)
                        continue
                    ev._sim = None     # out of the queue: late cancel() no-op
                    ndisp += 1
                    self.now = ev.time
                    ev.fn(ev.arg)
                    # Recycle only when no caller kept a handle: the two
                    # references are the local `ev` and getrefcount's
                    # own argument (the staged slot was nulled above).
                    if len(pool) < pool_max and refs(ev) == 2:
                        ev.fn = ev.arg = None
                        pool.append(ev)
                    if self._stop_requested:
                        self._stop_requested = False
                        return self.now   # finally books ndisp/ncxl
                self._live -= ndisp
                self._size -= ndisp + ncxl
                self._cancelled -= ncxl
                self._events_run += ndisp
                ndisp = ncxl = 0
                self._flush_stage()
            return self.now
        finally:
            self._live -= ndisp
            self._size -= ndisp + ncxl
            self._cancelled -= ncxl
            self._events_run += ndisp
            self._flush_stage()

    def drain(self, fn: Callable[[], bool], check_every: int = 4096) -> int:
        """Run until ``fn()`` returns True, checking every ``check_every`` events.

        Used by the system harness to stop when all cores have retired
        their instruction budgets without polling on every event.  A
        callback calling :meth:`stop` ends the drain at that exact event
        (and a stop requested *before* the drain ends it before any event
        runs) — the periodic predicate remains as the fallback for
        components that don't signal exactly.
        """
        if self._stop_requested:
            self._stop_requested = False
            return self.now
        pool = self._pool
        pool_max = _POOL_MAX
        refs = getrefcount
        acquire = self._acquire_stage
        counter = 0
        # Same stage-granular counter deferral as _run_unbounded — with
        # one extra reconciliation point just before the predicate call,
        # which is entitled to read exact counters (progress displays
        # poll ``events_run``; stop predicates poll ``pending()``).
        ndisp = 0
        ncxl = 0
        try:
            while self._size:
                stage = acquire()
                if stage is None:      # pragma: no cover - _size guards this
                    break
                pos = 0
                for ev in stage:
                    stage[pos] = None
                    pos += 1
                    self._stage_pos = pos
                    if ev.cancelled:
                        ncxl += 1
                        if len(pool) < pool_max and refs(ev) == 2:
                            ev.fn = ev.arg = None
                            pool.append(ev)
                        continue
                    ev._sim = None     # out of the queue: late cancel() no-op
                    ndisp += 1
                    self.now = ev.time
                    ev.fn(ev.arg)
                    if len(pool) < pool_max and refs(ev) == 2:
                        ev.fn = ev.arg = None
                        pool.append(ev)
                    if self._stop_requested:
                        self._stop_requested = False
                        return self.now   # finally books ndisp/ncxl
                    counter += 1
                    if counter >= check_every:
                        counter = 0
                        self._live -= ndisp
                        self._size -= ndisp + ncxl
                        self._cancelled -= ncxl
                        self._events_run += ndisp
                        ndisp = ncxl = 0
                        if fn():
                            return self.now
                self._live -= ndisp
                self._size -= ndisp + ncxl
                self._cancelled -= ncxl
                self._events_run += ndisp
                ndisp = ncxl = 0
                self._flush_stage()
            return self.now
        finally:
            self._live -= ndisp
            self._size -= ndisp + ncxl
            self._cancelled -= ncxl
            self._events_run += ndisp
            self._flush_stage()


class HeapSimulator:
    """The original binary-heap engine, kept as the behavioural reference.

    Same contract as :class:`Simulator` (the calendar queue); see the
    module docstring.  The lockstep property suite and the perf harness
    compare the two — this class is the "old" side of both.

    Attributes
    ----------
    now:
        Current simulation time in picoseconds.  Monotonically
        non-decreasing across callback invocations.
    """

    __slots__ = ("now", "_heap", "_seq", "_events_run", "_live", "_cancelled",
                 "_stop_requested")

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: list[Event] = []
        self._seq: int = 0
        self._events_run: int = 0
        self._live: int = 0        # scheduled and not yet run/cancelled
        self._cancelled: int = 0   # cancelled but still sitting in the heap
        self._stop_requested: bool = False

    def stop(self) -> None:
        """Request an exact stop: the loop exits after the current callback."""
        self._stop_requested = True

    def at(self, time: int, fn: Callable[[Any], Any], arg: Any = None) -> Event:
        """Schedule ``fn(arg)`` at absolute time ``time`` (>= now)."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        ev = Event(time, self._seq, fn, arg, self)
        self._seq += 1
        heapq.heappush(self._heap, ev)
        self._live += 1
        return ev

    def after(self, delay: int, fn: Callable[[Any], Any], arg: Any = None) -> Event:
        """Schedule ``fn(arg)`` ``delay`` picoseconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.at(self.now + delay, fn, arg)

    def pending(self) -> int:
        """Number of live events in the queue (O(1))."""
        return self._live

    def _maybe_compact(self) -> None:
        """Drop cancelled events once they dominate the heap (O(n), rare)."""
        heap = self._heap
        if len(heap) >= _COMPACT_MIN and self._cancelled * 2 > len(heap):
            # In place: run()/drain() hold a local alias to this list.
            heap[:] = [e for e in heap if not e.cancelled]
            heapq.heapify(heap)
            self._cancelled = 0

    def _discard_cancelled(self) -> None:
        """Bookkeeping for a cancelled event leaving the heap."""
        self._cancelled -= 1

    @property
    def events_run(self) -> int:
        """Total callbacks executed so far (for progress reporting)."""
        return self._events_run

    def signature(self) -> dict[str, Any]:
        """Comparable digest of the engine state (snapshot test hook).

        Events are enumerated in canonical ``(time, seq)`` order — the
        same digest the calendar engine produces for the same pending
        work, and invariant under faithful state copies (pop order is
        fully determined by ``(time, seq)`` anyway).
        """
        return {
            "now": self.now,
            "seq": self._seq,
            "events_run": self._events_run,
            "live": self._live,
            "cancelled": self._cancelled,
            "heap": [(e.time, e.seq, e.cancelled,
                      getattr(e.fn, "__qualname__", repr(e.fn)),
                      _arg_kind(e.arg))
                     for e in sorted(self._heap, key=_TIME_SEQ)],
        }

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run the event loop (see :meth:`Simulator.run`)."""
        heap = self._heap
        budget = max_events if max_events is not None else -1
        while heap:
            if budget == 0:      # max_events=0 means "run zero events"
                break
            ev = heap[0]
            if ev.cancelled:
                heapq.heappop(heap)
                self._discard_cancelled()
                continue
            if until is not None and ev.time > until:
                self.now = until
                return self.now
            heapq.heappop(heap)
            ev._sim = None       # out of the heap: late cancel() is a no-op
            self._live -= 1
            self.now = ev.time
            self._events_run += 1
            ev.fn(ev.arg)
            if self._stop_requested:
                self._stop_requested = False
                return self.now
            if budget > 0:
                budget -= 1
        if until is not None and self.now < until:
            self.now = until
        return self.now

    def drain(self, fn: Callable[[], bool], check_every: int = 4096) -> int:
        """Run until ``fn()`` returns True (see :meth:`Simulator.drain`)."""
        heap = self._heap
        counter = 0
        if self._stop_requested:
            self._stop_requested = False
            return self.now
        while heap:
            ev = heapq.heappop(heap)
            if ev.cancelled:
                self._discard_cancelled()
                continue
            ev._sim = None       # out of the heap: late cancel() is a no-op
            self._live -= 1
            self.now = ev.time
            self._events_run += 1
            ev.fn(ev.arg)
            if self._stop_requested:
                self._stop_requested = False
                break
            counter += 1
            if counter >= check_every:
                counter = 0
                if fn():
                    break
        return self.now


#: Either engine.  Both implement the identical scheduling contract
#: (at/after/run/drain/stop/pending/signature); components hold this
#: union rather than caring which engine the system was built with.
AnySimulator = Union[Simulator, HeapSimulator]


def make_simulator(kind: Optional[str] = None, *,
                   bucket_ps: int = DEFAULT_BUCKET_PS,
                   nbuckets: int = DEFAULT_NBUCKETS) -> AnySimulator:
    """Build an event engine: ``"calendar"`` (default) or ``"heap"``.

    ``kind=None`` selects :data:`DEFAULT_ENGINE`.  The calendar sizing
    parameters are ignored by the heap engine.
    """
    kind = (DEFAULT_ENGINE if kind is None else kind).lower()
    if kind == "calendar":
        return Simulator(bucket_ps=bucket_ps, nbuckets=nbuckets)
    if kind == "heap":
        return HeapSimulator()
    raise ValueError(f"unknown engine kind {kind!r}; known: {ENGINES}")
