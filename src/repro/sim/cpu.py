"""Event-driven out-of-order core model.

The paper simulates 8-wide OoO x86 cores with 192-entry ROBs in gem5.  For
a DRAM-cache *controller* study the core's role is to generate a request
stream with the right coupling to memory latency:

* **reads are critical** — a core can run ahead of an outstanding load by
  at most the ROB depth, and can sustain at most a bounded number of
  outstanding misses (MLP); past either limit it stalls until data
  returns;
* **writes are not** — stores retire through store buffers and dirty
  writebacks happen behind the core's back.

This model captures exactly that closed loop without per-cycle ticking:
non-memory instructions retire at ``width`` per cycle (so a gap of *g*
instructions costs ``g/width`` cycles), memory operations are points on
the timeline, and the core advances from one memory operation to the next
in a single event.  L2 hits charge a configurable un-hidable fraction of
the L2 latency; misses interact with the blocking rules above.

Traces come from :mod:`repro.workloads.generator` as infinite iterators of
``(gap_instructions, address, is_write, pc)`` tuples; the core counts
retired instructions and records the time it crosses its warm-up and
finish budgets, from which per-core IPC is computed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.config import CPUConfig
from repro.sim.engine import AnySimulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.system import System
    from repro.workloads.cursor import TraceCursor

#: one trace record: (gap_instructions, address, is_write, pc)
TraceOp = tuple[int, int, bool, int]

#: outcomes of System.mem_access
L2_HIT = 0
MISS = 1
MSHR_FULL = 2


class Core:
    """One core: trace consumption + ROB/MLP blocking rules."""

    __slots__ = ("sim", "core_id", "cfg", "system", "trace",
                 "icount", "_next_op", "_retry_op", "outstanding",
                 "_token", "blocked", "_resume_base",
                 "budget", "warmup_at", "finish_time", "warmup_time",
                 "warmup_icount", "loads_issued", "stores_issued",
                 "stall_blocked_ps", "_blocked_since",
                 "_width", "_cycle_ps", "_max_misses", "_rob")

    def __init__(self, sim: AnySimulator, core_id: int, cfg: CPUConfig,
                 trace: "TraceCursor", system: "System"):
        self.sim = sim
        self.core_id = core_id
        self.cfg = cfg
        self.system = system
        self.trace = trace
        # Config scalars flattened: _step/_gap_ps run once per memory op.
        self._width = cfg.width
        self._cycle_ps = cfg.cycle_ps
        self._max_misses = cfg.max_outstanding_misses
        self._rob = cfg.rob_entries
        self.icount = 0
        self._next_op: Optional[TraceOp] = None
        self._retry_op: Optional[TraceOp] = None
        self.outstanding: dict[int, int] = {}  # load token -> inst index
        self._token = 0
        self.blocked = False
        self._resume_base = 0
        self.budget = 0
        self.warmup_at = 0
        self.finish_time: Optional[int] = None
        self.warmup_time: Optional[int] = None
        self.warmup_icount = 0
        self.loads_issued = 0
        self.stores_issued = 0
        self.stall_blocked_ps = 0
        self._blocked_since = 0

    # -- lifecycle -------------------------------------------------------------

    def start(self, warmup_insts: int, measure_insts: int) -> None:
        """Begin consuming the trace; budgets control IPC bookkeeping."""
        self.warmup_at = warmup_insts
        self.budget = warmup_insts + measure_insts
        self._next_op = next(self.trace)
        self._schedule_next(self.sim.now)

    # -- timing helpers ----------------------------------------------------------

    def _gap_ps(self, gap_instructions: int) -> int:
        """Retire time of a gap of non-memory instructions + the memory op.

        Billing the op itself keeps IPC bounded by the core width.
        """
        cycles = (gap_instructions + 1) / self._width
        return max(1, round(cycles * self._cycle_ps))

    def _schedule_next(self, base_time: int) -> None:
        sim = self.sim
        nxt = self._next_op
        assert nxt is not None   # always primed by start()/_step()
        gap_ps = max(1, round((nxt[0] + 1) / self._width
                              * self._cycle_ps))
        sim.at(max(base_time + gap_ps, sim.now), self._step, None)

    # -- the main loop -------------------------------------------------------------

    def _step(self, _arg: object) -> None:
        retrying = False
        if self._retry_op is not None:
            retrying = True
            op = self._retry_op
            self._retry_op = None
        else:
            op = self._next_op
            assert op is not None   # start() primed the stream
            self._next_op = next(self.trace)
            self.icount += op[0] + 1
            self._check_budgets()
        _gap, addr, is_write, pc = op
        # ``retrying`` tells the system this op already stalled once: the
        # MSHR must not count a second full-stall for it, and the
        # prefetcher must not train twice on the same access.
        outcome, stall_ps = self.system.mem_access(self, addr, is_write, pc,
                                                   retrying=retrying)
        now = self.sim.now

        if outcome == MSHR_FULL:
            # The shared L2 has no MSHR left: hold this op and retry when
            # the system signals a free slot.
            self._retry_op = op
            self._mark_blocked(now)
            self.system.wait_for_mshr(self)
            return

        if is_write:
            self.stores_issued += 1
        else:
            self.loads_issued += 1
            if outcome == MISS:
                self._token += 1
                self.outstanding[self._token] = self.icount
                self.system.register_load(self, self._token)

        base = now + stall_ps
        if self._should_block():
            self._mark_blocked(now)
            self._resume_base = base
            return
        self._schedule_next(base)

    def _check_budgets(self) -> None:
        if self.warmup_time is None and self.icount >= self.warmup_at:
            self.warmup_time = self.sim.now
            self.warmup_icount = self.icount
            self.system.core_warmed(self)
        if self.finish_time is None and self.icount >= self.budget:
            self.finish_time = self.sim.now
            self.system.core_finished(self)

    # -- blocking rules -------------------------------------------------------------

    def _should_block(self) -> bool:
        o = self.outstanding
        if len(o) >= self._max_misses:
            return True
        if o and self.icount - min(o.values()) >= self._rob:
            return True
        return False

    def _mark_blocked(self, now: int) -> None:
        if not self.blocked:
            self.blocked = True
            self._blocked_since = now

    def _unblock(self, resume_base: int) -> None:
        now = self.sim.now
        self.blocked = False
        self.stall_blocked_ps += now - self._blocked_since
        if self._retry_op is not None:
            self.sim.at(now, self._step, None)
        else:
            self._schedule_next(max(resume_base, now))

    # -- completion callbacks ---------------------------------------------------------

    def load_done(self, token: int) -> None:
        """A load miss this core issued has returned."""
        self.outstanding.pop(token, None)
        if self.blocked and self._retry_op is None and not self._should_block():
            self._unblock(self._resume_base)

    def mshr_freed(self) -> None:
        """The shared L2 freed an MSHR; retry the held op."""
        if self.blocked and self._retry_op is not None:
            self._unblock(self.sim.now)

    # -- reporting ---------------------------------------------------------------------

    def measured_ipc(self) -> float:
        """IPC over the measurement window (post-warm-up)."""
        if self.finish_time is None or self.warmup_time is None:
            raise RuntimeError(f"core {self.core_id} did not finish")
        elapsed = self.finish_time - self.warmup_time
        insts = self.budget - self.warmup_icount
        if elapsed <= 0:
            return float("inf")
        cycles = elapsed / self.cfg.cycle_ps
        return insts / cycles
