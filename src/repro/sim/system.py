"""Full-system wiring: cores -> shared L2 -> DRAM-cache controller -> memory.

One :class:`System` is one simulation: a multiprogrammed mix of benchmark
traces (one per core), the shared L2 with MSHRs, the chosen DRAM-cache
controller design over the stacked-DRAM substrate, and off-chip main
memory.  The Fig. 19 variant installs Lee et al.'s DRAM-aware writeback
policy at the L2.

Timing notes:

* L2 hit latency is charged to cores as an un-hidable fraction (OoO cores
  hide most of a 20-cycle hit under MLP);
* the L2's 20-cycle lookup on the *miss* path is a design-independent
  constant adder and is folded out (all compared designs shift equally);
* the on-chip bus (256-bit @ 4 GHz: 0.5 ns per block) is folded out for
  the same reason.

Warm-up: stats of every component reset when the *last* core crosses its
warm-up budget; per-core IPC is measured from each core's own crossing to
its own finish, matching the paper's fast-forward-then-measure flow.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, replace
from typing import Any, ClassVar, Mapping, Optional, Sequence

from repro.config import SystemConfig
from repro.core import make_controller
from repro.core.access import CacheRequest, RequestType
from repro.mem.llc_writeback import DRAMAwareWritebackIndex
from repro.mem.mainmem import BankedMainMemory
from repro.mem.mshr import MSHREntry, MSHRFile
from repro.mem.prefetch import PrefetchStats, Prefetcher, make_prefetcher
from repro.mem.sram import SRAMCache
from repro.mem.writebuffer import L2WriteBuffer
from repro.sim.cpu import Core, L2_HIT, MISS, MSHR_FULL
from repro.sim.engine import make_simulator
from repro.snapshot import WARM_STATE_VERSION, WarmState, WarmStateError
from repro.workloads.cursor import TraceCursor
from repro.workloads.profiles import BenchmarkProfile

#: Version of the :class:`SystemResult` on-disk schema.  Bump whenever the
#: result fields, the metrics hierarchy, or the semantics of any reported
#: value change — the experiment cache keys on it, so entries written by
#: older code are invalidated instead of silently reused (see DESIGN.md).
#: v4: exact run termination (Simulator.stop at the last core's retiring
#: event) — trailing-event accumulation differs from v3 entries.
#: v5: pluggable substrate fidelity — SystemConfig.substrate selects the
#: DRAM model, and command-fidelity runs carry extra ChannelStats
#: counters (refreshes, tFAW/tRRD/refresh stalls, policy closes) in the
#: metrics snapshot.  Burst-fidelity values are bit-identical to v4; the
#: bump invalidates cache entries because the key space gained an input.
#: v6: topology-generalised memory system — mainmem.model selects a flat
#: or banked off-chip memory (banked runs carry ``mainmem_dev`` per-channel
#: groups and a ``mainmem_total`` rollup), MainMemoryStats gained
#: write-latency/bus-wait counters, ChannelStats gained ``rank_switches``,
#: and multi-rank command-fidelity runs publish per-rank groups plus a
#: cross-channel ``rank_totals`` rollup.  Flat/default values are
#: bit-identical to v5 up to the new (deterministic) counters.
#: v7: cache-hierarchy realism — prefetcher (prefetch.kind), bounded L2
#: write buffer (writebuf.depth/policy) and pluggable replacement
#: (l2.replacement / org.replacement).  The metrics tree gained ``mshr``
#: (now a MetricGroup with demand-latency accumulators) and ``writebuf``
#: groups unconditionally and a ``prefetch`` group when a prefetcher is
#: configured; SystemResult gained prefetch_issued / prefetch_useful /
#: writebuf_drain_stalls headline fields; the MSHR wakeup path wakes
#: min(free slots, waiters) FIFO and counts one full stall per held op.
#: Default-config values are bit-identical to v6 up to the new keys.
RESULT_SCHEMA_VERSION = 7


class ResultSchemaError(ValueError):
    """A serialised result does not match the current schema version."""


@dataclass
class SystemResult:
    """Everything the experiment harness needs, as plain picklable data.

    This is a thin typed facade over the system's metrics registry: the
    named fields are the headline values every figure reads, and
    :attr:`metrics` carries the full hierarchical snapshot (all counters
    of every component) for anything else, so adding a metric no longer
    requires a field here.
    """

    SCHEMA_VERSION: ClassVar[int] = RESULT_SCHEMA_VERSION

    design: str
    organization: str
    xor_remap: bool
    benchmarks: list[str]
    ipcs: list[float]
    elapsed_ps: int
    # controller-level
    mean_read_latency_ps: float
    dram_read_hit_rate: float
    reads_done: int
    writebacks: int
    refills: int
    read_priority_inversions: int
    lr_ofs_issues: int
    lr_drain_issues: int
    # substrate-level
    accesses_per_turnaround: float
    read_row_hit_rate: float
    turnarounds: int
    dram_accesses: int
    # hierarchy-level
    l2_hit_rate: float
    mainmem_reads: int
    mainmem_writes: int
    lee_eager_writebacks: int = 0
    # cache-hierarchy realism (v7): 0 under the default config
    prefetch_issued: int = 0
    prefetch_useful: int = 0
    writebuf_drain_stalls: int = 0
    meta: dict[str, Any] = field(default_factory=dict)
    #: full registry snapshot: {component: {counter/derived: value}}
    metrics: dict[str, Any] = field(default_factory=dict)
    schema_version: int = RESULT_SCHEMA_VERSION

    def to_cache_dict(self) -> dict[str, Any]:
        """Plain-JSON form for the result store."""
        return dataclasses.asdict(self)

    @classmethod
    def from_cache_dict(cls, data: Mapping[str, Any]) -> "SystemResult":
        """Rebuild from :meth:`to_cache_dict` output, validating the schema.

        Raises :class:`ResultSchemaError` when the entry was written by a
        different schema version or its field set doesn't match the current
        dataclass — both mean the entry is stale, never "close enough".
        """
        if not isinstance(data, Mapping):
            raise ResultSchemaError(f"expected a mapping, got {type(data)}")
        version = data.get("schema_version")
        if version != cls.SCHEMA_VERSION:
            raise ResultSchemaError(
                f"schema version {version!r} != current {cls.SCHEMA_VERSION}")
        expected = {f.name for f in dataclasses.fields(cls)}
        got = set(data)
        if got != expected:
            raise ResultSchemaError(
                f"field set mismatch: missing {sorted(expected - got)}, "
                f"unknown {sorted(got - expected)}")
        return cls(**data)


class System:
    """A complete simulated machine for one workload mix."""

    def __init__(self, cfg: SystemConfig, design: str,
                 benchmarks: Sequence[BenchmarkProfile],
                 organization: str = "sa", xor_remap: bool = False,
                 use_mapi: bool = True, scheduler: str = "bliss",
                 lee_writeback: bool = False, seed: int = 0,
                 footprint_scale: float = 1.0, model_l1: bool = False,
                 engine: Optional[str] = None):
        if not benchmarks:
            raise ValueError("need at least one benchmark")
        cfg = replace(cfg, num_cores=len(benchmarks))
        self.cfg = cfg
        self.design = design.upper()
        self.organization = organization
        self.xor_remap = xor_remap
        self.benchmarks = list(benchmarks)
        # Calendar buckets sized to the DRAM command clock: every bank
        # or bus hazard resolves a small multiple of tCK ahead, so the
        # near-future ring absorbs virtually all scheduling.  ``engine``
        # (None = the module default, normally "calendar") exists for
        # the perf harness's old-vs-new comparison and the lockstep
        # equivalence tests.
        self.sim = make_simulator(engine, bucket_ps=cfg.timings.tCK)
        self.controller = make_controller(
            design, self.sim, cfg, organization=organization,
            xor_remap=xor_remap, use_mapi=use_mapi, scheduler=scheduler)

        # A *bound method*, not a closure: closures deep-copy/pickle as
        # atoms, so a snapshotted L2 would keep calling into the donor
        # system's array (see repro/snapshot.py).
        self._row_of = self._array_row
        self.l2 = SRAMCache(cfg.l2,
                            row_of=self._row_of if lee_writeback else None)
        self.lee: Optional[DRAMAwareWritebackIndex] = None
        if lee_writeback:
            self.lee = DRAMAwareWritebackIndex(self.l2, self._row_of)
        # MSHR capacity partition (Sniper-style): a configured prefetcher
        # carves its entries out of the shared file, so speculative
        # traffic can never stall a demand miss — and never inflates the
        # demand partition either.
        prefetch_mshrs = (cfg.prefetch.mshr_entries
                          if cfg.prefetch.kind != "none" else 0)
        if prefetch_mshrs >= cfg.l2_mshrs:
            raise ValueError(
                f"prefetch.mshr_entries ({prefetch_mshrs}) must leave at "
                f"least one demand MSHR out of l2_mshrs ({cfg.l2_mshrs})")
        self.mshr = MSHRFile(cfg.l2_mshrs - prefetch_mshrs,
                             prefetch_capacity=prefetch_mshrs)
        self.prefetcher: Optional[Prefetcher] = None
        self.prefetch_stats = PrefetchStats()
        if cfg.prefetch.kind != "none":
            self.prefetcher = make_prefetcher(cfg.prefetch,
                                              cfg.l2.block_bytes)
        #: blocks brought in by an un-promoted prefetch, awaiting their
        #: first demand hit (membership tests only — never iterated)
        self._prefetched: set[int] = set()
        # Writebacks drain through the buffer into the controller; the
        # sink is a bound method (snapshot-safe, see L2WriteBuffer).
        self.writebuf = L2WriteBuffer(self.sim, cfg.writebuf,
                                      self._submit_writeback)
        self.l1s = ([SRAMCache(cfg.l1) for _ in benchmarks]
                    if model_l1 else None)

        self._l2_stall_ps = round(cfg.l2.latency_cycles * cfg.cpu.cycle_ps
                                  * cfg.cpu.l2_hit_stall_fraction)
        self._block_mask = ~(cfg.l2.block_bytes - 1)

        self._footprint_scale = footprint_scale
        self._seed = seed
        self.cores: list[Core] = []
        for i, prof in enumerate(benchmarks):
            # Trace-source protocol: any workload frontend (synthetic
            # profile, phased/adversarial scenario, trace-file replay)
            # builds its own stream; see repro/workloads/scenarios.py.
            # The TraceCursor wrapper makes the stream positioned and
            # reconstructible, which is what lets a snapshot of this
            # system be captured at all (see repro/workloads/cursor.py).
            trace = TraceCursor(prof, seed=seed * 1000003 + i * 7919 + 1,
                                core_offset=i << 44,
                                footprint_scale=footprint_scale)
            self.cores.append(Core(self.sim, i, cfg.cpu, trace, self))

        self._mshr_waiters: list[Core] = []
        self._pending_entry: Optional[MSHREntry] = None
        self._warmed = 0
        self._finished = 0

        # Unified metrics tree over every live counter group in the
        # machine; SystemResult.metrics is exactly its snapshot.  The
        # controller's registry (already holding ``controller`` +
        # ``substrate``) is extended in place, so there is one tree —
        # a group registered at either level shows up everywhere.
        self.metrics = self.controller.metrics
        self.metrics.register("l2", self.l2.stats)
        self.metrics.register("mshr", self.mshr.stats)
        self.metrics.register("writebuf", self.writebuf.stats)
        if self.prefetcher is not None:
            # Mounted only where the mechanism is real, like lee/mapi:
            # default runs keep their exact metric-tree key set.
            self.metrics.register("prefetch", self.prefetch_stats)
        self.metrics.register("mainmem", self.controller.mainmem.stats)
        if isinstance(self.controller.mainmem, BankedMainMemory):
            # The banked model's per-channel substrate groups mount as a
            # subtree, so results expose off-chip bank/bus behaviour with
            # the same shape as the cache's own substrate.
            self.metrics.register("mainmem_dev", self.controller.mainmem.metrics)
        if self.controller.mapi is not None:
            self.metrics.register("mapi", self.controller.mapi.stats)
        if self.lee is not None:
            self.metrics.register("lee", self.lee.stats)

    def _array_row(self, addr: int) -> int:
        """DRAM-cache row holding the tag structure guarding ``addr``."""
        return (self.controller.array.tag_location(addr)
                // self.cfg.dram_cache.row_bytes)

    # ------------------------------------------------------------- memory path

    def mem_access(self, core: Core, addr: int, is_write: bool,
                   pc: int, retrying: bool = False) -> tuple[int, int]:
        """The core-facing memory operation.  Returns (outcome, stall_ps).

        ``retrying`` marks the re-issue of an op the core already held on
        MSHR_FULL: the MSHR skips the (already counted) stall bump and
        the prefetcher is not re-trained on the repeated access.
        """
        addr &= self._block_mask
        if self.l1s is not None:
            l1 = self.l1s[core.core_id]
            hit, victim = l1.access(addr, is_write)
            if victim is not None:
                # L1 dirty victim: write-through into the L2 functionally
                # (an L2 miss on this path allocates directly — the victim
                # travels with its data, no fetch needed).
                if not self.l2.touch(victim, True):
                    wb_victim = self.l2.fill(victim, dirty=True)
                    if wb_victim is not None:
                        self._emit_writebacks(wb_victim, core.core_id)
            if hit:
                return L2_HIT, 0
            is_write = False  # L1 write-allocate turns the L2 access into a fetch

        if self.l2.touch(addr, is_write):
            if self.prefetcher is not None:
                if addr in self._prefetched:
                    # First demand touch of a block a prefetch brought in.
                    self._prefetched.discard(addr)
                    self.prefetch_stats.useful += 1
                if not retrying:
                    self._issue_prefetches(
                        self.prefetcher.on_access(addr, pc, True),
                        core.core_id)
            return L2_HIT, self._l2_stall_ps

        entry, fresh = self.mshr.allocate(addr, self.sim.now,
                                          is_write=is_write, retry=retrying)
        if entry is not None and entry.is_prefetch and not entry.promoted:
            # Demand miss caught an in-flight prefetch: issued in time to
            # help (useful) but not early enough to hide the latency
            # (late).  The entry keeps its prefetch-partition slot.
            entry.promoted = True
            self.prefetch_stats.useful += 1
            self.prefetch_stats.late += 1
        if self.prefetcher is not None and not retrying:
            self._issue_prefetches(
                self.prefetcher.on_access(addr, pc, False), core.core_id)
        if entry is None:
            return MSHR_FULL, 0
        self._pending_entry = entry
        if fresh:
            # A buffered writeback of this very block must reach the
            # controller first: its pending-write entry then serves the
            # read by forwarding instead of a stale array fetch.
            self.writebuf.flush(addr)
            req = CacheRequest(RequestType.READ, addr, core.core_id, pc=pc,
                               on_done=self._l2_fill_done)
            self.controller.submit(req)
        return MISS, 0

    def _issue_prefetches(self, cands: Sequence[int], core_id: int) -> None:
        """Filter, admit and submit prefetch candidates (all kinds)."""
        st = self.prefetch_stats
        for addr in cands:
            addr &= self._block_mask
            if addr < 0:
                continue   # a negative stride ran off the address space
            if self.l2.probe(addr) or self.mshr.lookup(addr) is not None:
                st.drops_present += 1
                continue
            entry = self.mshr.allocate_prefetch(addr, self.sim.now)
            if entry is None:
                st.drops_mshr += 1
                continue
            st.issued += 1
            self.writebuf.flush(addr)
            self.controller.submit(
                CacheRequest(RequestType.READ, addr, core_id,
                             on_done=self._l2_fill_done, prefetch=True))

    def register_load(self, core: Core, token: int) -> None:
        """Attach the issuing load to the MSHR entry just touched."""
        entry = self._pending_entry
        assert entry is not None   # mem_access just allocated it
        entry.waiters.append((core, token))

    def wait_for_mshr(self, core: Core) -> None:
        self._mshr_waiters.append(core)

    def _l2_fill_done(self, req: CacheRequest) -> None:
        """DRAM cache (or memory) returned data for an L2 miss."""
        entry = self.mshr.complete(req.addr, self.sim.now)
        victim = self.l2.fill(req.addr, dirty=entry.any_write)
        if victim is not None:
            self._emit_writebacks(victim, req.core_id)
        if entry.is_prefetch and not entry.promoted:
            self._prefetched.add(req.addr)
        for core, token in entry.waiters:
            core.load_done(token)
        if not entry.is_prefetch and self._mshr_waiters:
            # Wakeup fairness: exactly one *demand* slot freed, so wake
            # min(free slots, waiters) cores FIFO — never the whole list
            # (a prefetch completion frees no demand slot and wakes
            # nobody).  Waking more would stampede cores into retries
            # that mostly re-stall.
            n = min(self.mshr.demand_free, len(self._mshr_waiters))
            if n:
                woken = self._mshr_waiters[:n]
                del self._mshr_waiters[:n]
                for core in woken:
                    core.mshr_freed()
        if self.prefetcher is not None and entry.is_prefetch:
            # Tagged prefetching: a prefetch fill may extend its stream.
            self._issue_prefetches(self.prefetcher.on_fill(req.addr),
                                   req.core_id)

    def _emit_writebacks(self, victim_addr: int, core_id: int) -> None:
        """Dirty L2 eviction -> write buffer (+ Lee's row batch)."""
        self.writebuf.push(victim_addr, core_id)
        if self.lee is not None:
            for addr in self.lee.on_dirty_eviction(victim_addr):
                self.writebuf.push(addr, core_id)

    def _submit_writeback(self, addr: int, core_id: int) -> None:
        """Write-buffer drain sink: hand one writeback to the controller."""
        self.controller.submit(
            CacheRequest(RequestType.WRITEBACK, addr, core_id))

    # ------------------------------------------------------------- lifecycle

    def core_warmed(self, _core: Core) -> None:
        self._warmed += 1
        if self._warmed == len(self.cores):
            self.controller.reset_stats()
            self.controller.mainmem.reset_stats()
            self.l2.stats.reset()
            self.mshr.stats.reset()
            self.prefetch_stats.reset()
            self.writebuf.reset_accounting(self.sim.now)

    def core_finished(self, _core: Core) -> None:
        self._finished += 1
        if self._finished == len(self.cores):
            # Exact termination: the run ends at this event, not at the
            # next multiple of the drain's check interval.  Without this
            # the end state would depend on how the event loop was
            # sliced, breaking the snapshot layer's bit-identity
            # invariant (restored continuations slice differently).
            self.sim.stop()

    def functional_warmup(self, replay_accesses: int = 20_000,
                          prefill: bool = True) -> None:
        """Warm caches without timing, like the paper's fast-forward phase.

        ``prefill`` bulk-inserts each benchmark's footprint into the
        DRAM-cache array (vectorised; models the steady-state contents a
        4-billion-instruction fast-forward would leave behind).  The
        *replay* then consumes ``replay_accesses`` operations from each
        core's trace through the functional L2 + DRAM-cache state, warming
        L2 contents, dirty bits and stream positions.
        """
        array = self.controller.array
        scale = self._footprint_scale
        if prefill:
            # Consecutive bulk ranges are fused into one grouped pass
            # (bulk_fill_many visits each shared set once instead of once
            # per benchmark); insertion order — and thus LRU clocks,
            # evictions, and final contents — is exactly the sequential
            # per-benchmark order, so a prefill_blocks workload in the
            # middle just flushes the pending batch first.
            pending: list[tuple[int, int, float, int]] = []
            for i, prof in enumerate(self.benchmarks):
                prefill_blocks = getattr(prof, "prefill_blocks", None)
                if prefill_blocks is not None:
                    if pending:
                        array.bulk_fill_many(pending)
                        pending = []
                    # Workloads with non-contiguous footprints (trace
                    # replay, adversaries) name their exact warm set; the
                    # contiguous bulk fill below would warm blocks they
                    # never touch.  Linear in distinct blocks — the same
                    # order as generating/parsing the workload itself.
                    for addr, dirty in prefill_blocks():
                        array.fill((i << 44) + addr, dirty=dirty)
                    continue
                n_blocks = max(1024, int(prof.footprint_bytes * scale)
                               // self.cfg.l2.block_bytes)
                pending.append((i << 44, n_blocks,
                                prof.store_fraction, i + 1))
            if pending:
                array.bulk_fill_many(pending)
        l2 = self.l2
        for core in self.cores:
            trace = core.trace
            for _ in range(replay_accesses):
                _gap, addr, is_write, _pc = next(trace)
                addr &= self._block_mask
                if not l2.touch(addr, is_write):
                    victim = l2.fill(addr, dirty=is_write)
                    if victim is not None:
                        if not array.lookup_write(victim).hit:
                            array.fill(victim, dirty=True)
                    if not array.lookup_read(addr).hit:
                        array.fill(addr, dirty=False)
        array.reset_counters()
        l2.stats.reset()

    # ------------------------------------------------------------- warm state

    def capture_warm_state(self) -> WarmState:
        """Freeze the design-independent warm-up products of this system.

        Must be called after :meth:`functional_warmup` and before any
        timed simulation: the captured image is exactly the functional
        state (DRAM-cache contents, L2 contents, trace positions) that
        every controller design over the same (workload, seed, substrate)
        prefix shares, so one capture forks a whole design sweep.  The
        set-associative array capture is O(1) copy-on-write — the donor
        keeps simulating unperturbed (see ``DRAMCacheArray.capture_state``).
        """
        if self.sim.events_run or self.sim.now:
            raise WarmStateError(
                "warm state must be captured before timed simulation "
                f"(events_run={self.sim.events_run}, now={self.sim.now})")
        return WarmState(
            schema_version=WARM_STATE_VERSION,
            organization=self.organization,
            seed=self._seed,
            benchmarks=[b.name for b in self.benchmarks],
            footprint_scale=self._footprint_scale,
            lee_writeback=self.lee is not None,
            dram_cache_geometry=dataclasses.asdict(self.cfg.dram_cache),
            l2_geometry=dataclasses.asdict(self.cfg.l2),
            array_replacement=self.cfg.org.replacement,
            trace_counts=[c.trace.count for c in self.cores],
            array_state=self.controller.array.capture_state(),
            l2_state=self.l2.capture_state(),
        )

    def restore_warm_state(self, warm: WarmState) -> None:
        """Adopt a :class:`WarmState` instead of running the warm-up.

        The system must be freshly constructed (nothing simulated, traces
        unconsumed) and built over the same warm-relevant prefix — any
        mismatch raises :class:`WarmStateError` rather than silently
        producing a run that is *almost* the cold-run result.  After the
        restore the run is bit-identical to one that performed
        :meth:`functional_warmup` itself (the warm-cache invariant,
        enforced by tests/test_warm_cache.py).
        """
        if warm.schema_version != WARM_STATE_VERSION:
            raise WarmStateError(
                f"warm state schema {warm.schema_version} != current "
                f"{WARM_STATE_VERSION}")
        mine = dict(
            organization=self.organization, seed=self._seed,
            benchmarks=[b.name for b in self.benchmarks],
            footprint_scale=self._footprint_scale,
            lee_writeback=self.lee is not None,
            dram_cache_geometry=dataclasses.asdict(self.cfg.dram_cache),
            l2_geometry=dataclasses.asdict(self.cfg.l2),
            array_replacement=self.cfg.org.replacement)
        theirs = {k: getattr(warm, k) for k in mine}
        if mine != theirs:
            diffs = {k: (theirs[k], mine[k])
                     for k in mine if mine[k] != theirs[k]}
            raise WarmStateError(
                f"warm state does not match this system: {diffs}")
        if self.sim.events_run or self.sim.now:
            raise WarmStateError("cannot restore into a running system")
        # Validate everything before mutating anything: a partial restore
        # (some traces fast-forwarded, then an error) would leave the
        # system silently unusable for a cold-run fallback.
        for core in self.cores:
            if core.trace.count:
                raise WarmStateError("cannot restore into a consumed trace")
        for core, count in zip(self.cores, warm.trace_counts):
            core.trace.skip(count)
        self.controller.array.restore_state(warm.array_state)
        self.l2.restore_state(warm.l2_state)

    # ------------------------------------------------------------- execution

    def begin(self, warmup_insts: int = 20_000,
              measure_insts: int = 200_000,
              functional_warmup: bool = True,
              replay_accesses: Optional[int] = None,
              warm_state: Optional[WarmState] = None) -> None:
        """Warm up (or restore a warm state) and start every core.

        Split out of :meth:`run` so callers can drive the event loop in
        slices (``self.sim.run(max_events=...)``) between ``begin`` and
        :meth:`finish` — the snapshot differential tests capture
        mid-simulation this way.

        ``replay_accesses`` defaults to 20 000 for the functional warm-up
        path.  When a ``warm_state`` is supplied *and* an explicit
        ``replay_accesses`` is requested, the warm state must have been
        captured with exactly that replay budget (its per-core trace
        counts record it) — otherwise the run would silently differ from
        that configuration's cold result.
        """
        if warm_state is not None:
            if replay_accesses is not None and any(
                    c != replay_accesses for c in warm_state.trace_counts):
                raise WarmStateError(
                    f"warm state was captured with per-core trace counts "
                    f"{warm_state.trace_counts}, not the requested replay "
                    f"budget {replay_accesses}")
            self.restore_warm_state(warm_state)
        elif functional_warmup:
            self.functional_warmup(
                replay_accesses=(20_000 if replay_accesses is None
                                 else replay_accesses))
        for core in self.cores:
            core.start(warmup_insts, measure_insts)

    def finish(self) -> SystemResult:
        """Run the event loop until every core retires; gather metrics.

        Termination is exact — ``core_finished`` stops the engine at the
        retiring event itself — so the result is a pure function of the
        simulation state, however the caller sliced the event loop up to
        that point.  The stop is a one-shot request consumed by the
        slice that executes the retiring event: a caller that keeps
        running slices *afterwards* executes trailing post-retirement
        events (cores generate work indefinitely) and ``finish`` then
        reports that later state — don't slice past the stop if the
        result must match a straight-through run.  The drain predicate
        is only the safety net for a stop consumed by an earlier manual
        ``sim.run`` slice.
        """
        if self._finished < len(self.cores):
            self.sim.drain(lambda: self._finished >= len(self.cores),
                           check_every=1024)
        return self._result()

    def run(self, warmup_insts: int = 20_000,
            measure_insts: int = 200_000,
            functional_warmup: bool = True,
            replay_accesses: Optional[int] = None,
            warm_state: Optional[WarmState] = None) -> SystemResult:
        """Simulate until every core retires its budget; gather metrics.

        ``warmup_insts`` is the *timed* warm-up (queues, predictors, row
        buffers reach steady state; stats reset at its end); the functional
        warm-up handles cache contents (see :meth:`functional_warmup`).
        A ``warm_state`` replaces the functional warm-up with a restore
        of a previously captured image (see :meth:`capture_warm_state`);
        passing ``replay_accesses`` alongside it asserts the state was
        captured with that replay budget (see :meth:`begin`).
        """
        self.begin(warmup_insts, measure_insts,
                   functional_warmup=functional_warmup,
                   replay_accesses=replay_accesses, warm_state=warm_state)
        return self.finish()

    def _result(self) -> SystemResult:
        snap = self.metrics.snapshot()
        cs = snap["controller"]
        mm = snap["mainmem"]
        # Substrate totals: merge the per-channel groups, then derive.
        ds = self.controller.device.total_stats().snapshot()
        snap["substrate_total"] = ds
        # Topology rollups appear only where the topology is real, so the
        # default (flat, single-rank) metric tree keeps its exact key set.
        mmem = self.controller.mainmem
        if isinstance(mmem, BankedMainMemory):
            snap["mainmem_total"] = mmem.total_stats().snapshot()
        rank_totals = self.controller.device.rank_totals()
        if rank_totals:
            snap["rank_totals"] = {f"rank{j}": g.snapshot()
                                   for j, g in enumerate(rank_totals)}
        return SystemResult(
            design=self.design,
            organization=self.organization,
            xor_remap=self.xor_remap,
            benchmarks=[b.name for b in self.benchmarks],
            ipcs=[c.measured_ipc() for c in self.cores],
            elapsed_ps=self.sim.now,
            mean_read_latency_ps=cs["mean_read_latency_ps"],
            dram_read_hit_rate=cs["dram_read_hit_rate"],
            reads_done=cs["reads_done"],
            writebacks=cs["writebacks_submitted"],
            refills=cs["refills_submitted"],
            read_priority_inversions=cs["read_priority_inversions"],
            lr_ofs_issues=cs["lr_ofs_issues"],
            lr_drain_issues=cs["lr_drain_issues"],
            accesses_per_turnaround=ds["accesses_per_turnaround"],
            read_row_hit_rate=ds["read_row_hit_rate"],
            turnarounds=ds["turnarounds"],
            dram_accesses=ds["total_accesses"],
            l2_hit_rate=snap["l2"]["hit_rate"],
            mainmem_reads=mm["reads"],
            mainmem_writes=mm["writes"],
            lee_eager_writebacks=(snap["lee"]["eager_writebacks"]
                                  if "lee" in snap else 0),
            prefetch_issued=(snap["prefetch"]["issued"]
                             if "prefetch" in snap else 0),
            prefetch_useful=(snap["prefetch"]["useful"]
                             if "prefetch" in snap else 0),
            writebuf_drain_stalls=snap["writebuf"]["drain_stalls"],
            metrics=snap,
        )
