"""Replayable trace cursors: the snapshot layer's view of a workload.

Traces are infinite *generators* (``repro.workloads.generator`` and the
scenario frontends), which CPython can neither deep-copy nor pickle — so a
simulator holding raw generators can never be snapshotted.  The system
therefore consumes every trace through a :class:`TraceCursor`: a thin
iterator wrapper that remembers **how the stream was built** (the trace
source and its ``make_trace`` arguments) and **how far it has been
consumed**.  Because every trace source is deterministic by contract
(same source + same arguments ⇒ the identical stream — property-tested in
``tests/test_workloads.py``), a cursor can be reconstructed anywhere by
rebuilding the stream and fast-forwarding ``count`` operations:

* ``copy.deepcopy`` of a cursor yields an independent cursor at the same
  position whose future output is bit-identical (the snapshot/restore
  invariant);
* pickling a cursor ships only ``(source, kwargs, count)`` — a few bytes —
  and replays on load, so full-simulator snapshots stay process-portable.

Fast-forward cost is linear in ``count`` but trace generation is ~1 µs/op,
orders of magnitude below simulating the same ops, so replay never
dominates a restore.

Trace sources are required to be immutable (all shipped sources are frozen
dataclasses); cursors share them instead of copying, which also keeps a
:class:`~repro.workloads.scenarios.TraceFileWorkload`'s parsed ops tuple
shared across all cursors over one file.
"""

from __future__ import annotations

from typing import Any, Iterator


class TraceCursor:
    """A positioned, reconstructible iterator over one trace stream."""

    __slots__ = ("source", "kwargs", "count", "_it")

    def __init__(self, source: Any, **kwargs: Any):
        self.source = source
        self.kwargs = kwargs
        self.count = 0
        self._it: Iterator[tuple] = source.make_trace(**kwargs)

    def __iter__(self) -> "TraceCursor":
        return self

    def __next__(self) -> tuple:
        op = next(self._it)
        self.count += 1
        return op

    def skip(self, n: int) -> None:
        """Advance ``n`` operations without returning them (fast-forward)."""
        if n < 0:
            raise ValueError(f"cannot rewind a trace cursor by {n}")
        it = self._it
        for _ in range(n):
            next(it)
        self.count += n

    @classmethod
    def _rebuild(cls, source: Any, kwargs: dict, count: int) -> "TraceCursor":
        cur = cls(source, **kwargs)
        cur.skip(count)
        return cur

    def __deepcopy__(self, memo: dict) -> "TraceCursor":
        # The source is immutable by contract: share it.  Rebuild + replay
        # instead of copying the (uncopyable) live generator.
        cur = type(self)._rebuild(self.source, self.kwargs, self.count)
        memo[id(self)] = cur
        return cur

    def __reduce__(self):
        return (type(self)._rebuild, (self.source, self.kwargs, self.count))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = getattr(self.source, "name", type(self.source).__name__)
        return f"TraceCursor({name!r}, count={self.count})"
