"""Synthetic models of the paper's SPEC CPU2006 benchmarks.

The paper drives its evaluation with the 11 memory-intensive SPEC CPU2006
benchmarks appearing in Table I.  We cannot ship SPEC traces, so each
benchmark is modelled by the handful of memory-behaviour parameters that
the studied phenomena actually depend on:

* ``l2_apki`` — post-L1 cache accesses per kilo-instruction (memory
  intensity: how hard the mix presses on the DRAM cache);
* ``store_fraction`` — fraction of those that are stores (sets the dirty
  footprint and hence the writeback/refill pressure that creates LRs);
* ``seq_fraction`` / ``num_streams`` — streaming vs. pointer-chasing
  structure (sets row-buffer locality and bank-level parallelism);
* ``footprint_mb`` — working-set size at the paper's full scale (sets the
  DRAM-cache hit-rate regime; scaled together with the cache capacity).

Values are calibrated to the published memory characterisations of SPEC
CPU2006 (high-MPKI pointer-chasers: mcf, omnetpp; heavy streamers:
libquantum, lbm, bwaves, leslie3d, GemsFDTD; write-heavy: lbm, GemsFDTD,
leslie3d).  Absolute numbers are approximate by design — the evaluation
normalizes within a mix, so what matters is that the *spread* of
intensity, locality, and write share matches the paper's workload suite.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BenchmarkProfile:
    """Memory-behaviour summary of one benchmark (see module docstring)."""

    name: str
    l2_apki: float          # L2 accesses per 1000 instructions
    store_fraction: float   # P(access is a store)
    seq_fraction: float     # P(burst comes from a sequential stream)
    num_streams: int        # concurrent sequential walkers
    footprint_mb: float     # working set at full (paper) scale
    jump_prob: float = 0.002  # P(stream restarts at a random position)
    mean_burst: float = 6.0   # mean ops per access burst (loop-body clustering)

    def __post_init__(self):
        if not 0 < self.l2_apki <= 1000:
            raise ValueError(f"{self.name}: l2_apki out of range")
        for f in ("store_fraction", "seq_fraction"):
            v = getattr(self, f)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{self.name}: {f} must be in [0, 1]")
        if self.num_streams < 1:
            raise ValueError(f"{self.name}: need at least one stream")
        if self.footprint_mb <= 0:
            raise ValueError(f"{self.name}: footprint must be positive")

    @property
    def mean_gap_instructions(self) -> float:
        """Mean non-memory instructions between L2 accesses."""
        return 1000.0 / self.l2_apki

    @property
    def footprint_bytes(self) -> int:
        return int(self.footprint_mb * 2**20)

    def make_trace(self, seed: int = 0, core_offset: int = 0,
                   footprint_scale: float = 1.0):
        """Build this benchmark's access stream (the trace-source protocol).

        Every workload the system can run — synthetic profile, phased or
        adversarial scenario, trace-file replay — exposes ``name``,
        ``footprint_bytes``, ``store_fraction`` and this method; the
        :class:`repro.sim.system.System` only ever talks to that surface.
        """
        from repro.workloads.generator import make_trace
        return make_trace(self, seed=seed, core_offset=core_offset,
                          footprint_scale=footprint_scale)


#: The 11 benchmarks of the paper's Table I.
PROFILES: dict[str, BenchmarkProfile] = {p.name: p for p in [
    # pointer-chasing, very memory-intensive
    BenchmarkProfile("mcf",        l2_apki=45.0, store_fraction=0.15,
                     seq_fraction=0.10, num_streams=4, footprint_mb=320),
    BenchmarkProfile("omnetpp",    l2_apki=18.0, store_fraction=0.20,
                     seq_fraction=0.15, num_streams=3, footprint_mb=160),
    # heavy streamers
    BenchmarkProfile("libquantum", l2_apki=30.0, store_fraction=0.25,
                     seq_fraction=0.95, num_streams=2, footprint_mb=128),
    BenchmarkProfile("lbm",        l2_apki=28.0, store_fraction=0.45,
                     seq_fraction=0.90, num_streams=6, footprint_mb=256),
    BenchmarkProfile("bwaves",     l2_apki=16.0, store_fraction=0.25,
                     seq_fraction=0.90, num_streams=4, footprint_mb=208),
    BenchmarkProfile("leslie3d",   l2_apki=18.0, store_fraction=0.35,
                     seq_fraction=0.85, num_streams=5, footprint_mb=176),
    BenchmarkProfile("GemsFDTD",   l2_apki=22.0, store_fraction=0.35,
                     seq_fraction=0.80, num_streams=6, footprint_mb=224),
    # mixed
    BenchmarkProfile("milc",       l2_apki=20.0, store_fraction=0.30,
                     seq_fraction=0.40, num_streams=4, footprint_mb=192),
    BenchmarkProfile("soplex",     l2_apki=25.0, store_fraction=0.25,
                     seq_fraction=0.50, num_streams=4, footprint_mb=144),
    BenchmarkProfile("astar",      l2_apki=12.0, store_fraction=0.15,
                     seq_fraction=0.20, num_streams=2, footprint_mb=96),
    BenchmarkProfile("gcc",        l2_apki=8.0,  store_fraction=0.25,
                     seq_fraction=0.45, num_streams=3, footprint_mb=64),
]}


def profile(name: str) -> BenchmarkProfile:
    """Look up a benchmark profile by its SPEC name."""
    try:
        return PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; known: {sorted(PROFILES)}"
        ) from None
