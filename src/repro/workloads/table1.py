"""The paper's Table I: 30 four-core multiprogrammed workload mixes.

Transcribed verbatim from the paper (two mixes per table row, numbered
1..30 left-to-right, top-to-bottom).
"""

from __future__ import annotations

from repro.workloads.profiles import BenchmarkProfile, profile

#: mix id (1-based) -> the four benchmarks run on cores 0..3.
TABLE1_MIXES: dict[int, tuple[str, str, str, str]] = {
    1:  ("soplex", "mcf", "gcc", "libquantum"),
    2:  ("astar", "omnetpp", "GemsFDTD", "gcc"),
    3:  ("mcf", "soplex", "astar", "leslie3d"),
    4:  ("bwaves", "lbm", "libquantum", "leslie3d"),
    5:  ("omnetpp", "milc", "leslie3d", "astar"),
    6:  ("soplex", "astar", "lbm", "mcf"),
    7:  ("lbm", "omnetpp", "leslie3d", "bwaves"),
    8:  ("milc", "leslie3d", "omnetpp", "gcc"),
    9:  ("bwaves", "astar", "gcc", "leslie3d"),
    10: ("omnetpp", "libquantum", "mcf", "gcc"),
    11: ("gcc", "libquantum", "lbm", "soplex"),
    12: ("gcc", "leslie3d", "GemsFDTD", "soplex"),
    13: ("lbm", "libquantum", "omnetpp", "bwaves"),
    14: ("gcc", "mcf", "leslie3d", "milc"),
    15: ("omnetpp", "mcf", "leslie3d", "lbm"),
    16: ("libquantum", "lbm", "soplex", "astar"),
    17: ("milc", "libquantum", "bwaves", "GemsFDTD"),
    18: ("leslie3d", "astar", "libquantum", "bwaves"),
    19: ("lbm", "gcc", "mcf", "libquantum"),
    20: ("soplex", "astar", "GemsFDTD", "leslie3d"),
    21: ("GemsFDTD", "astar", "leslie3d", "libquantum"),
    22: ("libquantum", "milc", "lbm", "mcf"),
    23: ("lbm", "libquantum", "leslie3d", "bwaves"),
    24: ("milc", "leslie3d", "omnetpp", "bwaves"),
    25: ("bwaves", "astar", "GemsFDTD", "leslie3d"),
    26: ("gcc", "soplex", "libquantum", "milc"),
    27: ("omnetpp", "lbm", "leslie3d", "GemsFDTD"),
    28: ("soplex", "bwaves", "GemsFDTD", "leslie3d"),
    29: ("GemsFDTD", "leslie3d", "libquantum", "milc"),
    30: ("omnetpp", "bwaves", "leslie3d", "GemsFDTD"),
}


def mix_profiles(mix_id: int) -> list[BenchmarkProfile]:
    """The four :class:`BenchmarkProfile` objects of one Table I mix."""
    try:
        names = TABLE1_MIXES[mix_id]
    except KeyError:
        raise KeyError(f"mix id must be 1..30, got {mix_id}") from None
    return [profile(n) for n in names]


def mix_name(mix_id: int) -> str:
    """The paper's hyphenated mix label, e.g. ``soplex-mcf-gcc-libquantum``."""
    return "-".join(TABLE1_MIXES[mix_id])


def all_mix_ids() -> list[int]:
    return sorted(TABLE1_MIXES)
