"""Workloads: synthetic SPEC CPU2006 benchmark models and Table I mixes."""

from repro.workloads.profiles import BenchmarkProfile, PROFILES, profile
from repro.workloads.generator import make_trace
from repro.workloads.table1 import TABLE1_MIXES, mix_profiles, mix_name

__all__ = [
    "BenchmarkProfile",
    "PROFILES",
    "profile",
    "make_trace",
    "TABLE1_MIXES",
    "mix_profiles",
    "mix_name",
]
