"""Workloads: synthetic SPEC CPU2006 benchmark models, Table I mixes, and
sweepable scenarios (phased/adversarial generators, trace-file replay)."""

from repro.workloads.profiles import BenchmarkProfile, PROFILES, profile
from repro.workloads.generator import make_trace
from repro.workloads.table1 import TABLE1_MIXES, mix_profiles, mix_name
from repro.workloads.scenarios import (
    SCENARIOS,
    ConflictProfile,
    PhasedProfile,
    TraceFileWorkload,
    workload_names,
    workload_profiles,
)

__all__ = [
    "BenchmarkProfile",
    "PROFILES",
    "profile",
    "make_trace",
    "TABLE1_MIXES",
    "mix_profiles",
    "mix_name",
    "SCENARIOS",
    "ConflictProfile",
    "PhasedProfile",
    "TraceFileWorkload",
    "workload_names",
    "workload_profiles",
]
