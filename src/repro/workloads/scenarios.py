"""Workload scenarios beyond the paper's Table I: sweep-ready frontends.

Three trace sources complement the synthetic per-benchmark generator,
all implementing the trace-source protocol (``name``, ``footprint_bytes``,
``store_fraction``, ``make_trace``) that :class:`repro.sim.system.System`
consumes:

* :class:`PhasedProfile` — alternates between benchmark profiles every
  ``phase_accesses`` operations, modelling program phase changes that a
  single stationary profile cannot express (predictor re-training, hit
  regime shifts);
* :class:`ConflictProfile` — an adversarial generator that ping-pongs
  between rows mapping to the same bank, forcing a row conflict on nearly
  every access (worst case for open-row scheduling and RRC);
* :class:`TraceFileWorkload` — replays a recorded trace file, so real
  application traces plug into sweeps next to the synthetic models.

Named multi-core scenarios are registered in :data:`SCENARIOS` and
resolved by :func:`workload_profiles`, which also accepts the dynamic
``trace:<path>`` form.  The experiment layer references scenarios purely
by name (``RunSpec.workload``), keeping specs hashable and cacheable.

Trace-file format (one access per line, ``#`` comments and blank lines
ignored)::

    <gap_instructions> <address> <r|w|0|1> [pc]

Addresses and PCs accept decimal or ``0x`` hex.  The replay cycles when
the file is exhausted, so any budget can be simulated from any trace.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from functools import cached_property
from pathlib import Path
from typing import Iterator

from repro.workloads.generator import BLOCK
from repro.workloads.profiles import BenchmarkProfile, profile


# ------------------------------------------------------------------ phased

@dataclass(frozen=True)
class PhasedProfile:
    """Alternate between benchmark profiles every ``phase_accesses`` ops."""

    name: str
    phases: tuple[BenchmarkProfile, ...]
    phase_accesses: int = 4096

    def __post_init__(self):
        if not self.phases:
            raise ValueError(f"{self.name}: need at least one phase")
        if self.phase_accesses < 1:
            raise ValueError(f"{self.name}: phase_accesses must be positive")

    @property
    def footprint_bytes(self) -> int:
        """Largest phase footprint (prefill warms the superset)."""
        return max(p.footprint_bytes for p in self.phases)

    @property
    def store_fraction(self) -> float:
        return sum(p.store_fraction for p in self.phases) / len(self.phases)

    def make_trace(self, seed: int = 0, core_offset: int = 0,
                   footprint_scale: float = 1.0) -> Iterator[tuple]:
        # One persistent sub-generator per phase: walker positions survive
        # the round-robin, so returning to a phase resumes its streams.
        subs = [p.make_trace(seed=seed * 8191 + i + 1,
                             core_offset=core_offset,
                             footprint_scale=footprint_scale)
                for i, p in enumerate(self.phases)]

        def gen() -> Iterator[tuple]:
            while True:
                for sub in subs:
                    for _ in range(self.phase_accesses):
                        yield next(sub)
        return gen()


# ------------------------------------------------------------- adversarial

@dataclass(frozen=True)
class ConflictProfile:
    """Row-conflict adversary: bank revisits rarely find their row open.

    Round-robins over ``banks_touched`` slots spaced ``bank_stride_bytes``
    apart and rotates each slot through ``rows_per_bank`` row versions
    spaced ``row_stride_bytes`` apart.  The working set is therefore
    ``banks_touched * rows_per_bank`` rows, mutually far enough apart
    (strides are whole DRAM-row multiples) that they occupy distinct DRAM
    rows spread over few banks even after the cache-organization address
    translation — so consecutive visits to a bank keep evicting each
    other's open row.  This is the RRC/turnaround worst case the paper's
    machinery has to survive, expressible as a sweep axis.
    """

    name: str
    l2_apki: float = 40.0
    store_fraction: float = 0.30
    rows_per_bank: int = 4
    banks_touched: int = 16
    bank_stride_bytes: int = 4096          # next bank, same row (RoBaRaChCo)
    row_stride_bytes: int = 4096 * 64      # next row, same bank
    mean_burst: float = 4.0

    def __post_init__(self):
        if self.rows_per_bank < 2:
            raise ValueError(f"{self.name}: need >= 2 rows to conflict")
        if self.banks_touched < 1:
            raise ValueError(f"{self.name}: need >= 1 bank")

    @property
    def footprint_bytes(self) -> int:
        return self.row_stride_bytes * self.rows_per_bank

    def prefill_blocks(self) -> list[tuple[int, bool]]:
        """Exact warm set: every block of every (slot, row) the trace
        cycles through.  The pattern ignores capacity scaling, so the
        scaled contiguous prefill would leave most rows cold and turn
        the designed conflicts into compulsory misses."""
        rng = random.Random(0xC04F11C7)   # fixed: prefill is part of the spec
        blocks_per_slot = self.bank_stride_bytes // BLOCK
        out = []
        for r in range(self.rows_per_bank):
            for s in range(self.banks_touched):
                base = s * self.bank_stride_bytes + r * self.row_stride_bytes
                out.extend((base + b * BLOCK,
                            rng.random() < self.store_fraction)
                           for b in range(blocks_per_slot))
        return out

    def make_trace(self, seed: int = 0, core_offset: int = 0,
                   footprint_scale: float = 1.0) -> Iterator[tuple]:
        # footprint_scale is ignored deliberately: the adversary's power
        # is its address *pattern*, which capacity scaling must not bend.
        rng = random.Random(seed)
        mean_gap = 1000.0 / self.l2_apki

        def gen() -> Iterator[tuple]:
            bank = 0
            row = [0] * self.banks_touched
            pc = 0x600000
            while True:
                burst = 1 + int(rng.expovariate(1.0 / self.mean_burst))
                gap = max(0, int(rng.expovariate(1.0 / (mean_gap * burst))))
                for k in range(burst):
                    r = row[bank]
                    row[bank] = (r + 1) % self.rows_per_bank
                    addr = (core_offset + bank * self.bank_stride_bytes
                            + r * self.row_stride_bytes)
                    # touch a random block within the row: realistic CAS
                    # spread without granting any row-buffer hits
                    addr += (rng.randrange(self.bank_stride_bytes // BLOCK)
                             * BLOCK)
                    yield (gap if k == 0 else 1, addr,
                           rng.random() < self.store_fraction, pc + 64 * bank)
                    bank = (bank + 1) % self.banks_touched
        return gen()


# ------------------------------------------------------------- trace replay

@dataclass(frozen=True)
class TraceFileWorkload:
    """Cyclic replay of a recorded trace file (see module docstring)."""

    path: str
    label: str = ""

    @property
    def name(self) -> str:
        return self.label or Path(self.path).stem

    @cached_property
    def _ops(self) -> tuple[tuple, ...]:
        ops = []
        text = Path(self.path).read_text()
        for lineno, line in enumerate(text.splitlines(), start=1):
            line = line.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) not in (3, 4):
                raise ValueError(
                    f"{self.path}:{lineno}: expected 'gap addr r|w [pc]', "
                    f"got {line!r}")
            try:
                gap = int(parts[0], 0)
                addr = int(parts[1], 0)
                is_write = {"r": False, "0": False, "w": True, "1": True}[
                    parts[2].lower()]
                pc = int(parts[3], 0) if len(parts) == 4 else 0x700000
            except (ValueError, KeyError):
                raise ValueError(
                    f"{self.path}:{lineno}: malformed trace line {line!r}"
                ) from None
            if gap < 0 or addr < 0:
                raise ValueError(
                    f"{self.path}:{lineno}: negative gap/address")
            if addr >= 1 << 44:
                # The system gives each core a private 2^44-byte window
                # (core_offset = i << 44); a larger raw address would
                # alias into another core's window.  Recorded traces with
                # full virtual addresses must be rebased first.
                raise ValueError(
                    f"{self.path}:{lineno}: address {addr:#x} >= 2^44; "
                    f"rebase the trace to a per-core offset below 16 TiB")
            ops.append((gap, addr, is_write, pc))
        if not ops:
            raise ValueError(f"{self.path}: trace file holds no accesses")
        return tuple(ops)

    @property
    def footprint_bytes(self) -> int:
        """Volume of *distinct* blocks touched, not the address span.

        The warm-up prefill sizes its bulk fill from this, so a sparse
        trace (few blocks scattered over a wide range) must report what
        it actually touches — the max-address span of a recorded trace
        could be terabytes and would explode the prefill.
        """
        return len({op[1] // BLOCK for op in self._ops}) * BLOCK

    def prefill_blocks(self) -> list[tuple[int, bool]]:
        """The exact ``(block_addr, dirty)`` set the warm-up should seed.

        Recorded traces touch arbitrary addresses, not a contiguous range
        from the core base, so the generic contiguous prefill would warm
        blocks the trace never visits (and leave the real ones cold).
        The system prefers this hook when a workload provides it.  A
        block is dirty when the trace ever writes it.
        """
        dirty: dict[int, bool] = {}
        for _gap, addr, is_write, _pc in self._ops:
            block = (addr // BLOCK) * BLOCK
            dirty[block] = dirty.get(block, False) or is_write
        return sorted(dirty.items())

    @property
    def store_fraction(self) -> float:
        return sum(op[2] for op in self._ops) / len(self._ops)

    def make_trace(self, seed: int = 0, core_offset: int = 0,
                   footprint_scale: float = 1.0) -> Iterator[tuple]:
        # Replay is exact: neither the seed nor the footprint scale bends
        # recorded addresses; the seed only rotates the starting position
        # so co-scheduled copies of one trace don't run in lockstep.
        ops = self._ops
        start = seed % len(ops)

        def gen() -> Iterator[tuple]:
            i = start
            n = len(ops)
            while True:
                gap, addr, is_write, pc = ops[i]
                yield gap, core_offset + addr, is_write, pc
                i += 1
                if i == n:
                    i = 0
        return gen()


# ---------------------------------------------------------------- registry

def _storm(name: str, base: str) -> BenchmarkProfile:
    """A write-heavy variant of a profile: maximal writeback pressure."""
    b = profile(base)
    return replace(b, name=name, store_fraction=0.90,
                   l2_apki=max(b.l2_apki, 30.0))


#: Named multi-core workload scenarios, sweepable via ``RunSpec.workload``.
SCENARIOS: dict[str, tuple] = {
    # program phase changes: stream <-> pointer-chase alternation
    "phased_stream_chase": tuple(
        PhasedProfile(f"phased{i}", (profile("libquantum"), profile("mcf")))
        for i in range(4)),
    # every core write-dominated: continuous forced-flush pressure
    "adversarial_writeback": tuple(
        _storm(f"wbstorm{i}", base)
        for i, base in enumerate(("lbm", "GemsFDTD", "leslie3d", "lbm"))),
    # every access a row conflict: worst case for open-row scheduling
    "adversarial_conflict": tuple(
        ConflictProfile(f"conflict{i}") for i in range(4)),
    # one adversary next to three victims: interference scenario
    "conflict_vs_streams": (
        ConflictProfile("conflict0"), profile("libquantum"),
        profile("bwaves"), profile("leslie3d")),
}


def workload_names() -> list[str]:
    return sorted(SCENARIOS)


def workload_profiles(name: str) -> list:
    """Resolve a workload scenario name to its per-core trace sources.

    Accepts registered scenario names (:func:`workload_names`) and the
    dynamic ``trace:<path>`` form (single-core replay of a trace file).
    """
    if name.startswith("trace:"):
        path = name[len("trace:"):]
        if not path:
            raise ValueError("trace: workload needs a file path")
        return [TraceFileWorkload(path)]
    try:
        return list(SCENARIOS[name])
    except KeyError:
        raise KeyError(
            f"unknown workload scenario {name!r}; known: {workload_names()} "
            f"or 'trace:<path>'") from None
