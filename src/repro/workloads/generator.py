"""Synthetic memory-trace generation from benchmark profiles.

A trace is an infinite iterator of ``(gap_instructions, address, is_write,
pc)`` tuples — the post-L1 access stream one core feeds the shared L2.

Structure per profile:

* accesses arrive in **bursts** (loop bodies touching several lines before
  the next compute phase): a burst draws ``burst_len`` ops with tiny gaps,
  then a long inter-burst gap restores the profile's mean access rate.
  Burstiness is what makes controller scheduling *order* matter — it is
  exactly the paper's Fig. 4 scenario, where a run of demand reads is
  interrupted by a writeback's tag read;
* a ``seq_fraction`` of bursts come from ``num_streams`` concurrent
  sequential walkers, each striding one block at a time through its own
  slice of the footprint (row-buffer locality + bank-level parallelism);
  walkers occasionally jump to a random position (phase changes);
* the rest are uniform random accesses over the whole footprint
  (pointer-chasing);
* each walker has a stable fake PC and random accesses draw from a small
  PC pool, so the MAP-I predictor sees the per-instruction correlation it
  exploits in real workloads;
* stores are marked with profile probability, creating the dirty lines
  whose evictions become the writeback requests central to the paper.

Determinism: everything derives from one ``random.Random(seed)``; a given
(profile, seed, scale) triple always yields the identical trace.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.workloads.profiles import BenchmarkProfile

BLOCK = 64


def make_trace(profile: BenchmarkProfile, seed: int = 0,
               core_offset: int = 0,
               footprint_scale: float = 1.0) -> Iterator[tuple]:
    """Build the infinite access stream for one core.

    Parameters
    ----------
    profile:
        The benchmark model.
    seed:
        Trace RNG seed (per-core unique in multiprogrammed runs).
    core_offset:
        Added to every address: gives each core a private address space
        (the paper's workloads are multiprogrammed, not shared-memory).
    footprint_scale:
        Multiplies the footprint; use the inverse of the config's capacity
        scale so hit-rate regimes are preserved in scaled runs.
    """
    if footprint_scale <= 0:
        raise ValueError("footprint_scale must be positive")
    rng = random.Random(seed)
    footprint_blocks = max(1024, int(
        profile.footprint_bytes * footprint_scale) // BLOCK)
    mean_gap = profile.mean_gap_instructions
    # Never more walkers than blocks: a tiny scaled footprint must not
    # produce zero-width segments (randrange(0) raises).
    n_streams = min(profile.num_streams, footprint_blocks)

    # Each walker owns one contiguous segment of the footprint.  The
    # boundaries tile [0, footprint_blocks) exactly, so the tail blocks a
    # truncating ``footprint_blocks // n_streams`` split would strand are
    # reachable by the last walker.
    seg_start = [footprint_blocks * s // n_streams for s in range(n_streams)]
    seg_len = [footprint_blocks * (s + 1) // n_streams - seg_start[s]
               for s in range(n_streams)]
    stream_pos = [rng.randrange(seg_len[s]) for s in range(n_streams)]
    stream_pc = [0x400000 + 64 * s for s in range(n_streams)]
    random_pcs = [0x500000 + 64 * i for i in range(8)]

    seq_fraction = profile.seq_fraction
    store_fraction = profile.store_fraction
    jump_prob = profile.jump_prob
    mean_burst = profile.mean_burst
    expovariate = rng.expovariate
    random_u = rng.random
    randrange = rng.randrange

    def gen() -> Iterator[tuple]:
        while True:
            # One burst: several ops close together, then a long gap that
            # restores the profile's mean inter-access distance.
            burst_len = 1 + int(expovariate(1.0 / mean_burst))
            head_gap = max(0, int(expovariate(1.0 / (mean_gap * burst_len))))
            sequential = random_u() < seq_fraction
            if sequential:
                s = randrange(n_streams)
                if random_u() < jump_prob:
                    stream_pos[s] = randrange(seg_len[s])
                pc = stream_pc[s]
            for k in range(burst_len):
                gap = head_gap if k == 0 else randrange(1, 3)
                if sequential:
                    pos = stream_pos[s]
                    stream_pos[s] = (pos + 1) % seg_len[s]
                    block = seg_start[s] + pos
                else:
                    block = randrange(footprint_blocks)
                    pc = random_pcs[block & 7]
                addr = core_offset + block * BLOCK
                is_write = random_u() < store_fraction
                yield gap, addr, is_write, pc

    return gen()
