"""System configuration: the paper's Table II, expressed in integer picoseconds.

Every latency in the simulator is an integer number of picoseconds.  Using a
single integer timeline avoids floating-point drift when composing DRAM
timing constraints, and makes event ordering exact and deterministic.

Two stock configurations are provided:

* :func:`paper_config` — the exact Table II system (4 GHz cores, 8 MB L2,
  256 MB stacked-DRAM cache, 4 channels x 16 banks, 4 KB rows).
* :func:`scaled_config` — the same system with capacities scaled down so a
  full multiprogrammed simulation finishes in seconds of host time.  The
  paper notes DCA "is not sensitive to the cache size" (it improves
  scheduling, not hit rate), so scaling capacity while keeping the row
  layout, queue sizes and timings identical preserves the phenomena being
  studied (priority inversion, RRC, turnarounds, flush latency).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, replace
from functools import cached_property
from typing import Any, Iterable, Mapping, Union

PS_PER_NS = 1000

#: Convert nanoseconds (possibly fractional, e.g. 3.33) to integer picoseconds.
def ns(v: float) -> int:
    """Convert nanoseconds to integer picoseconds (rounded)."""
    return round(v * PS_PER_NS)


@dataclass(frozen=True)
class DRAMTimings:
    """DRAM timing parameters in picoseconds (paper Table II).

    The stacked-DRAM part uses timings "half-way between today's latency and
    the predicted latency" following Sim et al. (MICRO'12), as the paper
    does.  A DDR3-1600 set is provided for the off-chip comparison point and
    for tests.

    tRRD, tFAW, tREFI and tRFC are **rank-level constraints** consumed
    only by the command-level substrate model (``fidelity="command"``;
    see :class:`SubstrateConfig` and :mod:`repro.dram.command`).  The
    burst-granular default model ignores them, so they default to 0
    ("unconstrained") and a value of 0 keeps the corresponding mechanism
    off even at command fidelity.

    ``tCS`` is the rank-to-rank data-bus turnaround (gem5's
    different-rank bus delay): a burst targeting a different rank than
    the previous burst on the channel may not start earlier than ``tCS``
    after the bus frees.  It applies at *both* fidelities (it is a bus
    constraint, not a command constraint) and defaults to 0, which is
    exact for the single-rank stacked part.
    """

    tRCD: int    # ACT -> CAS (row to column delay)
    tCAS: int    # CAS -> first data (column access strobe / CL)
    tRP: int     # PRE -> ACT (row precharge)
    tRAS: int    # ACT -> PRE (row active minimum)
    tWTR: int    # end of write data -> read command (bus turnaround W->R)
    tRTP: int    # read CAS -> PRE
    tRTW: int    # read -> write command (bus turnaround R->W)
    tWR: int     # end of write data -> PRE (write recovery)
    tBURST: int  # data burst duration on the bus
    tRRD: int = 0    # ACT -> ACT, same rank (0 = unconstrained)
    tFAW: int = 0    # window admitting at most four ACTs per rank (0 = off)
    tREFI: int = 0   # average periodic refresh interval (0 = no refresh)
    tRFC: int = 0    # refresh cycle time: rank blackout per refresh
    tCS: int = 0     # rank-to-rank bus turnaround (0 = free rank switch)

    def __post_init__(self) -> None:
        # A typo'd timing (0, negative, or tRFC swallowing the whole
        # refresh interval) used to silently produce garbage results;
        # reject it at construction instead.
        for name in ("tRCD", "tCAS", "tRP", "tRAS", "tWTR", "tRTP",
                     "tRTW", "tWR", "tBURST"):
            if getattr(self, name) <= 0:
                raise ValueError(
                    f"DRAMTimings.{name} must be a positive picosecond "
                    f"count, got {getattr(self, name)!r}")
        for name in ("tRRD", "tFAW", "tREFI", "tRFC", "tCS"):
            if getattr(self, name) < 0:
                raise ValueError(
                    f"DRAMTimings.{name} must be >= 0 (0 disables it), "
                    f"got {getattr(self, name)!r}")
        if self.tFAW and self.tRRD and self.tFAW < self.tRRD:
            raise ValueError(
                f"tFAW ({self.tFAW}) spans four ACTs and cannot be "
                f"shorter than one ACT-to-ACT gap tRRD ({self.tRRD})")
        if self.tREFI and self.tRFC >= self.tREFI:
            raise ValueError(
                f"tRFC ({self.tRFC}) must be smaller than the refresh "
                f"interval tREFI ({self.tREFI}) or refresh starves the rank")
        if self.tREFI and not self.tRFC:
            raise ValueError("tREFI is set but tRFC is 0: a refresh with "
                             "no cycle time models nothing")

    @classmethod
    def stacked(cls) -> "DRAMTimings":
        """Die-stacked (wide-IO-like) timings from Table II."""
        return cls(
            tRCD=ns(8), tCAS=ns(8), tRP=ns(8), tRAS=ns(30),
            tWTR=ns(5), tRTP=ns(7.5), tRTW=ns(1.67),
            tWR=ns(15), tBURST=ns(3.33),
            tRRD=ns(5), tFAW=ns(25), tREFI=ns(3900), tRFC=ns(120),
        )

    @classmethod
    def ddr3_1600(cls) -> "DRAMTimings":
        """Conventional DDR3-1600-like timings (for tests / off-chip model)."""
        return cls(
            tRCD=ns(13.75), tCAS=ns(13.75), tRP=ns(13.75), tRAS=ns(35),
            tWTR=ns(7.5), tRTP=ns(7.5), tRTW=ns(2.5),
            tWR=ns(15), tBURST=ns(5),
            tRRD=ns(6), tFAW=ns(30), tREFI=ns(7800), tRFC=ns(160),
            tCS=ns(2.5),
        )

    @property
    def tCK(self) -> int:
        """Command-clock period implied by the burst duration (BL8: a
        64 B burst is 4 clocks of double-data-rate transfers), floored
        at 1 ps.  Used to size the event engine's calendar buckets —
        every timing constraint is a small multiple of this.
        """
        return max(1, self.tBURST // 4)

    def row_miss_penalty(self) -> int:
        """Cost of ACT+CAS on a closed row (excludes burst)."""
        return self.tRCD + self.tCAS

    def row_conflict_penalty(self) -> int:
        """Cost of PRE+ACT+CAS on a conflicting open row (excludes burst)."""
        return self.tRP + self.tRCD + self.tCAS


#: Substrate fidelities and page policies accepted by SubstrateConfig.
SUBSTRATE_FIDELITIES = ("burst", "command")
PAGE_POLICIES = ("open", "closed", "timeout")


@dataclass(frozen=True)
class SubstrateConfig:
    """Which DRAM substrate model the controllers schedule onto.

    ``fidelity="burst"`` is the access-granular model every controller
    comparison uses by default (fast, the paper's operating point);
    ``fidelity="command"`` swaps in :class:`repro.dram.command.CommandChannel`,
    which additionally enforces per-rank ACT throttling (tRRD spacing and
    the four-ACT tFAW window), periodic refresh (tREFI scheduling with a
    tRFC rank blackout and postpone accounting) and a configurable row
    page policy.  Both implement the same :class:`repro.dram.substrate.Substrate`
    protocol, so every layer above is fidelity-agnostic and a sweep axis
    like ``substrate.fidelity=burst,command`` just works.

    ``page_policy`` and ``refresh`` only take effect at command fidelity
    (the burst model is open-page, refresh-free by construction).
    """

    fidelity: str = "burst"
    page_policy: str = "open"
    refresh: bool = True
    #: idle time after which the "timeout" policy auto-precharges a row
    page_timeout_ps: int = ns(200)

    def __post_init__(self) -> None:
        if self.fidelity not in SUBSTRATE_FIDELITIES:
            raise ValueError(
                f"unknown substrate fidelity {self.fidelity!r}; "
                f"known: {SUBSTRATE_FIDELITIES}")
        if self.page_policy not in PAGE_POLICIES:
            raise ValueError(
                f"unknown page policy {self.page_policy!r}; "
                f"known: {PAGE_POLICIES}")
        if self.page_timeout_ps <= 0:
            raise ValueError(
                f"page_timeout_ps must be positive, got "
                f"{self.page_timeout_ps!r}")


#: Address-interleave policies accepted by DRAMOrganization (implemented
#: in repro.dram.address; the name tuple lives here so bad sweep specs
#: die at config construction, before any machinery is built).
INTERLEAVE_POLICIES = ("robarachco", "rorabachco", "chxor")

#: Victim-selection policies accepted by CacheGeometry and
#: DRAMOrganization (implemented in repro.cache.replacement; the name
#: tuple lives here, like INTERLEAVE_POLICIES, so bad sweep specs die at
#: config construction).  "lru" is plain least-recently-used; "lruc"
#: prefers the LRU *clean* way (dirty ways cost a writeback, gem5's
#: writeback-aware variants); "lrud" prefers the LRU *dirty* way
#: (harvest writebacks early so they batch, Lee-style).
REPLACEMENT_POLICIES = ("lru", "lruc", "lrud")


@dataclass(frozen=True)
class DRAMOrganization:
    """Geometry of one DRAM level (stacked cache or off-chip memory).

    ``row_bytes`` is the row-buffer size.  ``interleave`` names the
    address bit-slicing policy (see :mod:`repro.dram.address`):

    * ``"robarachco"`` — the paper's Table II layout
      (row : bank : rank : channel : column, MSB to LSB);
    * ``"rorabachco"`` — rank above bank
      (row : rank : bank : channel : column);
    * ``"chxor"`` — RoBaRaChCo with the channel index XOR-folded with
      low row bits (permutation channel hashing).

    Geometry is validated at construction — a non-power-of-two channel/
    rank/bank count or a malformed row layout raises here, so a bad
    sweep spec dies at expansion time, not deep inside a worker build.
    """

    channels: int = 4
    ranks_per_channel: int = 1
    banks_per_rank: int = 16
    row_bytes: int = 4096
    block_bytes: int = 64
    interleave: str = "robarachco"
    #: victim-selection policy of the set-associative DRAM-cache
    #: organization (see repro.cache.replacement); sweepable as
    #: ``org.replacement``.  Direct-mapped placement has no choice and
    #: ignores it.
    replacement: str = "lru"

    def __post_init__(self) -> None:
        for name in ("channels", "ranks_per_channel", "banks_per_rank",
                     "row_bytes", "block_bytes"):
            v = getattr(self, name)
            if v <= 0 or v & (v - 1):
                raise ValueError(
                    f"DRAMOrganization.{name} must be a positive power "
                    f"of two, got {v!r}")
        if self.row_bytes < self.block_bytes:
            raise ValueError(
                f"row_bytes ({self.row_bytes}) must hold at least one "
                f"block ({self.block_bytes} bytes)")
        if self.interleave not in INTERLEAVE_POLICIES:
            raise ValueError(
                f"unknown interleave policy {self.interleave!r}; "
                f"known: {INTERLEAVE_POLICIES}")
        if self.replacement not in REPLACEMENT_POLICIES:
            raise ValueError(
                f"unknown replacement policy {self.replacement!r}; "
                f"known: {REPLACEMENT_POLICIES}")

    @property
    def total_banks(self) -> int:
        return self.channels * self.ranks_per_channel * self.banks_per_rank

    @property
    def blocks_per_row(self) -> int:
        return self.row_bytes // self.block_bytes


@dataclass(frozen=True)
class QueueConfig:
    """Per-channel controller queue sizes and watermarks (Table II).

    The read queue holds 64 entries (32 for ROD, which also carries the
    writeback-request read-tags in its 96-entry write queue).  The write
    queue drains between a low watermark (50 %) and a forced-flush high
    watermark (85 %).  DCA's low-priority-read drain uses the Algorithm 1
    hysteresis: start draining all reads above 85 % occupancy, stop below
    75 %.
    """

    read_entries: int = 64
    write_entries: int = 64
    write_low_watermark: float = 0.50
    write_high_watermark: float = 0.85
    lr_drain_high: float = 0.85   # DCA Algorithm 1: ScheduleAll=True above this
    lr_drain_low: float = 0.75    # DCA Algorithm 1: ScheduleAll=False below this
    #: per-channel issue window: how many accesses may be committed but not
    #: yet completed.  >1 lets bank preparations (PRE/ACT) of different
    #: banks overlap in-flight bursts, modelling command-level pipelining;
    #: small enough that scheduling stays reactive at burst granularity.
    issue_window: int = 8
    #: once an opportunistic (bus-idle) write drain begins, at least this
    #: many writes issue before an arriving read may preempt it: write-mode
    #: excursions must amortize their two turnarounds.
    opportunistic_min_batch: int = 8
    #: latency of serving a read from the write buffer (forwarding): reads
    #: that hit a pending writeback/refill never touch the DRAM array
    #: (standard write buffering, paper §II-C ref [10]).
    forward_latency_ps: int = 2000

    @classmethod
    def for_design(cls, design: str) -> "QueueConfig":
        """Table II sizes per design: ROD gets 32-read/96-write queues."""
        if design.upper() == "ROD":
            return cls(read_entries=32, write_entries=96)
        return cls()


@dataclass(frozen=True)
class BLISSConfig:
    """BLISS blacklisting scheduler parameters (Subramanian et al.)."""

    blacklist_threshold: int = 4        # consecutive requests before blacklisting
    clearing_interval_ps: int = ns(10_000)  # blacklist cleared every 10 us


@dataclass(frozen=True)
class DCAConfig:
    """DCA-specific knobs: RRPC counter width and OFS flushing factor."""

    rrpc_bits: int = 3
    rrpc_max: int = 7
    flushing_factor: int = 4   # FF-4, the paper's operating point


@dataclass(frozen=True)
class CacheGeometry:
    """Geometry of one SRAM cache level."""

    size_bytes: int
    assoc: int
    block_bytes: int = 64
    latency_cycles: int = 1
    #: victim-selection policy (see REPLACEMENT_POLICIES); sweepable as
    #: ``l2.replacement``.
    replacement: str = "lru"

    def __post_init__(self) -> None:
        if self.replacement not in REPLACEMENT_POLICIES:
            raise ValueError(
                f"unknown replacement policy {self.replacement!r}; "
                f"known: {REPLACEMENT_POLICIES}")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.assoc * self.block_bytes)


@dataclass(frozen=True)
class DRAMCacheGeometry:
    """Geometry of the stacked-DRAM cache (L3).

    ``data_capacity`` reflects the tags-in-DRAM overhead: for the paper's
    256 MB cache, 240 MB holds data (the "1/15 way" line in Table II: the
    direct-mapped organization stores 1 way per tag-and-data unit, the
    set-associative organization 15 ways per tag block).
    """

    size_bytes: int = 256 * 2**20
    block_bytes: int = 64
    sa_ways: int = 15          # set-associative organization (Loh-Hill style)
    row_bytes: int = 4096

    # cached_property (not property): these sit on the per-access hot
    # path of the functional array, and a frozen dataclass still allows
    # the cache write because cached_property stores straight into
    # ``__dict__`` without going through the blocked ``__setattr__``.
    @cached_property
    def data_capacity(self) -> int:
        """Usable data bytes: 15/16 of raw capacity (1 tag block per 15 data)."""
        return self.size_bytes * 15 // 16

    @cached_property
    def sa_sets(self) -> int:
        """Number of sets in the set-associative organization.

        Each 4 KB row holds 4 sets of (1 tag block + 15 data blocks).
        """
        return self.data_capacity // (self.block_bytes * self.sa_ways)

    @cached_property
    def dm_entries(self) -> int:
        """Number of block entries in the direct-mapped organization.

        Alloy-style TADs (tag-and-data, ~72 B) pack 56 per 4 KB row; we use
        the same 15/16 usable fraction = 60 blocks/row for geometry parity
        with the set-associative layout so both organizations cache the
        same number of bytes.
        """
        return self.data_capacity // self.block_bytes


#: Prefetcher kinds accepted by PrefetchConfig (implemented in
#: repro.mem.prefetch; "none" keeps the prefetcher entirely out of the
#: system build, the default and the paper's operating point).
PREFETCH_KINDS = ("none", "nextline", "stride")


@dataclass(frozen=True)
class PrefetchConfig:
    """L2 hardware prefetcher feeding the DRAM cache.

    ``mshr_entries`` is the prefetch partition of the MSHR file, carved
    *out of* ``SystemConfig.l2_mshrs`` (Sniper's prefetch-MSHR
    contention model): with the default 32 MSHRs and 8 prefetch entries,
    demand misses keep 24 slots and speculative traffic can never stall
    a demand miss.  Sweepable as ``prefetch.kind``, ``prefetch.degree``,
    ``prefetch.mshr_entries``, ...
    """

    kind: str = "none"
    degree: int = 1            # candidate blocks per trigger
    mshr_entries: int = 8      # prefetch MSHR partition (taken from l2_mshrs)
    table_entries: int = 64    # stride: per-PC table slots (direct-mapped)
    min_confidence: int = 2    # stride: repeats before issuing

    def __post_init__(self) -> None:
        if self.kind not in PREFETCH_KINDS:
            raise ValueError(
                f"unknown prefetcher kind {self.kind!r}; "
                f"known: {PREFETCH_KINDS}")
        for name in ("degree", "mshr_entries", "table_entries",
                     "min_confidence"):
            if getattr(self, name) < 1:
                raise ValueError(
                    f"PrefetchConfig.{name} must be >= 1, "
                    f"got {getattr(self, name)!r}")


#: Write-buffer drain policies accepted by WriteBufferConfig
#: (implemented in repro.mem.writebuffer).
WRITEBUF_POLICIES = ("full", "watermark", "idle")


@dataclass(frozen=True)
class WriteBufferConfig:
    """Bounded L2 write buffer between dirty evictions and the controller.

    ``depth=0`` (default) is unbounded pass-through — every writeback
    goes straight to the controller, bit-identical to a system without
    the buffer.  A positive depth bounds the buffer and ``policy``
    selects when it drains: ``"full"`` bursts the whole buffer when an
    arrival finds it full; ``"watermark"`` drains from the high to the
    low watermark; ``"idle"`` drains after ``idle_ps`` without arrivals.
    Sweepable as ``writebuf.depth``, ``writebuf.policy``, ...
    """

    depth: int = 0
    policy: str = "watermark"
    high_watermark: float = 0.75
    low_watermark: float = 0.25
    idle_ps: int = ns(100)

    def __post_init__(self) -> None:
        if self.depth < 0:
            raise ValueError(
                f"WriteBufferConfig.depth must be >= 0 (0 = pass-through), "
                f"got {self.depth!r}")
        if self.policy not in WRITEBUF_POLICIES:
            raise ValueError(
                f"unknown write-buffer policy {self.policy!r}; "
                f"known: {WRITEBUF_POLICIES}")
        if not (0.0 <= self.low_watermark < self.high_watermark <= 1.0):
            raise ValueError(
                f"write-buffer watermarks must satisfy 0 <= low < high <= 1, "
                f"got low={self.low_watermark!r} high={self.high_watermark!r}")
        if self.idle_ps <= 0:
            raise ValueError(
                f"WriteBufferConfig.idle_ps must be positive, "
                f"got {self.idle_ps!r}")


@dataclass(frozen=True)
class CPUConfig:
    """Core model parameters (paper Table II: 4 GHz, 8-wide, 192 ROB)."""

    freq_ghz: float = 4.0
    width: int = 8
    rob_entries: int = 192
    max_outstanding_misses: int = 16   # per-core MSHR / MLP bound
    l2_hit_stall_fraction: float = 0.5  # fraction of L2 hit latency the OoO core cannot hide

    @property
    def cycle_ps(self) -> int:
        return round(1000 / self.freq_ghz)


#: Main-memory models accepted by MainMemoryConfig.
MAINMEM_MODELS = ("flat", "banked")


def _ddr3_mainmem_org() -> DRAMOrganization:
    """DDR3-1600 x64 geometry from the gem5 exemplar (8x8 devices).

    Two channels of two ranks x 8 banks; each rank's row buffer is
    1 KB per device x 8 devices = 8 KB.
    """
    return DRAMOrganization(channels=2, ranks_per_channel=2,
                            banks_per_rank=8, row_bytes=8192)


@dataclass(frozen=True)
class MainMemoryConfig:
    """Off-chip memory below the DRAM cache.

    Two models, selected by ``model`` (sweepable as ``mainmem.model``):

    * ``"flat"`` (default, the paper's operating point) — a flat 50 ns
      access behind a 2 GHz / 64-bit bus; contention for that single
      bus is the only queuing effect.
    * ``"banked"`` — a real N-channel x M-rank banked device built from
      the same parts as the stacked cache: ``org`` + ``timings`` +
      per-channel substrate channels via
      :func:`repro.dram.substrate.make_channel`, with DDR3-1600
      defaults from the gem5 exemplar (including the ``tCS``
      rank-to-rank bus turnaround).  ``substrate`` selects the channel
      fidelity (burst default; ``mainmem.substrate.fidelity=command``
      adds refresh + rank throttling off-chip too).

    ``org``/``timings``/``substrate`` only take effect for the banked
    model; the flat model reads ``latency_ps`` and the bus parameters.
    """

    latency_ps: int = ns(50)
    bus_ghz: float = 2.0
    bus_bits: int = 64
    block_bytes: int = 64
    model: str = "flat"
    org: DRAMOrganization = field(default_factory=_ddr3_mainmem_org)
    timings: DRAMTimings = field(default_factory=DRAMTimings.ddr3_1600)
    substrate: SubstrateConfig = field(default_factory=SubstrateConfig)

    def __post_init__(self) -> None:
        if self.model not in MAINMEM_MODELS:
            raise ValueError(
                f"unknown main-memory model {self.model!r}; "
                f"known: {MAINMEM_MODELS}")
        if self.latency_ps <= 0:
            raise ValueError(
                f"latency_ps must be positive, got {self.latency_ps!r}")

    @property
    def bus_occupancy_ps(self) -> int:
        """Time one 64 B block occupies the off-chip bus (flat model)."""
        transfers = self.block_bytes * 8 // self.bus_bits
        return round(transfers * 1000 / self.bus_ghz)


@dataclass(frozen=True)
class SystemConfig:
    """Top-level bundle of all parameters (Table II)."""

    cpu: CPUConfig = field(default_factory=CPUConfig)
    l1: CacheGeometry = field(default_factory=lambda: CacheGeometry(
        size_bytes=32 * 2**10, assoc=2, latency_cycles=2))
    l2: CacheGeometry = field(default_factory=lambda: CacheGeometry(
        size_bytes=8 * 2**20, assoc=16, latency_cycles=20))
    dram_cache: DRAMCacheGeometry = field(default_factory=DRAMCacheGeometry)
    timings: DRAMTimings = field(default_factory=DRAMTimings.stacked)
    org: DRAMOrganization = field(default_factory=DRAMOrganization)
    substrate: SubstrateConfig = field(default_factory=SubstrateConfig)
    queues: QueueConfig = field(default_factory=QueueConfig)
    bliss: BLISSConfig = field(default_factory=BLISSConfig)
    dca: DCAConfig = field(default_factory=DCAConfig)
    mainmem: MainMemoryConfig = field(default_factory=MainMemoryConfig)
    prefetch: PrefetchConfig = field(default_factory=PrefetchConfig)
    writebuf: WriteBufferConfig = field(default_factory=WriteBufferConfig)
    num_cores: int = 4
    l2_mshrs: int = 32
    #: True once queue parameters were set explicitly (e.g. by a sweep
    #: override); the controller then keeps them instead of substituting
    #: the per-design Table II defaults.
    queues_explicit: bool = False

    def with_queues_for(self, design: str) -> "SystemConfig":
        """Return a copy with the per-design queue sizes from Table II."""
        return replace(self, queues=QueueConfig.for_design(design))

    def with_overrides(
            self,
            overrides: Union[Mapping[str, Any],
                             Iterable[tuple[str, Any]]]) -> "SystemConfig":
        """Return a copy with dotted-path fields replaced.

        ``overrides`` is a mapping or sequence of ``(path, value)`` pairs
        where ``path`` navigates nested config dataclasses, e.g.
        ``"queues.read_entries"``, ``"org.channels"``,
        ``"queues.write_high_watermark"``.  Values are coerced to the type
        of the field they replace (so a sweep axis of ``64`` can target a
        float watermark without producing a distinct-but-equal config).
        Any override under ``queues.`` marks the result
        :attr:`queues_explicit`, which stops the controller from
        re-applying the per-design queue defaults on top.
        """
        items = overrides.items() if hasattr(overrides, "items") else overrides
        cfg = self
        queues_touched = False
        for path, value in items:
            cfg = _replace_path(cfg, path, value)
            if path.startswith("queues."):
                queues_touched = True
        if queues_touched:
            cfg = replace(cfg, queues_explicit=True)
        return cfg


def coerce_bool(value: object) -> bool:
    """Canonicalise a bool spelled as bool, 0/1, or 'true'/'false'.

    The single bool-coercion rule shared by config overrides and sweep
    axes, so the accepted spellings cannot drift between surfaces.
    """
    if isinstance(value, bool):
        return value
    if isinstance(value, str) and value.lower() in ("true", "false"):
        return value.lower() == "true"
    if isinstance(value, int) and value in (0, 1):
        return bool(value)
    raise ValueError(f"cannot interpret {value!r} as a bool")


def _coerce(current: Any, value: Any) -> Any:
    """Coerce an override value to the type of the field it replaces."""
    if isinstance(current, bool):
        return coerce_bool(value)
    if isinstance(current, int):
        if isinstance(value, bool):
            raise ValueError(f"{value!r} is a bool, not a count")
        if float(value) != int(value):
            raise ValueError(f"{value!r} is not a whole number")
        return int(value)
    if isinstance(current, float):
        return float(value)
    if isinstance(current, str) and value is None:
        # The sweep CLI reads the axis token "none" as Python None; for
        # a string policy field (prefetch.kind=none) it means the
        # literal name, not a null.
        return "none"
    return type(current)(value)


def _replace_path(obj: Any, path: str, value: Any) -> Any:
    """Functional deep-replace along a dotted dataclass field path.

    Only declared dataclass *fields* are addressable (not properties or
    arbitrary attributes — ``replace()`` couldn't set those anyway), and
    a path that tries to descend into a scalar fails with the same
    ValueError vocabulary as an unknown field, so sweep axes always get
    an actionable usage error instead of a worker-side TypeError.
    """
    first, _, rest = path.partition(".")
    if not dataclasses.is_dataclass(obj):
        raise ValueError(
            f"config path segment {first!r} descends into "
            f"{type(obj).__name__}, which is a scalar, not a config group")
    names = [f.name for f in dataclasses.fields(obj)]
    if first not in names:
        raise ValueError(
            f"unknown config field {first!r} on {type(obj).__name__}; "
            f"known: {names}")
    if rest:
        return replace(obj, **{first: _replace_path(
            getattr(obj, first), rest, value)})
    current = getattr(obj, first)
    if dataclasses.is_dataclass(current):
        raise ValueError(
            f"config path {path!r} names a group, not a scalar field; "
            f"pick one of its fields: "
            f"{[f.name for f in dataclasses.fields(current)]}")
    return replace(obj, **{first: _coerce(current, value)})


def paper_config() -> SystemConfig:
    """The exact Table II configuration."""
    return SystemConfig()


def scaled_config(scale: int = 8) -> SystemConfig:
    """Capacity-scaled configuration for fast simulation.

    Divides L2 and DRAM-cache capacity by ``scale`` while keeping block
    size, row layout, way counts, queue sizes, and all timings identical.
    Workload footprints in :mod:`repro.workloads` are scaled by the same
    factor, so hit rates and per-row access patterns are preserved.
    """
    base = SystemConfig()
    return replace(
        base,
        l2=replace(base.l2, size_bytes=base.l2.size_bytes // scale),
        dram_cache=replace(base.dram_cache,
                           size_bytes=base.dram_cache.size_bytes // scale),
    )
