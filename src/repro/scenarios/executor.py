"""Sweep execution: shard selection, checkpointing store, result surfacing.

:func:`run_sweep` drives a compiled :class:`~repro.scenarios.spec.SweepSpec`
through the same machinery the paper figures use — ``run_grid`` over a
process pool with a versioned :class:`ResultStore` — adding the sweep
manifest as a per-point checkpoint: the store's ``store()`` hook marks the
manifest after each point is cached, so progress survives any interruption
at point granularity.

Results are surfaced in the metrics-registry snapshot format: the sweep
artefact (``<out>/<name>/results.json``) carries, per point, the axis
assignment plus the full ``SystemResult`` cache dict — the same
schema-versioned payload the figure cache and BENCH artefacts read — so
downstream tooling needs exactly one result schema.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.experiments.common import (
    GridExecutionError,
    ResultStore,
    RunSpec,
    SimParams,
    atomic_write_json,
    format_table,
    run_grid,
)
from repro.scenarios.manifest import SweepManifest
from repro.scenarios.spec import SweepPoint, SweepSpec
from repro.sim.system import RESULT_SCHEMA_VERSION, SystemResult

#: Version of the sweep results.json payload (the per-point result dicts
#: inside are versioned separately by RESULT_SCHEMA_VERSION).
SWEEP_SCHEMA_VERSION = 1


class CheckpointingStore(ResultStore):
    """ResultStore that marks the sweep manifest as each point lands.

    ``store()`` is called by ``run_grid`` the moment a point finishes, so
    chaining the manifest update here gives point-granular checkpoints
    without touching the grid executor.  ``executed`` counts real
    simulations (cache hits never reach ``store``), which is how the
    resume test distinguishes served-from-cache from re-run.
    """

    def __init__(self, manifest: SweepManifest, cache_dir=None,
                 enabled: bool = True):
        super().__init__(cache_dir, enabled=enabled)
        self.manifest = manifest
        self.executed: list[str] = []

    def store(self, spec: RunSpec, params: SimParams,
              result: SystemResult) -> None:
        super().store(spec, params, result)
        key = self.key(spec, params)
        self.executed.append(key)
        if self.enabled:
            # A checkpoint is only real if a cache entry backs it: under
            # --no-cache nothing is resumable, so the manifest must not
            # claim progress a resume could trust.
            self.manifest.mark_done(key)


@dataclass
class PointOutcome:
    """One grid point's result, joined back to its axis assignment."""

    point: SweepPoint
    key: str
    result: Optional[SystemResult]     # None when the point failed
    executed: bool                     # False -> served from cache
    error: Optional[str] = None        # traceback summary when failed

    def to_dict(self) -> dict:
        out = {
            "axes": self.point.axis_dict(),
            "label": self.point.spec.label(),
            "key": self.key,
            "executed": self.executed,
        }
        if self.result is not None:
            # Full schema-versioned result payload, identical to a cache
            # entry: figures and BENCH tooling read one schema.
            out["result"] = self.result.to_cache_dict()
        if self.error is not None:
            out["error"] = self.error
        return out


@dataclass
class SweepOutcome:
    """Everything one ``run_sweep`` invocation produced."""

    name: str
    sweep_id: str
    shard: tuple[int, int]
    points: list[PointOutcome]
    manifest_path: Path
    results_path: Optional[Path]
    elapsed_s: float = 0.0

    @property
    def executed(self) -> int:
        return sum(p.executed for p in self.points)

    @property
    def cached(self) -> int:
        return sum(p.result is not None and not p.executed
                   for p in self.points)

    @property
    def failures(self) -> list[PointOutcome]:
        return [p for p in self.points if p.error is not None]

    def summary_table(self) -> str:
        axis_names = (list(self.points[0].point.axis_dict())
                      if self.points else [])
        headers = axis_names + ["ipc_sum", "read_lat_ns", "row_hit", "src"]
        rows = []
        for p in self.points:
            cells = [p.point.axis_dict()[a] for a in axis_names]
            if p.result is None:
                cells += ["-", "-", "-", "FAILED"]
            else:
                r = p.result
                cells += [f"{sum(r.ipcs):.3f}",
                          f"{r.mean_read_latency_ps / 1000:.1f}",
                          f"{r.read_row_hit_rate:.3f}",
                          "ran" if p.executed else "cache"]
            rows.append(cells)
        return format_table(headers, rows,
                            title=f"sweep {self.name} "
                                  f"[shard {self.shard[0] + 1}"
                                  f"/{self.shard[1]}]")

    def counts_line(self) -> str:
        return (f"{len(self.points)} points: {self.executed} executed, "
                f"{self.cached} cached, {len(self.failures)} failed")


def _artifact_name(base: str, shard: tuple[int, int], ext: str) -> str:
    i, n = shard
    return f"{base}.{ext}" if n == 1 else f"{base}_{i + 1}of{n}.{ext}"


def run_sweep(sweep: SweepSpec, params: SimParams,
              shard: tuple[int, int] = (0, 1), jobs: int = 0,
              out_dir: Path = Path("results/sweeps"),
              cache_dir: Optional[Path] = None, use_cache: bool = True,
              progress: bool = False,
              points: Optional[list[SweepPoint]] = None,
              warm_cache: Optional[bool] = None) -> SweepOutcome:
    """Execute (or resume) one shard of a sweep; returns the outcome.

    Interruptions are safe at point granularity: each completed point is
    already in the result cache and the manifest.  Re-invoking with the
    same arguments resumes — previously finished points are served from
    the cache, only the remainder executes.  Individual point crashes do
    not abort the shard (``run_grid`` failure isolation); they surface in
    ``outcome.failures`` with the rest completed and checkpointed.

    ``points`` lets a caller that already compiled the grid pass this
    shard's slice in (the CLI does), skipping a recompilation; it must
    equal ``sweep.shard_points(shard)``.

    ``warm_cache`` shares the functional warm-up across points with the
    same (workload, substrate) prefix — e.g. a design or scheduler axis
    forks every value from one warm snapshot.  Results are bit-identical
    to cold execution (see repro/snapshot.py); each point's
    ``result.meta["warm"]`` records whether it was served from the warm
    snapshot.  With ``jobs > 1`` checkpointing coarsens from per point
    to per warm group (a group is one pool task; see ``run_grid``).
    """
    t0 = time.time()
    if points is None:
        points = sweep.shard_points(shard)
    sweep_dir = Path(out_dir) / sweep.name
    sweep_dir.mkdir(parents=True, exist_ok=True)

    probe = ResultStore(cache_dir, enabled=use_cache)
    keys = [probe.key(p.spec, params) for p in points]
    sweep_id = sweep.sweep_id(params)
    manifest = SweepManifest.load_or_create(
        sweep_dir / _artifact_name("manifest", shard, "json"),
        sweep_id, sweep.name, keys, shard)
    if progress and manifest.completed:
        print(f"  resuming: {manifest.summary()}")

    store = CheckpointingStore(manifest, cache_dir, enabled=use_cache)
    specs = [p.spec for p in points]
    failures: dict[RunSpec, str] = {}
    try:
        results = run_grid(specs, params, jobs=jobs, use_cache=use_cache,
                           progress=progress, store=store,
                           warm_cache=warm_cache)
    except GridExecutionError as exc:
        results = exc.results
        failures = exc.failures

    executed = set(store.executed)
    outcomes = []
    for point, key in zip(points, keys):
        result = results.get(point.spec)
        tb = failures.get(point.spec)
        outcomes.append(PointOutcome(
            point=point, key=key, result=result,
            executed=key in executed,
            error=(tb.strip().splitlines()[-1] if tb else None)))
    # Points completed by cache hits (e.g. a previous sweep sharing specs)
    # belong in the manifest too, not just freshly executed ones — but
    # only while caching is on (a --no-cache "checkpoint" would promise
    # resumability that no cache entry backs).
    if use_cache:
        manifest.mark_many(k for k, p in zip(keys, outcomes)
                           if p.result is not None)

    results_path = atomic_write_json(
        sweep_dir / _artifact_name("results", shard, "json"),
        {
            "schema_version": SWEEP_SCHEMA_VERSION,
            "result_schema_version": RESULT_SCHEMA_VERSION,
            "kind": "sweep",
            "sweep_id": sweep_id,
            "name": sweep.name,
            "spec": sweep.to_dict(),
            "shard": list(shard),
            "params": {k: getattr(params, k)
                       for k in params.__dataclass_fields__},
            # Every point of this run must actually carry a result: a
            # stale manifest (cache pruned, point now failing) must not
            # let is_complete() alone bless a partial grid.  Without
            # caching the manifest records nothing, so this run's
            # outcomes are the whole truth.
            "complete": (all(p.result is not None for p in outcomes)
                         and (manifest.is_complete() or not use_cache)),
            "points": [p.to_dict() for p in outcomes],
        })

    return SweepOutcome(
        name=sweep.name, sweep_id=sweep_id, shard=shard, points=outcomes,
        manifest_path=manifest.path, results_path=results_path,
        elapsed_s=round(time.time() - t0, 3))
