"""Sweep manifests: the on-disk checkpoint a resumed sweep reads.

One manifest JSON per (sweep, shard) records the sweep identity, every
point key in this shard, and which of them have completed.  Per-point
checkpointing is O(1), not a rewrite of the whole file: each completed
point appends one line to a sidecar completion log
(``manifest.log`` next to ``manifest.json``), and the JSON itself is
rewritten (atomically, tmp + rename) only when the manifest is created,
resumed, or finalised — at which moment the log is folded in and
truncated.  A killed sweep therefore leaves a consistent checkpoint at
point granularity: the completed set is the JSON's ``completed`` list
unioned with the log's lines (the union is idempotent, so a crash
between fold and truncate costs nothing).

The manifest is advisory metadata *about* the cache, not a second source
of truth: results live in the ResultStore keyed by (schema, spec,
params); the manifest records grid membership and progress so a resume
can report "k of n done" without probing every cache entry, and so a
stale grid definition (different ``sweep_id``) is detected and restarted
instead of silently mixed.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Optional

from repro.experiments.common import atomic_write_json

MANIFEST_SCHEMA_VERSION = 1


class SweepManifest:
    """Progress checkpoint of one sweep shard (see module docstring)."""

    def __init__(self, path: Path, sweep_id: str, name: str,
                 point_keys: list[str], shard: tuple[int, int] = (0, 1)):
        self.path = Path(path)
        self.sweep_id = sweep_id
        self.name = name
        self.shard = (int(shard[0]), int(shard[1]))
        self.point_keys = list(point_keys)
        self.completed: set[str] = set()

    @property
    def log_path(self) -> Path:
        return self.path.with_suffix(".log")

    # --------------------------------------------------------------- load/save

    @classmethod
    def load_or_create(cls, path: Path, sweep_id: str, name: str,
                       point_keys: list[str],
                       shard: tuple[int, int] = (0, 1)) -> "SweepManifest":
        """Resume from ``path`` when it matches this sweep; else start fresh.

        A mismatched or unreadable manifest (different grid definition,
        params, schema, shard split, or plain corruption) is discarded —
        resuming across definitions would report progress for points that
        are not in this grid.
        """
        manifest = cls(path, sweep_id, name, point_keys, shard)
        existing = cls._read(path)
        if (existing is not None
                and existing.get("sweep_id") == sweep_id
                and existing.get("schema_version") == MANIFEST_SCHEMA_VERSION
                and list(existing.get("shard", ())) == list(manifest.shard)
                and existing.get("points") == point_keys):
            logged = manifest._read_log()
            manifest.completed = (set(existing.get("completed", ())) | logged) \
                & set(point_keys)
        manifest.save()
        return manifest

    @staticmethod
    def _read(path: Path) -> Optional[dict]:
        try:
            data = json.loads(Path(path).read_text())
            return data if isinstance(data, dict) else None
        except (OSError, UnicodeDecodeError, json.JSONDecodeError):
            return None

    def _read_log(self) -> set[str]:
        try:
            # A torn final line (crash mid-append) is filtered out by the
            # intersection with point_keys in load_or_create.
            return set(self.log_path.read_text().split())
        except (OSError, UnicodeDecodeError):
            return set()

    def save(self) -> None:
        """Full atomic rewrite folding the log in; truncates the log."""
        atomic_write_json(self.path, {
            "schema_version": MANIFEST_SCHEMA_VERSION,
            "sweep_id": self.sweep_id,
            "name": self.name,
            "shard": list(self.shard),
            "points": self.point_keys,
            # sorted: bit-identical manifests for identical progress
            "completed": sorted(self.completed),
        })
        # The JSON now carries everything the log held; an interruption
        # between the rename above and this truncate only leaves
        # redundant lines, which the union on load absorbs.
        self.log_path.write_text("")

    # --------------------------------------------------------------- progress

    def mark_done(self, key: str) -> None:
        """Checkpoint one completed point: O(1) append, no rewrite."""
        if key not in self.completed:
            self.completed.add(key)
            with self.log_path.open("a") as log:
                log.write(key + "\n")

    def mark_many(self, keys: Iterable[str]) -> None:
        """Bulk mark + fold into the JSON (used when a grid run ends)."""
        self.completed |= set(keys)
        self.save()

    def pending(self) -> list[str]:
        return [k for k in self.point_keys if k not in self.completed]

    def is_complete(self) -> bool:
        return not self.pending()

    def summary(self) -> str:
        return (f"{len(self.completed)}/{len(self.point_keys)} points "
                f"complete (shard {self.shard[0] + 1} of {self.shard[1]})")
