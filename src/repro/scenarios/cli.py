"""``dca-repro sweep`` — run an arbitrary scenario grid from the shell.

Examples::

    # scheduler x queue-depth sweep over mix 1 (the default workload)
    dca-repro sweep --quick --axis scheduler=bliss,frfcfs \\
                    --axis queues.read_entries=16,64

    # design x organization over three mixes, shard 1 of 4 machines
    dca-repro sweep --axis design=CD,ROD,DCA --axis organization=sa,dm \\
                    --mixes 3 --shard 1/4

    # adversarial workloads as a first-class axis
    dca-repro sweep --axis workload=adversarial_conflict,adversarial_writeback \\
                    --axis design=CD,DCA

    # the same grid from a JSON spec file
    dca-repro sweep --spec mysweep.json

Interrupted sweeps resume: re-run the identical command and completed
points are served from the result cache via the sweep manifest; only the
remainder executes.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.experiments.common import SimParams, format_table, validated_mix_ids
from repro.scenarios.executor import run_sweep
from repro.scenarios.spec import (
    RUNSPEC_AXES,
    TARGET_AXES,
    SweepSpec,
    parse_axis_value,
)
from repro.workloads.scenarios import workload_names


def parse_shard(text: str) -> tuple[int, int]:
    """``i/n`` with 1-based i (CLI convention) -> 0-based (i-1, n)."""
    try:
        i_s, n_s = text.split("/", 1)
        i, n = int(i_s), int(n_s)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"shard must look like 'i/n' (e.g. 1/4), got {text!r}") from None
    if n < 1 or not 1 <= i <= n:
        raise argparse.ArgumentTypeError(
            f"shard {text!r} out of range: need 1 <= i <= n")
    return i - 1, n


def parse_axis(text: str) -> tuple[str, list]:
    """``name=v1,v2,...`` -> (name, coerced values)."""
    name, sep, values = text.partition("=")
    if not sep or not name or not values:
        raise argparse.ArgumentTypeError(
            f"axis must look like 'name=v1,v2,...', got {text!r}")
    return name.strip(), [parse_axis_value(v.strip())
                          for v in values.split(",")]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="dca-repro sweep",
        description="Execute a declarative scenario sweep: any cross-product "
                    "of RunSpec knobs and SystemConfig paths x workloads.",
        epilog=f"RunSpec axes: {', '.join(RUNSPEC_AXES)}.  Config axes: any "
               f"dotted SystemConfig path (queues.read_entries, org.channels, "
               f"substrate.fidelity, substrate.page_policy, "
               f"queues.write_high_watermark, ...).  Named workloads: "
               f"{', '.join(workload_names())}, or trace:<path>.  Without a "
               f"workload axis the sweep runs Table I mix 1; without a design "
               f"axis it runs DCA.")
    p.add_argument("--axis", action="append", default=[], type=parse_axis,
                   metavar="NAME=V1,V2,...",
                   help="add one sweep axis (repeatable)")
    p.add_argument("--spec", metavar="FILE",
                   help="JSON sweep spec {name, axes, base}; --axis adds to it")
    p.add_argument("--name", default=None,
                   help="sweep name (output directory; default 'sweep' or "
                        "the spec file's name)")
    p.add_argument("--mixes", type=int, default=None, metavar="N",
                   help="shorthand: add a mix_id axis over Table I mixes 1..N")
    p.add_argument("--shard", type=parse_shard, default=(0, 1), metavar="I/N",
                   help="run shard I of N (1-based; points split round-robin)")
    p.add_argument("--jobs", type=int, default=0,
                   help="worker processes (0 = auto)")
    p.add_argument("--quick", action="store_true",
                   help="reduced instruction budgets (smoke-test scale)")
    p.add_argument("--measure", type=int, default=None,
                   help="measured instructions per core")
    p.add_argument("--no-cache", action="store_true",
                   help="ignore and do not write the results cache "
                        "(disables resume)")
    p.add_argument("--warm-cache", action="store_true",
                   help="share functional warm-up state across points with "
                        "the same (workload, substrate) prefix "
                        "(bit-identical results; parallelism then spans "
                        "warm groups, so single-mix sweeps run "
                        "sequentially)")
    p.add_argument("--out", default="results/sweeps",
                   help="output directory (default ./results/sweeps)")
    p.add_argument("--dry-run", action="store_true",
                   help="list the compiled grid points and exit")
    return p


def _load_spec_file(path: str) -> dict:
    try:
        data = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"cannot read sweep spec {path}: {exc}")
    if not isinstance(data, dict):
        raise SystemExit(f"sweep spec {path} must be a JSON object")
    return data


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    spec_data: dict = {"axes": {}, "base": {}}
    if args.spec:
        loaded = _load_spec_file(args.spec)
        spec_data["name"] = loaded.get("name", Path(args.spec).stem)
        spec_data["axes"].update(loaded.get("axes", {}))
        spec_data["base"].update(loaded.get("base", {}))
    cli_axes: set[str] = set()
    for name, values in args.axis:
        # A repeated flag would silently drop the earlier values
        # (overriding a *spec-file* axis from the CLI is intentional).
        if name in cli_axes:
            parser.error(f"duplicate --axis {name!r}: give each axis once, "
                         f"with all its values comma-separated")
        cli_axes.add(name)
        spec_data["axes"][name] = values
    if args.mixes is not None:
        if "mix_id" in spec_data["axes"]:
            parser.error("--mixes conflicts with an explicit mix_id axis")
        spec_data["axes"]["mix_id"] = validated_mix_ids(
            args.mixes, error=parser.error)
    if args.name:
        spec_data["name"] = args.name
    spec_data.setdefault("name", "sweep")
    targets = set(TARGET_AXES) & (set(spec_data["axes"])
                                  | set(spec_data["base"]))
    if not targets:
        spec_data["base"]["mix_id"] = 1   # documented default workload

    try:
        sweep = SweepSpec.from_dict(spec_data)
        # compile once; both the banner and run_sweep reuse this grid
        grid = sweep.compile()
    except ValueError as exc:
        parser.error(str(exc))
    i, n = args.shard
    points = grid[i::n]

    params = SimParams.from_cli(quick=args.quick, measure=args.measure,
                                error=parser.error)

    print(f"=== sweep {sweep.name}: {len(grid)} points, "
          f"{len(points)} in shard {i + 1}/{n}")
    if args.dry_run:
        rows = [[j + 1, p.label()] for j, p in enumerate(points)]
        print(format_table(["#", "point"], rows))
        return 0

    outcome = run_sweep(
        sweep, params, shard=args.shard, jobs=args.jobs,
        out_dir=Path(args.out), use_cache=not args.no_cache, progress=True,
        points=points, warm_cache=args.warm_cache)

    print(outcome.summary_table())
    print(f"  {outcome.counts_line()}  ({outcome.elapsed_s:.1f}s)")
    print(f"  manifest: {outcome.manifest_path}")
    print(f"  results:  {outcome.results_path}")
    for p in outcome.failures:
        print(f"  FAILED {p.point.label()}: {p.error}", file=sys.stderr)
    return 1 if outcome.failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
