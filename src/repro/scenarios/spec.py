"""Declarative sweep specs and their compilation to RunSpec points.

A :class:`SweepSpec` names a grid: ``axes`` maps axis names to the values
they range over, ``base`` pins fixed values shared by every point.  Axis
names are either

* **RunSpec fields** — ``design``, ``organization``, ``xor_remap``,
  ``mix_id``, ``alone_benchmark``, ``lee_writeback``, ``scheduler``,
  ``use_mapi``, ``seed``, ``workload`` — or
* **config paths** — any dotted path into
  :class:`repro.config.SystemConfig`, e.g. ``queues.read_entries``,
  ``org.channels``, ``queues.write_high_watermark``; these compile into
  the point's ``RunSpec.config`` override tuple.

Compilation is a plain deterministic cross-product in declaration order,
so shard ``i`` of ``n`` (``points[i::n]``) is stable across machines and
re-runs — the property resumable sharded execution rests on.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import re
from dataclasses import dataclass, field, fields
from typing import Any, Mapping, Sequence

from repro.config import coerce_bool, scaled_config
from repro.core import DESIGNS as DESIGN_REGISTRY
from repro.core.base import _SCHEDULERS
from repro.experiments.common import RunSpec, SimParams
from repro.sim.system import RESULT_SCHEMA_VERSION
from repro.workloads.profiles import PROFILES
from repro.workloads.scenarios import workload_profiles
from repro.workloads.table1 import TABLE1_MIXES

#: RunSpec fields addressable as sweep axes (everything but ``config``,
#: which is fed by the dotted config axes instead).
RUNSPEC_AXES = tuple(f.name for f in fields(RunSpec) if f.name != "config")

#: top-level SystemConfig scalars (l2_mshrs) — sweepable like dotted
#: config paths.  Excluded: the internal queues_explicit marker, and
#: num_cores, which System derives from the workload's benchmark count
#: (one core per benchmark) — an override would be a silent no-op
#: masquerading as a scaling axis.  No name collides with RUNSPEC_AXES.
CONFIG_SCALAR_AXES = tuple(
    f.name for f in fields(scaled_config())
    if f.name not in ("queues_explicit", "num_cores")
    and not hasattr(getattr(scaled_config(), f.name), "__dataclass_fields__"))

#: axes that give a point its workload; every point needs at least one
TARGET_AXES = ("mix_id", "alone_benchmark", "workload")


def _is_config_axis(axis: str) -> bool:
    return "." in axis or axis in CONFIG_SCALAR_AXES

_BOOL_AXES = ("xor_remap", "lee_writeback", "use_mapi")


def _coerce_runspec_value(axis: str, value):
    """Coerce + validate one RunSpec axis value at spec-build time.

    Two jobs: (a) type canonicalisation, so ``--axis xor_remap=0,1`` or
    ``design=dca`` produce the same RunSpec — and hence the same cache
    key — as the figure grids (int-typed bools and case variants would
    silently fork the cache); (b) membership validation, so a typo'd
    design/scheduler/workload/benchmark is a build-time usage error, not
    N opaque per-point worker failures after the grid started.
    """
    if axis in _BOOL_AXES:
        try:
            return coerce_bool(value)
        except ValueError:
            raise ValueError(f"axis {axis!r}: {value!r} is not a bool") \
                from None
    if axis in ("seed", "mix_id"):
        # Integral floats (what many JSON emitters produce for 1) are
        # canonicalised to int — 1.0 vs 1 would fork the cache keys.
        if isinstance(value, float) and value.is_integer():
            value = int(value)
        if isinstance(value, bool) or not isinstance(value, int):
            raise ValueError(f"axis {axis}: {value!r} is not an int")
        if axis == "mix_id" and value not in TABLE1_MIXES:
            raise ValueError(
                f"axis mix_id: {value!r} is not a Table I mix (1..30)")
        if axis == "seed" and value == 0:
            # run_one treats seed 0 as "derive a default", so a 0 point
            # would silently duplicate the derived-seed point under a
            # different cache key.
            raise ValueError(
                "axis seed: 0 means 'derived default' and would alias "
                "another point; sweep explicit seeds >= 1")
        return value
    if not isinstance(value, str):
        raise ValueError(f"axis {axis!r}: {value!r} is not a string")
    if axis == "design":
        if value.upper() not in DESIGN_REGISTRY:
            raise ValueError(f"axis design: unknown design {value!r}; "
                             f"known: {sorted(DESIGN_REGISTRY)}")
        return value.upper()
    if axis == "scheduler":
        if value.lower() not in _SCHEDULERS:
            raise ValueError(f"axis scheduler: unknown scheduler {value!r}; "
                             f"known: {sorted(_SCHEDULERS)}")
        return value.lower()
    if axis == "organization":
        if value.lower() not in ("sa", "dm"):
            raise ValueError(f"axis organization: {value!r} is not 'sa'/'dm'")
        return value.lower()
    if axis == "alone_benchmark":
        if value not in PROFILES:
            raise ValueError(f"axis alone_benchmark: unknown benchmark "
                             f"{value!r}; known: {sorted(PROFILES)}")
        return value
    if axis == "workload":
        try:
            profs = workload_profiles(value)   # registry / trace:<path>
            if value.startswith("trace:"):
                for w in profs:
                    # force the lazy parse: a missing or malformed trace
                    # file fails here, not as N per-point worker crashes
                    w.footprint_bytes
        except (KeyError, ValueError, OSError) as exc:
            raise ValueError(f"axis workload: {exc}") from None
        return value
    return value


def parse_axis_value(text: str):
    """Coerce one CLI axis value: bool/int/float/None where unambiguous."""
    low = text.lower()
    if low in ("true", "false"):
        return low == "true"
    if low in ("none", "null"):
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def _validate_config_axis(path: str, values: Sequence) -> list:
    """Fail fast on a config axis the machine could not actually apply.

    Applies every value to a scratch config through the same
    ``with_overrides`` code path ``run_one`` uses, so an unknown field,
    a path descending into a scalar, a group path, or a value of the
    wrong type (e.g. a string for a queue depth) is a spec-construction
    error — not an opaque per-point worker failure later.  Returns the
    values as coerced by the config (``1`` targeting a float watermark
    becomes ``1.0``), so cache keys can't fork on type spelling.
    """
    scratch = scaled_config()
    coerced = []
    for value in values:
        try:
            cfg = scratch.with_overrides([(path, value)])
        except ValueError as exc:
            raise ValueError(f"config axis {path!r}: {exc}") from None
        except TypeError:
            raise ValueError(
                f"config axis {path!r}: value {value!r} does not fit the "
                f"field's type") from None
        node = cfg
        for part in path.split("."):
            node = getattr(node, part)
        coerced.append(node)
    return coerced


@dataclass(frozen=True)
class SweepPoint:
    """One compiled grid point: the axis assignment and its RunSpec."""

    axes: tuple[tuple[str, Any], ...]
    spec: RunSpec

    def axis_dict(self) -> dict[str, Any]:
        return dict(self.axes)

    def label(self) -> str:
        return " ".join(f"{k}={v}" for k, v in self.axes) or self.spec.label()


@dataclass
class SweepSpec:
    """A declarative sweep: named axes over RunSpec fields + config paths."""

    name: str
    axes: Mapping[str, Sequence]
    base: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        # Alnum-led, then alnum/._- only: the name becomes a directory
        # under the sweeps root, so path tricks ('..', '/', '\\') and
        # hidden-file spellings must not pass.
        if not re.fullmatch(r"[A-Za-z0-9][A-Za-z0-9._-]*", self.name or ""):
            raise ValueError(f"sweep name {self.name!r} must be a plain "
                             f"identifier (it names a directory)")
        axes = {}
        for k, v in dict(self.axes).items():
            # A scalar here is almost always a hand-written JSON spec
            # ({"mix_id": 5}); list(5) would crash and list("DCA") would
            # explode into characters — both deserve a usage error.
            if isinstance(v, str) or not isinstance(v, Sequence):
                raise ValueError(
                    f"axis {k!r}: values must be a list, got {v!r} "
                    f"(a single value belongs in base)")
            axes[str(k)] = list(v)
        self.axes = axes
        self.base = dict(self.base)
        if not self.axes:
            raise ValueError("sweep needs at least one axis")
        for axis, values in self.axes.items():
            if not values:
                raise ValueError(f"axis {axis!r} has no values")
            self.axes[axis] = self._validate_axis(axis, values)
        for axis, value in self.base.items():
            self.base[axis] = self._validate_axis(axis, [value])[0]
        overlap = set(self.axes) & set(self.base)
        if overlap:
            raise ValueError(f"axes also pinned in base: {sorted(overlap)}")
        targets = set(TARGET_AXES) & (set(self.axes) | set(self.base))
        if not targets:
            raise ValueError(
                f"sweep has no workload axis: add one of {TARGET_AXES} "
                f"to axes or base (e.g. base={{'mix_id': 1}})")
        if len(targets) > 1:
            # RunSpec.benchmarks() has a fixed precedence
            # (alone_benchmark > workload > mix_id): combining target
            # axes would silently demote one of them to a mere seed,
            # mislabelling every point's results.
            raise ValueError(
                f"conflicting workload axes {sorted(targets)}: a point's "
                f"benchmarks come from exactly one of {TARGET_AXES}, so "
                f"the others would be silently ignored — split the sweep")

    @staticmethod
    def _validate_axis(axis: str, values: Sequence) -> list:
        """Validate one axis; returns the canonicalised, deduped values."""
        if _is_config_axis(axis):
            canon = _validate_config_axis(axis, values)
        elif axis in RUNSPEC_AXES:
            canon = [_coerce_runspec_value(axis, v) for v in values]
        else:
            raise ValueError(
                f"unknown axis {axis!r}; RunSpec axes: {RUNSPEC_AXES}, "
                f"top-level config scalars: {CONFIG_SCALAR_AXES}, "
                f"or a dotted SystemConfig path like 'queues.read_entries'")
        # Values that collapse after canonicalisation ('dca' + 'DCA')
        # would compile duplicate points sharing one cache entry,
        # overstating the grid; keep first occurrences.
        seen: set = set()
        return [v for v in canon if not (v in seen or seen.add(v))]

    # ------------------------------------------------------------- identity

    def to_dict(self) -> dict:
        return {"name": self.name, "axes": dict(self.axes),
                "base": dict(self.base)}

    @classmethod
    def from_dict(cls, data: Mapping) -> "SweepSpec":
        unknown = set(data) - {"name", "axes", "base"}
        if unknown:
            raise ValueError(f"unknown sweep-spec keys: {sorted(unknown)}")
        return cls(name=data.get("name", "sweep"),
                   axes=data.get("axes", {}), base=data.get("base", {}))

    def sweep_id(self, params: SimParams) -> str:
        """Stable identity of (grid definition, sim params, result schema).

        Any change to the axes, the base, the simulation parameters or the
        result schema produces a different id, which invalidates a stale
        manifest instead of resuming into a different sweep.
        """
        import dataclasses
        payload = json.dumps(
            [RESULT_SCHEMA_VERSION, self.to_dict(),
             dataclasses.asdict(params)],
            sort_keys=True, default=str)
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    # ----------------------------------------------------------- compilation

    def compile(self) -> list[SweepPoint]:
        """The full grid, in deterministic axis-declaration order."""
        names = list(self.axes)
        points = []
        for combo in itertools.product(*(self.axes[n] for n in names)):
            assignment = dict(self.base)
            assignment.update(zip(names, combo))
            points.append(SweepPoint(
                axes=tuple(zip(names, combo)),
                spec=self._build_spec(assignment)))
        return points

    @staticmethod
    def _build_spec(assignment: Mapping[str, Any]) -> RunSpec:
        spec_kwargs: dict[str, Any] = {}
        overrides: list[tuple[str, Any]] = []
        for key, value in assignment.items():
            if _is_config_axis(key):
                overrides.append((key, value))
            else:
                spec_kwargs[key] = value
        spec_kwargs.setdefault("design", "DCA")
        if overrides:
            spec_kwargs["config"] = tuple(sorted(overrides))
        return RunSpec(**spec_kwargs)

    def shard_points(self, shard: tuple[int, int] = (0, 1)
                     ) -> list[SweepPoint]:
        """This shard's slice of the grid (round-robin, deterministic)."""
        i, n = shard
        if n < 1 or not 0 <= i < n:
            raise ValueError(f"bad shard {i}/{n}: need 0 <= i < n")
        return self.compile()[i::n]
