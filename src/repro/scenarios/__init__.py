"""Scenario sweep engine: declarative grids, sharding, resumable runs.

``repro.scenarios`` turns a declarative :class:`SweepSpec` — any
cross-product of RunSpec knobs (design, organization, scheduler, remap,
workloads/mixes) and dotted ``SystemConfig`` paths (queue depth, channel
count, watermarks) — into concrete :class:`repro.experiments.common.RunSpec`
points and executes them through the existing ResultStore/process-pool
machinery, with

* **sharding** — ``shard=(i, n)`` deterministically splits a grid across
  machines;
* **checkpointed resume** — every completed point lands in the result
  cache *and* the sweep manifest as it finishes, so an interrupted sweep
  re-run completes from where it stopped with finished points served from
  cache.

Entry points: the :func:`run_sweep` API and the ``dca-repro sweep`` CLI
(:mod:`repro.scenarios.cli`).  See DESIGN.md "Scenario sweep engine".
"""

from repro.scenarios.spec import SweepPoint, SweepSpec, parse_axis_value
from repro.scenarios.manifest import SweepManifest
from repro.scenarios.executor import PointOutcome, SweepOutcome, run_sweep

__all__ = [
    "SweepSpec",
    "SweepPoint",
    "SweepManifest",
    "SweepOutcome",
    "PointOutcome",
    "run_sweep",
    "parse_axis_value",
]
