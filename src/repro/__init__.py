"""repro — reproduction of "DCA: a DRAM-Cache-Aware DRAM Controller" (SC'16).

Public API tour
---------------

Configuration (the paper's Table II)::

    from repro import paper_config, scaled_config

Run one simulation::

    from repro import System, scaled_config
    from repro.workloads import mix_profiles

    sys_ = System(scaled_config(), design="DCA", benchmarks=mix_profiles(1),
                  organization="sa", footprint_scale=1 / 8, seed=1)
    result = sys_.run(warmup_insts=50_000, measure_insts=200_000)
    print(result.ipcs, result.accesses_per_turnaround)

Regenerate a paper figure::

    python -m repro.experiments fig08

Packages: :mod:`repro.core` (CD/ROD/DCA controllers + BLISS),
:mod:`repro.dram` (stacked-DRAM substrate), :mod:`repro.cache`
(organizations, translation, MAP-I, tag cache), :mod:`repro.mem` (L2,
MSHRs, main memory, Lee writeback), :mod:`repro.sim` (engine, cores,
system), :mod:`repro.workloads`, :mod:`repro.metrics`,
:mod:`repro.experiments`.
"""

from repro.config import (
    DRAMTimings,
    SubstrateConfig,
    SystemConfig,
    paper_config,
    scaled_config,
)
from repro.core import (
    CDController,
    DCAController,
    RODController,
    make_controller,
)
from repro.metrics import MetricGroup, MetricRegistry
from repro.sim.system import (
    RESULT_SCHEMA_VERSION,
    ResultSchemaError,
    System,
    SystemResult,
)

__version__ = "1.1.0"

__all__ = [
    "DRAMTimings",
    "SubstrateConfig",
    "SystemConfig",
    "paper_config",
    "scaled_config",
    "CDController",
    "RODController",
    "DCAController",
    "make_controller",
    "System",
    "SystemResult",
    "ResultSchemaError",
    "RESULT_SCHEMA_VERSION",
    "MetricGroup",
    "MetricRegistry",
    "__version__",
]
