"""Build introspection for the optional compiled (mypyc) hot path.

The simulator is pure Python and always runs interpreted; setting
``REPRO_COMPILE=1`` at install time additionally compiles the hot-path
modules listed in :data:`MYPYC_MODULES` to C extensions via mypyc (see
setup.py).  Both builds are bit-identical by construction — the compiled
build is validated against the same golden pins and lockstep suites as
the interpreted one (tests/test_compiled_parity.py, the ``compiled-smoke``
CI job) — so compilation is purely a wall-clock lever.

This module is the single source of truth for *what* gets compiled and
for asking *whether* the active process actually runs compiled code:

* setup.py executes this file standalone (``runpy.run_path``) to read
  :data:`MYPYC_MODULES` — keep it stdlib-only and import-free at module
  level so that works outside an installed environment;
* dca-lint rule R7 ("compile-safe hot path") enforces mypyc's object
  model on exactly this list;
* :func:`require_compiled` turns a silent fallback to interpreted
  modules into a hard error (``REPRO_REQUIRE_COMPILED=1`` in the
  compiled-smoke CI job), because a compiled-build pipeline that
  quietly measures interpreted code would pin meaningless numbers.
"""

from __future__ import annotations

import importlib
import os

#: Hot-path modules compiled when the package is installed with
#: ``REPRO_COMPILE=1``.  Order is import-dependency order (leaf first);
#: every entry must stay ``mypy --strict``-clean (pyproject overrides)
#: and dca-lint R7-clean, or the compiled build breaks in CI.
MYPYC_MODULES: tuple[str, ...] = (
    "repro.core.access",
    "repro.core.queues",
    "repro.dram.bank",
    "repro.dram.channel",
    "repro.dram.command",
    "repro.sim.engine",
)

#: File suffixes marking a C-extension module (CPython / Windows).
_EXT_SUFFIXES = (".so", ".pyd")


def compiled_modules() -> tuple[str, ...]:
    """The subset of :data:`MYPYC_MODULES` actually running compiled.

    A module counts as compiled when the import system resolved it to a
    C extension (mypyc emits one shared object per module).  Importing
    is safe here: these are core simulator modules that every real
    entry point loads anyway.
    """
    out = []
    for name in MYPYC_MODULES:
        mod = importlib.import_module(name)
        origin = getattr(mod, "__file__", None) or ""
        if origin.endswith(_EXT_SUFFIXES):
            out.append(name)
    return tuple(out)


def is_compiled() -> bool:
    """True when *every* hot-path module runs as a C extension.

    All-or-nothing on purpose: a half-compiled tree (e.g. a stale
    in-place build after editing one module) has the perf profile of
    neither build and must not be reported as "compiled".
    """
    return compiled_modules() == MYPYC_MODULES


def build_mode() -> str:
    """``"compiled"`` or ``"interpreted"`` — for BENCH/report metadata."""
    return "compiled" if is_compiled() else "interpreted"


def require_compiled() -> None:
    """Raise unless the full hot path runs compiled.

    Call sites gate on the ``REPRO_REQUIRE_COMPILED=1`` environment
    variable via :func:`check_required`; this function is the
    unconditional assertion.
    """
    missing = [m for m in MYPYC_MODULES if m not in compiled_modules()]
    if missing:
        raise RuntimeError(
            "compiled hot path required (REPRO_REQUIRE_COMPILED=1) but "
            f"these modules run interpreted: {', '.join(missing)} — "
            "reinstall with REPRO_COMPILE=1 pip install -e . (needs mypy "
            "and a C toolchain)")


def check_required() -> None:
    """Enforce :func:`require_compiled` iff REPRO_REQUIRE_COMPILED=1."""
    if os.environ.get("REPRO_REQUIRE_COMPILED") == "1":
        require_compiled()
