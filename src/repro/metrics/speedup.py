"""Multiprogrammed-performance metrics.

The paper reports **normalized weighted speedups** (Eyerman & Eeckhout,
CAL'14) averaged with the **geometric mean**:

    WS(mix, design) = sum_i IPC_i(shared, design) / IPC_i(alone)
    speedup(design) = geomean over mixes of WS(mix, design) / WS(mix, CD)

The alone-IPC denominators are measured once per benchmark (single-core
run on the baseline configuration); because the same denominators appear
in every design's WS, the design-vs-design ratios the paper plots are
unaffected by which baseline measured them.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence


def geomean(values: Sequence[float]) -> float:
    """Geometric mean; rejects empty input and non-positive entries."""
    if not values:
        raise ValueError("geomean of empty sequence")
    total = 0.0
    for v in values:
        if v <= 0:
            raise ValueError(f"geomean requires positive values, got {v}")
        total += math.log(v)
    return math.exp(total / len(values))


def weighted_speedup(shared_ipcs: Sequence[float],
                     alone_ipcs: Sequence[float]) -> float:
    """WS = sum_i shared_i / alone_i for one mix."""
    if len(shared_ipcs) != len(alone_ipcs):
        raise ValueError("shared/alone IPC lists must align")
    if not shared_ipcs:
        raise ValueError("empty IPC lists")
    ws = 0.0
    for s, a in zip(shared_ipcs, alone_ipcs):
        if a <= 0:
            raise ValueError(f"alone IPC must be positive, got {a}")
        ws += s / a
    return ws


def normalized_weighted_speedups(
        ws_by_design: Mapping[str, Sequence[float]],
        baseline: str = "CD") -> dict[str, float]:
    """Geomean-normalized speedups vs. a baseline design.

    ``ws_by_design`` maps design name -> per-mix weighted speedups (same
    mix order for every design).  Returns design -> geomean(WS_design /
    WS_baseline), i.e. exactly the bars of the paper's Figs. 8/9.
    """
    if baseline not in ws_by_design:
        raise KeyError(f"baseline {baseline!r} missing from results")
    base = ws_by_design[baseline]
    out: dict[str, float] = {}
    for design, ws_list in ws_by_design.items():
        if len(ws_list) != len(base):
            raise ValueError(
                f"design {design} has {len(ws_list)} mixes, baseline has {len(base)}")
        ratios = [w / b for w, b in zip(ws_list, base)]
        out[design] = geomean(ratios)
    return out
