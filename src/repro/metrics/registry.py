"""Unified hierarchical metrics: counter groups and a named registry.

Every statistics holder in the simulator — substrate channels, the
controller, the L2, main memory, predictors — used to be a hand-rolled
dataclass with its own ``reset``/``merge`` boilerplate and no common
serialisation, so each new metric meant a multi-file schema migration and
silently stale JSON caches.  This module provides the one shared
substrate:

* :class:`MetricGroup` — a flat group of integer **counters** declared by
  name in ``COUNTERS`` plus read-only **derived** metrics (rates, means)
  declared with the :class:`derived` decorator.  Counters are plain
  instance attributes, so hot-path ``stats.read_accesses += 1`` costs
  exactly what it did with a dataclass.  The base class supplies
  ``reset()``, ``merge()``, ``sum()``, ``snapshot()`` and
  ``from_snapshot()`` generically from the declaration.

* :class:`MetricRegistry` — a tree of named groups (``register("dram.ch0",
  stats)``) with whole-tree ``reset()``, ``merge()`` and ``snapshot()``.
  The system harness publishes one registry per simulation; the experiment
  layer serialises its snapshot without knowing any component's fields.

Snapshots are plain ``dict``s with deterministic key order (declaration
order for counters, then derived metrics), so two identical runs produce
bit-identical JSON — the property the result cache relies on.
"""

from __future__ import annotations

from fnmatch import fnmatchcase
from typing import TYPE_CHECKING, Any, ClassVar, Iterable, Iterator, Mapping, TypeVar, Union

_G = TypeVar("_G", bound="MetricGroup")


class derived(property):
    """A read-only metric computed from a group's counters.

    Behaves exactly like ``@property`` but marks the value for inclusion
    in :meth:`MetricGroup.snapshot`.  Derived metrics are never stored,
    merged or reset — they are recomputed from counters on demand.
    """


class MetricGroup:
    """A named, flat group of monotonically increasing integer counters.

    Subclasses declare their schema::

        class ChannelStats(MetricGroup):
            COUNTERS = ("read_accesses", "write_accesses", "turnarounds")

            @derived
            def accesses_per_turnaround(self) -> float:
                ...

    Accumulator-style metrics (e.g. a latency mean) are modelled as a sum
    counter plus a count counter plus a ``@derived`` mean — this keeps
    every stored value an exactly-mergeable integer.
    """

    COUNTERS: ClassVar[tuple[str, ...]] = ()
    _derived_names: ClassVar[tuple[str, ...]]

    if TYPE_CHECKING:
        # Counters are bound dynamically from the COUNTERS declaration in
        # __init__ (a plain setattr loop keeps them ordinary instance
        # attributes, so hot-path `stats.x += 1` costs a dict store).
        # These hooks exist only for the type checker: every dynamic
        # attribute on a group is an int counter.
        def __getattr__(self, name: str) -> int: ...
        def __setattr__(self, name: str, value: int) -> None: ...

    def __init__(self, **counts: int):
        cls = type(self)
        for name in cls.COUNTERS:
            setattr(self, name, 0)
        for name, value in counts.items():
            if name not in cls.COUNTERS:
                raise TypeError(
                    f"{cls.__name__} has no counter {name!r} "
                    f"(declared: {cls.COUNTERS})")
            setattr(self, name, value)

    # -- schema introspection -------------------------------------------------

    @classmethod
    def derived_names(cls) -> tuple[str, ...]:
        """Derived-metric names in MRO declaration order (cached)."""
        cached = cls.__dict__.get("_derived_names")
        if cached is None:
            seen: dict[str, None] = {}
            for klass in reversed(cls.__mro__):
                for name, attr in vars(klass).items():
                    if isinstance(attr, derived):
                        seen[name] = None
            cached = tuple(seen)
            cls._derived_names = cached
        return cached

    # -- lifecycle ------------------------------------------------------------

    def reset(self) -> None:
        """Zero every counter (warm-up boundary)."""
        for name in type(self).COUNTERS:
            setattr(self, name, 0)

    def merge(self: _G, other: "MetricGroup") -> _G:
        """Return a new group with counters summed; inputs untouched."""
        cls = type(self)
        if type(other) is not cls:
            raise TypeError(f"cannot merge {cls.__name__} "
                            f"with {type(other).__name__}")
        return cls(**{n: getattr(self, n) + getattr(other, n)
                      for n in cls.COUNTERS})

    @classmethod
    def sum(cls: type[_G], groups: Iterable["MetricGroup"]) -> _G:
        """Aggregate many groups (e.g. per-channel -> device totals)."""
        out = cls()
        for g in groups:
            out = out.merge(g)
        return out

    # -- serialisation --------------------------------------------------------

    def snapshot(self, include_derived: bool = True) -> dict[str, Any]:
        """Counters (and optionally derived metrics) as a plain dict."""
        cls = type(self)
        out: dict[str, Any] = {n: getattr(self, n) for n in cls.COUNTERS}
        if include_derived:
            for n in cls.derived_names():
                out[n] = getattr(self, n)
        return out

    @classmethod
    def from_snapshot(cls: type[_G], data: Mapping[str, Any]) -> _G:
        """Rebuild a group from :meth:`snapshot` output.

        Derived keys are ignored (recomputed); unknown keys raise, so a
        snapshot written by a different schema version fails loudly.
        """
        derived_keys = set(cls.derived_names())
        counts = {k: v for k, v in data.items() if k not in derived_keys}
        return cls(**counts)

    # -- conveniences ---------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return all(getattr(self, n) == getattr(other, n)
                   for n in type(self).COUNTERS)

    def __repr__(self) -> str:
        nonzero = ", ".join(f"{n}={getattr(self, n)}"
                            for n in type(self).COUNTERS if getattr(self, n))
        return f"{type(self).__name__}({nonzero})"


MetricNode = Union[MetricGroup, "MetricRegistry"]


class MetricRegistry:
    """A tree of named :class:`MetricGroup`\\ s (and sub-registries).

    Names are dotted paths; intermediate registries are created on
    demand::

        reg = MetricRegistry()
        reg.register("controller", controller_stats)
        reg.register("dram.ch0", channel0_stats)
        reg.snapshot()   # {"controller": {...}, "dram": {"ch0": {...}}}

    Registration stores the *live* group object, so components keep
    bumping their own counters and the registry sees every update.
    """

    def __init__(self) -> None:
        self._children: dict[str, MetricNode] = {}

    def register(self, name: str, node: MetricNode) -> MetricNode:
        """Attach ``node`` (group or sub-registry) at dotted path ``name``."""
        if not name:
            raise ValueError("metric name must be non-empty")
        head, _, rest = name.partition(".")
        if rest:
            child = self._children.get(head)
            if child is None:
                child = self._children[head] = MetricRegistry()
            elif not isinstance(child, MetricRegistry):
                raise ValueError(f"{head!r} is a leaf group, cannot nest "
                                 f"{rest!r} under it")
            return child.register(rest, node)
        if head in self._children:
            raise ValueError(f"metric group {head!r} already registered")
        self._children[head] = node
        return node

    def group(self, name: str) -> MetricNode:
        """Look up a group / sub-registry by dotted path."""
        head, _, rest = name.partition(".")
        child = self._children[head]
        if rest:
            if not isinstance(child, MetricRegistry):
                raise KeyError(name)
            return child.group(rest)
        return child

    def __contains__(self, name: str) -> bool:
        try:
            self.group(name)
            return True
        except KeyError:
            return False

    def walk(self, prefix: str = "") -> Iterator[tuple[str, MetricGroup]]:
        """Yield ``(dotted_path, group)`` for every leaf, in tree order."""
        for name, child in self._children.items():
            path = f"{prefix}.{name}" if prefix else name
            if isinstance(child, MetricRegistry):
                yield from child.walk(path)
            else:
                yield path, child

    def rollup(self, pattern: str = "*") -> MetricGroup:
        """Sum every leaf group whose dotted path glob-matches ``pattern``.

        The generic cross-component aggregation: ``rollup("ch*")`` sums
        per-channel substrate groups into device totals,
        ``rollup("*_rank1")`` sums one rank index across channels.  All
        matched groups must share one exact type (mirroring
        :meth:`MetricGroup.merge`); no match raises ``KeyError`` so a
        pattern made stale by a renamed group fails loudly instead of
        reporting zeros.
        """
        groups = [g for path, g in self.walk() if fnmatchcase(path, pattern)]
        if not groups:
            raise KeyError(f"no metric groups match pattern {pattern!r}")
        cls = type(groups[0])
        for g in groups[1:]:
            if type(g) is not cls:
                raise ValueError(
                    f"rollup pattern {pattern!r} matched mixed group types "
                    f"{cls.__name__} and {type(g).__name__}")
        return cls.sum(groups)

    def reset(self) -> None:
        """Zero every counter in the tree."""
        for child in self._children.values():
            child.reset()

    def merge(self, other: "MetricRegistry") -> "MetricRegistry":
        """Structural merge: both trees must have identical shapes."""
        if set(self._children) != set(other._children):
            raise ValueError(
                f"registry shapes differ: {sorted(self._children)} "
                f"vs {sorted(other._children)}")
        out = MetricRegistry()
        for name, child in self._children.items():
            out._children[name] = child.merge(other._children[name])
        return out

    def snapshot(self, include_derived: bool = True) -> dict[str, Any]:
        """The whole tree as nested plain dicts (deterministic order)."""
        return {name: child.snapshot(include_derived)
                for name, child in self._children.items()}
