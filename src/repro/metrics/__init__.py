"""Metrics: the unified counter registry plus speedup aggregation."""

from repro.metrics.registry import (
    MetricGroup,
    MetricRegistry,
    derived,
)
from repro.metrics.speedup import (
    geomean,
    normalized_weighted_speedups,
    weighted_speedup,
)

__all__ = [
    "MetricGroup",
    "MetricRegistry",
    "derived",
    "geomean",
    "weighted_speedup",
    "normalized_weighted_speedups",
]
