"""Performance metrics: weighted speedup, geometric means, aggregation."""

from repro.metrics.speedup import (
    geomean,
    normalized_weighted_speedups,
    weighted_speedup,
)

__all__ = ["geomean", "weighted_speedup", "normalized_weighted_speedups"]
