"""Bank re-reference prediction counters (RRPC) — paper §IV-C.

DCA's opportunistic flushing scheme must avoid scheduling a low-priority
read (LR) into a bank a priority read (PR) is about to reuse, since that
would re-introduce read-read conflicts.  The paper borrows the RRIP idea
from cache replacement: each bank has a 3-bit counter; on every PR, *all*
banks' counters decrement by one (floor 0) and the accessed bank's counter
is set to 7.  A high counter therefore means "a PR touched this bank
recently" — an LR that would row-conflict there is held back unless the
counter has decayed below the flushing factor (FF-4).

Implementation note: the literal decrement-all-on-every-PR is O(banks) per
PR.  We use the equivalent O(1) formulation: keep a global PR counter
``G`` and per-bank ``g[b]`` = value of ``G`` when bank *b* was last set to
7; the counter value is ``max(0, 7 - (G - g[b]))``.  This is exactly the
paper's semantics (each intervening PR decrements by one) at constant cost.
"""

from __future__ import annotations


class RRPCTable:
    """Per-bank 3-bit re-reference prediction counters (O(1) updates)."""

    __slots__ = ("max_value", "_global", "_set_at")

    def __init__(self, num_banks: int, max_value: int = 7):
        self.max_value = max_value
        self._global = 0
        # 0 in _set_at with _global = 0 makes every counter start at
        # max(0, 7 - 0) = 7?  No: banks must start cold at 0, so bias the
        # birth stamp far enough in the past to floor the counter.
        self._set_at = [-(max_value + 1)] * num_banks

    def on_priority_read(self, global_bank: int) -> None:
        """A PR was scheduled: decrement all banks, set this bank to max."""
        self._global += 1
        self._set_at[global_bank] = self._global

    def value(self, global_bank: int) -> int:
        """Current counter value in [0, max_value]."""
        v = self.max_value - (self._global - self._set_at[global_bank])
        return v if v > 0 else 0

    def allows_flush(self, global_bank: int, flushing_factor: int) -> bool:
        """OFS criterion: counter below the flushing factor (paper FF-4)."""
        return self.value(global_bank) < flushing_factor

    def snapshot(self) -> list[int]:
        """All counter values (for tests/debugging)."""
        return [self.value(b) for b in range(len(self._set_at))]

    def __len__(self) -> int:
        return len(self._set_at)
