"""ROD — the Request-Oriented Design (paper §III-B).

Accesses are routed by *request type*: everything belonging to a cache
read goes to the read queue; everything belonging to a writeback or refill
— including their **tag reads** (RTw) — goes to the write queue.  The one
exception (paper footnote 1) is the tag *write* of a read request, which
goes to the write queue for performance.

This eliminates read priority inversion and most RRC by construction, but
the write queue now holds a mixture of bus reads and bus writes: draining
it bounces the bus direction back and forth (turnaround storms), and the
RTw work that CD performed opportunistically during read idle time is now
deferred until a flush — so flushes are longer and delay subsequent reads.
Table II gives ROD a 32-entry read queue and a 96-entry write queue (the
write queue carries more access types).
"""

from __future__ import annotations

from typing import Optional

from repro.core.access import Access, AccessRole, RequestType
from repro.core.base import BaseController
from repro.core.queues import AccessQueue


class RODController(BaseController):
    """Route by request type; serve the read queue first."""

    design = "ROD"

    def _route(self, access: Access) -> str:
        if access.request.rtype == RequestType.READ:
            # Footnote 1: WTr goes to the write queue even in ROD.
            if access.role == AccessRole.TAG_WRITE:
                return "write"
            return "read"
        return "write"

    def _select(self, ch: int) -> Optional[tuple[Access, AccessQueue]]:
        self._flush_exit_check(ch)
        self._flush_enter_forced(ch)
        if self.flushing[ch]:
            picked = self._pick_write(ch)
            if picked is not None:
                return picked
            self.flushing[ch] = False
        picked = self._continue_opportunistic(ch)
        if picked is not None:
            return picked
        picked = self._pick_read(ch, self.read_q[ch].bank_buckets())
        if picked is not None:
            return picked
        return self._start_opportunistic(ch)
