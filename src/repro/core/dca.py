"""DCA — the DRAM-Cache-Aware controller (paper §IV).

DCA keeps CD's queue mapping (bus reads in the read queue, bus writes in
the write queue) so turnarounds stay rare, but teaches the read-queue
scheduler about *request* type:

* **PR (priority reads)** — tag/data reads of cache-read requests: served
  in every normal scheduling slot (BLISS order).
* **LR (low-priority reads)** — tag reads of writeback/refill requests:
  *held* in the read queue like a write queue, drained only when safe.

LRs drain through two mechanisms (paper Algorithm 1 + §IV-C):

1. **Occupancy hysteresis** — if read-queue occupancy exceeds 85 %,
   ``ScheduleAll`` turns on and every read (PR and LR) is eligible until
   occupancy falls below 75 %.
2. **OFS (Opportunistic Flushing Scheme)** — when no PR is pending, an LR
   may issue if its bank shows no row conflict (row hit or closed row), or
   if the bank's RRPC counter has decayed below the flushing factor
   (FF-4): no priority read has touched that bank recently, so the LR is
   unlikely to steal a row a PR is about to reuse.

The RRPC table is updated **only by PRs** (paper §IV-C): on each PR issue
all bank counters decay by one and the PR's bank is set to 7.
"""

from __future__ import annotations

from typing import Optional

from typing import Iterable, Mapping, Sequence

from repro.core.access import Access, Priority
from repro.core.base import BaseController
from repro.core.queues import AccessQueue, BankBucket, FrozenBucket
from repro.core.rrpc import RRPCTable
from repro.dram.bank import ROW_CONFLICT


def ofs_naive_candidates(entries: Iterable[Access], channel, rrpc: RRPCTable,
                         flushing_factor: int) -> list[Access]:
    """LRs passing the OFS criteria (§IV-C) — naive full-scan reference.

    The executable specification :func:`ofs_bucket_filter` is tested
    against; classifies every access's row state individually.  Shared
    by the controller (reference path) and the perf benchmark's naive
    engine.
    """
    out = []
    for a in entries:
        if a.priority != Priority.LR:
            continue
        bank = channel.banks[channel.bank_index(a.rank, a.bank)]
        if bank.row_state(a.row) != ROW_CONFLICT:
            out.append(a)          # row hit or closed row: safe
        elif rrpc.allows_flush(a.global_bank, flushing_factor):
            out.append(a)          # conflicting, but the bank is cold
    return out


def ofs_bucket_filter(lr_buckets: Mapping[int, BankBucket],
                      open_rows: Sequence[int], rrpc: RRPCTable,
                      flushing_factor: int) -> dict[int, BankBucket | FrozenBucket]:
    """Apply the OFS criteria (§IV-C) per *bank* over LR bank buckets.

    A closed row (``open_rows[i] == -1`` in the channel's SoA columns) or
    a decayed RRPC counter admits a bank's whole bucket — passed through
    *by reference*, no copy; otherwise only its row hits are safe, and
    the bucket's ``rows`` column is membership-tested once before any
    filtered copy is built.  The bucket's channel-local bank is
    ``global_bank % len(open_rows)`` (see ``AddressMapper.global_bank``).
    Shared by the controller hot path and the perf benchmark so the two
    can't drift apart.
    """
    nbanks = len(open_rows)
    out: dict[int, BankBucket | FrozenBucket] = {}
    for gb, bucket in lr_buckets.items():
        open_row = open_rows[gb % nbanks]
        if open_row < 0 or rrpc.allows_flush(gb, flushing_factor):
            out[gb] = bucket
        elif open_row in bucket.rows:
            out[gb] = bucket.row_hits(open_row)
    return out


class DCAController(BaseController):
    """CD's routing + PR/LR-aware read scheduling + OFS."""

    design = "DCA"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.rrpc = RRPCTable(self.cfg.org.total_banks,
                              max_value=self.cfg.dca.rrpc_max)
        self.schedule_all = [False] * self.cfg.org.channels

    def _route(self, access: Access) -> str:
        return "write" if access.is_write else "read"

    def _on_issued(self, access: Access) -> None:
        if access.priority == Priority.PR:
            self.rrpc.on_priority_read(access.global_bank)

    # -- Algorithm 1 ---------------------------------------------------------------

    def _update_schedule_all(self, ch: int) -> None:
        if self.draining:
            # End-of-run flush: held LRs must leave regardless of OFS.
            self.schedule_all[ch] = True
            return
        occ = self.read_q[ch].occupancy
        if occ > self.cfg.queues.lr_drain_high:
            self.schedule_all[ch] = True
        elif occ < self.cfg.queues.lr_drain_low:
            self.schedule_all[ch] = False

    def _ofs_candidates(self, ch: int) -> list[Access]:
        """LRs passing the OFS criteria (§IV-C) — naive reference.

        Kept as the specification the fast path is tested against
        (see :meth:`_ofs_buckets`); the hot path never calls this.
        """
        return ofs_naive_candidates(self.read_q[ch].entries,
                                    self.device.channels[ch], self.rrpc,
                                    self.cfg.dca.flushing_factor)

    def _ofs_buckets(self, ch: int) -> dict[int, BankBucket | FrozenBucket]:
        """OFS candidates as per-bank buckets, from the LR index.

        Same candidate set as :meth:`_ofs_candidates`, computed with one
        row-state and one RRPC check per *bank* instead of per access.
        """
        return ofs_bucket_filter(self.read_q[ch].lr_bank_buckets(),
                                 self.device.channels[ch].open_rows,
                                 self.rrpc, self.cfg.dca.flushing_factor)

    def _select(self, ch: int) -> Optional[tuple[Access, AccessQueue]]:
        self._flush_exit_check(ch)
        self._flush_enter_forced(ch)
        if self.flushing[ch]:
            picked = self._pick_write(ch)
            if picked is not None:
                return picked
            self.flushing[ch] = False

        picked = self._continue_opportunistic(ch)
        if picked is not None:
            return picked

        self._update_schedule_all(ch)
        rq = self.read_q[ch]
        if self.schedule_all[ch]:
            picked = self._pick_read(ch, rq.bank_buckets())
            if picked is not None:
                if picked[0].priority == Priority.LR:
                    self.stats.lr_drain_issues += 1
                return picked
        else:
            picked = self._pick_read(ch, rq.pr_bank_buckets())
            if picked is not None:
                return picked
            # Algorithm 1 line 15-18: no PR was ready -> OFS flush.
            picked = self._pick_read(ch, self._ofs_buckets(ch))
            if picked is not None:
                self.stats.lr_ofs_issues += 1
                return picked

        return self._start_opportunistic(ch)

    def _reads_preempt(self, ch: int) -> bool:
        """Only *priority* reads preempt an idle-time write drain: held LRs
        are background work like the writes themselves."""
        if self.schedule_all[ch]:
            return bool(self.read_q[ch].entries)
        return self.read_q[ch].pr_count > 0
