"""Shared DRAM-cache controller machinery.

Everything the three designs (CD / ROD / DCA) have in common lives here:

* request admission with per-channel overflow FIFOs (Table II queue sizes
  apply to *new* requests; continuation accesses of in-flight requests use
  reserved slots, as real controllers do to avoid deadlock);
* the request state machines driven by access-completion callbacks (the
  staged translation of the paper's Fig. 2, including dirty-victim reads
  and main-memory traffic);
* MAP-I miss-probe handling (parallel memory fetch on predicted misses,
  discarded when the tag check turns out to be a hit — the cached copy may
  be dirtier than memory);
* the write-queue flush state machine with low/high watermarks;
* the pipelined scheduling loop: a new scheduling decision is taken when
  the previous access's data burst *starts*, so the next access's bank
  preparation (PRE/ACT) overlaps the in-flight burst — one-deep lookahead,
  identical for every design.

Subclasses implement exactly two hooks:

* :meth:`BaseController._route` — which queue an access belongs to
  (this is the entire CD-vs-ROD distinction);
* :meth:`BaseController._select` — which queued access to issue at a
  scheduling slot (this is where DCA's PR/LR handling lives).
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.cache.dramcache import DRAMCacheArray
from repro.cache.mapi import MAPIPredictor
from repro.cache.translator import Translator
from repro.config import SystemConfig
from repro.core.access import Access, AccessRole, CacheRequest, Priority, RequestType
from repro.core.bliss import BLISSScheduler
from repro.core.frfcfs import FRFCFSScheduler
from repro.core.queues import AccessQueue
from repro.dram.device import DRAMDevice
from repro.mem.mainmem import AnyMainMemory, make_mainmem
from repro.metrics.registry import MetricGroup, MetricRegistry, derived
from repro.sim.engine import Simulator


class ControllerStats(MetricGroup):
    """Controller-level counters (substrate counters live on the channels)."""

    COUNTERS = (
        "reads_submitted",
        "writebacks_submitted",
        "refills_submitted",
        "reads_done",
        "read_latency_sum_ps",
        "read_hits",
        "read_misses",
        "writeback_hits",
        "writeback_misses",
        "memory_fetches",
        "wasted_fetches",           # MAP-I predicted miss, tag said hit
        "victim_mem_writes",
        "forced_flushes",
        "opportunistic_flushes",
        "read_priority_inversions",  # LR issued from read pool while a PR waited
        "lr_ofs_issues",             # DCA: LRs drained by OFS
        "lr_drain_issues",           # DCA: LRs drained by Algorithm 1 hysteresis
        "forwarded_reads",           # reads served from the write buffer
    )

    @derived
    def mean_read_latency_ps(self) -> float:
        return (self.read_latency_sum_ps / self.reads_done
                if self.reads_done else 0.0)

    @derived
    def dram_read_hit_rate(self) -> float:
        total = self.read_hits + self.read_misses
        return self.read_hits / total if total else 0.0


_SCHEDULERS = {"bliss": BLISSScheduler, "frfcfs": FRFCFSScheduler}


class BaseController:
    """Common controller: queues, translation, flushing, scheduling loop."""

    #: paper name; set by subclasses ("CD" / "ROD" / "DCA")
    design = "BASE"

    def __init__(self, sim: Simulator, cfg: SystemConfig,
                 organization: str = "sa", xor_remap: bool = False,
                 use_mapi: bool = True, scheduler: str = "bliss",
                 mainmem: Optional[AnyMainMemory] = None):
        if not cfg.queues_explicit:
            # Stock config: substitute the per-design Table II queue
            # sizes.  Explicitly overridden queues (sweep axes) win.
            cfg = cfg.with_queues_for(self.design)
        self.sim = sim
        self.cfg = cfg
        self.organization = organization
        self.device = DRAMDevice(cfg.timings, cfg.org, xor_remap=xor_remap,
                                 substrate=cfg.substrate)
        self.array = DRAMCacheArray(cfg.dram_cache, organization,
                                    replacement=cfg.org.replacement)
        self.translator = Translator(self.array, self.device.mapper)
        self.mapi = MAPIPredictor(cfg.num_cores) if use_mapi else None
        self.mainmem = (mainmem if mainmem is not None
                        else make_mainmem(sim, cfg.mainmem))

        nch = cfg.org.channels
        try:
            sched_cls = _SCHEDULERS[scheduler.lower()]
        except KeyError:
            raise ValueError(f"unknown scheduler {scheduler!r}") from None
        self.read_q = [AccessQueue(cfg.queues.read_entries) for _ in range(nch)]
        self.write_q = [AccessQueue(cfg.queues.write_entries) for _ in range(nch)]
        # Admission overflow FIFOs, one per (channel, target queue): a
        # writeback stalled on write-queue space must not block a demand
        # read from entering the read queue (independent structures in
        # real controllers).
        self.waiting_r: list[deque] = [deque() for _ in range(nch)]
        self.waiting_w: list[deque] = [deque() for _ in range(nch)]
        self.flushing = [False] * nch
        self.sched = [sched_cls(cfg.bliss, cfg.num_cores) for _ in range(nch)]
        self._decision_pending = [False] * nch
        self._in_flight = [0] * nch
        self._opp_flushing = [False] * nch
        self._opp_batch = [0] * nch
        #: block addr -> youngest in-flight writeback/refill (write buffer
        #: contents; reads to these blocks are forwarded, never scheduled)
        self._pending_writes: dict[int, CacheRequest] = {}
        #: end-of-run drain: ignore the low watermark so queues empty out
        self.draining = False
        self.stats = ControllerStats()
        #: unified metrics tree: controller counters + per-channel substrate
        #: counters, consumed generically by the system-level registry
        self.metrics = MetricRegistry()
        self.metrics.register("controller", self.stats)
        self.metrics.register("substrate", self.device.metrics)

    # ------------------------------------------------------------------ admission

    def submit(self, req: CacheRequest) -> None:
        """Accept an L2-level request (read / writeback / refill)."""
        now = self.sim.now
        req.arrival = now
        st = self.stats
        if req.rtype == RequestType.READ:
            st.reads_submitted += 1
            if req.addr in self._pending_writes:
                # Write-buffer forwarding: the freshest copy of this block
                # sits in a pending writeback/refill; serve it directly.
                st.forwarded_reads += 1
                req.hit = True
                self.sim.after(self.cfg.queues.forward_latency_ps,
                               self._read_done, req)
                return
            if self.mapi is not None and not req.prefetch:
                # Prefetch reads never train or consult MAP-I: the
                # predictor models demand-PC locality and speculative
                # probes would both pollute it and burn memory bandwidth.
                predicted_miss = self.mapi.predict_miss(req.core_id, req.pc)
                req.meta["pred_miss"] = predicted_miss
                if predicted_miss:
                    # MAP-I: probe main memory in parallel with the tag read.
                    req.meta["probing"] = True
                    st.memory_fetches += 1
                    # Bound method + request arg, not a closure: scheduled
                    # callbacks must survive snapshot capture (see
                    # MainMemory.fetch and repro/snapshot.py).
                    self.mainmem.fetch(req.addr, self._mem_fetch_done, req)
        elif req.rtype == RequestType.WRITEBACK:
            st.writebacks_submitted += 1
            self._pending_writes[req.addr] = req
        else:
            st.refills_submitted += 1
            self._pending_writes[req.addr] = req

        first = self.translator.initial_access(req, now)
        ch = first.channel
        q, waitq = self._queue_and_waitq(first)
        if q.has_room() and not waitq:
            self._enqueue(first)
        else:
            waitq.append(first)

    def _queue_and_waitq(self, access: Access) -> tuple[AccessQueue, deque]:
        if self._route(access) == "read":
            return self.read_q[access.channel], self.waiting_r[access.channel]
        return self.write_q[access.channel], self.waiting_w[access.channel]

    def _queue_for(self, access: Access) -> AccessQueue:
        return self._queue_and_waitq(access)[0]

    def _enqueue(self, access: Access) -> None:
        self._queue_for(access).push(access, self.sim.now)
        self._kick(access.channel)

    def _admit(self, ch: int) -> None:
        """Move waiting requests into queues as slots free up (FIFO per queue)."""
        rq, wq = self.read_q[ch], self.write_q[ch]
        w = self.waiting_r[ch]
        while w and rq.has_room():
            self._enqueue(w.popleft())
        w = self.waiting_w[ch]
        while w and wq.has_room():
            self._enqueue(w.popleft())

    # ------------------------------------------------------------------ scheduling

    def _kick(self, ch: int) -> None:
        """Arrange a scheduling decision for channel ``ch`` at the current time."""
        if self._decision_pending[ch]:
            return
        self._decision_pending[ch] = True
        self.sim.at(self.sim.now, self._decide, ch)

    def _decide(self, ch: int) -> None:
        """Issue accesses until the in-flight window fills or nothing is ready.

        Each iteration re-runs the design's selection against the updated
        queue/bank/bus state, so priorities are re-evaluated at every
        issue.  Bursts serialize on the channel bus in issue order; bank
        preparations of distinct banks overlap in flight.
        """
        self._decision_pending[ch] = False
        window = self.cfg.queues.issue_window
        now = self.sim.now
        # Hot loop: every bound method / container indexed below is
        # loop-invariant per channel, so resolve each exactly once.
        issue = self.device.channels[ch].issue
        in_flight = self._in_flight
        rq = self.read_q[ch]
        stats = self.stats
        select = self._select
        on_served = self.sched[ch].on_served
        on_issued = self._on_issued
        sim_at = self.sim.at
        complete = self._access_complete
        admit = self._admit
        lr = Priority.LR
        while in_flight[ch] < window:
            picked = select(ch)
            if picked is None:
                return
            access, queue = picked
            queue.remove(access, now)

            # Observable read-priority-inversion accounting: an LR-class
            # bus read issued while a PR-class read waits on this channel.
            if access.priority == lr and rq.pr_count:
                stats.read_priority_inversions += 1

            _start, end = issue(access.rank, access.bank, access.row,
                                access.is_write, now)
            in_flight[ch] += 1
            on_served(access.core_id)
            on_issued(access)
            sim_at(end, complete, access)
            admit(ch)

    # -- write-flush state machine -------------------------------------------------

    def _flush_exit_check(self, ch: int) -> None:
        wq = self.write_q[ch]
        if self.flushing[ch] and (
                not wq.entries
                or wq.occupancy <= self.cfg.queues.write_low_watermark):
            self.flushing[ch] = False

    def _flush_enter_forced(self, ch: int) -> None:
        wq = self.write_q[ch]
        if (not self.flushing[ch]
                and wq.occupancy >= self.cfg.queues.write_high_watermark):
            self.flushing[ch] = True
            self.stats.forced_flushes += 1

    def _reads_preempt(self, ch: int) -> bool:
        """Are there reads that should preempt an opportunistic write drain?

        Overridden by DCA: its held LRs are deliberately *not* preemptive
        (they are background work, like the writes themselves).
        """
        return bool(self.read_q[ch].entries)

    def _continue_opportunistic(self, ch: int) -> Optional[tuple[Access, AccessQueue]]:
        """Keep an in-progress idle-time write drain going.

        The drain continues to the low watermark; after the minimum batch
        has amortized the turnaround pair, arriving reads preempt it.
        """
        if not self._opp_flushing[ch]:
            return None
        q = self.cfg.queues
        wq = self.write_q[ch]
        if (wq.entries
                and (self.draining or wq.occupancy > q.write_low_watermark)
                and (self._opp_batch[ch] < q.opportunistic_min_batch
                     or not self._reads_preempt(ch))):
            picked = self._pick_write(ch)
            if picked is not None:
                self._opp_batch[ch] += 1
                return picked
        self._opp_flushing[ch] = False
        return None

    def _start_opportunistic(self, ch: int) -> Optional[tuple[Access, AccessQueue]]:
        """No serviceable reads this slot: begin an idle-time write drain
        if the write queue is above the low watermark (the paper's second
        flush trigger).  In end-of-run ``draining`` mode the watermark is
        ignored so residual writes empty out."""
        wq = self.write_q[ch]
        if wq.entries and (self.draining or
                           wq.occupancy > self.cfg.queues.write_low_watermark):
            picked = self._pick_write(ch)
            if picked is not None:
                self.stats.opportunistic_flushes += 1
                self._opp_flushing[ch] = True
                self._opp_batch[ch] = 1
            return picked
        return None

    def flush_all(self) -> None:
        """Drain every queued access regardless of watermarks.

        For end-of-simulation and tests: the passive write policy otherwise
        (correctly) parks writes below the low watermark forever when no
        further traffic arrives.  Run the simulator after calling this.
        """
        self.draining = True
        for ch in range(self.cfg.org.channels):
            self._kick(ch)

    def _pick_write(self, ch: int) -> Optional[tuple[Access, AccessQueue]]:
        wq = self.write_q[ch]
        a = self.sched[ch].pick_banked(wq.bank_buckets(),
                                       self.device.channels[ch], self.sim.now)
        return (a, wq) if a is not None else None

    def _pick_read(self, ch: int, buckets) -> Optional[tuple[Access, AccessQueue]]:
        """Select from the read queue; ``buckets`` maps ``global_bank`` to
        non-empty same-bank candidate groups (see ``pick_banked``)."""
        rq = self.read_q[ch]
        a = self.sched[ch].pick_banked(buckets, self.device.channels[ch],
                                       self.sim.now)
        return (a, rq) if a is not None else None

    # -- design hooks ---------------------------------------------------------------

    def _route(self, access: Access) -> str:
        """Return ``"read"`` or ``"write"``: which queue holds this access."""
        raise NotImplementedError

    def _select(self, ch: int) -> Optional[tuple[Access, AccessQueue]]:
        """Pick the next access to issue on channel ``ch`` (or None)."""
        raise NotImplementedError

    def _on_issued(self, access: Access) -> None:
        """Post-issue hook (DCA updates its RRPC counters here)."""

    # ------------------------------------------------------------------ completion

    def _access_complete(self, access: Access) -> None:
        self._in_flight[access.channel] -= 1
        req = access.request
        role = access.role
        if role == AccessRole.TAG_READ:
            self._tag_read_done(req)
        elif role == AccessRole.DATA_READ:
            if req.rtype == RequestType.READ:
                self._read_done(req)
            else:
                self._victim_read_done(req)
        else:  # TAG_WRITE / DATA_WRITE
            if access.critical:
                req.accesses_left -= 1
                if req.accesses_left == 0:
                    self._write_request_done(req)
        self._kick(access.channel)

    def _tag_read_done(self, req: CacheRequest) -> None:
        now = self.sim.now
        outcome = self.translator.after_tag_read(req, now)
        st = self.stats
        if req.rtype == RequestType.READ:
            if self.mapi is not None and not req.prefetch:
                self.mapi.update(req.core_id, req.pc, outcome.hit,
                                 req.meta.get("pred_miss", False))
            if outcome.hit:
                st.read_hits += 1
                if req.meta.get("probing"):
                    st.wasted_fetches += 1  # memory data must be discarded
                if not outcome.next_accesses:
                    # Direct-mapped: the TAD read carried the data.
                    self._read_done(req)
                else:
                    for a in outcome.next_accesses:
                        self._enqueue(a)
            else:
                st.read_misses += 1
                if req.meta.get("probing"):
                    if req.meta.get("mem_data_ready"):
                        # Fetch already returned; deliver + refill now.
                        self._complete_missed_read(req)
                    # else: the in-flight fetch will complete the request.
                else:
                    st.memory_fetches += 1
                    self.mainmem.fetch(req.addr, self._mem_fetch_done, req)
            return

        # Writeback / refill.
        if outcome.hit:
            st.writeback_hits += 1
        else:
            st.writeback_misses += 1
        req.accesses_left = len(outcome.next_accesses)
        if outcome.victim_read is not None:
            # Dirty victim (set-assoc): read its data before overwriting.
            req.meta["pending_writes"] = outcome.next_accesses
            req.meta["victim_addr"] = outcome.victim_mem_write
            self._enqueue(outcome.victim_read)
        else:
            if outcome.victim_mem_write is not None:
                # Direct-mapped: victim data arrived with the TAD read.
                st.victim_mem_writes += 1
                self.mainmem.write(outcome.victim_mem_write)
            for a in outcome.next_accesses:
                self._enqueue(a)

    def _victim_read_done(self, req: CacheRequest) -> None:
        """RDw finished: ship the victim to memory, then do the writes."""
        victim = req.meta.pop("victim_addr", None)
        if victim is not None:
            self.stats.victim_mem_writes += 1
            self.mainmem.write(victim)
        for a in req.meta.pop("pending_writes", []):
            self._enqueue(a)

    def _mem_fetch_done(self, req: CacheRequest) -> None:
        """Main-memory data arrived for a (predicted or actual) read miss."""
        if req.hit is None:
            # Tag check still pending; remember the data is here.
            req.meta["mem_data_ready"] = True
            return
        if req.hit:
            # Predicted miss but the tags said hit — the fetch was wasted
            # (counted at tag-read completion; nothing more to do).
            return
        self._complete_missed_read(req)

    def _complete_missed_read(self, req: CacheRequest) -> None:
        """Deliver miss data to the L2 and spawn the refill."""
        if req.done_time >= 0:
            return
        self._read_done(req)
        refill = CacheRequest(RequestType.REFILL, req.addr, req.core_id,
                              pc=req.pc)
        self.submit(refill)

    def _read_done(self, req: CacheRequest) -> None:
        if req.done_time >= 0:
            return
        now = self.sim.now
        req.done_time = now
        st = self.stats
        st.reads_done += 1
        st.read_latency_sum_ps += now - req.arrival
        if req.on_done is not None:
            req.on_done(req)

    def _write_request_done(self, req: CacheRequest) -> None:
        req.done_time = self.sim.now
        if self._pending_writes.get(req.addr) is req:
            del self._pending_writes[req.addr]
        if req.on_done is not None:
            req.on_done(req)

    # ------------------------------------------------------------------ reporting

    def reset_stats(self) -> None:
        """Zero controller + substrate counters (warm-up boundary).

        Deliberately narrower than ``self.metrics.reset()``: the system
        harness mounts further groups into this registry, some of which
        (MAP-I, Lee) accumulate across the warm-up boundary.  Queue
        occupancy integrals restart here too, so ``mean_occupancy``
        covers the measured interval only.
        """
        self.stats.reset()
        self.device.metrics.reset()
        self.array.reset_counters()
        now = self.sim.now
        for q in self.read_q:
            q.reset_accounting(now)
        for q in self.write_q:
            q.reset_accounting(now)

    def queues_empty(self) -> bool:
        return (all(not q.entries for q in self.read_q)
                and all(not q.entries for q in self.write_q)
                and all(not w for w in self.waiting_r)
                and all(not w for w in self.waiting_w))
