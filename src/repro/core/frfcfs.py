"""FR-FCFS: first-ready, first-come-first-served scheduling.

The classic row-hit-first baseline.  Provided as an alternative underlying
scheduler (the paper's designs all run on BLISS, but notes "our scheme is
not limited to any scheduling algorithm" — swapping this in demonstrates
that claim and is exercised by the ablation benchmark).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

from repro.core.access import Access
from repro.core.queues import BankBucket, FrozenBucket
from repro.dram.bank import ROW_HIT
from repro.dram.channel import Channel

#: Sentinel above any real ``Access.seq`` (see bliss.py).
_SEQ_MAX = 1 << 62


class FRFCFSScheduler:
    """Row-hit-first, then oldest.  Application-blind."""

    __slots__ = ("served",)

    def __init__(self, *_args, **_kwargs):
        self.served = 0

    def maybe_clear(self, now: int) -> None:
        """No periodic state (interface parity with BLISS)."""

    def on_served(self, core_id: int) -> None:
        self.served += 1

    def pick(self, candidates: Iterable[Access], channel: Channel,
             now: int) -> Optional[Access]:
        """Naive reference selector (per-access row-state classification)."""
        best: Optional[Access] = None
        best_key: tuple[int, int] | None = None
        for a in candidates:
            row_hit = (channel.banks[
                channel.bank_index(a.rank, a.bank)].row_state(a.row) == ROW_HIT)
            key = (0 if row_hit else 1, a.seq)
            if best_key is None or key < best_key:
                best, best_key = a, key
        return best

    def pick_banked(self, buckets: "Mapping[int, BankBucket | FrozenBucket]",
                    channel: Channel, now: int) -> Optional[Access]:
        """Fast-path selection over bank-bucketed candidate columns (see
        BLISS).

        ``buckets`` maps ``global_bank`` to same-bank column buckets; the
        oldest row-hit wins, else the oldest access.  A bucket with no
        hit on its bank's open row is one class, so its argmin batches
        into C-level ``min``/``index`` over the ``seqs`` column.
        Bit-identical to :meth:`pick` on the flattened set: the unique
        ``seq`` tiebreak makes the argmin independent of iteration order.
        """
        open_rows = channel.open_rows   # SoA: -1 = closed (see BLISS)
        nbanks = len(open_rows)
        b_hit = b_miss = None
        s_hit = s_miss = _SEQ_MAX
        for gb, bucket in buckets.items():
            open_row = open_rows[gb % nbanks]
            seqs = bucket.seqs
            rows = bucket.rows
            if open_row < 0 or open_row not in rows:
                m = min(seqs)              # pure-miss bucket: one class
                if m < s_miss:
                    s_miss = m
                    b_miss = bucket.accs[seqs.index(m)]
                continue
            for i in range(len(seqs)):
                s = seqs[i]
                if rows[i] == open_row:
                    if s < s_hit:
                        s_hit = s
                        b_hit = bucket.accs[i]
                elif s < s_miss:
                    s_miss = s
                    b_miss = bucket.accs[i]
        return b_hit if b_hit is not None else b_miss
