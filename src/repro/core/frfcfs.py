"""FR-FCFS: first-ready, first-come-first-served scheduling.

The classic row-hit-first baseline.  Provided as an alternative underlying
scheduler (the paper's designs all run on BLISS, but notes "our scheme is
not limited to any scheduling algorithm" — swapping this in demonstrates
that claim and is exercised by the ablation benchmark).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.access import Access
from repro.dram.bank import ROW_HIT
from repro.dram.channel import Channel


class FRFCFSScheduler:
    """Row-hit-first, then oldest.  Application-blind."""

    __slots__ = ("served",)

    def __init__(self, *_args, **_kwargs):
        self.served = 0

    def maybe_clear(self, now: int) -> None:
        """No periodic state (interface parity with BLISS)."""

    def on_served(self, core_id: int) -> None:
        self.served += 1

    def pick(self, candidates: Iterable[Access], channel: Channel,
             now: int) -> Optional[Access]:
        best: Optional[Access] = None
        best_key: tuple[int, int] | None = None
        for a in candidates:
            row_hit = (channel.banks[
                channel.bank_index(a.rank, a.bank)].row_state(a.row) == ROW_HIT)
            key = (0 if row_hit else 1, a.seq)
            if best_key is None or key < best_key:
                best, best_key = a, key
        return best
