"""The paper's contribution: DRAM-cache controllers and their scheduling.

* :mod:`repro.core.access` — the access/request vocabulary (paper Fig. 2);
* :mod:`repro.core.queues` — read/write queues with watermark state;
* :mod:`repro.core.bliss` / :mod:`repro.core.frfcfs` — underlying
  scheduling algorithms;
* :mod:`repro.core.rrpc` — DCA's per-bank re-reference prediction counters;
* :mod:`repro.core.base` — the shared controller machinery (translation,
  write-flush state machine, scheduling loop, MAP-I integration);
* :mod:`repro.core.cd` / :mod:`repro.core.rod` / :mod:`repro.core.dca` —
  the three designs compared in the paper.
"""

from repro.core.access import (
    Access,
    AccessRole,
    Priority,
    CacheRequest,
    RequestType,
)
from repro.core.queues import AccessQueue
from repro.core.bliss import BLISSScheduler
from repro.core.frfcfs import FRFCFSScheduler
from repro.core.rrpc import RRPCTable
from repro.core.base import BaseController, ControllerStats
from repro.core.cd import CDController
from repro.core.rod import RODController
from repro.core.dca import DCAController

DESIGNS = {
    "CD": CDController,
    "ROD": RODController,
    "DCA": DCAController,
}


def make_controller(design: str, *args, **kwargs) -> BaseController:
    """Instantiate a controller by paper name (``CD`` / ``ROD`` / ``DCA``)."""
    try:
        cls = DESIGNS[design.upper()]
    except KeyError:
        raise ValueError(
            f"unknown design {design!r}; expected one of {sorted(DESIGNS)}"
        ) from None
    return cls(*args, **kwargs)


__all__ = [
    "Access",
    "AccessRole",
    "Priority",
    "CacheRequest",
    "RequestType",
    "AccessQueue",
    "BLISSScheduler",
    "FRFCFSScheduler",
    "RRPCTable",
    "BaseController",
    "ControllerStats",
    "CDController",
    "RODController",
    "DCAController",
    "DESIGNS",
    "make_controller",
]
