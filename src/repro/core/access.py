"""The vocabulary of DRAM-cache requests and DRAM accesses (paper Fig. 2).

A **request** is what the L2 sends the DRAM-cache controller: a cache read
(demand miss), a cache writeback (dirty eviction), or a cache refill (block
arriving from main memory).  A **access** is one DRAM array operation the
request translates into:

    read request (set-assoc):  RTr -> [hit] RDr + WTr
    writeback / refill:        RTw -> WDw + WTw (+ RDw if the victim is dirty)
    read request (direct-mapped): one TAD read
    writeback / refill (dm):   TAD read -> TAD write

The **role** names (``RT``/``RD``/``WT``/``WD`` with request-type subscript)
follow the paper's Figs. 4-7.  The controller designs differ only in which
queue each access is routed to and in what priority class it is served
(DCA's PR/LR split), so those attributes live on the access itself.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Callable, Optional


class RequestType(IntEnum):
    """What the L2 asked for."""

    READ = 0        # demand fetch (critical path)
    WRITEBACK = 1   # dirty eviction from L2
    REFILL = 2      # block returning from main memory into the cache


class AccessRole(IntEnum):
    """Which array operation this access performs."""

    TAG_READ = 0    # RT* : read a tag block (or TAD in direct-mapped)
    DATA_READ = 1   # RD* : read a data block
    TAG_WRITE = 2   # WT* : write a tag block (replacement bits / tag insert)
    DATA_WRITE = 3  # WD* : write a data block (or TAD in direct-mapped)


#: Roles that drive the DRAM bus in read mode.
_READ_ROLES = frozenset({AccessRole.TAG_READ, AccessRole.DATA_READ})


class Priority(IntEnum):
    """DCA's read-access classes (paper §IV-B).

    PR — priority reads: tag/data reads belonging to cache-read requests
    (the critical path).  LR — low-priority reads: tag reads belonging to
    writeback and refill requests.  Write accesses carry ``WRITE`` for
    uniform bookkeeping.
    """

    PR = 0
    LR = 1
    WRITE = 2


class CacheRequest:
    """One L2-level request to the DRAM cache."""

    __slots__ = ("rtype", "addr", "core_id", "pc", "arrival", "done_time",
                 "on_done", "hit", "accesses_left", "prefetch", "meta")

    _counter = 0

    def __init__(self, rtype: RequestType, addr: int, core_id: int,
                 pc: int = 0, arrival: int = 0,
                 on_done: Optional[Callable[["CacheRequest"], None]] = None,
                 prefetch: bool = False):
        self.rtype = rtype
        self.addr = addr
        self.core_id = core_id
        self.pc = pc
        self.arrival = arrival
        self.done_time: int = -1
        self.on_done = on_done
        self.hit: Optional[bool] = None   # resolved at tag-read completion
        self.accesses_left = 0            # live accesses gating completion
        self.prefetch = prefetch          # speculative read: LR class, no MAP-I
        self.meta: dict = {}              # experiment hooks (kept small)

    @property
    def is_read(self) -> bool:
        return self.rtype == RequestType.READ

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CacheRequest({self.rtype.name}, addr={self.addr:#x}, "
                f"core={self.core_id}, t={self.arrival})")


class Access:
    """One DRAM array access; the unit the controller schedules."""

    __slots__ = ("role", "request", "channel", "rank", "bank", "row", "col",
                 "global_bank", "arrival", "seq", "priority", "on_complete",
                 "critical", "core_id", "is_write")

    _seq = 0

    def __init__(self, role: AccessRole, request: CacheRequest,
                 channel: int, rank: int, bank: int, row: int, col: int,
                 global_bank: int, arrival: int,
                 on_complete: Optional[Callable[["Access", int], None]] = None,
                 critical: bool = True, seq: Optional[int] = None):
        self.role = role
        self.request = request
        self.channel = channel
        self.rank = rank
        self.bank = bank
        self.row = row
        self.col = col
        self.global_bank = global_bank
        self.arrival = arrival
        if seq is None:
            # Convenience fallback for hand-built accesses (tests, perf
            # benches).  The simulator proper always passes an explicit
            # seq from the per-system Translator counter: a class-global
            # here would be hidden state that snapshot capture/restore
            # could not make bit-faithful (see repro/snapshot.py).
            # Static class-var assignment: mypyc-legal (ClassVar
            # through the class, never an instance).
            Access._seq += 1  # dca-lint: disable=R7
            seq = Access._seq
        self.seq = seq                    # age tiebreak for schedulers
        # Flattened from the owning request: the scheduler inner loop reads
        # this per candidate, and a slot is much cheaper than a property.
        self.core_id = request.core_id
        self.on_complete = on_complete
        #: completion of this access gates the request's completion
        self.critical = critical
        # Priority class per DCA's taxonomy; identical labels are kept for
        # CD/ROD so stats can distinguish inverted reads there too.
        if role in _READ_ROLES:
            # Prefetch reads are speculative: they ride in the LR class
            # so DCA never inverts a demand read behind one.
            self.priority = (Priority.PR
                             if request.rtype == RequestType.READ
                             and not request.prefetch
                             else Priority.LR)
            # Flattened like core_id: does this access drive the bus in
            # write mode?  Read per scheduling decision and per issue, so
            # a slot beats recomputing the role test as a property.
            self.is_write = False
        else:
            self.priority = Priority.WRITE
            self.is_write = True

    @property
    def is_bus_read(self) -> bool:
        return not self.is_write

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Access({self.role.name}, {self.priority.name}, "
                f"ch{self.channel} b{self.bank} r{self.row})")
