"""Controller access queues with watermark state.

One :class:`AccessQueue` holds the accesses waiting to be scheduled on one
channel's bus for one direction class (the designs differ in *what* they
route here — see cd/rod/dca modules).  Capacity applies to *admission of
new requests*: continuation accesses of an in-flight request (the RD/WT
that follow a completed tag read) always fit, mirroring how real
controllers reserve slots for request continuations to avoid deadlock.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.core.access import Access, Priority


class AccessQueue:
    """A bounded scheduling pool (not FIFO: schedulers pick by policy)."""

    __slots__ = ("capacity", "entries", "_occupancy_integral", "_last_t")

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("queue capacity must be positive")
        self.capacity = capacity
        self.entries: list[Access] = []
        # time-weighted occupancy, for average-occupancy reporting
        self._occupancy_integral = 0
        self._last_t = 0

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    @property
    def occupancy(self) -> float:
        """Fill fraction; may exceed 1.0 transiently via continuations."""
        return len(self.entries) / self.capacity

    def has_room(self) -> bool:
        """Admission check for *new* requests."""
        return len(self.entries) < self.capacity

    def push(self, access: Access, now: int = 0) -> None:
        """Add an access (continuations may exceed nominal capacity)."""
        self._account(now)
        self.entries.append(access)

    def remove(self, access: Access, now: int = 0) -> None:
        self._account(now)
        self.entries.remove(access)

    def _account(self, now: int) -> None:
        if now > self._last_t:
            self._occupancy_integral += len(self.entries) * (now - self._last_t)
            self._last_t = now

    def mean_occupancy(self, now: int) -> float:
        """Time-averaged entry count since construction/reset."""
        self._account(now)
        return self._occupancy_integral / now if now else 0.0

    # -- filtered views used by the designs -------------------------------------

    def priority_reads(self) -> list[Access]:
        return [a for a in self.entries if a.priority == Priority.PR]

    def low_priority_reads(self) -> list[Access]:
        return [a for a in self.entries if a.priority == Priority.LR]

    def filtered(self, pred: Callable[[Access], bool]) -> list[Access]:
        return [a for a in self.entries if pred(a)]

    def oldest(self) -> Optional[Access]:
        if not self.entries:
            return None
        return min(self.entries, key=lambda a: a.seq)
