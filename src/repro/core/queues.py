"""Controller access queues with watermark state and scheduling indexes.

One :class:`AccessQueue` holds the accesses waiting to be scheduled on one
channel's bus for one direction class (the designs differ in *what* they
route here — see cd/rod/dca modules).  Capacity applies to *admission of
new requests*: continuation accesses of an in-flight request (the RD/WT
that follow a completed tag read) always fit, mirroring how real
controllers reserve slots for request continuations to avoid deadlock.

Scheduling indexes
------------------
Every push/remove incrementally maintains three index structures so the
per-slot scheduling decision never rescans the whole pool:

* a **position map** (``access -> index`` into ``entries``) making removal
  O(1) via swap-pop;
* **per-priority partitions** — insertion-ordered sets of the PR and LR
  read classes, giving O(1) ``pr_count``/``lr_count`` and O(k) views;
* **per-bank buckets** (``global_bank -> `` :class:`BankBucket`) for all
  entries and for each read class, so row-hit classification is done once
  per *bank* instead of once per *access* and DCA's OFS candidate set is
  a bucket walk instead of a full-queue filter.

Buckets are **struct-of-arrays**: each keeps the scheduler-relevant
fields of its members (``seqs`` / ``rows`` / ``cores``) as parallel flat
lists alongside the access objects, mirroring the channel's SoA bank
state.  ``pick_banked`` scans those int columns — the candidate-readiness
classification (row hit? blacklisted? age) batches into list index math
per bank with no per-candidate attribute chases, and only the winning
index dereferences an ``Access``.

Swap-pop perturbs the order of ``entries`` and of the bucket columns,
which is safe because every selection policy in this codebase totally
orders candidates with the globally unique ``Access.seq`` as the final
tiebreak: the argmin is unique, hence independent of iteration order
(see DESIGN.md, "Indexed scheduling fast path").
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, Optional

from repro.core.access import Access, Priority


class BankBucket:
    """Same-bank candidates as parallel columns (one slot per access).

    ``accs[i]`` / ``seqs[i]`` / ``rows[i]`` / ``cores[i]`` describe one
    queued access; removal is swap-pop on all four columns at once.
    The scheduler fast paths read the int columns directly; iteration
    yields the access objects (order is scan order, not age — safe, see
    module docstring).
    """

    __slots__ = ("accs", "seqs", "rows", "cores", "_pos")

    def __init__(self) -> None:
        self.accs: list[Access] = []
        self.seqs: list[int] = []
        self.rows: list[int] = []
        self.cores: list[int] = []
        self._pos: Dict[Access, int] = {}

    def __len__(self) -> int:
        return len(self.accs)

    def __iter__(self) -> Iterator[Access]:
        return iter(self.accs)

    def __contains__(self, access: Access) -> bool:
        return access in self._pos

    def add(self, access: Access) -> None:
        self._pos[access] = len(self.accs)
        self.accs.append(access)
        self.seqs.append(access.seq)
        self.rows.append(access.row)
        self.cores.append(access.core_id)

    def discard(self, access: Access) -> bool:
        """Swap-pop ``access`` out of every column; True when emptied."""
        accs = self.accs
        idx = self._pos.pop(access)
        last = accs.pop()
        last_seq = self.seqs.pop()
        last_row = self.rows.pop()
        last_core = self.cores.pop()
        if last is not access:
            accs[idx] = last
            self.seqs[idx] = last_seq
            self.rows[idx] = last_row
            self.cores[idx] = last_core
            self._pos[last] = idx
        return not accs

    def row_hits(self, open_row: int) -> "FrozenBucket":
        """Filtered copy keeping only candidates whose row is ``open_row``.

        Used by DCA's OFS filter when a bank admits only its safe (row
        hit) candidates; the result is a read-only column group the
        schedulers consume exactly like a live bucket.
        """
        accs = self.accs
        cores = self.cores
        seqs = self.seqs
        keep = [i for i, row in enumerate(self.rows) if row == open_row]
        return FrozenBucket([accs[i] for i in keep],
                            [seqs[i] for i in keep],
                            [open_row] * len(keep),
                            [cores[i] for i in keep])


class FrozenBucket:
    """Read-only column group (a filtered view of a :class:`BankBucket`)."""

    __slots__ = ("accs", "seqs", "rows", "cores")

    def __init__(self, accs: list[Access], seqs: list[int],
                 rows: list[int], cores: list[int]) -> None:
        self.accs = accs
        self.seqs = seqs
        self.rows = rows
        self.cores = cores

    def __len__(self) -> int:
        return len(self.accs)

    def __iter__(self) -> Iterator[Access]:
        return iter(self.accs)


class AccessQueue:
    """A bounded scheduling pool (not FIFO: schedulers pick by policy)."""

    __slots__ = ("capacity", "entries", "_pos", "_pr", "_lr",
                 "_banks", "_pr_banks", "_lr_banks",
                 "_occupancy_integral", "_last_t", "_t0")

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("queue capacity must be positive")
        self.capacity = capacity
        self.entries: list[Access] = []
        #: access -> index into ``entries`` (O(1) membership + removal)
        self._pos: Dict[Access, int] = {}
        # Insertion-ordered sets (dicts with None values): per-priority
        # partitions of the read classes.  Buckets are column stores.
        self._pr: Dict[Access, None] = {}
        self._lr: Dict[Access, None] = {}
        self._banks: Dict[int, BankBucket] = {}
        self._pr_banks: Dict[int, BankBucket] = {}
        self._lr_banks: Dict[int, BankBucket] = {}
        # time-weighted occupancy, for average-occupancy reporting
        self._occupancy_integral = 0
        self._last_t = 0
        self._t0 = 0

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[Access]:
        return iter(self.entries)

    def __contains__(self, access: Access) -> bool:
        return access in self._pos

    @property
    def occupancy(self) -> float:
        """Fill fraction; may exceed 1.0 transiently via continuations."""
        return len(self.entries) / self.capacity

    def has_room(self) -> bool:
        """Admission check for *new* requests."""
        return len(self.entries) < self.capacity

    def push(self, access: Access, now: int = 0) -> None:
        """Add an access (continuations may exceed nominal capacity)."""
        self._account(now)
        entries = self.entries
        self._pos[access] = len(entries)
        entries.append(access)
        gb = access.global_bank
        bucket = self._banks.get(gb)
        if bucket is None:
            bucket = self._banks[gb] = BankBucket()
        bucket.add(access)
        prio = access.priority
        if prio == Priority.PR:
            self._pr[access] = None
            pb = self._pr_banks.get(gb)
            if pb is None:
                pb = self._pr_banks[gb] = BankBucket()
            pb.add(access)
        elif prio == Priority.LR:
            self._lr[access] = None
            lb = self._lr_banks.get(gb)
            if lb is None:
                lb = self._lr_banks[gb] = BankBucket()
            lb.add(access)

    def remove(self, access: Access, now: int = 0) -> None:
        self._account(now)
        try:
            idx = self._pos.pop(access)
        except KeyError:
            raise ValueError("access not in queue") from None
        entries = self.entries
        last = entries.pop()
        if last is not access:        # swap-pop: O(1), order-insensitive
            entries[idx] = last
            self._pos[last] = idx
        gb = access.global_bank
        if self._banks[gb].discard(access):
            del self._banks[gb]
        prio = access.priority
        if prio == Priority.PR:
            del self._pr[access]
            if self._pr_banks[gb].discard(access):
                del self._pr_banks[gb]
        elif prio == Priority.LR:
            del self._lr[access]
            if self._lr_banks[gb].discard(access):
                del self._lr_banks[gb]

    # -- occupancy accounting ---------------------------------------------------

    def _account(self, now: int) -> None:
        if now > self._last_t:
            self._occupancy_integral += len(self.entries) * (now - self._last_t)
            self._last_t = now

    def reset_accounting(self, now: int) -> None:
        """Restart the time-weighted occupancy integral at ``now``.

        Called at the warm-up boundary so :meth:`mean_occupancy` reports
        the measured interval only, not warm-up traffic from t=0.
        """
        self._occupancy_integral = 0
        self._last_t = now
        self._t0 = now

    def mean_occupancy(self, now: int) -> float:
        """Time-averaged entry count since construction or the last
        :meth:`reset_accounting`."""
        self._account(now)
        span = now - self._t0
        return self._occupancy_integral / span if span > 0 else 0.0

    # -- index accessors (the scheduling fast path) -----------------------------

    @property
    def pr_count(self) -> int:
        """Queued PR-class (demand-read) accesses, O(1)."""
        return len(self._pr)

    @property
    def lr_count(self) -> int:
        """Queued LR-class (writeback/refill tag-read) accesses, O(1)."""
        return len(self._lr)

    def bank_buckets(self) -> Dict[int, BankBucket]:
        """``global_bank -> column bucket`` over **all** entries.

        Read-only view of live internal state: callers must not mutate it,
        and must not push/remove while iterating.
        """
        return self._banks

    def pr_bank_buckets(self) -> Dict[int, BankBucket]:
        """Per-bank buckets restricted to PR-class accesses (read-only)."""
        return self._pr_banks

    def lr_bank_buckets(self) -> Dict[int, BankBucket]:
        """Per-bank buckets restricted to LR-class accesses (read-only)."""
        return self._lr_banks

    # -- filtered views used by the designs -------------------------------------

    def priority_reads(self) -> list[Access]:
        return list(self._pr)

    def low_priority_reads(self) -> list[Access]:
        return list(self._lr)

    def filtered(self, pred: Callable[[Access], bool]) -> list[Access]:
        return [a for a in self.entries if pred(a)]

    def oldest(self) -> Optional[Access]:
        if not self.entries:
            return None
        return min(self.entries, key=lambda a: a.seq)

    # -- self-checks (tests only; O(n)) -----------------------------------------

    def check_invariants(self) -> None:
        """Assert every index is consistent with ``entries`` (test hook)."""
        assert len(self._pos) == len(self.entries)
        for i, a in enumerate(self.entries):
            assert self._pos[a] == i
        prs = [a for a in self.entries if a.priority == Priority.PR]
        lrs = [a for a in self.entries if a.priority == Priority.LR]
        assert set(self._pr) == set(prs) and len(self._pr) == len(prs)
        assert set(self._lr) == set(lrs) and len(self._lr) == len(lrs)
        for name, index, universe in (
                ("banks", self._banks, self.entries),
                ("pr_banks", self._pr_banks, prs),
                ("lr_banks", self._lr_banks, lrs)):
            flat = [a for bucket in index.values() for a in bucket]
            assert len(flat) == len(universe), name
            assert set(flat) == set(universe), name
            for gb, bucket in index.items():
                assert bucket, f"{name}: empty bucket {gb}"
                assert all(a.global_bank == gb for a in bucket), name
                # Column coherence: every parallel lane describes its
                # access, and the position map inverts the layout.
                for i, a in enumerate(bucket.accs):
                    assert bucket.seqs[i] == a.seq, name
                    assert bucket.rows[i] == a.row, name
                    assert bucket.cores[i] == a.core_id, name
                    assert bucket._pos[a] == i, name
