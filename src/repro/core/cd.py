"""CD — the Conventional Design (paper §III-A).

The straight extension of a conventional DRAM controller to a DRAM cache:
accesses are routed purely by *access type* (bus reads to the read queue,
bus writes to the write queue), and the read queue is always served first.

This minimises bus turnarounds (all queued reads batch together, all
writes batch in flush episodes), but it is blind to *request* type: a tag
read belonging to a writeback (RTw) competes in the read queue with — and
can row-conflict against — the tag/data reads of demand reads.  The paper
names the two resulting pathologies **read priority inversion** and
**read-read conflicts (RRC)**; both are measured by this implementation
(see ``ControllerStats.read_priority_inversions`` and the channel row
stats).
"""

from __future__ import annotations

from typing import Optional

from repro.core.access import Access
from repro.core.base import BaseController
from repro.core.queues import AccessQueue


class CDController(BaseController):
    """Route by access type; serve reads first; passive write flushing."""

    design = "CD"

    def _route(self, access: Access) -> str:
        return "write" if access.is_write else "read"

    def _select(self, ch: int) -> Optional[tuple[Access, AccessQueue]]:
        self._flush_exit_check(ch)
        self._flush_enter_forced(ch)
        if self.flushing[ch]:
            picked = self._pick_write(ch)
            if picked is not None:
                return picked
            self.flushing[ch] = False  # queue emptied mid-flush
        picked = self._continue_opportunistic(ch)
        if picked is not None:
            return picked
        picked = self._pick_read(ch, self.read_q[ch].bank_buckets())
        if picked is not None:
            return picked
        # No reads pending: drain writes opportunistically above the low
        # watermark (the paper's two-threshold passive scheme).
        return self._start_opportunistic(ch)
