"""BLISS: the Blacklisting memory scheduler (Subramanian et al., 2015).

BLISS achieves application-aware scheduling with minimal state: it observes
the stream of *served* requests, and when one application is served
``blacklist_threshold`` (4) times in a row, that application is
**blacklisted**.  Scheduling priority is then:

1. non-blacklisted application first,
2. row-buffer hit first,
3. oldest first.

The blacklist is cleared wholesale every ``clearing_interval`` (10 us),
bounding unfairness without per-application rank computation.

The paper uses BLISS as the underlying scheduling algorithm of *all* the
evaluated controller designs (CD, ROD, DCA); the designs differ in which
candidate set they hand to BLISS at each slot, not in the ordering policy.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.config import BLISSConfig
from repro.core.access import Access
from repro.dram.bank import ROW_HIT
from repro.dram.channel import Channel


class BLISSScheduler:
    """Per-channel BLISS state + candidate selection."""

    __slots__ = ("cfg", "blacklist", "_last_core", "_streak", "_last_clear",
                 "served", "blacklist_events")

    def __init__(self, cfg: BLISSConfig, num_cores: int):
        self.cfg = cfg
        self.blacklist = [False] * num_cores
        self._last_core = -1
        self._streak = 0
        self._last_clear = 0
        self.served = 0
        self.blacklist_events = 0

    # -- bookkeeping -------------------------------------------------------------

    def maybe_clear(self, now: int) -> None:
        """Clear all blacklist bits every clearing interval."""
        if now - self._last_clear >= self.cfg.clearing_interval_ps:
            self.blacklist = [False] * len(self.blacklist)
            self._last_clear = now

    def on_served(self, core_id: int) -> None:
        """Observe one served request; blacklist on a long streak."""
        self.served += 1
        if core_id == self._last_core:
            self._streak += 1
            if self._streak >= self.cfg.blacklist_threshold:
                if not self.blacklist[core_id]:
                    self.blacklist[core_id] = True
                    self.blacklist_events += 1
                self._streak = 0
        else:
            self._last_core = core_id
            self._streak = 1

    # -- selection ---------------------------------------------------------------

    def pick(self, candidates: Iterable[Access], channel: Channel,
             now: int) -> Optional[Access]:
        """Choose the highest-priority access among ``candidates``.

        Priority: non-blacklisted > row-hit > age (global seq).  Returns
        None when the candidate set is empty.
        """
        self.maybe_clear(now)
        best: Optional[Access] = None
        best_key: tuple[int, int, int] | None = None
        bl = self.blacklist
        for a in candidates:
            row_hit = (channel.banks[
                channel.bank_index(a.rank, a.bank)].row_state(a.row) == ROW_HIT)
            key = (1 if bl[a.core_id] else 0, 0 if row_hit else 1, a.seq)
            if best_key is None or key < best_key:
                best, best_key = a, key
        return best
