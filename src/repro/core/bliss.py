"""BLISS: the Blacklisting memory scheduler (Subramanian et al., 2015).

BLISS achieves application-aware scheduling with minimal state: it observes
the stream of *served* requests, and when one application is served
``blacklist_threshold`` (4) times in a row, that application is
**blacklisted**.  Scheduling priority is then:

1. non-blacklisted application first,
2. row-buffer hit first,
3. oldest first.

The blacklist is cleared wholesale every ``clearing_interval`` (10 us),
bounding unfairness without per-application rank computation.

The paper uses BLISS as the underlying scheduling algorithm of *all* the
evaluated controller designs (CD, ROD, DCA); the designs differ in which
candidate set they hand to BLISS at each slot, not in the ordering policy.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

from repro.config import BLISSConfig
from repro.core.access import Access
from repro.core.queues import BankBucket, FrozenBucket
from repro.dram.bank import ROW_HIT
from repro.dram.channel import Channel

#: Any bank-bucket column group the schedulers can scan.
BucketColumns = BankBucket | FrozenBucket

#: Sentinel above any real ``Access.seq`` (a monotonic counter).
_SEQ_MAX = 1 << 62


class BLISSScheduler:
    """Per-channel BLISS state + candidate selection."""

    __slots__ = ("cfg", "blacklist", "_last_core", "_streak", "_last_clear",
                 "served", "blacklist_events")

    def __init__(self, cfg: BLISSConfig, num_cores: int):
        self.cfg = cfg
        self.blacklist = [False] * num_cores
        self._last_core = -1
        self._streak = 0
        self._last_clear = 0
        self.served = 0
        self.blacklist_events = 0

    # -- bookkeeping -------------------------------------------------------------

    def maybe_clear(self, now: int) -> None:
        """Clear all blacklist bits every clearing interval."""
        if now - self._last_clear >= self.cfg.clearing_interval_ps:
            self.blacklist = [False] * len(self.blacklist)
            self._last_clear = now

    def on_served(self, core_id: int) -> None:
        """Observe one served request; blacklist on a long streak."""
        self.served += 1
        if core_id == self._last_core:
            self._streak += 1
            if self._streak >= self.cfg.blacklist_threshold:
                if not self.blacklist[core_id]:
                    self.blacklist[core_id] = True
                    self.blacklist_events += 1
                self._streak = 0
        else:
            self._last_core = core_id
            self._streak = 1

    # -- selection ---------------------------------------------------------------

    def pick(self, candidates: Iterable[Access], channel: Channel,
             now: int) -> Optional[Access]:
        """Choose the highest-priority access among ``candidates``.

        Priority: non-blacklisted > row-hit > age (global seq).  Returns
        None when the candidate set is empty.

        This is the naive reference selector: it classifies the row state
        of every candidate individually.  The scheduling hot path uses
        :meth:`pick_banked` over the queue's per-bank buckets instead;
        both must return the identical access for the same candidate set
        (``seq`` is globally unique, so the argmin is unique — verified by
        the side-by-side property tests).
        """
        self.maybe_clear(now)
        best: Optional[Access] = None
        best_key: tuple[int, int, int] | None = None
        bl = self.blacklist
        for a in candidates:
            row_hit = (channel.banks[
                channel.bank_index(a.rank, a.bank)].row_state(a.row) == ROW_HIT)
            key = (1 if bl[a.core_id] else 0, 0 if row_hit else 1, a.seq)
            if best_key is None or key < best_key:
                best, best_key = a, key
        return best

    def pick_banked(self, buckets: "Mapping[int, BucketColumns]",
                    channel: Channel, now: int) -> Optional[Access]:
        """Fast-path selection over bank-bucketed candidate columns.

        ``buckets`` maps ``global_bank`` to a non-empty column bucket of
        accesses targeting that bank (the queue's incremental indexes, or
        any filtered subset keyed the same way).  The open row is fetched
        once per bank — ``global_bank % len(banks)`` is the channel-local
        bank index by construction of ``AddressMapper.global_bank`` — and
        the (blacklist, row-miss, seq) lexicographic order is evaluated
        as the oldest candidate per (blacklisted, row-miss) class over
        the bucket's flat int columns, returned in class order.  While no
        core is blacklisted, a bucket whose bank has no open row (or no
        hit on it) is a single-class group: its argmin batches into
        C-level ``min``/``index`` with no per-candidate bytecode at all.
        Bit-identical to :meth:`pick` on the flattened candidate set:
        ``seq`` is globally unique, so the argmin is unique and
        iteration order is irrelevant.
        """
        self.maybe_clear(now)
        bl = self.blacklist
        # SoA hot path: one list index per bucket fetches the open row
        # (-1 = closed, which no real row id equals — the None check the
        # object model needed disappears).
        open_rows = channel.open_rows
        nbanks = len(open_rows)
        any_bl = True in bl
        # Oldest candidate per (blacklisted, row-miss) class; returning the
        # first non-empty class in 00 < 01 < 10 < 11 order is exactly the
        # (blacklist, row-miss, seq) lexicographic minimum, with no tuple
        # or big-int key allocation in the inner loop.
        b_hit = b_miss = b_bl_hit = b_bl_miss = None
        s_hit = s_miss = s_bl_hit = s_bl_miss = _SEQ_MAX
        for gb, bucket in buckets.items():
            open_row = open_rows[gb % nbanks]
            seqs = bucket.seqs
            rows = bucket.rows
            if not any_bl:
                if open_row < 0 or open_row not in rows:
                    m = min(seqs)          # pure-miss bucket: one class
                    if m < s_miss:
                        s_miss = m
                        b_miss = bucket.accs[seqs.index(m)]
                    continue
                for i in range(len(seqs)):
                    s = seqs[i]
                    if rows[i] == open_row:
                        if s < s_hit:
                            s_hit = s
                            b_hit = bucket.accs[i]
                    elif s < s_miss:
                        s_miss = s
                        b_miss = bucket.accs[i]
                continue
            cores = bucket.cores
            for i in range(len(seqs)):
                s = seqs[i]
                if bl[cores[i]]:
                    if rows[i] == open_row:
                        if s < s_bl_hit:
                            s_bl_hit = s
                            b_bl_hit = bucket.accs[i]
                    elif s < s_bl_miss:
                        s_bl_miss = s
                        b_bl_miss = bucket.accs[i]
                elif rows[i] == open_row:
                    if s < s_hit:
                        s_hit = s
                        b_hit = bucket.accs[i]
                elif s < s_miss:
                    s_miss = s
                    b_miss = bucket.accs[i]
        if b_hit is not None:
            return b_hit
        if b_miss is not None:
            return b_miss
        return b_bl_hit if b_bl_hit is not None else b_bl_miss
