"""MAP-I: the instruction-based DRAM-cache miss predictor (Qureshi & Loh).

MAP-I ("Memory Access Predictor, Instruction-based", MICRO'12) predicts
whether an access will miss in the DRAM cache using a small table of
saturating counters indexed by a hash of the missing load's instruction
address.  On a predicted miss the controller launches the main-memory fetch
*in parallel* with the tag read, hiding most of the miss penalty; tags are
still checked to confirm.

The paper uses MAP-I in every design it evaluates ("we use MAP-I as the
DRAM cache miss predictor for reducing miss penalty"), so the predictor is
part of the shared substrate here, not a DCA-specific feature.
"""

from __future__ import annotations

from repro.metrics.registry import MetricGroup, derived


class MAPIStats(MetricGroup):
    """Prediction-accuracy counters."""

    COUNTERS = (
        "predictions",
        "predicted_miss",
        "correct",
        "wasted_fetches",          # predicted miss, was actually a hit
        "missed_opportunities",    # predicted hit, was actually a miss
    )

    @derived
    def accuracy(self) -> float:
        return self.correct / self.predictions if self.predictions else 0.0


class MAPIPredictor:
    """Per-core tables of 3-bit saturating hit counters indexed by PC hash.

    Counter semantics: saturating up on an observed *hit*, down on a
    *miss*; predict **miss** when the counter is below the midpoint.  A
    fresh counter starts at the midpoint-1 (predict miss), matching the
    cold-cache reality that early accesses miss.
    """

    def __init__(self, num_cores: int, table_entries: int = 256,
                 counter_bits: int = 3):
        if table_entries & (table_entries - 1):
            raise ValueError("table_entries must be a power of two")
        self.table_entries = table_entries
        self.counter_max = (1 << counter_bits) - 1
        self.threshold = 1 << (counter_bits - 1)   # >= threshold -> predict hit
        init = self.threshold - 1
        self.tables = [[init] * table_entries for _ in range(num_cores)]
        self.stats = MAPIStats()

    def _index(self, pc: int) -> int:
        # Cheap avalanche: fold upper bits down so nearby PCs spread out.
        h = (pc ^ (pc >> 7) ^ (pc >> 17)) & (self.table_entries - 1)
        return h

    def predict_miss(self, core_id: int, pc: int) -> bool:
        """True if the block is predicted to miss in the DRAM cache."""
        self.stats.predictions += 1
        counter = self.tables[core_id][self._index(pc)]
        miss = counter < self.threshold
        if miss:
            self.stats.predicted_miss += 1
        return miss

    def update(self, core_id: int, pc: int, was_hit: bool,
               predicted_miss: bool) -> None:
        """Train with the actual tag-check outcome."""
        t = self.tables[core_id]
        i = self._index(pc)
        if was_hit:
            if t[i] < self.counter_max:
                t[i] += 1
        else:
            if t[i] > 0:
                t[i] -= 1
        if predicted_miss != (not was_hit):
            if predicted_miss:
                self.stats.wasted_fetches += 1
            else:
                self.stats.missed_opportunities += 1
        else:
            self.stats.correct += 1
