"""Request -> access translation (paper Fig. 2).

The translator turns an L2-level cache request into the staged sequence of
DRAM array accesses the controller must schedule, consulting the functional
tag array at tag-read completion time to decide the hit/miss leg:

=====================  ==========================================
request                accesses (set-associative)
=====================  ==========================================
cache read             RTr ; on hit -> RDr + WTr
cache writeback        RTw ; on hit -> WDw + WTw
                       on miss -> [RDw victim if dirty ->] WDw + WTw
cache refill           identical to writeback (insert clean)
=====================  ==========================================

=====================  ==========================================
request                accesses (direct-mapped / Alloy)
=====================  ==========================================
cache read             one TAD read (tag+data in a single burst)
cache writeback/refill TAD read ; -> TAD write (victim data, if
                       dirty, arrived with the TAD read)
=====================  ==========================================

The translator is pure policy: it builds :class:`~repro.core.access.Access`
objects with their array coordinates but does not touch queues or timing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cache.dramcache import DRAMCacheArray
from repro.core.access import Access, AccessRole, CacheRequest, RequestType
from repro.dram.address import AddressMapper


@dataclass
class TagOutcome:
    """What the controller must do after a request's tag read completes."""

    hit: bool
    #: accesses to enqueue now (already routed through the address mapper)
    next_accesses: list[Access] = field(default_factory=list)
    #: a dirty-victim data read that must complete before the writes issue
    victim_read: Optional[Access] = None
    #: block address whose data must be written to main memory (dirty victim)
    victim_mem_write: Optional[int] = None
    #: the read request missed: fetch the block from main memory
    memory_fetch: bool = False


class Translator:
    """Builds access plans against one organization + address mapping."""

    def __init__(self, array: DRAMCacheArray, mapper: AddressMapper):
        self.array = array
        self.mapper = mapper
        # Per-system access age counter (the schedulers' final tiebreak).
        # Owned here — not by the Access class — so it travels with the
        # simulation through snapshot capture/restore and two live
        # simulations never interleave their sequence numbers.
        self._seq = 0

    # -- access construction ----------------------------------------------------

    def _make(self, role: AccessRole, req: CacheRequest, array_addr: int,
              now: int, critical: bool = True) -> Access:
        d = self.mapper.decode(array_addr)
        self._seq += 1
        return Access(role, req, d.channel, d.rank, d.bank, d.row, d.col,
                      self.mapper.global_bank(d), now, critical=critical,
                      seq=self._seq)

    # -- stage 1 ------------------------------------------------------------------

    def initial_access(self, req: CacheRequest, now: int) -> Access:
        """The tag read that begins every request.

        In the direct-mapped organization a *read* request's tag read is the
        TAD read itself (tag and data return together), so a read hit
        finishes with this single access.
        """
        tag_addr = self.array.tag_location(req.addr)
        return self._make(AccessRole.TAG_READ, req, tag_addr, now)

    # -- stage 2 ------------------------------------------------------------------

    def after_tag_read(self, req: CacheRequest, now: int) -> TagOutcome:
        """Resolve hit/miss functionally and build the follow-on accesses."""
        if req.rtype == RequestType.READ:
            return self._after_read_tag(req, now)
        return self._after_write_tag(req, now)

    def _after_read_tag(self, req: CacheRequest, now: int) -> TagOutcome:
        res = self.array.lookup_read(req.addr)
        req.hit = res.hit
        if not res.hit:
            return TagOutcome(hit=False, memory_fetch=True)
        if self.array.is_direct_mapped:
            # TAD read already returned the data; no further access.
            return TagOutcome(hit=True)
        data = self._make(AccessRole.DATA_READ, req,
                          self.array.data_location(req.addr, res.way), now)
        # Replacement-bit update; off the critical path.
        tagw = self._make(AccessRole.TAG_WRITE, req,
                          self.array.tag_location(req.addr), now,
                          critical=False)
        return TagOutcome(hit=True, next_accesses=[data, tagw])

    def _after_write_tag(self, req: CacheRequest, now: int) -> TagOutcome:
        """Writeback / refill: update in place on hit, allocate on miss."""
        res = self.array.lookup_write(req.addr)
        req.hit = res.hit
        dirty_insert = req.rtype == RequestType.WRITEBACK
        if res.hit:
            way = res.way
            victim_mem_write = None
            victim_read = None
        else:
            fill = self.array.fill(req.addr, dirty=dirty_insert)
            way = fill.way
            victim_mem_write = (fill.victim_block_addr
                                if fill.victim_dirty else None)
            victim_read = None
            if fill.victim_dirty and not self.array.is_direct_mapped:
                # RDw: the victim's data must be read before it is
                # overwritten (paper Fig. 2).  In the direct-mapped
                # organization the TAD read already returned it.
                victim_read = self._make(
                    AccessRole.DATA_READ, req,
                    self.array.data_location(req.addr, way), now)

        if self.array.is_direct_mapped:
            # One TAD write carries tag+data together.
            writes = [self._make(AccessRole.DATA_WRITE, req,
                                 self.array.tag_location(req.addr), now)]
        else:
            writes = [
                self._make(AccessRole.DATA_WRITE, req,
                           self.array.data_location(req.addr, way), now),
                self._make(AccessRole.TAG_WRITE, req,
                           self.array.tag_location(req.addr), now),
            ]
        return TagOutcome(hit=res.hit, next_accesses=writes,
                          victim_read=victim_read,
                          victim_mem_write=victim_mem_write)

    # -- static shape helpers (used by tests and the Fig. 18 study) -------------

    def accesses_per_read_hit(self) -> int:
        """How many array accesses a read hit costs (3 SA, 1 DM)."""
        return 1 if self.array.is_direct_mapped else 3

    def accesses_per_writeback_hit(self) -> int:
        """How many array accesses a writeback hit costs (3 SA, 2 DM)."""
        return 2 if self.array.is_direct_mapped else 3
