"""Pluggable victim selection for the SRAM caches and the SA DRAM cache.

Three policies (gem5's LRU variants), selected by name from
``REPLACEMENT_POLICIES`` in :mod:`repro.config`:

* ``"lru"`` — plain least-recently-used (the historical behaviour; the
  default's victim choice is computed exactly as before, so default
  configs stay bit-identical to the pre-policy goldens).
* ``"lruc"`` — clean-preferred LRU: evict the LRU *clean* way when one
  exists (a clean victim costs no writeback), falling back to plain LRU
  when the whole set is dirty.
* ``"lrud"`` — dirty-preferred LRU: evict the LRU *dirty* way when one
  exists, harvesting writebacks early so they reach the write buffer /
  Lee batcher in bursts instead of trickling.

Two call conventions, one per cache organisation:

* **SRAM** (:mod:`repro.mem.sram`): sets are lists of ``[tag, dirty,
  stamp]`` entries; the policy returns the victim *entry*.
* **SA DRAM cache** (:mod:`repro.cache.dramcache`): sets are
  structure-of-arrays; the policy returns the victim *way index*.  The
  caller fills invalid ways first — policies only see full sets.

All policies are module-level functions, so a cache holding one as an
attribute stays snapshot-safe (no closures in live state — see
repro/snapshot.py and dca-lint rule R3).
"""

from __future__ import annotations

from operator import itemgetter
from types import MappingProxyType
from typing import Any, Callable, Iterable, Mapping, Sequence

# Entries are [tag, dirty, stamp]; stamps are unique and monotonic.
_STAMP = itemgetter(2)

# SRAM policies only iterate (min / filter), so any iterable of entries
# works — the SRAM cache passes its per-set dict's values() view without
# materialising a list per eviction.
SRAMVictimFn = Callable[[Iterable[list[Any]]], list[Any]]
SAVictimFn = Callable[[Sequence[int], Sequence[bool], Sequence[int]], int]


# -- SRAM caches (list-of-entries sets) -----------------------------------------


def _sram_lru(s: Iterable[list[Any]]) -> list[Any]:
    return min(s, key=_STAMP)


def _sram_lru_clean(s: Iterable[list[Any]]) -> list[Any]:
    entries = list(s)
    clean = [e for e in entries if not e[1]]
    return min(clean, key=_STAMP) if clean else min(entries, key=_STAMP)


def _sram_lru_dirty(s: Iterable[list[Any]]) -> list[Any]:
    entries = list(s)
    dirty = [e for e in entries if e[1]]
    return min(dirty, key=_STAMP) if dirty else min(entries, key=_STAMP)


SRAM_POLICIES: Mapping[str, SRAMVictimFn] = MappingProxyType({
    "lru": _sram_lru,
    "lruc": _sram_lru_clean,
    "lrud": _sram_lru_dirty,
})


# -- SA DRAM-cache organisation (structure-of-arrays sets) ----------------------


def _sa_lru(tags: Sequence[int], dirty: Sequence[bool],
            stamp: Sequence[int]) -> int:
    return stamp.index(min(stamp))


def _sa_lru_clean(tags: Sequence[int], dirty: Sequence[bool],
                  stamp: Sequence[int]) -> int:
    best = -1
    best_stamp = -1
    for w, d in enumerate(dirty):
        if not d and (best < 0 or stamp[w] < best_stamp):
            best, best_stamp = w, stamp[w]
    return best if best >= 0 else _sa_lru(tags, dirty, stamp)


def _sa_lru_dirty(tags: Sequence[int], dirty: Sequence[bool],
                  stamp: Sequence[int]) -> int:
    best = -1
    best_stamp = -1
    for w, d in enumerate(dirty):
        if d and (best < 0 or stamp[w] < best_stamp):
            best, best_stamp = w, stamp[w]
    return best if best >= 0 else _sa_lru(tags, dirty, stamp)


SA_POLICIES: Mapping[str, SAVictimFn] = MappingProxyType({
    "lru": _sa_lru,
    "lruc": _sa_lru_clean,
    "lrud": _sa_lru_dirty,
})
