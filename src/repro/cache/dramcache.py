"""Functional tag state of the DRAM cache (both organizations).

This tracks *what is in the cache* — tags, valid, dirty, LRU stamps — so
the controller can resolve hit/miss at tag-read completion time and find
victims at fill time.  Timing lives entirely in the controller + DRAM
substrate; this module is purely functional and therefore shared verbatim
by every controller design (CD / ROD / DCA see identical contents).

Sets are materialised lazily in a dict keyed by set index: simulated
workloads touch a sparse subset of the geometry's sets, and small Python
lists with linear scans over <= 15 ways beat NumPy row indexing at this
scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.cache.organizations import DirectMappedGeometry, SetAssociativeGeometry
from repro.config import DRAMCacheGeometry


@dataclass(frozen=True)
class LookupResult:
    """Outcome of a functional probe."""

    hit: bool
    way: int = -1            # way index (SA) / 0 (DM); -1 on miss
    dirty: bool = False      # dirty state of the hit block


@dataclass(frozen=True)
class FillResult:
    """Outcome of inserting a block: the displaced victim, if any."""

    way: int
    victim_block_addr: Optional[int] = None   # physical block addr of victim
    victim_dirty: bool = False


class _SASet:
    """One set of the set-associative organization."""

    __slots__ = ("tags", "dirty", "stamp")

    def __init__(self, ways: int):
        self.tags: list[int] = [-1] * ways
        self.dirty: list[bool] = [False] * ways
        self.stamp: list[int] = [0] * ways   # LRU: larger = more recent


class DRAMCacheArray:
    """Functional contents of the DRAM cache.

    Parameters
    ----------
    geometry:
        Raw capacity/layout description (Table II).
    organization:
        ``"sa"`` (set-associative, Loh–Hill) or ``"dm"`` (direct-mapped,
        Alloy).
    """

    def __init__(self, geometry: DRAMCacheGeometry, organization: str = "sa"):
        organization = organization.lower()
        if organization not in ("sa", "dm"):
            raise ValueError(f"unknown organization {organization!r}")
        self.geometry = geometry
        self.organization = organization
        self.sa = SetAssociativeGeometry(geometry)
        self.dm = DirectMappedGeometry(geometry)
        # Lazy state.
        self._sa_sets: dict[int, _SASet] = {}
        self._dm_entries: dict[int, tuple[int, bool]] = {}  # idx -> (tag, dirty)
        self._clock = 0  # LRU stamp source
        # Functional counters (used by tests and the Fig. 18 harness).
        self.lookups = 0
        self.hits = 0
        self.fills = 0
        self.dirty_evictions = 0

    # -- common helpers --------------------------------------------------------

    @property
    def is_direct_mapped(self) -> bool:
        return self.organization == "dm"

    def _block(self, addr: int) -> int:
        return addr // self.geometry.block_bytes

    # -- probes (no replacement-state side effects) ----------------------------

    def probe(self, addr: int) -> LookupResult:
        """Hit/miss/dirty query with no state change."""
        b = self._block(addr)
        if self.is_direct_mapped:
            idx = self.dm.entry_index(b)
            ent = self._dm_entries.get(idx)
            if ent is not None and ent[0] == self.dm.tag_value(b):
                return LookupResult(True, 0, ent[1])
            return LookupResult(False)
        s = self._sa_sets.get(self.sa.set_index(b))
        if s is None:
            return LookupResult(False)
        tag = self.sa.tag_value(b)
        for w, t in enumerate(s.tags):
            if t == tag:
                return LookupResult(True, w, s.dirty[w])
        return LookupResult(False)

    # -- timed-path operations (called at access completion times) -------------

    def lookup_read(self, addr: int) -> LookupResult:
        """Resolve a cache-read tag check; updates LRU on a hit.

        In the real system the LRU/replacement-bit update is carried by the
        WTr tag-write access; functionally we apply it here so the state the
        *next* tag read observes matches what that write will have stored.
        """
        self.lookups += 1
        res = self.probe(addr)
        if res.hit:
            self.hits += 1
            self._touch(addr, res.way)
        return res

    def lookup_write(self, addr: int) -> LookupResult:
        """Resolve a writeback tag check; marks dirty + LRU on a hit."""
        self.lookups += 1
        res = self.probe(addr)
        if res.hit:
            self.hits += 1
            b = self._block(addr)
            if self.is_direct_mapped:
                idx = self.dm.entry_index(b)
                self._dm_entries[idx] = (self.dm.tag_value(b), True)
            else:
                s = self._sa_sets[self.sa.set_index(b)]
                s.dirty[res.way] = True
                self._touch(addr, res.way)
        return res

    def fill(self, addr: int, dirty: bool) -> FillResult:
        """Insert ``addr`` (refill from memory, or allocating writeback).

        Returns the victim (if a valid block was displaced) so the caller
        can generate the victim's main-memory writeback when it was dirty.
        """
        self.fills += 1
        b = self._block(addr)
        if self.is_direct_mapped:
            idx = self.dm.entry_index(b)
            old = self._dm_entries.get(idx)
            self._dm_entries[idx] = (self.dm.tag_value(b), dirty)
            if old is None:
                return FillResult(0)
            victim_addr = self.dm.block_addr(idx, old[0]) * self.geometry.block_bytes
            if old[1]:
                self.dirty_evictions += 1
            return FillResult(0, victim_addr, old[1])

        set_idx = self.sa.set_index(b)
        s = self._sa_sets.get(set_idx)
        if s is None:
            s = _SASet(self.sa.ways)
            self._sa_sets[set_idx] = s
        tag = self.sa.tag_value(b)
        # Refill of a block already present (e.g. race with a concurrent
        # writeback-allocate) just refreshes it.
        for w, t in enumerate(s.tags):
            if t == tag:
                s.dirty[w] = s.dirty[w] or dirty
                self._touch(addr, w)
                return FillResult(w)
        # Prefer an invalid way; otherwise evict LRU.
        victim_way = -1
        for w, t in enumerate(s.tags):
            if t == -1:
                victim_way = w
                break
        if victim_way < 0:
            victim_way = min(range(self.sa.ways), key=lambda w: s.stamp[w])
        old_tag = s.tags[victim_way]
        old_dirty = s.dirty[victim_way]
        s.tags[victim_way] = tag
        s.dirty[victim_way] = dirty
        self._clock += 1
        s.stamp[victim_way] = self._clock
        if old_tag == -1:
            return FillResult(victim_way)
        victim_addr = self.sa.block_addr(set_idx, old_tag) * self.geometry.block_bytes
        if old_dirty:
            self.dirty_evictions += 1
        return FillResult(victim_way, victim_addr, old_dirty)

    def invalidate(self, addr: int) -> bool:
        """Drop a block (used by tests and coherence-style experiments)."""
        b = self._block(addr)
        if self.is_direct_mapped:
            idx = self.dm.entry_index(b)
            ent = self._dm_entries.get(idx)
            if ent is not None and ent[0] == self.dm.tag_value(b):
                del self._dm_entries[idx]
                return True
            return False
        s = self._sa_sets.get(self.sa.set_index(b))
        if s is None:
            return False
        tag = self.sa.tag_value(b)
        for w, t in enumerate(s.tags):
            if t == tag:
                s.tags[w] = -1
                s.dirty[w] = False
                return True
        return False

    # -- warm-up ----------------------------------------------------------------

    def bulk_fill(self, start_addr: int, n_blocks: int,
                  dirty_fraction: float = 0.0, seed: int = 0) -> None:
        """Functionally pre-populate a contiguous block range (warm-up).

        Mirrors the paper's fast-forward cache warming: the range
        ``[start_addr, start_addr + n_blocks*64)`` is inserted as if each
        block had been filled once in address order, with a deterministic
        pseudo-random ``dirty_fraction`` of blocks marked dirty.  Uses
        vectorised grouping, so warming multi-hundred-MB footprints costs
        milliseconds instead of replaying millions of accesses.
        """
        if n_blocks <= 0:
            return
        start_block = start_addr // self.geometry.block_bytes
        blocks = np.arange(start_block, start_block + n_blocks, dtype=np.int64)
        # Deterministic per-block dirty choice (Knuth multiplicative hash).
        h = ((blocks + seed) * np.int64(2654435761)) & np.int64(0xFFFFFFFF)
        dirty = (h >> 16).astype(np.float64) / 65536.0 < dirty_fraction

        if self.is_direct_mapped:
            idxs = blocks % self.dm.num_entries
            tags = blocks // self.dm.num_entries
            entries = self._dm_entries
            for i, t, d in zip(idxs.tolist(), tags.tolist(), dirty.tolist()):
                entries[i] = (t, d)
            return

        sets = blocks % self.sa.num_sets
        tags = blocks // self.sa.num_sets
        order = np.argsort(sets, kind="stable")
        sets_sorted = sets[order]
        tags_sorted = tags[order].tolist()
        dirty_sorted = dirty[order].tolist()
        boundaries = np.flatnonzero(np.diff(sets_sorted)) + 1
        starts = [0, *boundaries.tolist()]
        ends = [*boundaries.tolist(), len(sets_sorted)]
        set_ids = sets_sorted[np.concatenate(([0], boundaries))].tolist()
        ways = self.sa.ways
        for sid, lo, hi in zip(set_ids, starts, ends):
            s = self._sa_sets.get(sid)
            if s is None:
                s = _SASet(ways)
                self._sa_sets[sid] = s
            # LRU semantics over (existing contents + this range): keep
            # the `ways` most recently inserted entries.
            merged = [(s.stamp[w], s.tags[w], s.dirty[w])
                      for w in range(ways) if s.tags[w] != -1]
            for k in range(max(lo, hi - ways), hi):
                self._clock += 1
                merged.append((self._clock, tags_sorted[k], dirty_sorted[k]))
            if len(merged) > ways:
                merged.sort()
                for _stamp, _tag, was_dirty in merged[:-ways]:
                    if was_dirty:
                        self.dirty_evictions += 1
                merged = merged[-ways:]
            for w in range(ways):
                if w < len(merged):
                    s.stamp[w], s.tags[w], s.dirty[w] = merged[w]
                else:
                    s.tags[w], s.dirty[w], s.stamp[w] = -1, False, 0

    def _touch(self, addr: int, way: int) -> None:
        if self.is_direct_mapped:
            return
        b = self._block(addr)
        s = self._sa_sets[self.sa.set_index(b)]
        self._clock += 1
        s.stamp[way] = self._clock

    # -- array-address helpers (where tag/data live in the stacked DRAM) -------

    def tag_location(self, addr: int) -> int:
        """Array address of the tag structure guarding ``addr``."""
        b = self._block(addr)
        if self.is_direct_mapped:
            return self.dm.tad_array_addr(self.dm.entry_index(b))
        return self.sa.tag_array_addr(self.sa.set_index(b))

    def data_location(self, addr: int, way: int) -> int:
        """Array address of the data block for ``addr`` in ``way``."""
        b = self._block(addr)
        if self.is_direct_mapped:
            return self.dm.tad_array_addr(self.dm.entry_index(b))
        return self.sa.data_array_addr(self.sa.set_index(b), way)

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def reset_counters(self) -> None:
        """Zero the functional counters (warm-up boundary)."""
        self.lookups = self.hits = self.fills = self.dirty_evictions = 0
