"""Functional tag state of the DRAM cache (both organizations).

This tracks *what is in the cache* — tags, valid, dirty, LRU stamps — so
the controller can resolve hit/miss at tag-read completion time and find
victims at fill time.  Timing lives entirely in the controller + DRAM
substrate; this module is purely functional and therefore shared verbatim
by every controller design (CD / ROD / DCA see identical contents).

Sets are materialised lazily in a dict keyed by set index: simulated
workloads touch a sparse subset of the geometry's sets, and small Python
lists with linear scans over <= 15 ways beat NumPy row indexing at this
scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Optional

import numpy as np
from numpy.typing import NDArray

from repro.cache.organizations import DirectMappedGeometry, SetAssociativeGeometry
from repro.cache.replacement import SA_POLICIES
from repro.config import DRAMCacheGeometry


@dataclass(frozen=True)
class LookupResult:
    """Outcome of a functional probe."""

    hit: bool
    way: int = -1            # way index (SA) / 0 (DM); -1 on miss
    dirty: bool = False      # dirty state of the hit block


@dataclass(frozen=True)
class FillResult:
    """Outcome of inserting a block: the displaced victim, if any."""

    way: int
    victim_block_addr: Optional[int] = None   # physical block addr of victim
    victim_dirty: bool = False


# Shared immutable miss result: probe() runs once per functional access
# and most probes miss cold structures, so skipping the dataclass
# construction there is a measurable win.
_MISS = LookupResult(False)


def _last_of_group_mask(sorted_keys: NDArray[np.int64],
                        limit: int) -> NDArray[np.bool_]:
    """Mask keeping only the last ``limit`` elements of each run of equal
    keys in an already key-sorted array."""
    n = len(sorted_keys)
    if n == 0:
        return np.zeros(0, dtype=bool)
    group_start = np.empty(n, dtype=bool)
    group_start[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=group_start[1:])
    gidx = np.cumsum(group_start) - 1
    ends = np.cumsum(np.bincount(gidx))
    return (ends[gidx] - np.arange(n)) <= limit


class _SASet:
    """One set of the set-associative organization."""

    __slots__ = ("tags", "dirty", "stamp")

    def __init__(self, ways: int):
        self.tags: list[int] = [-1] * ways
        self.dirty: list[bool] = [False] * ways
        self.stamp: list[int] = [0] * ways   # LRU: larger = more recent

    def clone(self) -> "_SASet":
        s = _SASet.__new__(_SASet)
        s.tags = self.tags[:]
        s.dirty = self.dirty[:]
        s.stamp = self.stamp[:]
        return s

    def __deepcopy__(self, memo: dict[int, Any]) -> "_SASet":
        # Elements are scalars: a slice copy is semantically identical to
        # the generic element-wise deepcopy and ~4x faster, which is what
        # bounds full-simulator snapshot cost (the set dict dominates).
        s = self.clone()
        memo[id(self)] = s
        return s


class _CowSets(dict[int, _SASet]):
    """Copy-on-access overlay over a frozen ``{set_idx: _SASet}`` backing.

    Warm-state forking hands the *same* captured set dictionary to every
    restored simulation; copying all of it eagerly would cost more than
    the functional warm-up it replaces for large footprints.  Instead the
    restored array starts with an empty overlay: any set it touches is
    cloned out of the backing on first access, so the restore is O(1) and
    each run pays only for the sets its traffic actually reaches.

    The backing dict is frozen by contract — it is only ever produced by
    :meth:`DRAMCacheArray.capture_state`, which simultaneously re-points
    the donor array at its own fresh overlay, so no live array can mutate
    a backing.  All reads go through :meth:`get`/``[]`` (the only lookup
    forms the array uses), both of which materialise; new sets insert
    straight into the overlay.
    """

    __slots__ = ("_backing",)

    def __init__(self, backing: dict[int, _SASet]):
        super().__init__()
        self._backing = backing

    # -- lookups (materialising) ------------------------------------------------

    def get(self, key: int,  # type: ignore[override]
            default: Optional[_SASet] = None) -> Optional[_SASet]:
        s = dict.get(self, key)
        if s is not None:
            return s
        b = self._backing.get(key)
        if b is None:
            return default
        s = b.clone()
        dict.__setitem__(self, key, s)
        return s

    def __getitem__(self, key: int) -> _SASet:
        s = self.get(key)
        if s is None:
            raise KeyError(key)
        return s

    def __contains__(self, key: object) -> bool:
        return dict.__contains__(self, key) or key in self._backing

    # -- whole-dict views (tests / invariants; not on the hot path) -------------
    #
    # Every inherited dict form that would silently see only the overlay
    # is either overridden to present the merged view or forbidden, so
    # the "all reads go through get/[]" contract is enforced, not merely
    # documented.

    def __len__(self) -> int:
        n = dict.__len__(self)
        return n + sum(1 for k in self._backing if not dict.__contains__(self, k))

    def __iter__(self) -> Iterator[int]:
        yield from dict.__iter__(self)
        for k in self._backing:
            if not dict.__contains__(self, k):
                yield k

    def keys(self) -> list[int]:  # type: ignore[override]
        """Merged key list (a plain list, not a live dict view)."""
        return list(self)

    def items(self) -> list[tuple[int, _SASet]]:  # type: ignore[override]
        """Merged ``(key, set)`` pairs; materialises backing sets."""
        return [(k, self[k]) for k in self]

    def values(self) -> list[_SASet]:  # type: ignore[override]
        return [self[k] for k in self]

    def copy(self) -> dict[int, _SASet]:
        """A plain, fully-independent dict of the merged view."""
        return self.frozen_merge()

    def __eq__(self, other: object) -> bool:
        """Value equality over the merged view (sets compared by content,
        since ``_SASet`` itself compares by identity)."""
        if not isinstance(other, dict):
            return NotImplemented

        def contents(items: Iterable[tuple[int, _SASet]],
                     ) -> dict[int, tuple[Any, Any, Any]]:
            return {k: (tuple(s.tags), tuple(s.dirty), tuple(s.stamp))
                    for k, s in items}

        other_items = (other.peek_items() if isinstance(other, _CowSets)
                       else other.items())
        return contents(self.peek_items()) == contents(other_items)

    __hash__ = None   # type: ignore[assignment]  # as for any dict

    def __ne__(self, other: object) -> bool:
        # Explicit: dict's C-level != would bypass the merged-view __eq__.
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def _unsupported(self, *_a: Any, **_kw: Any) -> Any:
        raise NotImplementedError(
            "mutation of a copy-on-write set view beyond get/[]= is not "
            "supported (see _CowSets)")

    pop = popitem = setdefault = update = clear = __delitem__ = _unsupported  # type: ignore[assignment]

    def peek(self, key: int) -> Optional[_SASet]:
        """Read-only lookup: never materialises a backing set.

        The returned set may belong to the frozen backing — callers must
        not mutate it (mutating paths go through :meth:`get`/``[]``,
        which clone).  Keeps pure reads like ``probe()`` from converging
        a mostly-read fork toward a full copy.
        """
        s = dict.get(self, key)
        if s is not None:
            return s
        return self._backing.get(key)

    def peek_items(self) -> Iterator[tuple[int, _SASet]]:
        """Iterate the merged view *without* materialising backing sets.

        For read-only inspection (signatures, invariants): yielded backing
        sets must not be mutated.
        """
        yield from dict.items(self)
        for k, b in self._backing.items():
            if not dict.__contains__(self, k):
                yield k, b

    def frozen_merge(self) -> dict[int, _SASet]:
        """A plain, independent ``{set_idx: _SASet}`` copy of the full view.

        Used to produce a new frozen backing when a warm capture is taken
        from an array that is itself running over an older backing.
        """
        out = {k: s.clone() for k, s in dict.items(self)}
        for k, b in self._backing.items():
            if k not in out:
                out[k] = b.clone()
        return out

    def __deepcopy__(self, memo: dict[int, Any]) -> "_CowSets":
        # The backing is frozen, so the copy may share it; only the
        # overlay (this run's private mutations) needs copying.
        new = _CowSets(self._backing)
        memo[id(self)] = new
        for k, s in dict.items(self):
            dict.__setitem__(new, k, s.clone())
        return new

    def __reduce__(self) -> tuple[Any, ...]:
        # Pickled snapshots are process-portable plain dicts: sharing a
        # backing across a process boundary is meaningless.
        return (_cow_sets_from_plain, (self.frozen_merge(),))


def _cow_sets_from_plain(sets: dict[int, _SASet]) -> "_CowSets":
    return _CowSets(sets)


class DRAMCacheArray:
    """Functional contents of the DRAM cache.

    Parameters
    ----------
    geometry:
        Raw capacity/layout description (Table II).
    organization:
        ``"sa"`` (set-associative, Loh–Hill) or ``"dm"`` (direct-mapped,
        Alloy).
    replacement:
        Victim-selection policy for the set-associative organization
        (see :mod:`repro.cache.replacement`); direct-mapped placement
        has no choice and ignores it.  Applies to demand fills only —
        the fused warm-up paths (:meth:`bulk_fill`/:meth:`bulk_fill_many`)
        keep their LRU-insertion-order semantics under every policy
        (documented modeling assumption: warm-up populates, it does not
        exercise replacement).
    """

    def __init__(self, geometry: DRAMCacheGeometry, organization: str = "sa",
                 replacement: str = "lru"):
        organization = organization.lower()
        if organization not in ("sa", "dm"):
            raise ValueError(f"unknown organization {organization!r}")
        self.geometry = geometry
        self.organization = organization
        self.replacement = replacement
        # Module-level function, never a closure (snapshot-safe).
        self._victim_way = SA_POLICIES[replacement]
        self.sa = SetAssociativeGeometry(geometry)
        self.dm = DirectMappedGeometry(geometry)
        # Geometry scalars flattened onto the instance: probe/_touch run
        # once per functional access and the attribute-chain lookups were
        # a measurable share of the end-to-end profile.
        self._block_bytes = geometry.block_bytes
        self._num_sets = self.sa.num_sets
        self._num_entries = self.dm.num_entries
        # Lazy state.
        self._sa_sets: dict[int, _SASet] = {}
        self._dm_entries: dict[int, tuple[int, bool]] = {}  # idx -> (tag, dirty)
        self._clock = 0  # LRU stamp source
        # Functional counters (used by tests and the Fig. 18 harness).
        self.lookups = 0
        self.hits = 0
        self.fills = 0
        self.dirty_evictions = 0

    # -- common helpers --------------------------------------------------------

    @property
    def is_direct_mapped(self) -> bool:
        return self.organization == "dm"

    def _block(self, addr: int) -> int:
        return addr // self.geometry.block_bytes

    # -- probes (no replacement-state side effects) ----------------------------

    def probe(self, addr: int) -> LookupResult:
        """Hit/miss/dirty query with no state change."""
        b = addr // self._block_bytes
        if self.organization == "dm":
            n = self._num_entries
            ent = self._dm_entries.get(b % n)
            if ent is not None and ent[0] == b // n:
                return LookupResult(True, 0, ent[1])
            return _MISS
        sets = self._sa_sets
        n = self._num_sets
        si = b % n
        # A pure read must stay pure on a restored (copy-on-write) array
        # too: peek never materialises, so probes don't converge a
        # mostly-read fork toward a full copy.
        s = (sets.peek(si) if type(sets) is _CowSets else sets.get(si))
        if s is None:
            return _MISS
        tag = b // n
        tags = s.tags
        # list.__contains__ / index scan the 15 ways at C speed; the
        # double scan on a hit still beats an interpreted enumerate loop.
        if tag in tags:
            w = tags.index(tag)
            return LookupResult(True, w, s.dirty[w])
        return _MISS

    # -- timed-path operations (called at access completion times) -------------

    def lookup_read(self, addr: int) -> LookupResult:
        """Resolve a cache-read tag check; updates LRU on a hit.

        In the real system the LRU/replacement-bit update is carried by the
        WTr tag-write access; functionally we apply it here so the state the
        *next* tag read observes matches what that write will have stored.
        """
        self.lookups += 1
        res = self.probe(addr)
        if res.hit:
            self.hits += 1
            self._touch(addr, res.way)
        return res

    def lookup_write(self, addr: int) -> LookupResult:
        """Resolve a writeback tag check; marks dirty + LRU on a hit."""
        self.lookups += 1
        res = self.probe(addr)
        if res.hit:
            self.hits += 1
            b = self._block(addr)
            if self.is_direct_mapped:
                idx = self.dm.entry_index(b)
                self._dm_entries[idx] = (self.dm.tag_value(b), True)
            else:
                s = self._sa_sets[self.sa.set_index(b)]
                s.dirty[res.way] = True
                self._touch(addr, res.way)
        return res

    def fill(self, addr: int, dirty: bool) -> FillResult:
        """Insert ``addr`` (refill from memory, or allocating writeback).

        Returns the victim (if a valid block was displaced) so the caller
        can generate the victim's main-memory writeback when it was dirty.
        """
        self.fills += 1
        b = self._block(addr)
        if self.is_direct_mapped:
            idx = self.dm.entry_index(b)
            old = self._dm_entries.get(idx)
            self._dm_entries[idx] = (self.dm.tag_value(b), dirty)
            if old is None:
                return FillResult(0)
            victim_addr = self.dm.block_addr(idx, old[0]) * self.geometry.block_bytes
            if old[1]:
                self.dirty_evictions += 1
            return FillResult(0, victim_addr, old[1])

        set_idx = self.sa.set_index(b)
        s = self._sa_sets.get(set_idx)
        if s is None:
            s = _SASet(self.sa.ways)
            self._sa_sets[set_idx] = s
        tag = self.sa.tag_value(b)
        tags = s.tags
        # Refill of a block already present (e.g. race with a concurrent
        # writeback-allocate) just refreshes it.
        if tag in tags:
            w = tags.index(tag)
            s.dirty[w] = s.dirty[w] or dirty
            self._touch(addr, w)
            return FillResult(w)
        # Prefer an invalid way; otherwise the configured policy picks
        # among valid ways (stamps are unique, so the default LRU's
        # index-of-min is the unambiguous oldest way).
        if -1 in tags:
            victim_way = tags.index(-1)
        else:
            victim_way = self._victim_way(tags, s.dirty, s.stamp)
        old_tag = s.tags[victim_way]
        old_dirty = s.dirty[victim_way]
        s.tags[victim_way] = tag
        s.dirty[victim_way] = dirty
        self._clock += 1
        s.stamp[victim_way] = self._clock
        if old_tag == -1:
            return FillResult(victim_way)
        victim_addr = self.sa.block_addr(set_idx, old_tag) * self.geometry.block_bytes
        if old_dirty:
            self.dirty_evictions += 1
        return FillResult(victim_way, victim_addr, old_dirty)

    def invalidate(self, addr: int) -> bool:
        """Drop a block (used by tests and coherence-style experiments)."""
        b = self._block(addr)
        if self.is_direct_mapped:
            idx = self.dm.entry_index(b)
            ent = self._dm_entries.get(idx)
            if ent is not None and ent[0] == self.dm.tag_value(b):
                del self._dm_entries[idx]
                return True
            return False
        s = self._sa_sets.get(self.sa.set_index(b))
        if s is None:
            return False
        tag = self.sa.tag_value(b)
        for w, t in enumerate(s.tags):
            if t == tag:
                s.tags[w] = -1
                s.dirty[w] = False
                return True
        return False

    # -- warm-up ----------------------------------------------------------------

    def bulk_fill(self, start_addr: int, n_blocks: int,
                  dirty_fraction: float = 0.0, seed: int = 0) -> None:
        """Functionally pre-populate a contiguous block range (warm-up).

        Mirrors the paper's fast-forward cache warming: the range
        ``[start_addr, start_addr + n_blocks*64)`` is inserted as if each
        block had been filled once in address order, with a deterministic
        pseudo-random ``dirty_fraction`` of blocks marked dirty.  Uses
        vectorised grouping, so warming multi-hundred-MB footprints costs
        milliseconds instead of replaying millions of accesses.
        """
        if n_blocks <= 0:
            return
        start_block = start_addr // self.geometry.block_bytes
        blocks = np.arange(start_block, start_block + n_blocks, dtype=np.int64)
        # Deterministic per-block dirty choice (Knuth multiplicative hash).
        h = ((blocks + seed) * np.int64(2654435761)) & np.int64(0xFFFFFFFF)
        dirty = (h >> 16).astype(np.float64) / 65536.0 < dirty_fraction

        if self.is_direct_mapped:
            idxs = blocks % self.dm.num_entries
            tags = blocks // self.dm.num_entries
            self._dm_entries.update(
                zip(idxs.tolist(), zip(tags.tolist(), dirty.tolist())))
            return

        sets = blocks % self.sa.num_sets
        tags = blocks // self.sa.num_sets
        order = np.argsort(sets, kind="stable")
        sets_sorted = sets[order]
        tags_sorted = tags[order].tolist()
        dirty_sorted = dirty[order].tolist()
        boundaries = np.flatnonzero(np.diff(sets_sorted)) + 1
        starts = [0, *boundaries.tolist()]
        ends = [*boundaries.tolist(), len(sets_sorted)]
        set_ids = sets_sorted[np.concatenate(([0], boundaries))].tolist()
        ways = self.sa.ways
        sa_sets = self._sa_sets
        sa_get = sa_sets.get
        new_set = _SASet.__new__
        clock = self._clock
        dirty_evictions = self.dirty_evictions
        empty_tags = [-1] * ways
        empty_dirty = [False] * ways
        empty_stamp = [0] * ways
        for sid, lo, hi in zip(set_ids, starts, ends):
            # LRU semantics over (existing contents + this range): only
            # the last `ways` inserts of the group can survive, so the
            # earlier ones are skipped outright (no clock tick, no
            # eviction), exactly as if each block had been filled once.
            lo = hi - ways if hi - lo > ways else lo
            cnt = hi - lo
            s = sa_get(sid)
            if s is None:
                # Fresh set: the group is the whole contents.
                s = new_set(_SASet)
                s.stamp = list(range(clock + 1, clock + 1 + cnt)) \
                    + empty_stamp[cnt:]
                s.tags = tags_sorted[lo:hi] + empty_tags[cnt:]
                s.dirty = dirty_sorted[lo:hi] + empty_dirty[cnt:]
                clock += cnt
                sa_sets[sid] = s
                continue
            stags = s.tags
            merged = list(zip(s.stamp, stags, s.dirty)) \
                if -1 not in stags else \
                [t for t in zip(s.stamp, stags, s.dirty) if t[1] != -1]
            for k in range(lo, hi):
                clock += 1
                merged.append((clock, tags_sorted[k], dirty_sorted[k]))
            m = len(merged)
            if m > ways:
                # Insertion stamps are unique and monotonic, so a plain
                # tuple sort is a stamp sort; the dropped prefix is the
                # LRU overflow.
                merged.sort()
                for _stamp, _tag, was_dirty in merged[:m - ways]:
                    if was_dirty:
                        dirty_evictions += 1
                del merged[:m - ways]
                m = ways
            s.stamp[:m], s.tags[:m], s.dirty[:m] = zip(*merged)  # type: ignore[assignment]
            if m < ways:
                s.tags[m:] = empty_tags[m:]
                s.dirty[m:] = empty_dirty[m:]
                s.stamp[m:] = empty_stamp[m:]
        self._clock = clock
        self.dirty_evictions = dirty_evictions

    def bulk_fill_many(self, fills: list[tuple[int, int, float, int]]) -> None:
        """Apply several :meth:`bulk_fill` ranges in one fused pass.

        ``fills`` is a list of ``(start_addr, n_blocks, dirty_fraction,
        seed)`` tuples, applied with semantics identical to calling
        :meth:`bulk_fill` once per tuple in order — same final contents,
        same insertion-clock values, same ``dirty_evictions`` count.

        On an untouched set-associative array (the warm-up case) the
        whole batch is grouped by set once and each set is constructed in
        a single shot, so a set shared by every range is visited once
        instead of ``len(fills)`` times.  The fusion is exact because the
        sequential calls interact only through LRU state: per call, only
        the last ``ways`` inserts of a set's group can survive (earlier
        ones are skipped without ticking the clock or counting an
        eviction), and across calls the survivors are the globally
        newest ``ways`` stamps, with every insert that was stamped but
        later displaced counting its dirty bit exactly once.
        """
        # The fused path assumes a pristine array; a _CowSets overlay can
        # be empty while its frozen backing is not, so require the exact
        # plain-dict type as well as emptiness.
        if (self.is_direct_mapped or type(self._sa_sets) is not dict
                or self._sa_sets):
            for start_addr, n_blocks, dirty_fraction, seed in fills:
                self.bulk_fill(start_addr, n_blocks,
                               dirty_fraction=dirty_fraction, seed=seed)
            return

        num_sets = self.sa.num_sets
        ways = self.sa.ways
        clock0 = self._clock
        assigned = 0                      # clipped inserts stamped so far
        sid_parts: list[NDArray[np.int64]] = []
        tag_parts: list[NDArray[np.int64]] = []
        dirty_parts: list[NDArray[np.bool_]] = []
        stamp_parts: list[NDArray[np.int64]] = []
        for start_addr, n_blocks, dirty_fraction, seed in fills:
            if n_blocks <= 0:
                continue
            start_block = start_addr // self.geometry.block_bytes
            blocks = np.arange(start_block, start_block + n_blocks,
                               dtype=np.int64)
            h = ((blocks + seed) * np.int64(2654435761)) \
                & np.int64(0xFFFFFFFF)
            dirty = (h >> 16).astype(np.float64) / 65536.0 < dirty_fraction
            sets = blocks % num_sets
            tags = blocks // num_sets
            order = np.argsort(sets, kind="stable")
            ss = sets[order]
            # Per-call clipping: within one range only the last `ways`
            # blocks of each set's group are ever inserted.
            keep = _last_of_group_mask(ss, ways)
            ss = ss[keep]
            k = len(ss)
            # Stamps in (set, position) order match the sequential
            # insertion clock: bulk_fill walks groups in ascending set
            # order and stamps only the clipped survivors.
            stamps = np.arange(clock0 + assigned + 1,
                               clock0 + assigned + 1 + k, dtype=np.int64)
            assigned += k
            sid_parts.append(ss)
            tag_parts.append(tags[order][keep])
            dirty_parts.append(dirty[order][keep])
            stamp_parts.append(stamps)
        self._clock = clock0 + assigned
        if not sid_parts:
            return

        sid = np.concatenate(sid_parts)
        tag = np.concatenate(tag_parts)
        drt = np.concatenate(dirty_parts)
        stp = np.concatenate(stamp_parts)
        # Stable sort by set: ties keep concatenation order, which is
        # (range order, position order) — i.e. ascending stamp.
        order = np.argsort(sid, kind="stable")
        sid, tag, drt, stp = sid[order], tag[order], drt[order], stp[order]
        # Global LRU: the survivors of each set are its newest `ways`
        # stamps; everything older was inserted then displaced, and its
        # dirty bit counts as an eviction exactly once.
        keep = _last_of_group_mask(sid, ways)
        self.dirty_evictions += int(drt[~keep].sum())
        sid, tag, drt, stp = sid[keep], tag[keep], drt[keep], stp[keep]

        n = len(sid)
        group_start = np.empty(n, dtype=bool)
        group_start[0] = True
        np.not_equal(sid[1:], sid[:-1], out=group_start[1:])
        starts = np.flatnonzero(group_start)
        gidx = np.cumsum(group_start) - 1
        col = np.arange(n) - starts[gidx]
        rows = len(starts)
        # Dense (set, way) scatter, then one tolist() per field: the
        # stamp-ascending layout matches what repeated bulk_fill leaves
        # (appends in stamp order; overflow re-sorts by stamp).
        tags_mat = np.full((rows, ways), -1, dtype=np.int64)
        dirty_mat = np.zeros((rows, ways), dtype=bool)
        stamp_mat = np.zeros((rows, ways), dtype=np.int64)
        tags_mat[gidx, col] = tag
        dirty_mat[gidx, col] = drt
        stamp_mat[gidx, col] = stp
        set_ids = sid[starts].tolist()
        tag_rows = tags_mat.tolist()
        dirty_rows = dirty_mat.tolist()
        stamp_rows = stamp_mat.tolist()
        new_set = _SASet.__new__
        sa_sets = self._sa_sets
        for j, sid_j in enumerate(set_ids):
            s = new_set(_SASet)
            s.tags = tag_rows[j]
            s.dirty = dirty_rows[j]
            s.stamp = stamp_rows[j]
            sa_sets[sid_j] = s

    # -- snapshot hooks (see repro/snapshot.py and DESIGN.md) -------------------

    def contents_signature(self) -> tuple[Any, ...]:
        """Value-only digest of the functional contents (snapshot tests).

        Deterministically ordered and identity-free, so signatures of
        independent copies compare equal iff the contents match; never
        materialises copy-on-write sets.
        """
        if self.is_direct_mapped:
            return ("dm", self._clock, sorted(self._dm_entries.items()))
        sets = self._sa_sets
        items = (sets.peek_items() if isinstance(sets, _CowSets)
                 else sets.items())
        return ("sa", self._clock,
                sorted((k, tuple(s.tags), tuple(s.dirty), tuple(s.stamp))
                       for k, s in items))

    def capture_state(self) -> dict[str, Any]:
        """Freeze the functional contents for warm-state forking.

        Returns a state dict whose set-associative backing is *shared*
        with this array: the array is simultaneously re-pointed at a
        fresh copy-on-write overlay (:class:`_CowSets`), so the donor may
        keep simulating while any number of restored arrays fork from the
        frozen image — capture is O(1) in the set-associative case.
        Direct-mapped entries are immutable tuples, so a plain dict copy
        suffices there.
        """
        state: dict[str, Any] = {"organization": self.organization,
                                 "clock": self._clock}
        if self.is_direct_mapped:
            state["dm"] = dict(self._dm_entries)
        else:
            sets = self._sa_sets
            if isinstance(sets, _CowSets):
                backing = sets.frozen_merge()
            else:
                backing = sets
            self._sa_sets = _CowSets(backing)
            state["sa"] = backing
        return state

    def restore_state(self, state: dict[str, Any]) -> None:
        """Adopt functional contents captured by :meth:`capture_state`.

        The restored array reads through to the frozen image and copies
        individual sets on first touch; the image itself is never
        mutated, so one capture serves any number of restores and each
        restored run is bit-identical to a run that did the functional
        warm-up itself.
        """
        if state["organization"] != self.organization:
            raise ValueError(
                f"cannot restore {state['organization']!r} array state into "
                f"a {self.organization!r} array")
        self._clock = state["clock"]
        if self.is_direct_mapped:
            self._dm_entries = dict(state["dm"])
        else:
            self._sa_sets = _CowSets(state["sa"])

    def _touch(self, addr: int, way: int) -> None:
        if self.organization == "dm":
            return
        s = self._sa_sets[(addr // self._block_bytes) % self._num_sets]
        self._clock += 1
        s.stamp[way] = self._clock

    # -- array-address helpers (where tag/data live in the stacked DRAM) -------

    def tag_location(self, addr: int) -> int:
        """Array address of the tag structure guarding ``addr``."""
        b = self._block(addr)
        if self.is_direct_mapped:
            return self.dm.tad_array_addr(self.dm.entry_index(b))
        return self.sa.tag_array_addr(self.sa.set_index(b))

    def data_location(self, addr: int, way: int) -> int:
        """Array address of the data block for ``addr`` in ``way``."""
        b = self._block(addr)
        if self.is_direct_mapped:
            return self.dm.tad_array_addr(self.dm.entry_index(b))
        return self.sa.data_array_addr(self.sa.set_index(b), way)

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def reset_counters(self) -> None:
        """Zero the functional counters (warm-up boundary)."""
        self.lookups = self.hits = self.fills = self.dirty_evictions = 0
