"""ATCache-style SRAM tag cache (Huang & Nagarajan, PACT'14) — Fig. 18 study.

A tag cache holds recently used DRAM-cache *tag blocks* in SRAM so a
request can skip the in-DRAM tag read.  On a tag-cache miss the needed tag
block is fetched from DRAM **and neighbouring tag blocks are prefetched**
(ATCache gets most of its benefit from spatial prefetch, since tag-block
temporal locality is poor — the tag cache is smaller than the tag footprint
of the L2's own contents).

The paper's Fig. 18 observation: adding a tag cache does *not* reduce DRAM
tag traffic — for a 256 MB cache even a 192 KB tag cache roughly *doubles*
DRAM tag accesses, because every tag-cache miss costs (1 + prefetch_degree)
DRAM tag reads plus dirty tag-block writebacks, while the avoided lookups
are few.  This model reproduces that accounting.
"""

from __future__ import annotations

from typing import Any

from repro.cache.dramcache import DRAMCacheArray
from repro.metrics.registry import MetricGroup, derived


class TagCacheStats(MetricGroup):
    """Tag-traffic accounting (the Fig. 18 metric is ``dram_tag_accesses``)."""

    COUNTERS = (
        "requests",
        "tag_hits",
        "dram_tag_reads",         # demand fills + prefetch fills
        "dram_tag_writes",        # dirty tag-block writebacks
        "prefetch_fills",
    )

    @derived
    def dram_tag_accesses(self) -> int:
        return self.dram_tag_reads + self.dram_tag_writes

    @derived
    def hit_rate(self) -> float:
        return self.tag_hits / self.requests if self.requests else 0.0


class TagCache:
    """A set-associative SRAM cache of 64 B DRAM-cache tag blocks.

    Parameters
    ----------
    size_bytes:
        SRAM capacity.  ``0`` disables the tag cache (the no-tag-cache
        baseline: every request pays exactly its in-DRAM tag accesses).
    prefetch_degree:
        Number of adjacent tag blocks fetched alongside a demand miss.
    """

    BLOCK = 64

    def __init__(self, array: DRAMCacheArray, size_bytes: int,
                 assoc: int = 8, prefetch_degree: int = 3):
        self.array = array
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.prefetch_degree = prefetch_degree
        self.stats = TagCacheStats()
        if size_bytes:
            self.num_sets = max(1, size_bytes // (self.BLOCK * assoc))
            # set idx -> list of [tag_block_addr, dirty, stamp]
            self._sets: dict[int, list[list[Any]]] = {}
            self._clock = 0
        else:
            self.num_sets = 0

    @property
    def enabled(self) -> bool:
        return self.size_bytes > 0

    # -- internals ---------------------------------------------------------------

    def _set_of(self, tag_block: int) -> int:
        # Tag blocks are regularly spaced in array-address space (every
        # 16 blocks in the set-associative layout); fold the high bits so
        # they spread over all SRAM sets instead of aliasing into a few.
        h = tag_block ^ (tag_block >> 4) ^ (tag_block >> 11)
        return h % self.num_sets

    def _lookup(self, tag_block: int) -> list[Any] | None:
        s = self._sets.get(self._set_of(tag_block))
        if s is None:
            return None
        for entry in s:
            if entry[0] == tag_block:
                return entry
        return None

    def _insert(self, tag_block: int, dirty: bool) -> None:
        idx = self._set_of(tag_block)
        s = self._sets.setdefault(idx, [])
        self._clock += 1
        for entry in s:
            if entry[0] == tag_block:
                entry[1] = entry[1] or dirty
                entry[2] = self._clock
                return
        if len(s) >= self.assoc:
            # Evict LRU; a dirty tag block must be written back to DRAM.
            victim = min(s, key=lambda e: e[2])
            s.remove(victim)
            if victim[1]:
                self.stats.dram_tag_writes += 1
        s.append([tag_block, dirty, self._clock])

    # -- the request-facing operation ---------------------------------------------

    def _tag_block_of_set(self, set_idx: int) -> int:
        """SRAM-cache key for the tag block guarding ``set_idx``."""
        if self.array.is_direct_mapped:
            n = self.array.dm.num_entries
            return self.array.dm.tad_array_addr(set_idx % n) // self.BLOCK
        n = self.array.sa.num_sets
        return self.array.sa.tag_array_addr(set_idx % n) // self.BLOCK

    def _set_of_addr(self, addr: int) -> int:
        b = addr // self.array.geometry.block_bytes
        if self.array.is_direct_mapped:
            return self.array.dm.entry_index(b)
        return self.array.sa.set_index(b)

    def access(self, addr: int, is_write: bool) -> bool:
        """Process the tag lookup of one DRAM-cache request.

        Returns True if the tags were served from SRAM (no DRAM tag read
        needed).  ``is_write`` marks lookups that will update the tag block
        (replacement bits / dirty bits / insertion), which dirties the
        SRAM copy.

        On a miss, the demand tag block is fetched and the tag blocks of
        the *next* ``prefetch_degree`` sets are prefetched — consecutive
        physical blocks map to consecutive sets, so streams hit on
        prefetched neighbours (ATCache's spatial-locality benefit).

        Without a tag cache, the request pays one DRAM tag read (counted
        here) and its tag *writes* ride the normal write path (counted by
        the caller's translation, not here) — the Fig. 18 normalization
        divides by exactly this baseline.
        """
        self.stats.requests += 1
        set_idx = self._set_of_addr(addr)
        tag_block = self._tag_block_of_set(set_idx)
        if not self.enabled:
            self.stats.dram_tag_reads += 1
            return False
        entry = self._lookup(tag_block)
        if entry is not None:
            self.stats.tag_hits += 1
            self._clock += 1
            entry[2] = self._clock
            if is_write:
                entry[1] = True
            return True
        # Demand fill ...
        self.stats.dram_tag_reads += 1
        self._insert(tag_block, dirty=is_write)
        # ... plus spatial prefetch of the neighbouring sets' tag blocks.
        for i in range(1, self.prefetch_degree + 1):
            neighbour = self._tag_block_of_set(set_idx + i)
            if self._lookup(neighbour) is None:
                self.stats.dram_tag_reads += 1
                self.stats.prefetch_fills += 1
                self._insert(neighbour, dirty=False)
        return False
