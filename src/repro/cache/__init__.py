"""DRAM-cache substrate: organizations, functional tag state, translation.

The paper evaluates two tags-in-DRAM organizations (its Fig. 1):

* **set-associative** (Loh & Hill, MICRO'11): each 4 KB row holds 4 sets of
  (1 tag block + 15 data blocks); a read needs a tag access then a data
  access;
* **direct-mapped** (Qureshi & Loh's Alloy cache, MICRO'12): tag and data
  are fused into one TAD unit read/written with a single wider burst.

This package provides the functional tag arrays (hit/miss/victim state),
the mapping from cache coordinates to stacked-DRAM array addresses, the
request-to-access translation of the paper's Fig. 2, the MAP-I miss
predictor, and the ATCache-style SRAM tag cache used by the Fig. 18 study.
"""

from repro.cache.organizations import (
    DirectMappedGeometry,
    SetAssociativeGeometry,
)
from repro.cache.dramcache import DRAMCacheArray, LookupResult, FillResult
from repro.cache.replacement import SA_POLICIES, SRAM_POLICIES
from repro.cache.translator import TagOutcome, Translator
from repro.cache.mapi import MAPIPredictor
from repro.cache.tagcache import TagCache, TagCacheStats

__all__ = [
    "DirectMappedGeometry",
    "SetAssociativeGeometry",
    "DRAMCacheArray",
    "LookupResult",
    "FillResult",
    "SA_POLICIES",
    "SRAM_POLICIES",
    "TagOutcome",
    "Translator",
    "MAPIPredictor",
    "TagCache",
    "TagCacheStats",
]
