"""Geometry of the two tags-in-DRAM organizations (paper Fig. 1, Table II).

Both organizations store tags inside the stacked DRAM rows themselves and
cache the same number of data bytes (the "1 / 15 way" Table II line: 15/16
of raw capacity holds data, 1/16 holds tags):

**Set-associative (Loh–Hill)** — a 4 KB row is divided into 4 *set units*
of 16 blocks: one tag block followed by 15 data ways.  A cache read does a
tag-block access, then (on a hit) a data-block access, then a tag-block
write to update replacement state.

**Direct-mapped (Alloy)** — tag and data are fused into a TAD
(tag-and-data) unit streamed out with one slightly wider burst, so a read
is a single access.  We keep 60 TADs per 4 KB row (the same 15/16 usable
fraction) so both organizations have identical data capacity, as in the
paper.

Both classes map a cache coordinate (set/way or entry) to a byte address in
the stacked-DRAM *array address space*, which the RoBaRaChCo mapper then
decodes to (channel, rank, bank, row, column).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.config import DRAMCacheGeometry


@dataclass(frozen=True)
class SetAssociativeGeometry:
    """Loh–Hill style layout: 4 sets per row, 1 tag block + 15 ways each."""

    cache: DRAMCacheGeometry

    # cached_property: set_index/tag_value run once per functional cache
    # access, and recomputing the geometry arithmetic there dominated
    # the probe profile.  Caching into __dict__ is compatible with the
    # frozen dataclass (no __setattr__ involved).
    @cached_property
    def ways(self) -> int:
        return self.cache.sa_ways

    @cached_property
    def num_sets(self) -> int:
        return self.cache.sa_sets

    @cached_property
    def sets_per_row(self) -> int:
        """4 KB row / (16 blocks per set unit) = 4 set units per row."""
        blocks_per_row = self.cache.row_bytes // self.cache.block_bytes
        return blocks_per_row // (self.ways + 1)

    def set_index(self, block_addr: int) -> int:
        """Set for a (physical) block address (block_addr = addr >> 6)."""
        return block_addr % self.num_sets

    def tag_value(self, block_addr: int) -> int:
        return block_addr // self.num_sets

    def block_addr(self, set_idx: int, tag: int) -> int:
        """Inverse mapping (used to reconstruct victim addresses)."""
        return tag * self.num_sets + set_idx

    def tag_array_addr(self, set_idx: int) -> int:
        """Array byte address of the tag block guarding ``set_idx``."""
        row = set_idx // self.sets_per_row
        slot = set_idx % self.sets_per_row
        col = slot * (self.ways + 1)
        return row * self.cache.row_bytes + col * self.cache.block_bytes

    def data_array_addr(self, set_idx: int, way: int) -> int:
        """Array byte address of data way ``way`` of ``set_idx``."""
        if not 0 <= way < self.ways:
            raise ValueError(f"way {way} out of range 0..{self.ways - 1}")
        row = set_idx // self.sets_per_row
        slot = set_idx % self.sets_per_row
        col = slot * (self.ways + 1) + 1 + way
        return row * self.cache.row_bytes + col * self.cache.block_bytes


@dataclass(frozen=True)
class DirectMappedGeometry:
    """Alloy style layout: 60 TAD units per 4 KB row, tag+data fused."""

    cache: DRAMCacheGeometry

    @cached_property
    def num_entries(self) -> int:
        return self.cache.dm_entries

    @cached_property
    def entries_per_row(self) -> int:
        """15/16 of the row's blocks hold TADs (tag bits ride along)."""
        blocks_per_row = self.cache.row_bytes // self.cache.block_bytes
        return blocks_per_row * 15 // 16

    def entry_index(self, block_addr: int) -> int:
        return block_addr % self.num_entries

    def tag_value(self, block_addr: int) -> int:
        return block_addr // self.num_entries

    def block_addr(self, entry_idx: int, tag: int) -> int:
        return tag * self.num_entries + entry_idx

    def tad_array_addr(self, entry_idx: int) -> int:
        """Array byte address of the TAD unit for ``entry_idx``.

        Tag and data share this address: a single access touches both.
        """
        row = entry_idx // self.entries_per_row
        slot = entry_idx % self.entries_per_row
        return row * self.cache.row_bytes + slot * self.cache.block_bytes
