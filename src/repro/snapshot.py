"""Simulation snapshot/restore and the warm-state cache.

Two snapshot flavours, one invariant
------------------------------------

**Full snapshots** (:func:`capture` / :func:`restore`) freeze a complete
mid-run simulator — event heap + clock, cores, access queues with their
PR/LR/bank indexes, scheduler state, DRAM bank/row/bus timing, DRAM-cache
and L2 contents, MSHRs, metrics — and the hard invariant is **bit
identity**: a restored run must continue exactly as the captured one
would have, event for event, counter for counter (enforced property-style
over every design x scheduler in ``tests/test_snapshot_diff.py``).

**Warm states** (:class:`WarmState`, captured via
``System.capture_warm_state``) freeze only the *design-independent*
warm-up products — DRAM-cache array contents, L2 contents, trace
positions.  Everything a controller design influences (timing, queues,
predictors) is exactly what a fresh system starts with zeroed, so one
warm state forks an entire controller-design sweep: ``run_grid`` groups
points by :func:`~repro.experiments.common.warm_group_key` (the run
prefix with controller-irrelevant fields masked) and the warm invariant
is that a forked run equals a cold run bit-for-bit.

How full capture works
----------------------

The simulator is a plain object graph: ``copy.deepcopy`` with its memo is
precisely a graph-preserving state copy (aliasing, cycles and the shared
metrics registry all survive), and bound methods deep-copy by re-binding
to the copied owner.  Three things had to be engineered for this to be
*correct* rather than merely convenient, and they are the real contract
of this module (see DESIGN.md "Snapshot/restore"):

* **no closures in live state** — a closure deep-copies as an atom and
  would keep pointing into the donor run ("System._row_of", the MAP-I
  fetch callbacks); all scheduled callbacks are bound methods or module
  functions;
* **no raw generators in live state** — traces are consumed through
  :class:`~repro.workloads.cursor.TraceCursor`, which rebuilds + replays
  on copy;
* **no hidden globals** — the scheduler age tiebreak (``Access.seq``)
  is drawn from a per-system counter on the Translator, not a class
  global, so a restored simulation continues its own numbering and any
  number of simulations (donor + restored forks) may run interleaved in
  one process without contaminating each other.

Snapshots are schema-versioned; :func:`save`/:func:`load` persist them
with a validated header so stale payloads fail loudly, never "close
enough".
"""

from __future__ import annotations

import copy
import io
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional

#: Version of the full-snapshot payload.  Bump whenever the simulator's
#: state shape changes in a way that would make an old payload lie.
#: v2: channel bus captures gained the last-burst rank (tCS turnaround)
#: and the main-memory image is the model's own capture_state dict (flat
#: bus_free or banked per-channel substrate state) instead of a bare int.
SNAPSHOT_SCHEMA_VERSION = 2

#: Version of the :class:`WarmState` payload (independent of the full
#: snapshot: warm states are a narrow, explicitly-enumerated subset).
#: v2: identity gained the array replacement policy (``array_replacement``
#: alongside the l2 geometry's own ``replacement`` field) — contents laid
#: out under one victim policy must not seed a run using another.
WARM_STATE_VERSION = 2


class SnapshotError(RuntimeError):
    """A snapshot payload cannot be (safely) restored."""


class WarmStateError(RuntimeError):
    """A warm state does not fit the system it is being restored into."""


@dataclass
class WarmState:
    """Design-independent warm-up products of one (workload, substrate) run.

    Produced by ``System.capture_warm_state`` immediately after the
    functional warm-up; consumed by ``System.restore_warm_state`` on a
    *fresh* system built over the same prefix.  The identifying fields
    double as a safety net: restore refuses a mismatched system instead
    of silently diverging from the cold-run result.

    KEEP IN SYNC: the identity fields here, the comparison in
    ``System.restore_warm_state`` and the hash inputs of
    ``repro.experiments.common.warm_group_key`` must cover the same
    warm-relevant inputs (the replay budget is carried by
    ``trace_counts`` and re-asserted by ``System.begin``).
    """

    schema_version: int
    organization: str
    seed: int
    benchmarks: list[str]
    footprint_scale: float
    lee_writeback: bool
    #: resolved geometries the contents were laid out under — adopted
    #: sets indexed for a different geometry would be silently wrong,
    #: so restore compares these, not just the organization string
    dram_cache_geometry: dict
    l2_geometry: dict
    #: victim policy the DRAM-cache array contents evolved under
    array_replacement: str
    #: trace operations each core consumed during the functional warm-up
    trace_counts: list[int]
    #: ``DRAMCacheArray.capture_state()`` payload (CoW-shared backing)
    array_state: dict
    #: ``SRAMCache.capture_state()`` payload
    l2_state: dict
    meta: dict = field(default_factory=dict)


@dataclass
class SimSnapshot:
    """A complete, restorable image of one simulation."""

    schema_version: int
    #: the frozen object graph (a deep copy of the captured System)
    state: Any
    meta: dict = field(default_factory=dict)


def capture(system, meta: Optional[dict] = None) -> SimSnapshot:
    """Freeze a complete image of ``system`` at its current event.

    The donor system is not perturbed (verified by the differential
    tests: a captured run finishes identically to an uncaptured one) and
    may keep running; the snapshot is immutable from its point of view.
    Call between event-loop slices, never from inside a callback.
    """
    return SimSnapshot(
        schema_version=SNAPSHOT_SCHEMA_VERSION,
        state=copy.deepcopy(system),
        meta=dict(meta or {}),
    )


def restore(snapshot: SimSnapshot):
    """Materialise an independent, runnable system from ``snapshot``.

    Each call returns a fresh copy, so one snapshot forks any number of
    runs; donor and forks are fully isolated (including their access
    sequence numbering) and may run interleaved.
    """
    if snapshot.schema_version != SNAPSHOT_SCHEMA_VERSION:
        raise SnapshotError(
            f"snapshot schema {snapshot.schema_version!r} != current "
            f"{SNAPSHOT_SCHEMA_VERSION}")
    return copy.deepcopy(snapshot.state)


# ------------------------------------------------------------------ persistence

#: Magic header of the on-disk snapshot container.
_MAGIC = b"DCASNAP1"


def save(snapshot: SimSnapshot, path) -> Path:
    """Persist a snapshot (atomic: tmp file + rename).

    The payload is a pickle of the frozen object graph behind a validated
    magic + version header, so a foreign or stale file is rejected before
    any unpickling happens.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    buf = io.BytesIO()
    buf.write(_MAGIC)
    buf.write(SNAPSHOT_SCHEMA_VERSION.to_bytes(4, "little"))
    pickle.dump(snapshot, buf, protocol=pickle.HIGHEST_PROTOCOL)
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_bytes(buf.getvalue())
    tmp.replace(path)
    return path


def load(path) -> SimSnapshot:
    """Load a snapshot written by :func:`save`, validating the header."""
    data = Path(path).read_bytes()
    if data[:len(_MAGIC)] != _MAGIC:
        raise SnapshotError(f"{path}: not a snapshot file (bad magic)")
    version = int.from_bytes(data[len(_MAGIC):len(_MAGIC) + 4], "little")
    if version != SNAPSHOT_SCHEMA_VERSION:
        raise SnapshotError(
            f"{path}: snapshot schema {version} != current "
            f"{SNAPSHOT_SCHEMA_VERSION}")
    snapshot = pickle.loads(data[len(_MAGIC) + 4:])
    if not isinstance(snapshot, SimSnapshot):
        raise SnapshotError(f"{path}: payload is not a SimSnapshot")
    return snapshot


# ------------------------------------------------------------------ warm cache

class WarmCache:
    """Bounded in-process cache of :class:`WarmState` keyed by run prefix.

    ``run_grid`` consults one instance per worker process: the first
    design point of a (mix, substrate) group populates it, every later
    point forks from it.  Entries are evicted FIFO beyond ``capacity`` —
    warm states share their array backing with live runs cheaply, but an
    unbounded cache across many sweeps would still pin every footprint
    ever warmed.
    """

    def __init__(self, capacity: int = 8):
        if capacity <= 0:
            raise ValueError("warm cache capacity must be positive")
        self.capacity = capacity
        self._entries: dict[str, WarmState] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> Optional[WarmState]:
        warm = self._entries.get(key)
        if warm is None:
            self.misses += 1
        else:
            self.hits += 1
        return warm

    def put(self, key: str, warm: WarmState) -> None:
        if key not in self._entries and len(self._entries) >= self.capacity:
            self._entries.pop(next(iter(self._entries)))
        self._entries[key] = warm

    def clear(self) -> None:
        self._entries.clear()


# ------------------------------------------------------------------ test hooks

def state_signature(system) -> dict:
    """A comparable, value-only digest of the complete simulator state.

    Built for the differential tests: two systems with equal signatures
    are in the same state for every observable the simulation can branch
    on.  Objects are summarised by value (never identity), so signatures
    of independent copies — original vs. restored — compare equal exactly
    when the restore was faithful.
    """
    def req_sig(r) -> tuple:
        return (int(r.rtype), r.addr, r.core_id, r.pc, r.arrival,
                r.done_time, r.hit, r.accesses_left, r.prefetch,
                sorted(k for k in r.meta))

    def access_sig(a) -> tuple:
        return (int(a.role), int(a.priority), a.channel, a.rank, a.bank,
                a.row, a.col, a.global_bank, a.arrival, a.seq, a.critical,
                a.core_id, req_sig(a.request))

    ctl = system.controller
    sig: dict[str, Any] = {
        "engine": system.sim.signature(),
        "design": ctl.design,
        "metrics": system.metrics.snapshot(),
    }

    sig["translator_seq"] = ctl.translator._seq
    sig["queues"] = [
        {
            "read": [access_sig(a) for a in rq.entries],
            "write": [access_sig(a) for a in wq.entries],
            "waiting_r": [access_sig(a) for a in ctl.waiting_r[ch]],
            "waiting_w": [access_sig(a) for a in ctl.waiting_w[ch]],
            "read_acct": (rq._occupancy_integral, rq._last_t, rq._t0),
            "write_acct": (wq._occupancy_integral, wq._last_t, wq._t0),
        }
        for ch, (rq, wq) in enumerate(zip(ctl.read_q, ctl.write_q))
    ]
    sig["controller"] = {
        "flushing": list(ctl.flushing),
        "decision_pending": list(ctl._decision_pending),
        "in_flight": list(ctl._in_flight),
        "opp_flushing": list(ctl._opp_flushing),
        "opp_batch": list(ctl._opp_batch),
        "draining": ctl.draining,
        "pending_writes": {addr: req_sig(r)
                           for addr, r in ctl._pending_writes.items()},
    }
    sig["schedulers"] = [
        {slot: getattr(s, slot)
         for slot in ("blacklist", "_last_core", "_streak", "_last_clear",
                      "served")
         if hasattr(s, slot)}
        for s in ctl.sched
    ]
    if hasattr(ctl, "schedule_all"):            # DCA extras
        sig["dca"] = {"schedule_all": list(ctl.schedule_all),
                      "rrpc": (ctl.rrpc._global, list(ctl.rrpc._set_at))}
    # One value-image per channel through the substrate protocol, so every
    # fidelity's full timing state (banks + bus, plus refresh/ACT-window/
    # page-policy bookkeeping at command level) participates.
    sig["substrate"] = [chan.capture_state()
                       for chan in ctl.device.channels]
    sig["mainmem"] = ctl.mainmem.capture_state()
    sig["array"] = ctl.array.contents_signature()
    sig["l2"] = {
        "clock": system.l2._clock,
        "sets": sorted((k, [tuple(e) for e in v.values()])
                       for k, v in system.l2._sets.items()),
        "dirty_rows": sorted((row, sorted(blocks)) for row, blocks
                             in system.l2._dirty_rows.items()),
    }
    sig["mshr"] = {
        "entries": sorted(
            (addr, e.issued_at, e.any_write, e.is_prefetch, e.promoted,
             len(e.waiters))
            for addr, e in system.mshr._entries.items()),
        "used": (system.mshr._demand_used, system.mshr._prefetch_used),
        "counts": system.mshr.stats.snapshot(),
        "waiters": len(system._mshr_waiters),
    }
    sig["writebuf"] = system.writebuf.capture_state()
    if system.prefetcher is not None:
        sig["prefetcher"] = {
            "state": system.prefetcher.capture_state(),
            "prefetched": sorted(system._prefetched),
        }
    if ctl.mapi is not None:
        sig["mapi"] = [list(t) for t in ctl.mapi.tables]
    sig["cores"] = [
        {
            "icount": c.icount, "token": c._token, "blocked": c.blocked,
            "resume_base": c._resume_base, "budget": c.budget,
            "warmup_at": c.warmup_at, "finish_time": c.finish_time,
            "warmup_time": c.warmup_time, "warmup_icount": c.warmup_icount,
            "loads": c.loads_issued, "stores": c.stores_issued,
            "stall_blocked_ps": c.stall_blocked_ps,
            "blocked_since": c._blocked_since,
            "outstanding": sorted(c.outstanding.items()),
            "trace_count": c.trace.count,
            "next_op": c._next_op, "retry_op": c._retry_op,
        }
        for c in system.cores
    ]
    sig["warmed"] = system._warmed
    sig["finished"] = system._finished
    return sig
