"""The ``dca-lint`` command-line entry point.

Exit codes: 0 clean, 1 findings, 2 usage errors.  Files that fail to
parse are reported as ``PARSE`` findings rather than aborting the run,
so one broken file never hides the rest of the report.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import IO, Sequence

from repro.analysis.core import Finding, LintRun, Rule, SourceModule, all_rules
from repro.analysis.reporters import REPORTERS, render_rule_list

#: Directory names never descended into when expanding path arguments.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "node_modules",
                        "build", "dist", ".mypy_cache", ".ruff_cache"})


def collect_files(paths: Sequence[Path]) -> list[Path]:
    """Expand files/directories into a sorted, deduplicated .py file list."""
    seen: set[Path] = set()
    out: list[Path] = []
    for path in paths:
        if path.is_dir():
            candidates = sorted(
                p for p in path.rglob("*.py")
                if not (_SKIP_DIRS & set(p.parts))
            )
        else:
            candidates = [path]
        for p in candidates:
            if p not in seen:
                seen.add(p)
                out.append(p)
    return out


def find_project_root(start: Path) -> Path:
    """Walk up from *start* looking for the repo root (DESIGN.md home)."""
    cur = start.resolve()
    if cur.is_file():
        cur = cur.parent
    for candidate in (cur, *cur.parents):
        if ((candidate / "DESIGN.md").is_file()
                or (candidate / "pyproject.toml").is_file()
                or (candidate / ".git").exists()):
            return candidate
    return cur


def select_rules(
    rules: Sequence[Rule], select: str | None, ignore: str | None
) -> list[Rule]:
    chosen = list(rules)
    if select:
        wanted = {r.strip().upper() for r in select.split(",") if r.strip()}
        chosen = [r for r in chosen if r.id in wanted]
    if ignore:
        dropped = {r.strip().upper() for r in ignore.split(",") if r.strip()}
        chosen = [r for r in chosen if r.id not in dropped]
    return chosen


def build_run(
    files: Sequence[Path], rules: Sequence[Rule], project_root: Path
) -> LintRun:
    modules: list[SourceModule] = []
    parse_errors: list[Finding] = []
    for path in files:
        try:
            modules.append(SourceModule.from_path(path))
        except SyntaxError as exc:
            parse_errors.append(Finding(
                path=str(path),
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                rule="PARSE",
                message=f"syntax error: {exc.msg}",
            ))
        except (OSError, UnicodeDecodeError) as exc:
            parse_errors.append(Finding(
                path=str(path), line=1, col=0,
                rule="PARSE", message=f"unreadable: {exc}",
            ))
    return LintRun(
        modules=modules,
        rules=list(rules),
        project_root=project_root,
        parse_errors=parse_errors,
    )


def main(
    argv: Sequence[str] | None = None,
    stdout: IO[str] | None = None,
) -> int:
    out = stdout if stdout is not None else sys.stdout
    parser = argparse.ArgumentParser(
        prog="dca-lint",
        description="Repo-specific invariant linter for the DCA "
                    "reproduction (determinism, snapshot safety, hot-path "
                    "hygiene, estimate purity, metrics and schema "
                    "discipline).",
    )
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files or directories to lint")
    parser.add_argument("--format", choices=sorted(REPORTERS),
                        default="text", help="output format")
    parser.add_argument("--select", metavar="RULES",
                        help="comma-separated rule ids to run (default all)")
    parser.add_argument("--ignore", metavar="RULES",
                        help="comma-separated rule ids to skip")
    parser.add_argument("--root", type=Path, default=None,
                        help="project root for repo-level rules "
                             "(default: auto-detected from the first path)")
    parser.add_argument("--list-rules", action="store_true",
                        help="describe every registered rule and exit")
    args = parser.parse_args(argv)

    rules = select_rules(all_rules(), args.select, args.ignore)
    if args.list_rules:
        render_rule_list(rules, out)
        return 0
    if not args.paths:
        parser.error("no paths given (try: dca-lint src)")
    missing = [p for p in args.paths if not p.exists()]
    if missing:
        parser.error(f"no such path: {', '.join(map(str, missing))}")

    files = collect_files(args.paths)
    root = args.root if args.root is not None else find_project_root(args.paths[0])
    run = build_run(files, rules, root)
    findings = run.execute()
    REPORTERS[args.format](findings, out)
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
