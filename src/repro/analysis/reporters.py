"""Output formats for dca-lint findings: human text and machine JSON."""

from __future__ import annotations

import json
from typing import IO, Sequence

from repro.analysis.core import Finding, Rule

#: Bump when the JSON payload shape changes (mirrors the repo's habit of
#: versioning every machine-readable artifact).
REPORT_SCHEMA_VERSION = 1


def render_text(findings: Sequence[Finding], stream: IO[str]) -> None:
    """GCC-style ``path:line:col: RULE message`` lines plus a summary."""
    for f in findings:
        stream.write(f.render() + "\n")
    if findings:
        rules = sorted({f.rule for f in findings})
        stream.write(
            f"\n{len(findings)} finding{'s' if len(findings) != 1 else ''} "
            f"({', '.join(rules)})\n"
        )
    else:
        stream.write("clean: no findings\n")


def render_json(findings: Sequence[Finding], stream: IO[str]) -> None:
    payload = {
        "schema_version": REPORT_SCHEMA_VERSION,
        "count": len(findings),
        "findings": [f.to_dict() for f in findings],
    }
    json.dump(payload, stream, indent=2, sort_keys=True)
    stream.write("\n")


def render_rule_list(rules: Sequence[Rule], stream: IO[str]) -> None:
    for rule in rules:
        stream.write(f"{rule.id}  {rule.name}\n")
        stream.write(f"    {rule.description}\n")


REPORTERS = {
    "text": render_text,
    "json": render_json,
}
