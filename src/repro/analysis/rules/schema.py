"""R6 — schema discipline: version bumps must be documented.

``RESULT_SCHEMA_VERSION`` (repro/sim/system.py) keys every result-cache
entry; bumping it invalidates every cached simulation on every machine.
DESIGN.md's "Version history" table is the only record of *why* — each
bump so far (v2 registry, v3 trace fixes, v4 exact termination, v5
substrate fidelity) carries compatibility notes readers depend on.

This repo-level rule parses the current ``RESULT_SCHEMA_VERSION`` out of
``sim/system.py`` and requires DESIGN.md's version-history table to
contain a row for exactly that version.  Bump-without-doc (or a missing
DESIGN.md) is a finding anchored at the assignment.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.core import Finding, LintRun, ProjectRule, SourceModule

_VERSION_NAME = "RESULT_SCHEMA_VERSION"
_SYSTEM_FILE = "sim/system.py"
_DESIGN_FILE = "DESIGN.md"


def _schema_version(module: SourceModule) -> tuple[int, ast.stmt] | None:
    for stmt in module.tree.body:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, ast.AnnAssign):
            targets = [stmt.target]
        else:
            continue
        if not any(isinstance(t, ast.Name) and t.id == _VERSION_NAME
                   for t in targets):
            continue
        value = stmt.value
        if isinstance(value, ast.Constant) and isinstance(value.value, int):
            return value.value, stmt
    return None


class SchemaDisciplineRule(ProjectRule):
    id = "R6"
    name = "schema-discipline"
    description = (
        "RESULT_SCHEMA_VERSION bumps must co-occur with a DESIGN.md "
        "version-history row documenting the change"
    )

    def project_check(self, run: LintRun) -> Iterator[Finding]:
        module = run.module_by_file(_SYSTEM_FILE)
        if module is None:
            return  # system.py not in this lint scope; nothing to check
        found = _schema_version(module)
        if found is None:
            return
        version, stmt = found
        if run.project_root is None:
            return
        design = run.project_root / _DESIGN_FILE
        if not design.is_file():
            yield module.finding(
                self, stmt,
                f"{_VERSION_NAME} = {version} but no {_DESIGN_FILE} found "
                f"at the project root ({run.project_root}); the schema "
                f"history lives there",
            )
            return
        row = re.compile(rf"^\|\s*v?{version}\s*\|")
        text = design.read_text(encoding="utf-8")
        if not any(row.match(line) for line in text.splitlines()):
            yield module.finding(
                self, stmt,
                f"{_VERSION_NAME} = {version} has no matching row in the "
                f"{_DESIGN_FILE} version-history table; document what "
                f"changed and why cached v{version - 1} entries are "
                f"incompatible",
            )
