"""R2 — snapshot safety: live state must be capturable, and visible.

The PR 4 snapshot/restore machinery (and the warm-state cache built on
it) guarantees bit-identity only if every piece of mutable simulation
state is reachable by capture.  Two hazards, both seen in past PRs:

* **module-level mutable state** — the PR 4 hidden-global-counter bug
  (``Access._seq``-style state that no snapshot can see);
* **stateful classes without snapshot hooks** — the PR 6 pooled-event
  hazard (freelist objects leaking into snapshots until ``__getstate__``
  /``__deepcopy__`` learned to drop them).

A class with mutable instance state must therefore either define a
capture/restore pair (``capture_state``/``restore_state``, bare
``capture``/``restore``, or any ``capture*``/``restore*`` pair), control
its own copying (``__deepcopy__``, ``__getstate__``, ``__reduce__``), or
appear in :data:`ALLOWLIST` with a reason.  Scoped to the simulation
packages.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import (
    Finding,
    LintRun,
    Rule,
    SourceModule,
    assign_targets,
    base_names,
    class_methods,
    decorator_names,
    is_mutable_container,
    self_attr_target,
)

_SIM_PACKAGES = ("sim", "dram", "cache", "mem")

#: Classes exempted from the hook requirement, with the reason on
#: record.  Everything here is captured through the whole-graph deepcopy
#: path that PR 4 made copy-safe (or never enters a timed simulation at
#: all); the rule exists so *new* state-holders make that choice
#: consciously rather than by omission.
ALLOWLIST: dict[str, str] = {
    "repro.sim.engine.HeapSimulator":
        "reference engine; deepcopied whole by the lockstep suite, "
        "never pools events",
    "repro.sim.cpu.Core":
        "captured via the System whole-graph deepcopy (PR 4); "
        "TraceCursor handles its own copy semantics",
    "repro.dram.device.DRAMDevice":
        "fidelity-agnostic shell; per-channel state is captured through "
        "Substrate.capture_state",
    "repro.cache.mapi.MAPIPredictor":
        "captured via the System whole-graph deepcopy; tables are plain "
        "nested lists",
    "repro.cache.tagcache.TagCache":
        "offline Fig. 18 study structure; never part of a timed "
        "simulation graph",
    "repro.mem.mshr.MSHRFile":
        "captured via the System whole-graph deepcopy; entries are "
        "plain dataclasses",
}

#: Copy-control dunders that make a class snapshot-aware on their own.
_COPY_HOOKS = frozenset({"__deepcopy__", "__getstate__", "__reduce__",
                         "__reduce_ex__", "__copy__"})

#: Class kinds that hold no instance ``__init__`` state of their own.
_EXEMPT_BASES = frozenset({"Protocol", "Enum", "IntEnum", "IntFlag", "Flag",
                           "NamedTuple", "TypedDict"})


def _module_level_findings(
    rule: Rule, module: SourceModule
) -> Iterator[Finding]:
    for stmt in module.tree.body:
        if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            continue
        value = stmt.value
        if value is None or not is_mutable_container(value):
            continue
        names = [t.id for t in assign_targets(stmt) if isinstance(t, ast.Name)]
        if not names or names == ["__all__"]:
            continue
        yield module.finding(
            rule, stmt,
            f"module-level mutable state ({', '.join(names)}) is invisible "
            f"to snapshot capture; move it onto an owning object or make "
            f"it immutable (tuple/frozenset/Mapping)",
        )


def _has_snapshot_hooks(
    cls: ast.ClassDef,
    classmap: dict[str, ast.ClassDef],
    _seen: frozenset[str] = frozenset(),
) -> bool:
    methods = class_methods(cls)
    if _COPY_HOOKS & methods.keys():
        return True
    captures = [m for m in methods if m.startswith("capture")]
    restores = [m for m in methods if m.startswith("restore")]
    if captures and restores:
        return True
    # Hooks may be inherited from a base defined in the same module.
    for base in base_names(cls):
        parent = classmap.get(base)
        if parent is not None and base not in _seen:
            if _has_snapshot_hooks(parent, classmap, _seen | {cls.name}):
                return True
    return False


def _mutable_init_assign(cls: ast.ClassDef) -> ast.stmt | None:
    """First ``self.x = <mutable container>`` in ``__init__``, if any."""
    init = class_methods(cls).get("__init__")
    if init is None:
        return None
    for node in ast.walk(init):
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        value = node.value
        if value is None or not is_mutable_container(value):
            continue
        for target in assign_targets(node):
            if self_attr_target(target) is not None:
                return node
    return None


class SnapshotSafetyRule(Rule):
    id = "R2"
    name = "snapshot-safety"
    description = (
        "simulation classes holding mutable instance state must define "
        "capture/restore (or copy-control) hooks or be allowlisted; no "
        "module-level mutable state in simulation modules"
    )

    def check(self, module: SourceModule, run: LintRun) -> Iterator[Finding]:
        if not module.in_package(*_SIM_PACKAGES):
            return
        yield from _module_level_findings(self, module)
        classmap = {
            n.name: n for n in ast.walk(module.tree)
            if isinstance(n, ast.ClassDef)
        }
        for node in classmap.values():
            if base_names(node) & _EXEMPT_BASES:
                continue
            if "dataclass" in decorator_names(node):
                continue  # no source __init__; state is field-declared
            stateful = _mutable_init_assign(node)
            if stateful is None:
                continue
            if _has_snapshot_hooks(node, classmap):
                continue
            dotted = f"{module.dotted_name}.{node.name}"
            if dotted in ALLOWLIST:
                continue
            yield module.finding(
                self, node,
                f"class {node.name} holds mutable instance state (first at "
                f"line {stateful.lineno}) but defines no capture/restore or "
                f"copy-control hooks; add them, or allowlist the class in "
                f"repro/analysis/rules/snapshot.py with a reason",
            )
