"""R4 — estimate purity: ``estimate_*`` methods must not assign ``self.*``.

Schedulers probe the substrate with ``estimate_burst_start`` while
*deciding*; only ``issue`` may advance state.  PR 5 learned this the
hard way: an early command-model draft synchronised scratch state inside
its estimate path, so merely *considering* a candidate bent subsequent
timing — the change was rolled back and the estimate path rebuilt as
capture/compute/rollback.  This rule pins that lesson: any method whose
name matches ``estimate_*`` / ``_estimate*`` may not assign, augment or
annotate-assign a ``self.`` attribute.

Observationally-pure bookkeeping (memo tables keyed by a generation
counter) is the sanctioned exception — suppress the specific line with
``# dca-lint: disable=R4`` and say why in a comment.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import (
    Finding,
    LintRun,
    Rule,
    SourceModule,
    assign_targets,
    self_attr_target,
)


def _is_estimate_method(name: str) -> bool:
    return name.startswith("estimate_") or name.startswith("_estimate")


class EstimatePurityRule(Rule):
    id = "R4"
    name = "estimate-purity"
    description = (
        "estimate_* methods must not assign to self.* — probing a "
        "candidate must never bend subsequent timing (PR 5 rollback)"
    )

    def check(self, module: SourceModule, run: LintRun) -> Iterator[Finding]:
        for func in ast.walk(module.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _is_estimate_method(func.name):
                continue
            for node in ast.walk(func):
                if not isinstance(node, (ast.Assign, ast.AnnAssign,
                                         ast.AugAssign)):
                    continue
                for target in assign_targets(node):
                    attr = self_attr_target(target)
                    if attr is not None:
                        yield module.finding(
                            self, node,
                            f"{func.name}() assigns self.{attr}; estimates "
                            f"must be pure (issue() is where state moves). "
                            f"If this is generation-keyed memo bookkeeping, "
                            f"suppress with '# dca-lint: disable=R4' and "
                            f"justify in a comment",
                        )
