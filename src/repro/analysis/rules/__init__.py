"""The registered dca-lint rule set.

Each rule lives in its own module; ``ALL_RULES`` is the registry the CLI
and :func:`repro.analysis.core.all_rules` instantiate from.  Order is
the canonical R1..R7 numbering.
"""

from repro.analysis.rules.compile_safe import CompileSafeRule
from repro.analysis.rules.determinism import DeterminismRule
from repro.analysis.rules.hotpath import HotPathRule
from repro.analysis.rules.metrics import MetricsDisciplineRule
from repro.analysis.rules.purity import EstimatePurityRule
from repro.analysis.rules.schema import SchemaDisciplineRule
from repro.analysis.rules.snapshot import SnapshotSafetyRule

ALL_RULES = (
    DeterminismRule,
    SnapshotSafetyRule,
    HotPathRule,
    EstimatePurityRule,
    MetricsDisciplineRule,
    SchemaDisciplineRule,
    CompileSafeRule,
)

__all__ = [
    "ALL_RULES",
    "DeterminismRule",
    "SnapshotSafetyRule",
    "HotPathRule",
    "EstimatePurityRule",
    "MetricsDisciplineRule",
    "SchemaDisciplineRule",
    "CompileSafeRule",
]
