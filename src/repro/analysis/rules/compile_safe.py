"""R7 — compile-safe hot path: mypyc's object model on compiled modules.

The modules in :data:`repro.build_info.MYPYC_MODULES` are optionally
compiled to C extensions (``REPRO_COMPILE=1 pip install -e .``).  mypyc
gives classes in compiled modules a **fixed native layout**: attributes
become struct offsets resolved at compile time, instances carry no
``__dict__``, and the class object itself is immutable at runtime.
Python idioms that conflict with that model either fail to compile or —
worse — compile but change behaviour between the interpreted and
compiled builds, breaking the repo's bit-identity guarantee.  This rule
keeps the compiled set free of those idioms so both builds stay
byte-for-byte interchangeable:

* **attributes must be declared up front** — every ``self.x``
  assignment outside ``__init__`` must name an attribute that
  ``__init__`` also assigns (or that ``__slots__``/a class-level
  annotation declares).  Late attribute creation has no struct slot to
  land in;
* **no ``__dict__`` / ``vars()`` on instances** — native objects don't
  carry one, so any code path reading it diverges between builds;
* **no dynamic class mutation** — ``setattr`` and monkeypatch-style
  assignment onto a class object (``Cls.attr = ...``) are rejected:
  native classes are frozen after definition.

Scope is exactly the canonical compile list, matched by dotted module
name — edits to ``MYPYC_MODULES`` automatically widen or narrow the
rule.  Suppressions follow the standard pragma syntax
(``# dca-lint: disable=R7``) for the rare deliberate exception.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import (
    Finding,
    LintRun,
    Rule,
    SourceModule,
    assign_targets,
    class_methods,
    self_attr_target,
)
from repro.build_info import MYPYC_MODULES


def _declared_attrs(cls: ast.ClassDef) -> set[str]:
    """Attributes with a fixed slot: ``__slots__`` entries, class-level
    annotations, and everything ``__init__`` assigns on ``self``."""
    declared: set[str] = set()
    for stmt in cls.body:
        # __slots__ = ("a", "b") / class-level `x: int` annotations.
        for target in assign_targets(stmt):
            if isinstance(target, ast.Name):
                if target.id == "__slots__":
                    value = stmt.value if hasattr(stmt, "value") else None
                    if isinstance(value, (ast.Tuple, ast.List)):
                        declared.update(
                            elt.value for elt in value.elts
                            if isinstance(elt, ast.Constant)
                            and isinstance(elt.value, str))
                else:
                    declared.add(target.id)
    init = class_methods(cls).get("__init__")
    if init is not None:
        for node in ast.walk(init):
            for target in assign_targets(node):
                attr = self_attr_target(target)
                if attr is not None:
                    declared.add(attr)
    return declared


class CompileSafeRule(Rule):
    id = "R7"
    name = "compile-safe-hot-path"
    description = (
        "modules on the mypyc compile list (repro.build_info."
        "MYPYC_MODULES) must fit mypyc's native object model: no "
        "attribute creation outside __init__, no instance __dict__/"
        "vars(), no setattr or class-object mutation"
    )

    def check(self, module: SourceModule, run: LintRun) -> Iterator[Finding]:
        if module.dotted_name not in MYPYC_MODULES:
            return
        class_names = {
            node.name for node in module.tree.body
            if isinstance(node, ast.ClassDef)
        }
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._late_attr_findings(module, node)
            elif isinstance(node, ast.Attribute) and node.attr == "__dict__":
                yield module.finding(
                    self, node,
                    "reading __dict__ in a compiled module: native "
                    "instances carry none, so interpreted and compiled "
                    "builds diverge",
                )
            elif (isinstance(node, ast.Call)
                  and isinstance(node.func, ast.Name)):
                if node.func.id == "vars" and node.args:
                    yield module.finding(
                        self, node,
                        "vars(obj) in a compiled module reads the "
                        "instance __dict__, which native objects lack",
                    )
                elif node.func.id == "setattr":
                    yield module.finding(
                        self, node,
                        "setattr in a compiled module: attribute slots "
                        "are fixed at compile time; assign the attribute "
                        "directly",
                    )
            elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                for target in assign_targets(node):
                    if (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id in class_names):
                        yield module.finding(
                            self, node,
                            f"mutating class object "
                            f"{target.value.id}.{target.attr}: native "
                            f"classes are frozen after definition",
                        )

    def _late_attr_findings(self, module: SourceModule,
                            cls: ast.ClassDef) -> Iterator[Finding]:
        declared = _declared_attrs(cls)
        for name, method in class_methods(cls).items():
            if name == "__init__":
                continue
            for node in ast.walk(method):
                if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                    continue
                for target in assign_targets(node):
                    attr = self_attr_target(target)
                    if attr is not None and attr not in declared:
                        yield module.finding(
                            self, node,
                            f"{cls.name}.{name} creates attribute "
                            f"self.{attr} outside __init__ — compiled "
                            f"instances have a fixed layout; initialise "
                            f"it in __init__ (or declare it in "
                            f"__slots__)",
                        )
