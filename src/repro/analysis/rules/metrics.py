"""R5 — metrics discipline: counters live in MetricGroup, not ad-hoc dicts.

PR 1 replaced seven bespoke stats dataclasses with the unified
``MetricGroup``/``MetricRegistry`` pipeline: counters declared in a
``COUNTERS`` tuple, reset/merge/snapshot handled centrally, values
flowing schema-versioned into ``SystemResult``.  Ad-hoc ``self.stats_*``
dicts bypass all of that — they don't reset between measure phases,
don't merge across grid points, and silently vanish from results.

Two checks, tree-wide:

* assigning a mutable container to a stats-named instance attribute
  (``stats``/``counters`` and ``stats_*``/``*_stats`` variants);
* declaring a ``COUNTERS`` tuple on a class outside the MetricGroup
  family (counter declarations belong to registry groups).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import (
    Finding,
    LintRun,
    Rule,
    SourceModule,
    assign_targets,
    base_names,
    is_mutable_container,
    self_attr_target,
)


def _is_stats_name(attr: str) -> bool:
    name = attr.lstrip("_")
    return (name in ("stats", "counters")
            or name.startswith(("stats_", "counters_"))
            or name.endswith(("_stats", "_counters")))


class MetricsDisciplineRule(Rule):
    id = "R5"
    name = "metrics-discipline"
    description = (
        "counters are mutated only via MetricRegistry groups; no ad-hoc "
        "self.stats_* container attributes, no COUNTERS declarations "
        "outside the MetricGroup family"
    )

    def check(self, module: SourceModule, run: LintRun) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                value = node.value
                if value is None or not is_mutable_container(value):
                    continue
                for target in assign_targets(node):
                    attr = self_attr_target(target)
                    if attr is not None and _is_stats_name(attr):
                        yield module.finding(
                            self, node,
                            f"ad-hoc stats container self.{attr}; declare "
                            f"counters in a MetricGroup COUNTERS tuple and "
                            f"register it with the MetricRegistry instead",
                        )
            elif isinstance(node, ast.ClassDef):
                family = base_names(node) | {node.name}
                if any(b.endswith(("Stats", "Group")) for b in family):
                    continue
                for stmt in node.body:
                    for target in assign_targets(stmt):
                        if (isinstance(target, ast.Name)
                                and target.id == "COUNTERS"):
                            yield module.finding(
                                self, stmt,
                                f"class {node.name} declares COUNTERS but "
                                f"is not a MetricGroup; counter "
                                f"declarations belong to registry groups",
                            )
