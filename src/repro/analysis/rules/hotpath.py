"""R3 — hot-path hygiene: ``__slots__`` everywhere hot, no stored closures.

Two checks:

* Classes in ``dram/`` and in ``sim/engine.py`` — the per-event inner
  loop — must declare ``__slots__``.  Slotted attribute access is
  measurably faster, keeps per-object memory flat at event-pool scale,
  and is a precondition for mypyc compilation of these modules
  (attribute types become fixed offsets).  Enum/Protocol/NamedTuple/
  dataclass/exception classes and the dynamic-counter MetricGroup
  family are exempt by construction.

* No lambdas or locally-defined functions may be stored on instance
  attributes anywhere in the simulation packages.  This is the PR 4 bug
  class: closures in live state made the simulator graph undeepcopyable
  and unpicklable, which is what snapshot/restore and the warm-state
  cache are built on.  Bound methods (``self.f = self.g``) remain legal
  — they pickle through the instance.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import (
    Finding,
    LintRun,
    Rule,
    SourceModule,
    assign_targets,
    base_names,
    decorator_names,
    self_attr_target,
)

_SIM_PACKAGES = ("sim", "dram", "cache", "mem")

#: Base classes whose subclasses manage attribute storage differently.
_EXEMPT_BASES = frozenset({"Protocol", "Enum", "IntEnum", "IntFlag", "Flag",
                           "NamedTuple", "TypedDict"})


def _slots_exempt(cls: ast.ClassDef) -> bool:
    bases = base_names(cls)
    if bases & _EXEMPT_BASES:
        return True
    # Exception hierarchies carry BaseException's dict machinery.
    if any(b.endswith(("Error", "Exception", "Warning")) for b in bases):
        return True
    # The MetricGroup family binds counters dynamically from COUNTERS
    # declarations (see repro/metrics/registry.py) — R5's territory.
    if any(b.endswith(("Stats", "Group")) for b in bases):
        return True
    if "dataclass" in decorator_names(cls):
        return True
    return False


def _declares_slots(cls: ast.ClassDef) -> bool:
    for stmt in cls.body:
        for target in assign_targets(stmt):
            if isinstance(target, ast.Name) and target.id == "__slots__":
                return True
    return False


class HotPathRule(Rule):
    id = "R3"
    name = "hot-path-hygiene"
    description = (
        "classes in dram/ and sim/engine.py must declare __slots__ "
        "(mypyc on-ramp); no lambdas or local functions stored on "
        "instance attributes in simulation packages (PR 4 bug class)"
    )

    def check(self, module: SourceModule, run: LintRun) -> Iterator[Finding]:
        hot = module.in_package("dram") or module.is_file("sim/engine.py")
        if hot:
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                if _slots_exempt(node) or _declares_slots(node):
                    continue
                yield module.finding(
                    self, node,
                    f"hot-path class {node.name} must declare __slots__ "
                    f"(attribute-offset dispatch; mypyc precondition)",
                )
        if module.in_package(*_SIM_PACKAGES):
            yield from self._closure_findings(module)

    def _closure_findings(self, module: SourceModule) -> Iterator[Finding]:
        for func in ast.walk(module.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            local_defs = {
                stmt.name for stmt in ast.walk(func)
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                and stmt is not func
            }
            for node in ast.walk(func):
                if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                    continue
                value = node.value
                if value is None:
                    continue
                stored: str | None = None
                if isinstance(value, ast.Lambda):
                    stored = "a lambda"
                elif isinstance(value, ast.Name) and value.id in local_defs:
                    stored = f"local function {value.id!r}"
                if stored is None:
                    continue
                for target in assign_targets(node):
                    attr = self_attr_target(target)
                    if attr is not None:
                        yield module.finding(
                            self, node,
                            f"storing {stored} on self.{attr} puts a "
                            f"closure into live state — undeepcopyable/"
                            f"unpicklable (the PR 4 bug class); use a "
                            f"bound method or module-level function",
                        )
