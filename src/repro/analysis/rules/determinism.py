"""R1 — determinism: no wall clocks, ambient randomness or set iteration.

Every simulation result must be bit-reproducible from (config, seed).
Wall-clock reads, the process-global ``random`` module, ``os.urandom``
and UUIDs smuggle ambient entropy into that function; iterating a bare
``set`` makes behaviour depend on hash seeding and insertion history.
Scoped to the simulation packages (``sim/``, ``dram/``, ``cache/``,
``mem/``) — the experiment layer may legitimately time things.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import (
    Finding,
    LintRun,
    Rule,
    SourceModule,
    dotted_call_name,
    iter_imports,
)

_SIM_PACKAGES = ("sim", "dram", "cache", "mem")

#: Canonical dotted names whose *call* injects nondeterminism.
_BANNED_CALLS = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
    "os.urandom",
    "uuid.uuid1", "uuid.uuid4",
})

#: Any module-level function of ``random`` (the shared, ambient RNG).
#: Seeded ``random.Random(seed)`` instances are the sanctioned form.
_RANDOM_MODULE = "random"


def _canonical(name: str, aliases: dict[str, str]) -> str:
    """Rewrite the first segment of a dotted name through the import map."""
    head, dot, rest = name.partition(".")
    origin = aliases.get(head)
    if origin is None:
        return name
    return f"{origin}{dot}{rest}" if rest else origin


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_call_name(node.func)
        return name in ("set", "frozenset")
    return False


class DeterminismRule(Rule):
    id = "R1"
    name = "determinism"
    description = (
        "simulation packages must not read wall clocks, the global "
        "random module, os.urandom or uuids, nor iterate bare sets "
        "(order depends on hash seeding)"
    )

    @staticmethod
    def _is_ambient_random(
        name: str, canonical: str, aliases: dict[str, str]
    ) -> bool:
        """True for calls through the module-level ``random`` functions.

        Matches ``random.shuffle(...)`` when ``random`` is the imported
        module (any alias) and ``shuffle(...)`` when from-imported.
        ``random.Random(seed)`` construction stays legal — instances of
        it are the sanctioned RNG.
        """
        if not canonical.startswith(_RANDOM_MODULE + "."):
            return False
        attr = canonical.partition(".")[2]
        if "." in attr or not attr or attr[0].isupper():
            return False  # random.Random / random.SystemRandom classes
        head = name.partition(".")[0]
        return aliases.get(head) in (_RANDOM_MODULE, canonical)

    def check(self, module: SourceModule, run: LintRun) -> Iterator[Finding]:
        if not module.in_package(*_SIM_PACKAGES):
            return
        aliases = iter_imports(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                name = dotted_call_name(node.func)
                if name is None:
                    continue
                canonical = _canonical(name, aliases)
                if canonical in _BANNED_CALLS:
                    yield module.finding(
                        self, node,
                        f"call to {canonical}() injects nondeterminism; "
                        f"derive values from (config, seed) instead",
                    )
                elif self._is_ambient_random(name, canonical, aliases):
                    yield module.finding(
                        self, node,
                        f"call to the ambient {canonical}() RNG; use a "
                        f"seeded random.Random instance instead",
                    )
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if _is_set_expr(node.iter):
                    yield module.finding(
                        self, node.iter,
                        "iteration over a bare set is order-nondeterministic;"
                        " sort it (or iterate a list/dict) instead",
                    )
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.DictComp, ast.GeneratorExp)):
                for gen in node.generators:
                    if _is_set_expr(gen.iter):
                        yield module.finding(
                            self, gen.iter,
                            "comprehension over a bare set is order-"
                            "nondeterministic; sort it first",
                        )
