"""dca-lint: repo-specific static analysis for the DCA reproduction.

The simulator's correctness rests on invariants that ordinary linters do
not know about: determinism (results must be bit-reproducible), snapshot
safety (every piece of live state must survive capture/restore),
hot-path hygiene (``__slots__``, no closures in live state), estimate
purity (probing must never bend results), metrics discipline (counters
flow through the registry) and schema discipline (version bumps are
documented).  PRs 4-6 each fixed a bug from one of these classes by
hand; this package makes them machine-checked.

Usage::

    dca-lint src                 # lint the tree, exit 1 on findings
    dca-lint --list-rules        # describe every rule
    dca-lint --format json src   # machine-readable output

Suppressions (see DESIGN.md "Static analysis & invariants")::

    x = time.time()   # dca-lint: disable=R1
    # dca-lint: disable-file=R3   (anywhere in the file, whole file)
"""

from repro.analysis.core import (
    Finding,
    LintRun,
    ProjectRule,
    Rule,
    SourceModule,
    all_rules,
)

__all__ = [
    "Finding",
    "LintRun",
    "ProjectRule",
    "Rule",
    "SourceModule",
    "all_rules",
]
