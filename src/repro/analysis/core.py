"""Core machinery for dca-lint: modules, rules, suppressions, the run.

A lint run parses every ``.py`` file once into a :class:`SourceModule`
(AST + suppression map + package classification) and hands the batch to
each registered rule.  Rules come in two shapes:

* :class:`Rule` — per-module; sees one :class:`SourceModule` at a time.
* :class:`ProjectRule` — repo-level; sees the whole :class:`LintRun`
  (used by R6, which cross-checks ``sim/system.py`` against DESIGN.md).

Suppression comments are honoured centrally, after rules have produced
raw findings, so individual rules never need to know about them:

* ``# dca-lint: disable=R1`` (trailing, or alone on the line the finding
  is reported at) silences the listed rules for that line;
* ``# dca-lint: disable=all`` silences every rule for that line;
* ``# dca-lint: disable-file=R2,R3`` anywhere silences rules file-wide.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import Iterable, Iterator, Sequence

__all__ = [
    "Finding",
    "LintRun",
    "ProjectRule",
    "Rule",
    "SourceModule",
    "all_rules",
    "dotted_call_name",
    "is_mutable_container",
]

#: Matches one suppression pragma inside a comment.  ``scope`` is either
#: ``disable`` (line) or ``disable-file`` (whole file); ``rules`` is a
#: comma-separated list of rule ids or the word ``all``.
_PRAGMA_RE = re.compile(
    r"#\s*dca-lint:\s*(?P<scope>disable(?:-file)?)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)

#: Sentinel rule-id set meaning "every rule".
_ALL = frozenset({"ALL"})


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a specific source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


def _parse_suppressions(
    source: str,
) -> tuple[dict[int, frozenset[str]], frozenset[str]]:
    """Extract per-line and file-level suppression pragmas from comments.

    Returns ``(line -> rule ids, file-wide rule ids)``; rule ids are
    upper-cased, with ``all`` normalised to the ``ALL`` sentinel.
    """
    per_line: dict[int, frozenset[str]] = {}
    file_wide: set[str] = set()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _PRAGMA_RE.search(tok.string)
            if match is None:
                continue
            rules = frozenset(
                r.strip().upper() for r in match.group("rules").split(",")
            )
            if "ALL" in rules:
                rules = _ALL
            if match.group("scope") == "disable-file":
                file_wide |= rules
            else:
                line = tok.start[0]
                per_line[line] = per_line.get(line, frozenset()) | rules
    except tokenize.TokenError:
        pass  # unterminated strings etc.; the AST parse reports those
    return per_line, frozenset(file_wide)


def _package_path(path: Path) -> str:
    """Classify *path* by its position under the ``repro`` package.

    Returns a posix-style path anchored at the last ``repro`` segment
    (``repro/sim/engine.py``).  Files outside any ``repro`` tree keep
    their bare name, so package-scoped rules simply never match them —
    except that test fixtures may mirror the layout on purpose
    (``tests/lint_fixtures/repro/sim/bad.py`` counts as ``repro/sim``).
    """
    parts = path.parts
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return str(PurePosixPath(*parts[i:]))
    return path.name


class SourceModule:
    """One parsed source file plus everything rules need to scope it."""

    __slots__ = (
        "path",
        "display_path",
        "source",
        "tree",
        "package_path",
        "line_suppressions",
        "file_suppressions",
    )

    def __init__(self, path: Path, source: str, display_path: str | None = None):
        self.path = path
        self.display_path = display_path if display_path is not None else str(path)
        self.source = source
        self.tree: ast.Module = ast.parse(source, filename=str(path))
        self.package_path = _package_path(path)
        per_line, file_wide = _parse_suppressions(source)
        self.line_suppressions = per_line
        self.file_suppressions = file_wide

    @classmethod
    def from_path(cls, path: Path, display_path: str | None = None) -> "SourceModule":
        return cls(path, path.read_text(encoding="utf-8"), display_path)

    @property
    def dotted_name(self) -> str:
        """``repro/sim/engine.py`` -> ``repro.sim.engine``."""
        p = PurePosixPath(self.package_path)
        stem = p.with_suffix("") if p.suffix == ".py" else p
        return ".".join(stem.parts)

    def in_package(self, *names: str) -> bool:
        """True if the module lives under ``repro/<name>/`` for any name."""
        return any(
            self.package_path.startswith(f"repro/{name}/") for name in names
        )

    def is_file(self, relpath: str) -> bool:
        """True if the module *is* ``repro/<relpath>`` (e.g. sim/engine.py)."""
        return self.package_path == f"repro/{relpath}"

    def suppressed(self, rule: str, line: int) -> bool:
        rule = rule.upper()
        if self.file_suppressions & ({rule} | _ALL):
            return True
        at_line = self.line_suppressions.get(line, frozenset())
        return bool(at_line & ({rule} | _ALL))

    def finding(self, rule: "Rule", node: ast.AST, message: str) -> Finding:
        return Finding(
            path=self.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=rule.id,
            message=message,
        )


class Rule:
    """Base class for per-module rules.

    Subclasses set ``id`` (``R<n>``), ``name`` (kebab-case slug) and
    ``description``, and implement :meth:`check`.
    """

    id: str = ""
    name: str = ""
    description: str = ""

    def check(self, module: SourceModule, run: "LintRun") -> Iterator[Finding]:
        raise NotImplementedError

    def project_check(self, run: "LintRun") -> Iterator[Finding]:
        """Repo-level pass; default none.  Overridden by ProjectRule."""
        return iter(())


class ProjectRule(Rule):
    """A rule that inspects the whole run (cross-file invariants)."""

    def check(self, module: SourceModule, run: "LintRun") -> Iterator[Finding]:
        return iter(())

    def project_check(self, run: "LintRun") -> Iterator[Finding]:
        raise NotImplementedError


@dataclass
class LintRun:
    """One linting pass over a set of modules."""

    modules: list[SourceModule]
    rules: Sequence[Rule]
    project_root: Path | None = None
    parse_errors: list[Finding] = field(default_factory=list)

    def module_by_file(self, relpath: str) -> SourceModule | None:
        for module in self.modules:
            if module.is_file(relpath):
                return module
        return None

    def execute(self) -> list[Finding]:
        """Run every rule over every module, honouring suppressions."""
        findings: list[Finding] = list(self.parse_errors)
        by_path = {m.display_path: m for m in self.modules}
        raw: list[Finding] = []
        for rule in self.rules:
            for module in self.modules:
                raw.extend(rule.check(module, self))
            raw.extend(rule.project_check(self))
        for f in raw:
            module = by_path.get(f.path)
            if module is not None and module.suppressed(f.rule, f.line):
                continue
            findings.append(f)
        return sorted(findings)


def all_rules() -> list[Rule]:
    """Instantiate the full registered rule set, in id order."""
    from repro.analysis.rules import ALL_RULES

    return [cls() for cls in ALL_RULES]


# --------------------------------------------------------------------------
# Shared AST helpers used by several rules.

#: Constructor names whose results are mutable containers.
_MUTABLE_CALLS = frozenset(
    {"list", "dict", "set", "deque", "defaultdict", "OrderedDict",
     "Counter", "bytearray"}
)


def dotted_call_name(node: ast.expr) -> str | None:
    """``a.b.c`` attribute chains -> ``"a.b.c"``; bare names -> ``"a"``."""
    parts: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    parts.append(cur.id)
    return ".".join(reversed(parts))


def is_mutable_container(node: ast.expr) -> bool:
    """True if *node* evaluates to a (possibly nested) mutable container."""
    if isinstance(node, (ast.List, ast.Dict, ast.Set,
                         ast.ListComp, ast.SetComp, ast.DictComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_call_name(node.func)
        if name is not None:
            return name.rpartition(".")[2] in _MUTABLE_CALLS
        return False
    if isinstance(node, ast.BinOp):
        # [0] * n, [x] + [y], n * [None] ...
        return is_mutable_container(node.left) or is_mutable_container(node.right)
    if isinstance(node, ast.IfExp):
        return is_mutable_container(node.body) or is_mutable_container(node.orelse)
    return False


def iter_imports(tree: ast.Module) -> dict[str, str]:
    """Map local names to canonical dotted origins for all imports.

    ``import time as t`` -> ``{"t": "time"}``;
    ``from random import shuffle`` -> ``{"shuffle": "random.shuffle"}``.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                local = a.asname if a.asname else a.name.partition(".")[0]
                canonical = a.name if a.asname else a.name.partition(".")[0]
                aliases[local] = canonical
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue  # relative imports are repo-internal
            for a in node.names:
                local = a.asname if a.asname else a.name
                aliases[local] = f"{node.module}.{a.name}"
    return aliases


def class_methods(cls: ast.ClassDef) -> dict[str, ast.FunctionDef]:
    """Directly-defined methods of *cls*, by name (no inheritance)."""
    return {
        stmt.name: stmt
        for stmt in cls.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def decorator_names(node: ast.ClassDef | ast.FunctionDef) -> set[str]:
    names: set[str] = set()
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = dotted_call_name(target)
        if name is not None:
            names.add(name.rpartition(".")[2])
    return names


def base_names(cls: ast.ClassDef) -> set[str]:
    names: set[str] = set()
    for b in cls.bases:
        name = dotted_call_name(b)
        if name is not None:
            names.add(name.rpartition(".")[2])
        elif isinstance(b, ast.Subscript):  # Protocol[...], Generic[T]
            inner = dotted_call_name(b.value)
            if inner is not None:
                names.add(inner.rpartition(".")[2])
    return names


def walk_functions(
    tree: ast.Module,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def self_attr_target(node: ast.expr) -> str | None:
    """``self.x`` attribute expressions -> ``"x"``, else None."""
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


def assign_targets(stmt: ast.stmt) -> Iterable[ast.expr]:
    """Target expressions of Assign/AnnAssign/AugAssign statements."""
    if isinstance(stmt, ast.Assign):
        for t in stmt.targets:
            if isinstance(t, ast.Tuple):
                yield from t.elts
            else:
                yield t
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        yield stmt.target
