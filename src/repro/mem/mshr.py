"""Miss-status holding registers (MSHRs) for the shared L2.

MSHRs give the L2 its memory-level parallelism: each entry tracks one
outstanding block miss; additional requests to the same block *coalesce*
onto the existing entry instead of issuing duplicate DRAM-cache requests.
When the file is full, new misses stall at the L2 (the core model sees the
stall as back-pressure).

The file is **capacity-partitioned** between demand misses and prefetches
(Sniper's ``m_prefetch_mshr`` contention model): demand entries draw from
``capacity`` slots, prefetch entries from a separate ``prefetch_capacity``
pool, so speculative traffic can never stall a demand miss.  A demand
miss that finds an in-flight prefetch entry coalesces onto it (the
prefetch was issued in time to help, but *late* — see
:mod:`repro.mem.prefetch` for the accounting).

Stall accounting is per held operation, not per attempt: a core whose op
was rejected parks it and retries when the system signals a freed slot
(``retry=True``), and the retry never double-counts — ``full_stalls``
equals the number of operations that ever had to wait, which is the
invariant tests/test_mshr_wakeup.py pins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Protocol

from repro.metrics.registry import MetricGroup, derived


class LoadWaiter(Protocol):
    """Anything that can be told a load miss completed (a core)."""

    def load_done(self, token: int) -> None:
        """The load identified by ``token`` has its data."""


class MSHRStats(MetricGroup):
    """Counters of the shared MSHR file.

    ``demand_latency_max_ps`` is a running maximum, not a sum — the group
    is a per-system singleton that is never rolled up, so the
    sum-``merge`` semantics of :class:`MetricGroup` never apply to it.
    """

    COUNTERS = ("allocations", "coalesced", "full_stalls",
                "prefetch_allocations", "prefetch_rejects",
                "demand_fills", "demand_latency_sum_ps",
                "demand_latency_max_ps")

    @derived
    def mean_demand_latency_ps(self) -> float:
        if not self.demand_fills:
            return 0.0
        return self.demand_latency_sum_ps / self.demand_fills


@dataclass
class MSHREntry:
    block_addr: int
    issued_at: int
    #: (waiter, token) pairs notified on fill
    waiters: list[tuple[LoadWaiter, int]] = field(default_factory=list)
    any_write: bool = False    # a coalesced store: fill dirty
    is_prefetch: bool = False  # allocated from the prefetch partition
    promoted: bool = False     # prefetch entry later hit by a demand miss


class MSHRFile:
    """Bounded set of outstanding block misses with coalescing.

    ``capacity`` bounds demand entries; ``prefetch_capacity`` bounds the
    separate prefetch partition (0 disables prefetch allocation).
    """

    def __init__(self, capacity: int, prefetch_capacity: int = 0):
        if capacity <= 0:
            raise ValueError("MSHR capacity must be positive")
        if prefetch_capacity < 0:
            raise ValueError("prefetch MSHR capacity must be >= 0")
        self.capacity = capacity
        self.prefetch_capacity = prefetch_capacity
        self._entries: dict[int, MSHREntry] = {}
        self._demand_used = 0
        self._prefetch_used = 0
        self.stats = MSHRStats()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        """Demand partition full (prefetch slots don't admit demand)."""
        return self._demand_used >= self.capacity

    @property
    def demand_free(self) -> int:
        """Free demand slots — how many stalled cores a fill may wake."""
        return self.capacity - self._demand_used

    # Back-compat counter views (tests, signatures).
    @property
    def allocations(self) -> int:
        return self.stats.allocations

    @property
    def coalesced(self) -> int:
        return self.stats.coalesced

    @property
    def full_stalls(self) -> int:
        return self.stats.full_stalls

    def lookup(self, block_addr: int) -> Optional[MSHREntry]:
        return self._entries.get(block_addr)

    def allocate(self, block_addr: int, now: int, is_write: bool = False,
                 retry: bool = False) -> tuple[Optional[MSHREntry], bool]:
        """Allocate or coalesce a demand miss.

        Returns ``(entry, fresh)``: ``fresh`` is True when a new entry was
        created (the caller must issue the DRAM-cache request exactly
        then).  Returns ``(None, False)`` when the demand partition is
        full — counting one stall unless this is the ``retry`` of an op
        already counted when it was first held.
        """
        entry = self._entries.get(block_addr)
        if entry is not None:
            self.stats.coalesced += 1
            entry.any_write = entry.any_write or is_write
            return entry, False
        if self._demand_used >= self.capacity:
            if not retry:
                self.stats.full_stalls += 1
            return None, False
        entry = MSHREntry(block_addr, now, any_write=is_write)
        self._entries[block_addr] = entry
        self._demand_used += 1
        self.stats.allocations += 1
        return entry, True

    def allocate_prefetch(self, block_addr: int,
                          now: int) -> Optional[MSHREntry]:
        """Allocate a prefetch entry, or None when speculation must drop.

        Prefetches never coalesce (the issuer checks :meth:`lookup`
        first) and never stall anything: a full prefetch partition — or a
        file with no partition at all — just rejects the candidate.
        """
        if self._prefetch_used >= self.prefetch_capacity:
            self.stats.prefetch_rejects += 1
            return None
        entry = MSHREntry(block_addr, now, is_prefetch=True)
        self._entries[block_addr] = entry
        self._prefetch_used += 1
        self.stats.prefetch_allocations += 1
        return entry

    def complete(self, block_addr: int,
                 now: Optional[int] = None) -> MSHREntry:
        """Remove the entry on fill; the caller notifies ``entry.waiters``.

        With ``now``, a completing demand entry accumulates its miss
        latency (``now - issued_at``) into the sum/max stats — the
        system passes its clock so results report real L2 miss latency.
        """
        entry = self._entries.pop(block_addr, None)
        if entry is None:
            raise KeyError(f"no MSHR entry for block {block_addr:#x}")
        if entry.is_prefetch:
            self._prefetch_used -= 1
        else:
            self._demand_used -= 1
            if now is not None:
                st = self.stats
                lat = now - entry.issued_at
                st.demand_fills += 1
                st.demand_latency_sum_ps += lat
                if lat > st.demand_latency_max_ps:
                    st.demand_latency_max_ps = lat
        return entry
