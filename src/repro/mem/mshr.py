"""Miss-status holding registers (MSHRs) for the shared L2.

MSHRs give the L2 its memory-level parallelism: each entry tracks one
outstanding block miss; additional requests to the same block *coalesce*
onto the existing entry instead of issuing duplicate DRAM-cache requests.
When the file is full, new misses stall at the L2 (the core model sees the
stall as back-pressure).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class MSHREntry:
    block_addr: int
    issued_at: int
    waiters: list  # (core, token) pairs notified on fill
    any_write: bool = False  # a coalesced store: fill dirty


class MSHRFile:
    """Bounded set of outstanding block misses with coalescing."""

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("MSHR capacity must be positive")
        self.capacity = capacity
        self._entries: dict[int, MSHREntry] = {}
        self.allocations = 0
        self.coalesced = 0
        self.full_stalls = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def lookup(self, block_addr: int) -> Optional[MSHREntry]:
        return self._entries.get(block_addr)

    def allocate(self, block_addr: int, now: int,
                 is_write: bool = False) -> tuple[Optional[MSHREntry], bool]:
        """Allocate or coalesce.

        Returns ``(entry, fresh)``: ``fresh`` is True when a new entry was
        created (the caller must issue the DRAM-cache request exactly
        then).  Returns ``(None, False)`` — and counts a stall — when the
        file is full.
        """
        entry = self._entries.get(block_addr)
        if entry is not None:
            self.coalesced += 1
            entry.any_write = entry.any_write or is_write
            return entry, False
        if self.full:
            self.full_stalls += 1
            return None, False
        entry = MSHREntry(block_addr, now, [], any_write=is_write)
        self._entries[block_addr] = entry
        self.allocations += 1
        return entry, True

    def complete(self, block_addr: int) -> MSHREntry:
        """Remove the entry on fill; the caller notifies ``entry.waiters``."""
        entry = self._entries.pop(block_addr, None)
        if entry is None:
            raise KeyError(f"no MSHR entry for block {block_addr:#x}")
        return entry
