"""Off-chip main memory (paper Table II: 50 ns latency, 2 GHz 64-bit bus).

The paper models main memory below the DRAM cache as a flat 50 ns access
behind the off-chip bus; contention for that bus is the only queuing
effect.  A 64 B block occupies the 64-bit/2 GHz bus for 4 ns, so the model
is a single-server queue: ``start = max(now, bus_free)``, data returns at
``start + 50 ns``.

Reads carry a completion callback (the DRAM-cache controller delivers the
data to the L2 and spawns a refill); writes (dirty victims leaving the
DRAM cache) are fire-and-forget but still consume bus slots.
"""

from __future__ import annotations

from typing import Callable

from repro.config import MainMemoryConfig
from repro.metrics.registry import MetricGroup, derived
from repro.sim.engine import Simulator


class MainMemoryStats(MetricGroup):
    COUNTERS = ("reads", "writes", "bus_busy_ps", "read_latency_sum_ps")

    @derived
    def mean_read_latency_ps(self) -> float:
        return self.read_latency_sum_ps / self.reads if self.reads else 0.0


class MainMemory:
    """Flat-latency memory behind a bandwidth-limited off-chip bus."""

    __slots__ = ("sim", "cfg", "_bus_free", "stats")

    def __init__(self, sim: Simulator, cfg: MainMemoryConfig):
        self.sim = sim
        self.cfg = cfg
        self._bus_free = 0
        self.stats = MainMemoryStats()

    def _claim_bus(self) -> int:
        now = self.sim.now
        start = max(now, self._bus_free)
        self._bus_free = start + self.cfg.bus_occupancy_ps
        self.stats.bus_busy_ps += self.cfg.bus_occupancy_ps
        return start

    def fetch(self, addr: int, on_done: Callable, arg=None) -> int:
        """Read one block; ``on_done(addr)`` fires when data returns.

        ``arg`` replaces the address as the callback payload when given
        (``on_done(arg)``), so callers can route the completion to a
        request object with a plain bound method instead of a closure —
        closures in the event heap are invisible to the snapshot layer
        (deepcopy/pickle treat functions as atomic, so a captured closure
        would keep pointing at the *donor* simulation's objects).

        Returns the completion time (useful for tests).
        """
        start = self._claim_bus()
        done = start + self.cfg.latency_ps
        self.stats.reads += 1
        self.stats.read_latency_sum_ps += done - self.sim.now
        self.sim.at(done, on_done, addr if arg is None else arg)
        return done

    def write(self, addr: int) -> int:
        """Write one block (dirty victim); consumes a bus slot only."""
        start = self._claim_bus()
        self.stats.writes += 1
        return start + self.cfg.latency_ps

    def reset_stats(self) -> None:
        self.stats.reset()
