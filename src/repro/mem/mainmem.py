"""Off-chip main memory (paper Table II: 50 ns latency, 2 GHz 64-bit bus).

The paper models main memory below the DRAM cache as a flat 50 ns access
behind the off-chip bus; contention for that bus is the only queuing
effect.  A 64 B block occupies the 64-bit/2 GHz bus for 4 ns, so the model
is a single-server queue: ``start = max(now, bus_free)``, data returns at
``start + 50 ns``.

That flat model is :class:`MainMemory`, the default
(``mainmem.model="flat"``).  :class:`BankedMainMemory`
(``mainmem.model="banked"``) replaces the single-server queue with a real
banked organisation: its own :class:`~repro.config.DRAMOrganization` and
:class:`~repro.dram.address.AddressMapper`, DDR3-1600-style timings, and
one substrate channel per memory channel built through the same
:func:`~repro.dram.substrate.make_channel` factory the stacked DRAM cache
uses — so bank conflicts, row-buffer locality, bus turnarounds and
rank-to-rank switches (``tCS``) below the cache become visible.  Both
models expose the identical interface (``fetch``/``write``/``stats``/
``reset_stats``/``capture_state``/``restore_state``), and the controller
is built against :data:`AnyMainMemory` through :func:`make_mainmem`.

Reads carry a completion callback (the DRAM-cache controller delivers the
data to the L2 and spawns a refill); writes (dirty victims leaving the
DRAM cache) are fire-and-forget but still consume bus slots.
"""

from __future__ import annotations

from typing import Any, Callable, Union

from repro.config import MainMemoryConfig
from repro.dram.address import AddressMapper
from repro.dram.command import CommandChannel
from repro.dram.substrate import make_channel
from repro.metrics.registry import MetricGroup, MetricRegistry, derived
from repro.sim.engine import Simulator


class MainMemoryStats(MetricGroup):
    """Model-independent main-memory counters.

    Shared by the flat and banked models so the ``mainmem`` metric key
    keeps one schema; the banked model additionally publishes per-channel
    substrate groups in its own registry (mounted as ``mainmem_dev``).
    The ``*_bus_wait_ps`` counters measure queuing delay — time between
    the request and its burst/bus-slot start — which is the contention
    signal both models share.
    """

    COUNTERS = (
        "reads",
        "writes",
        "bus_busy_ps",
        "read_latency_sum_ps",
        "write_latency_sum_ps",
        "read_bus_wait_ps",
        "write_bus_wait_ps",
    )

    @derived
    def mean_read_latency_ps(self) -> float:
        return self.read_latency_sum_ps / self.reads if self.reads else 0.0

    @derived
    def mean_write_latency_ps(self) -> float:
        return self.write_latency_sum_ps / self.writes if self.writes else 0.0


class MainMemory:
    """Flat-latency memory behind a bandwidth-limited off-chip bus."""

    __slots__ = ("sim", "cfg", "_bus_free", "stats")

    def __init__(self, sim: Simulator, cfg: MainMemoryConfig):
        self.sim = sim
        self.cfg = cfg
        self._bus_free = 0
        self.stats = MainMemoryStats()

    def _claim_bus(self) -> int:
        now = self.sim.now
        start = max(now, self._bus_free)
        self._bus_free = start + self.cfg.bus_occupancy_ps
        self.stats.bus_busy_ps += self.cfg.bus_occupancy_ps
        return start

    def fetch(self, addr: int, on_done: Callable[[Any], None], arg: Any = None) -> int:
        """Read one block; ``on_done(addr)`` fires when data returns.

        ``arg`` replaces the address as the callback payload when given
        (``on_done(arg)``), so callers can route the completion to a
        request object with a plain bound method instead of a closure —
        closures in the event heap are invisible to the snapshot layer
        (deepcopy/pickle treat functions as atomic, so a captured closure
        would keep pointing at the *donor* simulation's objects).

        Returns the completion time (useful for tests).
        """
        now = self.sim.now
        start = self._claim_bus()
        done = start + self.cfg.latency_ps
        self.stats.reads += 1
        self.stats.read_latency_sum_ps += done - now
        self.stats.read_bus_wait_ps += start - now
        self.sim.at(done, on_done, addr if arg is None else arg)
        return done

    def write(self, addr: int) -> int:
        """Write one block (dirty victim); consumes a bus slot only."""
        now = self.sim.now
        start = self._claim_bus()
        done = start + self.cfg.latency_ps
        self.stats.writes += 1
        self.stats.write_latency_sum_ps += done - now
        self.stats.write_bus_wait_ps += start - now
        return done

    def reset_stats(self) -> None:
        self.stats.reset()

    # -- state capture --------------------------------------------------------

    def capture_state(self) -> dict[str, Any]:
        """Value-only image of the timing state (not the stats)."""
        return {"model": "flat", "bus_free": self._bus_free}

    def restore_state(self, state: dict[str, Any]) -> None:
        """Adopt a :meth:`capture_state` image."""
        if state["model"] != "flat":
            raise ValueError(f"cannot restore {state['model']!r} state "
                             "into a flat MainMemory")
        self._bus_free = state["bus_free"]


class BankedMainMemory:
    """Banked multi-channel/multi-rank main memory behind the Substrate.

    Each memory channel is a full substrate channel — the same
    burst/command models the DRAM cache runs on, built via
    :func:`make_channel` from ``cfg.timings`` (DDR3-1600 by default,
    including the ``tCS`` rank-to-rank bus turnaround) and ``cfg.org``.
    Block addresses are decoded by an :class:`AddressMapper` over
    ``cfg.org``, so the interleave policy below the cache is sweepable
    independently of the cache's own.

    Accesses are issued synchronously at ``sim.now`` — the substrate's
    bus state provides the single-server queuing the flat model got from
    ``bus_free``, and completions are scheduled at the burst end.
    ``stats`` stays a plain :class:`MainMemoryStats` (same ``mainmem``
    schema as the flat model); per-channel substrate counters live in
    :attr:`metrics` (``ch0``, ``ch1``, ...; per-rank groups when the
    channel model carries them), which the system mounts as
    ``mainmem_dev``.
    """

    __slots__ = ("sim", "cfg", "mapper", "channels", "stats", "metrics")

    def __init__(self, sim: Simulator, cfg: MainMemoryConfig):
        self.sim = sim
        self.cfg = cfg
        self.mapper = AddressMapper(cfg.org)
        self.stats = MainMemoryStats()
        self.metrics = MetricRegistry()
        self.channels = []
        for i in range(cfg.org.channels):
            channel = make_channel(cfg.timings, cfg.org, cfg.substrate)
            self.metrics.register(f"ch{i}", channel.stats)
            # Same publication rule as DRAMDevice: the rank dimension
            # appears only where it is real (command fidelity, >1 rank).
            if (isinstance(channel, CommandChannel)
                    and cfg.org.ranks_per_channel > 1):
                for j, rs in enumerate(channel.rank_groups):
                    self.metrics.register(f"ch{i}_rank{j}", rs)
            self.channels.append(channel)

    def fetch(self, addr: int, on_done: Callable[[Any], None], arg: Any = None) -> int:
        """Read one block through its bank; same contract as the flat model."""
        now = self.sim.now
        d = self.mapper.decode(addr)
        start, done = self.channels[d.channel].issue(
            d.rank, d.bank, d.row, False, now)
        self.stats.reads += 1
        self.stats.read_latency_sum_ps += done - now
        self.stats.read_bus_wait_ps += start - now
        self.sim.at(done, on_done, addr if arg is None else arg)
        return done

    def write(self, addr: int) -> int:
        """Write one block (dirty victim) through its bank."""
        now = self.sim.now
        d = self.mapper.decode(addr)
        start, done = self.channels[d.channel].issue(
            d.rank, d.bank, d.row, True, now)
        self.stats.writes += 1
        self.stats.write_latency_sum_ps += done - now
        self.stats.write_bus_wait_ps += start - now
        return done

    def total_stats(self) -> MetricGroup:
        """Cross-channel substrate rollup (mirrors DRAMDevice.total_stats)."""
        return type(self.channels[0].stats).sum(
            [c.stats for c in self.channels])

    def reset_stats(self) -> None:
        self.stats.reset()
        for channel in self.channels:
            channel.reset_stats()

    # -- state capture --------------------------------------------------------

    def capture_state(self) -> dict[str, Any]:
        """Value-only image of every channel's timing state."""
        return {"model": "banked",
                "channels": [c.capture_state() for c in self.channels]}

    def restore_state(self, state: dict[str, Any]) -> None:
        """Adopt a :meth:`capture_state` image (validates before mutating)."""
        if state["model"] != "banked":
            raise ValueError(f"cannot restore {state['model']!r} state "
                             "into a BankedMainMemory")
        if len(state["channels"]) != len(self.channels):
            raise ValueError(
                f"channel count mismatch: captured {len(state['channels'])}, "
                f"memory has {len(self.channels)}")
        for channel, img in zip(self.channels, state["channels"]):
            channel.restore_state(img)


AnyMainMemory = Union[MainMemory, BankedMainMemory]


def make_mainmem(sim: Simulator, cfg: MainMemoryConfig) -> AnyMainMemory:
    """Build the main-memory model ``cfg.model`` selects."""
    if cfg.model == "banked":
        return BankedMainMemory(sim, cfg)
    return MainMemory(sim, cfg)
