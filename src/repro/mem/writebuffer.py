"""Bounded L2 write buffer between dirty evictions and the controller.

Dirty L2 victims (and Lee et al.'s DRAM-aware writeback batches) used to
be fire-and-forget: ``System._emit_writebacks`` submitted them straight
into the controller's write queues.  This buffer sits in between and
shapes *when* writebacks enter the controller, the way a real LLC write
buffer does:

* ``depth == 0`` (default) — unbounded pass-through: every push submits
  immediately, bit-identical to the pre-buffer behaviour.
* ``policy == "full"`` — drain-when-full: writebacks accumulate until
  the buffer is full, then the whole buffer bursts to the controller
  (amortising write-mode turnarounds maximally).
* ``policy == "watermark"`` — once occupancy reaches the high
  watermark, drain FIFO down to the low watermark (the classic
  hysteresis the controller itself uses for its write queues).
* ``policy == "idle"`` — drain the buffer after ``idle_ps`` with no new
  arrivals (plus a drain-one backstop when a push finds it full).

A demand read to a buffered block flushes that entry to the controller
first (:meth:`flush`), where the existing ``_pending_writes`` forwarding
then serves the read from the write data — the freshest copy is never
lost, and ``forward_flushes`` counts how often it mattered.

Occupancy is accounted as an exact time integral
(``occupancy_integral_ps`` = sum of occupancy x picoseconds), restarted
at the warm-up boundary like the controller queues' integrals.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.config import WriteBufferConfig
from repro.metrics.registry import MetricGroup, derived
from repro.sim.engine import AnySimulator


class WriteBufferStats(MetricGroup):
    COUNTERS = ("enqueued", "coalesced", "drained", "forward_flushes",
                "drain_stalls", "idle_drains", "occupancy_integral_ps")

    @derived
    def buffered(self) -> int:
        """Pushes that actually waited in the buffer (not passed through)."""
        return self.enqueued - self.coalesced


class L2WriteBuffer:
    """FIFO write buffer with pluggable drain policies.

    ``submit`` is the downstream sink — a *bound method* of the system
    (``System._submit_writeback``), never a closure, so a snapshotted
    buffer keeps draining into its own copy of the controller (see
    repro/snapshot.py).
    """

    def __init__(self, sim: AnySimulator, cfg: WriteBufferConfig,
                 submit: Callable[[int, int], None]):
        self.sim = sim
        self.cfg = cfg
        self._submit = submit
        self.depth = cfg.depth
        self.policy = cfg.policy
        self._idle_ps = cfg.idle_ps
        # Integer thresholds fixed at construction: watermark hysteresis
        # must not depend on float rounding at drain time.
        self._high = max(1, int(cfg.depth * cfg.high_watermark))
        self._low = int(cfg.depth * cfg.low_watermark)
        #: addr -> core_id; dict insertion order is the FIFO order
        self._entries: dict[int, int] = {}
        self._last_t = 0
        self._last_push = 0
        self._idle_scheduled = False
        self.stats = WriteBufferStats()

    def __len__(self) -> int:
        return len(self._entries)

    # -- time accounting --------------------------------------------------------

    def _account(self, now: int) -> None:
        """Integrate occupancy up to ``now`` (call before any change)."""
        self.stats.occupancy_integral_ps += (
            len(self._entries) * (now - self._last_t))
        self._last_t = now

    def reset_accounting(self, now: int) -> None:
        """Warm-up boundary: zero counters, restart the integral clock."""
        self.stats.reset()
        self._last_t = now

    # -- operations -------------------------------------------------------------

    def push(self, addr: int, core_id: int) -> None:
        """Accept one dirty-eviction writeback for ``addr``."""
        self.stats.enqueued += 1
        if self.depth == 0:            # unbounded pass-through (default)
            self.stats.drained += 1
            self._submit(addr, core_id)
            return
        now = self.sim.now
        if addr in self._entries:
            # Same block evicted dirty again while its writeback still
            # waits: one write to the array suffices.
            self.stats.coalesced += 1
            self._last_push = now
            return
        if len(self._entries) >= self.depth:
            self.stats.drain_stalls += 1
            self._account(now)
            # Drain-when-full empties the whole buffer in one burst; the
            # other policies free just enough room to admit the push.
            self._drain_to(0 if self.policy == "full" else self.depth - 1)
        self._account(now)
        self._entries[addr] = core_id
        self._last_push = now
        if self.policy == "watermark" and len(self._entries) >= self._high:
            self._drain_to(self._low)
        elif self.policy == "idle" and not self._idle_scheduled:
            self._idle_scheduled = True
            self.sim.at(now + self._idle_ps, self._idle_check, None)

    def flush(self, addr: int) -> bool:
        """Submit the buffered writeback for ``addr`` now, if present.

        Called on the demand-read miss path: the controller's pending-
        write forwarding then serves the read from the freshest data.
        """
        core_id = self._entries.pop(addr, None) if self._entries else None
        if core_id is None:
            return False
        self._account(self.sim.now)
        self.stats.forward_flushes += 1
        self.stats.drained += 1
        self._submit(addr, core_id)
        return True

    def _drain_to(self, target: int) -> None:
        """Submit oldest entries until at most ``target`` remain."""
        entries = self._entries
        while len(entries) > target:
            addr = next(iter(entries))
            core_id = entries.pop(addr)
            self.stats.drained += 1
            self._submit(addr, core_id)

    def _idle_check(self, _arg: object) -> None:
        now = self.sim.now
        if not self._entries:
            self._idle_scheduled = False
            return
        quiet_at = self._last_push + self._idle_ps
        if now < quiet_at:
            # A push landed since this check was scheduled; try again
            # when the current quiet window would complete.
            self.sim.at(quiet_at, self._idle_check, None)
            return
        self._account(now)
        self.stats.idle_drains += 1
        self._drain_to(0)
        self._idle_scheduled = False

    # -- snapshot hooks (see repro/snapshot.py and DESIGN.md) -------------------

    def capture_state(self) -> dict[str, Any]:
        """Value copy of buffered writebacks + accounting clocks."""
        return {
            "entries": dict(self._entries),
            "last_t": self._last_t,
            "last_push": self._last_push,
            "idle_scheduled": self._idle_scheduled,
        }

    def restore_state(self, state: dict[str, Any]) -> None:
        self._entries = dict(state["entries"])
        self._last_t = state["last_t"]
        self._last_push = state["last_push"]
        self._idle_scheduled = state["idle_scheduled"]


def make_write_buffer(sim: AnySimulator, cfg: WriteBufferConfig,
                      submit: Callable[[int, int], None],
                      ) -> Optional[L2WriteBuffer]:
    """Build the configured buffer; always returns one (uniform wiring)."""
    return L2WriteBuffer(sim, cfg, submit)
